#ifndef ODH_STORAGE_BUFFER_POOL_H_
#define ODH_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "storage/checksum.h"
#include "storage/sim_disk.h"

namespace odh::storage {

class BufferPool;

/// RAII pin on a buffered page. While alive, the frame cannot be evicted.
/// Call MarkDirty() after mutating data().
class PageRef {
 public:
  PageRef() = default;
  PageRef(BufferPool* pool, int32_t frame);
  ~PageRef();

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;
  PageRef(PageRef&& other) noexcept;
  PageRef& operator=(PageRef&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  char* data();
  const char* data() const;
  FileId file() const;
  PageNo page_no() const;
  void MarkDirty();

  /// Releases the pin early (also done by the destructor).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  int32_t frame_ = -1;
};

/// A fixed-capacity LRU page cache over a SimDisk. Mirrors the role of the
/// Informix buffer pools the paper's AMI case study credits for most of the
/// machine's memory use.
///
/// Thread-safe via sharded latches (see DESIGN.md "Threading model"): the
/// page table, LRU list and free list are partitioned into shards, each
/// under its own mutex, and every frame is permanently owned by one shard.
/// A page maps to its shard by hash(file, page), so two threads faulting
/// different shards' pages never contend, and eviction in one shard does
/// not serialize readers of another. Per-frame pin counts are atomic.
/// Small pools (fewer than kMinFramesPerShard frames) collapse to a single
/// shard, preserving the exact global-LRU semantics the durability tests
/// rely on. Hit/miss/retry/checksum counters are atomics.
///
/// Durability duties (see DESIGN.md "Durability & failure model"):
///  - Every page written back gets a CRC32C trailer over its first
///    usable_page_size() bytes; every page fetched from disk is verified,
///    so torn writes and bit rot surface as Status::DataLoss instead of
///    silently decoding garbage. Clients must keep their data within
///    usable_page_size() — the trailer belongs to the pool.
///  - Transient disk faults (Status::Unavailable) on read, write and
///    allocate are retried with bounded exponential backoff before being
///    reported; a writeback that still fails leaves the frame dirty and in
///    the LRU so a later flush can retry it.
class BufferPool {
 public:
  /// `capacity_pages` frames of disk->page_size() bytes each.
  BufferPool(SimDisk* disk, size_t capacity_pages);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Bytes of a page that clients may use; the remainder is the pool's
  /// checksum trailer.
  size_t usable_page_size() const {
    return disk_->page_size() - kPageTrailerBytes;
  }

  /// Pins (and if needed reads + checksum-verifies) page `page` of `file`.
  Result<PageRef> FetchPage(FileId file, PageNo page);

  /// Allocates a new page on disk and returns it pinned (zeroed, dirty).
  Result<PageRef> NewPage(FileId file, PageNo* page_no);

  /// Writes back all dirty frames (in ascending frame order).
  Status FlushAll();

  /// Drops every cached page of `file` without writing back (the file is
  /// being deleted). Fails if any of its pages is pinned.
  Status InvalidateFile(FileId file);

  /// Drops every clean, unpinned frame. Dirty or pinned frames are kept.
  /// Used by tests and by memory-pressure simulations to force re-reads
  /// (and hence checksum verification) from disk.
  void DropCleanPages();

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  uint64_t hit_count() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t miss_count() const {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Transparent retries of transient I/O faults (reads+writes+allocates).
  uint64_t io_retry_count() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  /// Pages that failed CRC32C verification on fetch.
  uint64_t checksum_failure_count() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }
  /// Checksum trailers stamped (writebacks) / verified (disk reads).
  uint64_t checksum_stamp_count() const {
    return checksum_stamps_.load(std::memory_order_relaxed);
  }
  uint64_t checksum_verify_count() const {
    return checksum_verifies_.load(std::memory_order_relaxed);
  }
  /// Cached pages evicted to make room (LRU victims, not free frames).
  uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  SimDisk* disk() const { return disk_; }

 private:
  friend class PageRef;

  /// Below this many frames per shard the pool stops sharding: tiny pools
  /// need the whole capacity reachable from every page.
  static constexpr size_t kMinFramesPerShard = 16;
  static constexpr size_t kMaxShards = 16;

  struct Frame {
    FileId file = 0;
    PageNo page = 0;
    bool in_use = false;
    bool dirty = false;
    /// Written only under the owning shard's mutex; read lock-free by
    /// pinning callers (a pinned frame's identity fields are stable).
    std::atomic<int> pins{0};
    std::unique_ptr<char[]> data;
    std::list<int32_t>::iterator lru_pos;  // Valid iff pins == 0 && in_use.
    bool in_lru = false;
  };

  /// One latch shard: a partition of the page table plus the LRU and free
  /// lists of the frames this shard owns.
  struct Shard {
    mutable std::mutex mu;
    std::map<std::pair<FileId, PageNo>, int32_t> page_table;
    std::list<int32_t> lru;  // Front = most recent; only unpinned frames.
    std::vector<int32_t> free_frames;
  };

  size_t ShardOf(FileId file, PageNo page) const {
    if (shards_.size() == 1) return 0;
    uint64_t h = (static_cast<uint64_t>(file) << 32) | page;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    return static_cast<size_t>(h % shards_.size());
  }
  Shard& ShardOfFrame(int32_t frame) {
    return *shards_[static_cast<size_t>(frame) % shards_.size()];
  }

  void Pin(int32_t frame);        // Takes the frame's shard latch.
  void Unpin(int32_t frame);      // Takes the frame's shard latch.
  void PinLocked(Shard& shard, int32_t frame);
  void SetDirty(int32_t frame) { frames_[frame].dirty = true; }
  char* FrameData(int32_t frame) { return frames_[frame].data.get(); }
  const Frame& FrameAt(int32_t frame) const { return frames_[frame]; }

  /// Finds a frame of `shard` to host a new page, evicting if needed.
  /// Caller holds shard.mu.
  Result<int32_t> GetVictimFrameLocked(Shard& shard);
  /// Caller holds the owning shard's mutex.
  Status WriteBackLocked(int32_t frame);

  // Retrying wrappers around the disk (bounded exponential backoff on
  // Status::Unavailable). The disk carries its own mutex, so these are
  // safe under a shard latch (shard latch -> disk mutex lock order).
  Status ReadPageRetry(FileId file, PageNo page, char* buf);
  Status WritePageRetry(FileId file, PageNo page, const char* buf);
  Result<PageNo> AllocatePageRetry(FileId file);

  SimDisk* disk_;
  size_t capacity_ = 0;
  /// Frames are in a plain array (atomics are not movable); frame i is
  /// owned by shard i % num_shards() for its whole lifetime.
  std::unique_ptr<Frame[]> frames_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> io_retries_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  std::atomic<uint64_t> checksum_stamps_{0};
  std::atomic<uint64_t> checksum_verifies_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace odh::storage

#endif  // ODH_STORAGE_BUFFER_POOL_H_
