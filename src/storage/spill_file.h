#ifndef ODH_STORAGE_SPILL_FILE_H_
#define ODH_STORAGE_SPILL_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/memory.h"
#include "common/result.h"
#include "common/slice.h"
#include "storage/sim_disk.h"

namespace odh::storage {

/// Name prefix of every query-spill temp file. Spill files are
/// WAL-adjacent scratch: they live on the store's SimDisk next to
/// "odh$store.wal", are deleted by their owning query on completion or
/// abort, and are swept by OdhStore::Recover after a crash (a rebooted
/// historian has no queries, so any surviving spill file is garbage).
inline constexpr char kSpillFilePrefix[] = "odh$spill$";

inline bool IsSpillFileName(const std::string& name) {
  return name.rfind(kSpillFilePrefix, 0) == 0;
}

/// Sequential record writer for one spill run. Records are opaque byte
/// strings framed with a varint length and packed back to back across
/// pages; page 0 is a header (magic, data bytes, record count) written by
/// Finish, so a crash mid-spill leaves a file Recover can identify by
/// name alone — no content validity is ever assumed.
///
/// Buffering: one page of staging carved from the caller's Arena, so
/// spill I/O memory is charged to the query that spills.
class SpillFileWriter {
 public:
  static Result<std::unique_ptr<SpillFileWriter>> Create(
      SimDisk* disk, const std::string& name, common::Arena* arena);

  SpillFileWriter(const SpillFileWriter&) = delete;
  SpillFileWriter& operator=(const SpillFileWriter&) = delete;

  Status Append(const Slice& record);

  /// Flushes the partial tail page and writes the header. No Appends
  /// after this.
  Status Finish();

  const std::string& name() const { return name_; }
  /// Payload bytes framed so far (excludes header/padding).
  int64_t data_bytes() const { return static_cast<int64_t>(data_bytes_); }
  int64_t record_count() const { return static_cast<int64_t>(records_); }

 private:
  SpillFileWriter(SimDisk* disk, FileId file, std::string name, char* page_buf)
      : disk_(disk), file_(file), name_(std::move(name)), page_(page_buf) {}

  /// Writes the staged page and resets the cursor.
  Status FlushPage();

  SimDisk* disk_;
  FileId file_;
  std::string name_;
  char* page_;  // page_size() bytes of arena-backed staging.
  size_t page_used_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t records_ = 0;
  bool finished_ = false;
};

/// Sequential reader over a finished spill run. Reads one page at a time
/// (arena-backed buffer), so merging K runs costs K pages of memory no
/// matter how large the runs are.
class SpillFileReader {
 public:
  static Result<std::unique_ptr<SpillFileReader>> Open(
      SimDisk* disk, const std::string& name, common::Arena* arena);

  SpillFileReader(const SpillFileReader&) = delete;
  SpillFileReader& operator=(const SpillFileReader&) = delete;

  /// False at end of run. Records come back in Append order.
  Result<bool> Next(std::string* record);

  int64_t record_count() const { return static_cast<int64_t>(records_); }

 private:
  SpillFileReader(SimDisk* disk, FileId file, char* page_buf)
      : disk_(disk), file_(file), page_(page_buf) {}

  /// Ensures >= 1 byte is available in the staging page, reading the next
  /// page if consumed. False at end of data.
  Result<bool> Refill();
  Result<uint8_t> NextByte();

  SimDisk* disk_;
  FileId file_;
  char* page_;
  size_t page_used_ = 0;   // Valid bytes in page_.
  size_t page_pos_ = 0;    // Read cursor within page_.
  PageNo next_page_ = 1;   // Data starts after the header page.
  uint64_t data_bytes_ = 0;
  uint64_t consumed_ = 0;  // Payload bytes consumed so far.
  uint64_t records_ = 0;
  uint64_t emitted_ = 0;
};

}  // namespace odh::storage

#endif  // ODH_STORAGE_SPILL_FILE_H_
