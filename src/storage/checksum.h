#ifndef ODH_STORAGE_CHECKSUM_H_
#define ODH_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace odh::storage {

/// Bytes reserved at the end of every buffer-pool-managed page for the
/// CRC32C trailer. Clients of the pool must confine their data to
/// BufferPool::usable_page_size() bytes; the pool owns the trailer.
inline constexpr size_t kPageTrailerBytes = 4;

/// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
/// by iSCSI, ext4 and most storage engines. Slicing-by-8 software
/// implementation; fast enough that page verification stays a small
/// fraction of a 4 KB memcpy.
uint32_t Crc32c(const void* data, size_t n);

/// Incremental form: extends `crc` (a previous Crc32c result) over more
/// bytes. Crc32c(data, n) == ExtendCrc32c(0, data, n).
uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n);

/// True when all `n` bytes are zero (a freshly allocated, never-written
/// page; such pages carry no checksum and are considered valid).
bool IsZeroFilled(const void* data, size_t n);

}  // namespace odh::storage

#endif  // ODH_STORAGE_CHECKSUM_H_
