#include "storage/sim_disk.h"

#include <cstring>

namespace odh::storage {

Result<FileId> SimDisk::CreateFile(const std::string& name) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("file exists: " + name);
  }
  auto file = std::make_unique<File>();
  file->name = name;
  files_.push_back(std::move(file));
  FileId id = static_cast<FileId>(files_.size() - 1);
  by_name_[name] = id;
  return id;
}

Result<FileId> SimDisk::OpenFile(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such file: " + name);
  return it->second;
}

Status SimDisk::DeleteFile(const std::string& name) {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such file: " + name);
  File* f = files_[it->second].get();
  f->pages.clear();
  f->deleted = true;
  by_name_.erase(it);
  return Status::OK();
}

const SimDisk::File* SimDisk::GetFile(FileId id) const {
  if (id >= files_.size() || files_[id]->deleted) return nullptr;
  return files_[id].get();
}

SimDisk::File* SimDisk::GetFile(FileId id) {
  if (id >= files_.size() || files_[id]->deleted) return nullptr;
  return files_[id].get();
}

Result<PageNo> SimDisk::AllocatePage(FileId file) {
  File* f = GetFile(file);
  if (f == nullptr) return Status::NotFound("bad file id");
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  f->pages.push_back(std::move(page));
  ++stats_.pages_allocated;
  return static_cast<PageNo>(f->pages.size() - 1);
}

Status SimDisk::ReadPage(FileId file, PageNo page, char* buf) {
  File* f = GetFile(file);
  if (f == nullptr) return Status::NotFound("bad file id");
  if (page >= f->pages.size()) return Status::OutOfRange("bad page number");
  std::memcpy(buf, f->pages[page].get(), page_size_);
  ++stats_.page_reads;
  stats_.bytes_read += page_size_;
  return Status::OK();
}

Status SimDisk::WritePage(FileId file, PageNo page, const char* buf) {
  File* f = GetFile(file);
  if (f == nullptr) return Status::NotFound("bad file id");
  if (page >= f->pages.size()) return Status::OutOfRange("bad page number");
  std::memcpy(f->pages[page].get(), buf, page_size_);
  ++stats_.page_writes;
  stats_.bytes_written += page_size_;
  return Status::OK();
}

Result<uint32_t> SimDisk::PageCount(FileId file) const {
  const File* f = GetFile(file);
  if (f == nullptr) return Status::NotFound("bad file id");
  return static_cast<uint32_t>(f->pages.size());
}

uint64_t SimDisk::TotalBytesStored() const {
  uint64_t total = 0;
  for (const auto& f : files_) {
    if (!f->deleted) total += f->pages.size() * page_size_;
  }
  return total;
}

Result<uint64_t> SimDisk::FileBytes(FileId file) const {
  const File* f = GetFile(file);
  if (f == nullptr) return Status::NotFound("bad file id");
  return static_cast<uint64_t>(f->pages.size()) * page_size_;
}

std::vector<std::string> SimDisk::ListFiles() const {
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  return names;
}

}  // namespace odh::storage
