#include "storage/sim_disk.h"

#include <cstring>

namespace odh::storage {
namespace {

Status PowerLost() {
  return Status::IoError("simulated power loss: disk is offline");
}

}  // namespace

Status SimDisk::ApplyDecision(const FaultDecision& decision) {
  switch (decision.kind) {
    case FaultDecision::Kind::kNone:
      return Status::OK();
    case FaultDecision::Kind::kTransient:
      ++stats_.transient_faults;
      return Status::Unavailable("injected transient I/O fault");
    case FaultDecision::Kind::kPermanent:
      ++stats_.permanent_faults;
      return Status::IoError("injected permanent I/O fault");
    case FaultDecision::Kind::kTorn:
      // Reported as success; WritePage handles the partial persist.
      ++stats_.torn_writes;
      return Status::OK();
    case FaultDecision::Kind::kCrash:
      crashed_ = true;
      return PowerLost();
  }
  return Status::Internal("unreachable");
}

Result<FileId> SimDisk::CreateFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("file exists: " + name);
  }
  auto file = std::make_unique<File>();
  file->name = name;
  files_.push_back(std::move(file));
  FileId id = static_cast<FileId>(files_.size() - 1);
  by_name_[name] = id;
  return id;
}

Result<FileId> SimDisk::OpenFile(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such file: " + name);
  return it->second;
}

Status SimDisk::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return Status::NotFound("no such file: " + name);
  File* f = files_[it->second].get();
  f->pages.clear();
  f->deleted = true;
  by_name_.erase(it);
  return Status::OK();
}

const SimDisk::File* SimDisk::GetFile(FileId id) const {
  if (id >= files_.size() || files_[id]->deleted) return nullptr;
  return files_[id].get();
}

SimDisk::File* SimDisk::GetFile(FileId id) {
  if (id >= files_.size() || files_[id]->deleted) return nullptr;
  return files_[id].get();
}

Result<PageNo> SimDisk::AllocatePage(FileId file) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  File* f = GetFile(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id " + std::to_string(file));
  }
  if (fault_policy_ != nullptr) {
    ODH_RETURN_IF_ERROR(ApplyDecision(fault_policy_->OnAllocate()));
  }
  auto page = std::make_unique<char[]>(page_size_);
  std::memset(page.get(), 0, page_size_);
  f->pages.push_back(std::move(page));
  ++stats_.pages_allocated;
  return static_cast<PageNo>(f->pages.size() - 1);
}

Status SimDisk::ReadPage(FileId file, PageNo page, char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  File* f = GetFile(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id " + std::to_string(file));
  }
  if (page >= f->pages.size()) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range for file " + f->name + " (" +
                              std::to_string(f->pages.size()) + " pages)");
  }
  if (fault_policy_ != nullptr) {
    ODH_RETURN_IF_ERROR(ApplyDecision(fault_policy_->OnRead()));
  }
  std::memcpy(buf, f->pages[page].get(), page_size_);
  ++stats_.page_reads;
  stats_.bytes_read += page_size_;
  return Status::OK();
}

Status SimDisk::WritePage(FileId file, PageNo page, const char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return PowerLost();
  File* f = GetFile(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id " + std::to_string(file));
  }
  if (page >= f->pages.size()) {
    return Status::OutOfRange("page " + std::to_string(page) +
                              " out of range for file " + f->name + " (" +
                              std::to_string(f->pages.size()) + " pages)");
  }
  if (fault_policy_ != nullptr) {
    FaultDecision decision = fault_policy_->OnWrite();
    ODH_RETURN_IF_ERROR(ApplyDecision(decision));
    if (decision.kind == FaultDecision::Kind::kTorn) {
      // Persist a prefix and ack the write: silent corruption that only
      // page checksums can catch.
      size_t keep = std::min(decision.torn_bytes, page_size_);
      std::memcpy(f->pages[page].get(), buf, keep);
      ++stats_.page_writes;
      stats_.bytes_written += page_size_;
      return Status::OK();
    }
  }
  std::memcpy(f->pages[page].get(), buf, page_size_);
  ++stats_.page_writes;
  stats_.bytes_written += page_size_;
  return Status::OK();
}

Result<uint32_t> SimDisk::PageCount(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  const File* f = GetFile(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id " + std::to_string(file));
  }
  return static_cast<uint32_t>(f->pages.size());
}

uint64_t SimDisk::TotalBytesStored() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& f : files_) {
    if (!f->deleted) total += f->pages.size() * page_size_;
  }
  return total;
}

Result<uint64_t> SimDisk::FileBytes(FileId file) const {
  std::lock_guard<std::mutex> lock(mu_);
  const File* f = GetFile(file);
  if (f == nullptr) {
    return Status::NotFound("bad file id " + std::to_string(file));
  }
  return static_cast<uint64_t>(f->pages.size()) * page_size_;
}

std::vector<std::string> SimDisk::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, id] : by_name_) names.push_back(name);
  return names;
}

std::unique_ptr<SimDisk> SimDisk::CloneDurable() const {
  std::lock_guard<std::mutex> lock(mu_);
  auto clone = std::make_unique<SimDisk>(page_size_);
  clone->files_.reserve(files_.size());
  for (const auto& f : files_) {
    auto copy = std::make_unique<File>();
    copy->name = f->name;
    copy->deleted = f->deleted;
    copy->pages.reserve(f->pages.size());
    for (const auto& page : f->pages) {
      auto page_copy = std::make_unique<char[]>(page_size_);
      std::memcpy(page_copy.get(), page.get(), page_size_);
      copy->pages.push_back(std::move(page_copy));
    }
    clone->files_.push_back(std::move(copy));
  }
  clone->by_name_ = by_name_;
  return clone;
}

}  // namespace odh::storage
