#include "storage/buffer_pool.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"

namespace odh::storage {
namespace {

// Bounded exponential backoff for transient faults: up to kMaxIoAttempts
// tries, sleeping base * 2^attempt between them (capped). The simulated
// disk clears transient faults immediately, so the sleeps only matter as a
// model; they are microseconds so even fault-heavy tests stay fast.
constexpr int kMaxIoAttempts = 6;
constexpr std::chrono::microseconds kBackoffBase{1};
constexpr std::chrono::microseconds kBackoffCap{64};

void Backoff(int attempt) {
  auto delay = kBackoffBase * (1 << attempt);
  if (delay > kBackoffCap) delay = kBackoffCap;
  std::this_thread::sleep_for(delay);
}

}  // namespace

PageRef::PageRef(BufferPool* pool, int32_t frame)
    : pool_(pool), frame_(frame) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

char* PageRef::data() {
  ODH_CHECK(valid());
  return pool_->FrameData(frame_);
}

const char* PageRef::data() const {
  ODH_CHECK(valid());
  return pool_->FrameData(frame_);
}

FileId PageRef::file() const { return pool_->FrameAt(frame_).file; }
PageNo PageRef::page_no() const { return pool_->FrameAt(frame_).page; }

void PageRef::MarkDirty() {
  ODH_CHECK(valid());
  pool_->SetDirty(frame_);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(SimDisk* disk, size_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  ODH_CHECK(capacity_pages > 0);
  ODH_CHECK(disk_->page_size() > kPageTrailerBytes);
  size_t num_shards = capacity_pages / kMinFramesPerShard;
  if (num_shards > kMaxShards) num_shards = kMaxShards;
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  frames_ = std::make_unique<Frame[]>(capacity_pages);
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
  }
  // Free lists pop from the back, so push each shard's frames in
  // descending order: frames are handed out in ascending allocation order,
  // which FlushAll's write-back ordering contract builds on.
  for (size_t i = capacity_pages; i-- > 0;) {
    shards_[i % num_shards]->free_frames.push_back(static_cast<int32_t>(i));
  }
}

BufferPool::~BufferPool() { (void)FlushAll(); }

void BufferPool::PinLocked(Shard& shard, int32_t frame) {
  Frame& f = frames_[frame];
  if (f.pins.load(std::memory_order_relaxed) == 0 && f.in_lru) {
    shard.lru.erase(f.lru_pos);
    f.in_lru = false;
  }
  f.pins.fetch_add(1, std::memory_order_relaxed);
}

void BufferPool::Pin(int32_t frame) {
  Shard& shard = ShardOfFrame(frame);
  std::lock_guard<std::mutex> lock(shard.mu);
  PinLocked(shard, frame);
}

void BufferPool::Unpin(int32_t frame) {
  Shard& shard = ShardOfFrame(frame);
  std::lock_guard<std::mutex> lock(shard.mu);
  Frame& f = frames_[frame];
  int old_pins = f.pins.fetch_sub(1, std::memory_order_relaxed);
  ODH_CHECK(old_pins > 0);
  if (old_pins == 1) {
    shard.lru.push_front(frame);
    f.lru_pos = shard.lru.begin();
    f.in_lru = true;
  }
}

Status BufferPool::ReadPageRetry(FileId file, PageNo page, char* buf) {
  Status status;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    status = disk_->ReadPage(file, page, buf);
    if (!status.IsUnavailable()) return status;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    Backoff(attempt);
  }
  return status;
}

Status BufferPool::WritePageRetry(FileId file, PageNo page, const char* buf) {
  Status status;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    status = disk_->WritePage(file, page, buf);
    if (!status.IsUnavailable()) return status;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    Backoff(attempt);
  }
  return status;
}

Result<PageNo> BufferPool::AllocatePageRetry(FileId file) {
  Result<PageNo> result = Status::Internal("unreachable");
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    result = disk_->AllocatePage(file);
    if (!result.status().IsUnavailable()) return result;
    io_retries_.fetch_add(1, std::memory_order_relaxed);
    Backoff(attempt);
  }
  return result;
}

Status BufferPool::WriteBackLocked(int32_t frame) {
  Frame& f = frames_[frame];
  if (f.dirty) {
    // Stamp the CRC32C trailer over the usable prefix. The trailer bytes
    // belong to the pool; clients never touch them.
    const size_t usable = usable_page_size();
    uint32_t crc = Crc32c(f.data.get(), usable);
    EncodeFixed32(f.data.get() + usable, crc);
    checksum_stamps_.fetch_add(1, std::memory_order_relaxed);
    ODH_RETURN_IF_ERROR(WritePageRetry(f.file, f.page, f.data.get()));
    f.dirty = false;
  }
  return Status::OK();
}

Result<int32_t> BufferPool::GetVictimFrameLocked(Shard& shard) {
  if (!shard.free_frames.empty()) {
    int32_t frame = shard.free_frames.back();
    shard.free_frames.pop_back();
    return frame;
  }
  if (shard.lru.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  int32_t victim = shard.lru.back();
  shard.lru.pop_back();
  Frame& f = frames_[victim];
  f.in_lru = false;
  Status written = WriteBackLocked(victim);
  if (!written.ok()) {
    // The frame stays dirty and cached; put it back in the LRU so a later
    // flush (or the next eviction attempt, once the fault clears) retries.
    shard.lru.push_back(victim);
    f.lru_pos = std::prev(shard.lru.end());
    f.in_lru = true;
    return written;
  }
  shard.page_table.erase({f.file, f.page});
  f.in_use = false;
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return victim;
}

Result<PageRef> BufferPool::FetchPage(FileId file, PageNo page) {
  Shard& shard = *shards_[ShardOf(file, page)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.page_table.find({file, page});
  if (it != shard.page_table.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    PinLocked(shard, it->second);
    return PageRef(this, it->second);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  // The disk I/O below runs under this shard's latch: fetches of pages in
  // other shards proceed in parallel, and a concurrent fetch of the same
  // page must wait for this one anyway.
  ODH_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrameLocked(shard));
  Frame& f = frames_[frame];
  Status read = ReadPageRetry(file, page, f.data.get());
  if (!read.ok()) {
    shard.free_frames.push_back(frame);
    return read;
  }
  // Verify the CRC32C trailer. A page of all zeroes is a freshly allocated
  // page that was never written back; it carries no checksum and is valid
  // by definition (no client payload decodes from it either).
  const size_t usable = usable_page_size();
  if (!IsZeroFilled(f.data.get(), disk_->page_size())) {
    checksum_verifies_.fetch_add(1, std::memory_order_relaxed);
    uint32_t stored = DecodeFixed32(f.data.get() + usable);
    uint32_t actual = Crc32c(f.data.get(), usable);
    if (stored != actual) {
      checksum_failures_.fetch_add(1, std::memory_order_relaxed);
      shard.free_frames.push_back(frame);
      return Status::DataLoss(
          "page checksum mismatch (torn write or corruption): file " +
          std::to_string(file) + " page " + std::to_string(page));
    }
  }
  f.file = file;
  f.page = page;
  f.in_use = true;
  f.dirty = false;
  f.pins.store(0, std::memory_order_relaxed);
  f.in_lru = false;
  shard.page_table[{file, page}] = frame;
  PinLocked(shard, frame);
  return PageRef(this, frame);
}

Result<PageRef> BufferPool::NewPage(FileId file, PageNo* page_no) {
  // Allocate first: the page number decides the owning shard.
  ODH_ASSIGN_OR_RETURN(PageNo page, AllocatePageRetry(file));
  *page_no = page;
  Shard& shard = *shards_[ShardOf(file, page)];
  std::lock_guard<std::mutex> lock(shard.mu);
  ODH_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrameLocked(shard));
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, disk_->page_size());
  f.file = file;
  f.page = page;
  f.in_use = true;
  f.dirty = true;
  f.pins.store(0, std::memory_order_relaxed);
  f.in_lru = false;
  shard.page_table[{file, page}] = frame;
  PinLocked(shard, frame);
  return PageRef(this, frame);
}

Status BufferPool::InvalidateFile(FileId file) {
  for (size_t i = 0; i < capacity_; ++i) {
    Shard& shard = ShardOfFrame(static_cast<int32_t>(i));
    std::lock_guard<std::mutex> lock(shard.mu);
    Frame& f = frames_[i];
    if (!f.in_use || f.file != file) continue;
    if (f.pins.load(std::memory_order_relaxed) > 0) {
      return Status::FailedPrecondition("page of dropped file is pinned");
    }
    if (f.in_lru) {
      shard.lru.erase(f.lru_pos);
      f.in_lru = false;
    }
    shard.page_table.erase({f.file, f.page});
    f.in_use = false;
    f.dirty = false;
    shard.free_frames.push_back(static_cast<int32_t>(i));
  }
  return Status::OK();
}

void BufferPool::DropCleanPages() {
  for (size_t i = 0; i < capacity_; ++i) {
    Shard& shard = ShardOfFrame(static_cast<int32_t>(i));
    std::lock_guard<std::mutex> lock(shard.mu);
    Frame& f = frames_[i];
    if (!f.in_use || f.dirty ||
        f.pins.load(std::memory_order_relaxed) > 0) {
      continue;
    }
    if (f.in_lru) {
      shard.lru.erase(f.lru_pos);
      f.in_lru = false;
    }
    shard.page_table.erase({f.file, f.page});
    f.in_use = false;
    shard.free_frames.push_back(static_cast<int32_t>(i));
  }
}

Status BufferPool::FlushAll() {
  // Ascending global frame order regardless of sharding: the page
  // allocated into the lowest frame hits the disk first (crash tests pin
  // down this ordering).
  for (size_t i = 0; i < capacity_; ++i) {
    Shard& shard = ShardOfFrame(static_cast<int32_t>(i));
    std::lock_guard<std::mutex> lock(shard.mu);
    if (frames_[i].in_use) {
      ODH_RETURN_IF_ERROR(WriteBackLocked(static_cast<int32_t>(i)));
    }
  }
  return Status::OK();
}

}  // namespace odh::storage
