#include "storage/buffer_pool.h"

#include <cstring>

#include "common/logging.h"

namespace odh::storage {

PageRef::PageRef(BufferPool* pool, int32_t frame)
    : pool_(pool), frame_(frame) {}

PageRef::~PageRef() { Release(); }

PageRef::PageRef(PageRef&& other) noexcept
    : pool_(other.pool_), frame_(other.frame_) {
  other.pool_ = nullptr;
  other.frame_ = -1;
}

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    other.pool_ = nullptr;
    other.frame_ = -1;
  }
  return *this;
}

char* PageRef::data() {
  ODH_CHECK(valid());
  return pool_->FrameData(frame_);
}

const char* PageRef::data() const {
  ODH_CHECK(valid());
  return pool_->FrameData(frame_);
}

FileId PageRef::file() const { return pool_->FrameAt(frame_).file; }
PageNo PageRef::page_no() const { return pool_->FrameAt(frame_).page; }

void PageRef::MarkDirty() {
  ODH_CHECK(valid());
  pool_->SetDirty(frame_);
}

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_);
    pool_ = nullptr;
    frame_ = -1;
  }
}

BufferPool::BufferPool(SimDisk* disk, size_t capacity_pages) : disk_(disk) {
  ODH_CHECK(capacity_pages > 0);
  frames_.resize(capacity_pages);
  free_frames_.reserve(capacity_pages);
  for (size_t i = 0; i < capacity_pages; ++i) {
    frames_[i].data = std::make_unique<char[]>(disk_->page_size());
    free_frames_.push_back(static_cast<int32_t>(capacity_pages - 1 - i));
  }
}

BufferPool::~BufferPool() { (void)FlushAll(); }

void BufferPool::Pin(int32_t frame) {
  Frame& f = frames_[frame];
  if (f.pins == 0 && f.in_lru) {
    lru_.erase(f.lru_pos);
    f.in_lru = false;
  }
  ++f.pins;
}

void BufferPool::Unpin(int32_t frame) {
  Frame& f = frames_[frame];
  ODH_CHECK(f.pins > 0);
  --f.pins;
  if (f.pins == 0) {
    lru_.push_front(frame);
    f.lru_pos = lru_.begin();
    f.in_lru = true;
  }
}

Status BufferPool::WriteBack(int32_t frame) {
  Frame& f = frames_[frame];
  if (f.dirty) {
    ODH_RETURN_IF_ERROR(disk_->WritePage(f.file, f.page, f.data.get()));
    f.dirty = false;
  }
  return Status::OK();
}

Result<int32_t> BufferPool::GetVictimFrame() {
  if (!free_frames_.empty()) {
    int32_t frame = free_frames_.back();
    free_frames_.pop_back();
    return frame;
  }
  if (lru_.empty()) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  int32_t victim = lru_.back();
  lru_.pop_back();
  Frame& f = frames_[victim];
  f.in_lru = false;
  ODH_RETURN_IF_ERROR(WriteBack(victim));
  page_table_.erase({f.file, f.page});
  f.in_use = false;
  return victim;
}

Result<PageRef> BufferPool::FetchPage(FileId file, PageNo page) {
  auto it = page_table_.find({file, page});
  if (it != page_table_.end()) {
    ++hits_;
    Pin(it->second);
    return PageRef(this, it->second);
  }
  ++misses_;
  ODH_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  ODH_RETURN_IF_ERROR(disk_->ReadPage(file, page, f.data.get()));
  f.file = file;
  f.page = page;
  f.in_use = true;
  f.dirty = false;
  f.pins = 0;
  f.in_lru = false;
  page_table_[{file, page}] = frame;
  Pin(frame);
  return PageRef(this, frame);
}

Result<PageRef> BufferPool::NewPage(FileId file, PageNo* page_no) {
  ODH_ASSIGN_OR_RETURN(PageNo page, disk_->AllocatePage(file));
  *page_no = page;
  ODH_ASSIGN_OR_RETURN(int32_t frame, GetVictimFrame());
  Frame& f = frames_[frame];
  std::memset(f.data.get(), 0, disk_->page_size());
  f.file = file;
  f.page = page;
  f.in_use = true;
  f.dirty = true;
  f.pins = 0;
  f.in_lru = false;
  page_table_[{file, page}] = frame;
  Pin(frame);
  return PageRef(this, frame);
}

Status BufferPool::InvalidateFile(FileId file) {
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (!f.in_use || f.file != file) continue;
    if (f.pins > 0) {
      return Status::FailedPrecondition("page of dropped file is pinned");
    }
    if (f.in_lru) {
      lru_.erase(f.lru_pos);
      f.in_lru = false;
    }
    page_table_.erase({f.file, f.page});
    f.in_use = false;
    f.dirty = false;
    free_frames_.push_back(static_cast<int32_t>(i));
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].in_use) {
      ODH_RETURN_IF_ERROR(WriteBack(static_cast<int32_t>(i)));
    }
  }
  return Status::OK();
}

}  // namespace odh::storage
