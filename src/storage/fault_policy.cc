#include "storage/fault_policy.h"

namespace odh::storage {

FaultDecision FaultPolicy::Scheduled(
    std::map<uint64_t, FaultDecision::Kind>* faults, uint64_t op) {
  auto it = faults->find(op);
  if (it == faults->end()) return {};
  FaultDecision decision;
  decision.kind = it->second;
  if (decision.kind == FaultDecision::Kind::kTorn) {
    decision.torn_bytes = torn_bytes_[op];
  }
  return decision;
}

FaultDecision FaultPolicy::OnRead() {
  ++reads_;
  FaultDecision decision = Scheduled(&read_faults_, reads_);
  if (decision.kind != FaultDecision::Kind::kNone) return decision;
  if (read_rate_ > 0 && rng_.NextDouble() < read_rate_) {
    decision.kind = FaultDecision::Kind::kTransient;
  }
  return decision;
}

FaultDecision FaultPolicy::OnWrite() {
  ++writes_;
  // Crash takes precedence over everything else.
  if (crash_at_write_ != 0 && writes_ >= crash_at_write_) {
    return {FaultDecision::Kind::kCrash, 0};
  }
  if (permanent_write_at_ != 0 && writes_ >= permanent_write_at_) {
    return {FaultDecision::Kind::kPermanent, 0};
  }
  FaultDecision decision = Scheduled(&write_faults_, writes_);
  if (decision.kind != FaultDecision::Kind::kNone) return decision;
  if (write_rate_ > 0 && rng_.NextDouble() < write_rate_) {
    decision.kind = FaultDecision::Kind::kTransient;
  }
  return decision;
}

FaultDecision FaultPolicy::OnAllocate() {
  ++allocates_;
  return Scheduled(&alloc_faults_, allocates_);
}

}  // namespace odh::storage
