#include "storage/spill_file.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace odh::storage {
namespace {

constexpr uint32_t kSpillMagic = 0x4f445350;  // "ODSP"
constexpr uint32_t kSpillVersion = 1;

}  // namespace

// SpillFileWriter ------------------------------------------------------------

Result<std::unique_ptr<SpillFileWriter>> SpillFileWriter::Create(
    SimDisk* disk, const std::string& name, common::Arena* arena) {
  ODH_ASSIGN_OR_RETURN(char* buf, arena->Allocate(disk->page_size()));
  ODH_ASSIGN_OR_RETURN(FileId file, disk->CreateFile(name));
  // Page 0 is reserved for the header; written (again) by Finish.
  Result<PageNo> header = disk->AllocatePage(file);
  if (!header.ok()) {
    (void)disk->DeleteFile(name);
    return header.status();
  }
  return std::unique_ptr<SpillFileWriter>(
      new SpillFileWriter(disk, file, name, buf));
}

Status SpillFileWriter::FlushPage() {
  const size_t page_size = disk_->page_size();
  if (page_used_ < page_size) {
    std::memset(page_ + page_used_, 0, page_size - page_used_);
  }
  ODH_ASSIGN_OR_RETURN(PageNo page, disk_->AllocatePage(file_));
  ODH_RETURN_IF_ERROR(disk_->WritePage(file_, page, page_));
  page_used_ = 0;
  return Status::OK();
}

Status SpillFileWriter::Append(const Slice& record) {
  if (finished_) return Status::FailedPrecondition("spill writer finished");
  std::string framed;
  PutVarint64(&framed, record.size());
  framed.append(record.data(), record.size());

  const size_t page_size = disk_->page_size();
  size_t off = 0;
  while (off < framed.size()) {
    const size_t n = std::min(framed.size() - off, page_size - page_used_);
    std::memcpy(page_ + page_used_, framed.data() + off, n);
    page_used_ += n;
    off += n;
    if (page_used_ == page_size) ODH_RETURN_IF_ERROR(FlushPage());
  }
  data_bytes_ += framed.size();
  ++records_;
  return Status::OK();
}

Status SpillFileWriter::Finish() {
  if (finished_) return Status::OK();
  if (page_used_ > 0) ODH_RETURN_IF_ERROR(FlushPage());
  std::string header;
  PutFixed32(&header, kSpillMagic);
  PutFixed32(&header, kSpillVersion);
  PutFixed64(&header, data_bytes_);
  PutFixed64(&header, records_);
  const size_t page_size = disk_->page_size();
  header.resize(page_size, '\0');
  ODH_RETURN_IF_ERROR(disk_->WritePage(file_, 0, header.data()));
  finished_ = true;
  return Status::OK();
}

// SpillFileReader ------------------------------------------------------------

Result<std::unique_ptr<SpillFileReader>> SpillFileReader::Open(
    SimDisk* disk, const std::string& name, common::Arena* arena) {
  ODH_ASSIGN_OR_RETURN(char* buf, arena->Allocate(disk->page_size()));
  ODH_ASSIGN_OR_RETURN(FileId file, disk->OpenFile(name));
  std::string header(disk->page_size(), '\0');
  ODH_RETURN_IF_ERROR(disk->ReadPage(file, 0, header.data()));
  Slice in(header);
  uint32_t magic = 0, version = 0;
  uint64_t data_bytes = 0, records = 0;
  if (!GetFixed32(&in, &magic) || magic != kSpillMagic ||
      !GetFixed32(&in, &version) || version != kSpillVersion ||
      !GetFixed64(&in, &data_bytes) || !GetFixed64(&in, &records)) {
    return Status::Corruption("bad spill file header: " + name);
  }
  auto reader =
      std::unique_ptr<SpillFileReader>(new SpillFileReader(disk, file, buf));
  reader->data_bytes_ = data_bytes;
  reader->records_ = records;
  return reader;
}

Result<bool> SpillFileReader::Refill() {
  if (page_pos_ < page_used_) return true;
  if (consumed_ >= data_bytes_) return false;
  ODH_RETURN_IF_ERROR(disk_->ReadPage(file_, next_page_, page_));
  ++next_page_;
  const uint64_t left = data_bytes_ - consumed_;
  page_used_ = static_cast<size_t>(
      std::min<uint64_t>(left, disk_->page_size()));
  page_pos_ = 0;
  return true;
}

Result<uint8_t> SpillFileReader::NextByte() {
  ODH_ASSIGN_OR_RETURN(bool more, Refill());
  if (!more) return Status::Corruption("spill run truncated");
  ++consumed_;
  return static_cast<uint8_t>(page_[page_pos_++]);
}

Result<bool> SpillFileReader::Next(std::string* record) {
  if (emitted_ >= records_) return false;
  // Varint length, possibly spanning a page boundary.
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    ODH_ASSIGN_OR_RETURN(uint8_t byte, NextByte());
    len |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) return Status::Corruption("spill record length overflow");
  }
  record->clear();
  record->reserve(len);
  while (record->size() < len) {
    ODH_ASSIGN_OR_RETURN(bool more, Refill());
    if (!more) return Status::Corruption("spill run truncated");
    const size_t n = std::min<size_t>(len - record->size(),
                                      page_used_ - page_pos_);
    record->append(page_ + page_pos_, n);
    page_pos_ += n;
    consumed_ += n;
  }
  ++emitted_;
  return true;
}

}  // namespace odh::storage
