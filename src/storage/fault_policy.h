#ifndef ODH_STORAGE_FAULT_POLICY_H_
#define ODH_STORAGE_FAULT_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <map>

#include "common/random.h"

namespace odh::storage {

/// What the fault injector decides for one disk operation.
struct FaultDecision {
  enum class Kind {
    kNone,       // Proceed normally.
    kTransient,  // Fail with Unavailable; the same op succeeds on retry.
    kPermanent,  // Fail with IoError; every later op of this class fails.
    kTorn,       // Persist only `torn_bytes`, then report success (silent
                 // corruption: the "disk" acked a write it never finished).
    kCrash,      // Power cut: this and every later op fails with IoError;
                 // nothing else reaches durable storage.
  };
  Kind kind = Kind::kNone;
  size_t torn_bytes = 0;
};

/// A seeded, deterministic fault schedule for SimDisk. Two mechanisms
/// compose:
///
///  - Scheduled faults target the Nth operation of a class (1-based over
///    the lifetime of the policy): FailNthWrite(3) makes the third
///    WritePage call fail once. Deterministic by construction; this is what
///    the crash/torn-write test harnesses use.
///  - Rate faults fail each operation independently with probability p,
///    drawn from a seeded xoshiro PRNG: identical seeds give identical
///    fault sequences. These model flaky transports and exercise the retry
///    path under load.
///
/// The policy is consulted by SimDisk before performing each operation;
/// attach it with SimDisk::set_fault_policy(). A policy outlives nothing:
/// the disk does not own it.
class FaultPolicy {
 public:
  explicit FaultPolicy(uint64_t seed = 0) : rng_(seed) {}

  // Scheduled faults. `n` is 1-based and counts operations of that class
  // since the policy was attached. Scheduling multiple faults on distinct
  // ops is allowed; the decision for one op applies exactly once.
  void FailNthRead(uint64_t n) { read_faults_[n] = FaultDecision::Kind::kTransient; }
  void FailNthWrite(uint64_t n) { write_faults_[n] = FaultDecision::Kind::kTransient; }
  void FailNthAllocate(uint64_t n) { alloc_faults_[n] = FaultDecision::Kind::kTransient; }

  /// From the Nth write onward, every write fails (a dead device).
  void FailWritesPermanentlyAt(uint64_t n) { permanent_write_at_ = n; }

  /// The Nth write persists only the first `keep_bytes` bytes of the page
  /// but is reported as successful — detectable only by page checksums.
  void TearNthWrite(uint64_t n, size_t keep_bytes) {
    write_faults_[n] = FaultDecision::Kind::kTorn;
    torn_bytes_[n] = keep_bytes;
  }

  /// Power cut at the Nth write: that write and everything after it (reads
  /// included) fails; pages written before it stay durable.
  void CrashAtWrite(uint64_t n) { crash_at_write_ = n; }

  // Rate faults (all transient).
  void set_read_fault_rate(double p) { read_rate_ = p; }
  void set_write_fault_rate(double p) { write_rate_ = p; }

  // Consulted by SimDisk. Each call advances the per-class op counter.
  FaultDecision OnRead();
  FaultDecision OnWrite();
  FaultDecision OnAllocate();

  uint64_t reads_seen() const { return reads_; }
  uint64_t writes_seen() const { return writes_; }
  uint64_t allocates_seen() const { return allocates_; }

 private:
  FaultDecision Scheduled(std::map<uint64_t, FaultDecision::Kind>* faults,
                          uint64_t op);

  Random rng_;
  std::map<uint64_t, FaultDecision::Kind> read_faults_;
  std::map<uint64_t, FaultDecision::Kind> write_faults_;
  std::map<uint64_t, FaultDecision::Kind> alloc_faults_;
  std::map<uint64_t, size_t> torn_bytes_;
  uint64_t permanent_write_at_ = 0;  // 0 = never.
  uint64_t crash_at_write_ = 0;      // 0 = never.
  double read_rate_ = 0;
  double write_rate_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t allocates_ = 0;
};

}  // namespace odh::storage

#endif  // ODH_STORAGE_FAULT_POLICY_H_
