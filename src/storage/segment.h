#ifndef ODH_STORAGE_SEGMENT_H_
#define ODH_STORAGE_SEGMENT_H_

#include <cstdint>
#include <string>

namespace odh::storage {

/// Storage tier of a time-partitioned segment. Hot segments accept writes
/// and keep the writer's original small blobs; the compactor rewrites
/// sealed segments into the cold tier (merged blobs, heavier codec,
/// widened zone maps).
enum class SegmentTier : uint8_t {
  kHot = 0,
  kCold = 1,
};

inline const char* SegmentTierName(SegmentTier tier) {
  return tier == SegmentTier::kCold ? "cold" : "hot";
}

/// Per-segment manifest: the metadata record the scan path consults before
/// touching any of the segment's tables. `key` is floor(begin_ts / span);
/// [lo, hi) are the segment's nominal time bounds (hi exclusive). The key
/// and bounds never change over a segment's life; `generation` bumps on
/// every compaction rewrite (the rewritten tables carry the generation in
/// their names so old and new never collide), and `version` bumps on every
/// mutation so the compactor can detect writes that raced its snapshot.
struct SegmentManifest {
  int64_t key = 0;
  int64_t lo = 0;
  int64_t hi = 0;  // Exclusive; INT64_MAX for the unbounded segment.
  int generation = 0;
  SegmentTier tier = SegmentTier::kHot;
  uint64_t version = 0;
};

/// Floor division routing a blob's begin timestamp to its segment key
/// (correct for negative timestamps, unlike operator/).
inline int64_t SegmentKeyFor(int64_t begin_ts, int64_t span) {
  if (span <= 0) return 0;
  int64_t q = begin_ts / span;
  if ((begin_ts % span) != 0 && begin_ts < 0) --q;
  return q;
}

}  // namespace odh::storage

#endif  // ODH_STORAGE_SEGMENT_H_
