#ifndef ODH_STORAGE_SIM_DISK_H_
#define ODH_STORAGE_SIM_DISK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/fault_policy.h"

namespace odh::storage {

using FileId = uint32_t;
using PageNo = uint32_t;

/// Aggregate I/O counters. The benchmark harness reads these to report the
/// paper's "Avg IO Throughput (bytes/s)", "Total MB written" and storage
/// size columns; the fault counters track what the injector did to the run.
struct IoStats {
  uint64_t page_reads = 0;
  uint64_t page_writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t pages_allocated = 0;
  // Injected faults (zero without a FaultPolicy attached).
  uint64_t transient_faults = 0;
  uint64_t permanent_faults = 0;
  uint64_t torn_writes = 0;
};

/// An in-memory paged "disk": the substitute for the paper's V7000/XIV SAN
/// volumes (see DESIGN.md). Pages are fixed-size; every read/write/allocate
/// is accounted in IoStats so experiments can report I/O volume and storage
/// footprint deterministically.
///
/// Failure modeling: an attached FaultPolicy can fail operations with
/// transient (Unavailable) or permanent (IoError) errors, tear a page write
/// (persist a prefix, report success), or cut power. After a power cut the
/// disk is dead — every operation fails — and CloneDurable() plays the role
/// of rebooting the machine: it yields a healthy disk holding exactly the
/// pages that were durably written, which is what crash-recovery tests run
/// against. Buffer-pool frames and any other process memory are, by
/// construction, not part of the clone.
///
/// Thread-safe: one internal mutex serializes every operation (including
/// fault-policy consultation and the backoff counters), so the sharded
/// buffer pool and the WAL group-commit queue can hit the disk from many
/// threads at once. The mutex is a leaf lock — SimDisk never calls out
/// while holding it.
class SimDisk {
 public:
  static constexpr size_t kDefaultPageSize = 4096;

  explicit SimDisk(size_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  SimDisk(const SimDisk&) = delete;
  SimDisk& operator=(const SimDisk&) = delete;

  size_t page_size() const { return page_size_; }

  /// Creates an empty file. Fails with AlreadyExists on name reuse.
  Result<FileId> CreateFile(const std::string& name);

  /// Opens an existing file by name.
  Result<FileId> OpenFile(const std::string& name) const;

  /// Removes a file and releases its pages (storage size shrinks).
  Status DeleteFile(const std::string& name);

  /// Appends a zeroed page to the file and returns its page number.
  Result<PageNo> AllocatePage(FileId file);

  /// Copies a page into `buf` (page_size() bytes). NotFound for an invalid
  /// or deleted file id; OutOfRange when `page >= PageCount(file)`.
  Status ReadPage(FileId file, PageNo page, char* buf);

  /// Copies `buf` (page_size() bytes) into the page. Same error contract
  /// as ReadPage.
  Status WritePage(FileId file, PageNo page, const char* buf);

  /// Number of pages currently allocated to `file`.
  Result<uint32_t> PageCount(FileId file) const;

  /// Total bytes occupied across all files (the storage-size metric).
  uint64_t TotalBytesStored() const;

  /// Bytes occupied by one file.
  Result<uint64_t> FileBytes(FileId file) const;

  /// Snapshot of the I/O counters (copied under the disk mutex).
  IoStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats();
  }

  std::vector<std::string> ListFiles() const;

  /// Attaches (or with nullptr detaches) a fault schedule. Not owned. The
  /// policy is only ever consulted under the disk mutex.
  void set_fault_policy(FaultPolicy* policy) {
    std::lock_guard<std::mutex> lock(mu_);
    fault_policy_ = policy;
  }
  FaultPolicy* fault_policy() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fault_policy_;
  }

  /// True after an injected power cut; every operation fails until the
  /// harness "reboots" via CloneDurable().
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Deep-copies the durable state (all pages of all live files, with
  /// their FileIds preserved) into a healthy disk with fresh stats and no
  /// fault policy. This is the reboot step of a simulated crash.
  std::unique_ptr<SimDisk> CloneDurable() const;

 private:
  struct File {
    std::string name;
    std::vector<std::unique_ptr<char[]>> pages;
    bool deleted = false;
  };

  const File* GetFile(FileId id) const;
  File* GetFile(FileId id);

  /// Maps a FaultDecision to a Status, maintaining fault counters and the
  /// crashed flag. OK for kNone/kTorn (torn writes are silent).
  Status ApplyDecision(const FaultDecision& decision);

  size_t page_size_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<File>> files_;
  std::map<std::string, FileId> by_name_;
  IoStats stats_;
  FaultPolicy* fault_policy_ = nullptr;
  std::atomic<bool> crashed_{false};
};

}  // namespace odh::storage

#endif  // ODH_STORAGE_SIM_DISK_H_
