#include "storage/checksum.h"

#include <cstring>

namespace odh::storage {
namespace {

constexpr uint32_t kCrc32cPoly = 0x82F63B78;  // Reflected 0x1EDC6F41.

struct Crc32cTables {
  uint32_t t[8][256];

  Crc32cTables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kCrc32cPoly : 0);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int slice = 1; slice < 8; ++slice) {
        t[slice][i] =
            (t[slice - 1][i] >> 8) ^ t[0][t[slice - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t ExtendCrc32c(uint32_t crc, const void* data, size_t n) {
  const Crc32cTables& tab = Tables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Process 8 bytes per iteration (slicing-by-8).
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = tab.t[7][lo & 0xff] ^ tab.t[6][(lo >> 8) & 0xff] ^
          tab.t[5][(lo >> 16) & 0xff] ^ tab.t[4][lo >> 24] ^
          tab.t[3][hi & 0xff] ^ tab.t[2][(hi >> 8) & 0xff] ^
          tab.t[1][(hi >> 16) & 0xff] ^ tab.t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t n) {
  return ExtendCrc32c(0, data, n);
}

bool IsZeroFilled(const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  // Word-at-a-time scan; pages are word-aligned allocations.
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t w;
    std::memcpy(&w, p + i, 8);
    if (w != 0) return false;
  }
  for (; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

}  // namespace odh::storage
