#include "core/compression.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/coding.h"
#include "core/bits.h"

namespace odh::core {
namespace {

constexpr int kMaxQuantBits = 20;  // Beyond this, quantization stops paying.

struct ColumnProfile {
  size_t present = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double mean_abs_step = 0;
};

ColumnProfile Profile(const double* values, size_t n) {
  ColumnProfile p;
  double prev = 0;
  bool have_prev = false;
  double step_sum = 0;
  size_t steps = 0;
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(values[i])) continue;
    ++p.present;
    if (values[i] < p.min) p.min = values[i];
    if (values[i] > p.max) p.max = values[i];
    if (have_prev) {
      step_sum += std::fabs(values[i] - prev);
      ++steps;
    }
    prev = values[i];
    have_prev = true;
  }
  p.mean_abs_step = steps > 0 ? step_sum / static_cast<double>(steps) : 0;
  return p;
}

/// Collects present values (order preserved).
std::vector<double> PresentValues(const double* values, size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!std::isnan(values[i])) out.push_back(values[i]);
  }
  return out;
}

void EncodeRaw(const std::vector<double>& v, std::string* out) {
  for (double x : v) PutDouble(out, x);
}

Status DecodeRaw(Slice* input, size_t n, std::vector<double>* out) {
  out->resize(n);
  for (size_t i = 0; i < n; ++i) {
    if (!GetDouble(input, &(*out)[i])) return Status::Corruption("raw value");
  }
  return Status::OK();
}

void EncodeXor(const std::vector<double>& v, std::string* out) {
  BitWriter writer(out);
  uint64_t prev = 0;
  for (size_t i = 0; i < v.size(); ++i) {
    uint64_t bits;
    std::memcpy(&bits, &v[i], 8);
    if (i == 0) {
      writer.Write(bits, 64);
    } else {
      uint64_t x = bits ^ prev;
      if (x == 0) {
        writer.WriteBit(false);
      } else {
        writer.WriteBit(true);
        int leading = __builtin_clzll(x);
        int trailing = __builtin_ctzll(x);
        if (leading > 63) leading = 63;
        int length = 64 - leading - trailing;
        writer.Write(static_cast<uint64_t>(leading), 6);
        writer.Write(static_cast<uint64_t>(length - 1), 6);
        writer.Write(x >> trailing, length);
      }
    }
    prev = bits;
  }
  writer.Finish();
}

Status DecodeXor(Slice input, size_t n, std::vector<double>* out) {
  out->resize(n);
  BitReader reader(input);
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    if (i == 0) {
      if (!reader.Read(64, &bits)) return Status::Corruption("xor head");
    } else {
      bool changed;
      if (!reader.ReadBit(&changed)) return Status::Corruption("xor flag");
      if (!changed) {
        bits = prev;
      } else {
        uint64_t leading, length_minus1, payload;
        if (!reader.Read(6, &leading) || !reader.Read(6, &length_minus1)) {
          return Status::Corruption("xor header");
        }
        int length = static_cast<int>(length_minus1) + 1;
        int trailing = 64 - static_cast<int>(leading) - length;
        if (trailing < 0) return Status::Corruption("xor widths");
        if (!reader.Read(length, &payload)) {
          return Status::Corruption("xor payload");
        }
        bits = prev ^ (payload << trailing);
      }
    }
    std::memcpy(&(*out)[i], &bits, 8);
    prev = bits;
  }
  return Status::OK();
}

/// Swinging-door pivots over the compacted (present-only) sequence.
/// Pivot values come from the corridor midpoint so every reconstructed
/// point deviates at most `max_error` from the original.
void EncodeLinear(const std::vector<double>& v, double max_error,
                  std::string* out) {
  const double e = max_error;
  PutVarint32(out, static_cast<uint32_t>(v.size()));
  if (v.empty()) return;
  std::vector<std::pair<uint32_t, double>> pivots;
  pivots.emplace_back(0, v[0]);
  size_t start = 0;
  double start_val = v[0];
  double slope_hi = std::numeric_limits<double>::infinity();
  double slope_lo = -std::numeric_limits<double>::infinity();
  double last_ok_hi = 0, last_ok_lo = 0;  // Corridor at the previous index.
  for (size_t i = start + 1; i < v.size(); ++i) {
    double dx = static_cast<double>(i - start);
    double hi = (v[i] + e - start_val) / dx;
    double lo = (v[i] - e - start_val) / dx;
    double new_hi = std::min(slope_hi, hi);
    double new_lo = std::max(slope_lo, lo);
    if (new_lo > new_hi) {
      // Emit a pivot at i-1 using the corridor midpoint.
      double mid = (last_ok_hi + last_ok_lo) / 2;
      double pivot_val = start_val + mid * static_cast<double>(i - 1 - start);
      pivots.emplace_back(static_cast<uint32_t>(i - 1), pivot_val);
      start = i - 1;
      start_val = pivot_val;
      dx = 1.0;
      slope_hi = v[i] + e - start_val;
      slope_lo = v[i] - e - start_val;
      last_ok_hi = slope_hi;
      last_ok_lo = slope_lo;
    } else {
      slope_hi = new_hi;
      slope_lo = new_lo;
      last_ok_hi = slope_hi;
      last_ok_lo = slope_lo;
    }
  }
  if (v.size() > start + 1 || pivots.size() == 1) {
    size_t last = v.size() - 1;
    double val;
    if (last == start) {
      val = start_val;
    } else {
      double mid = (last_ok_hi + last_ok_lo) / 2;
      val = start_val + mid * static_cast<double>(last - start);
    }
    if (pivots.back().first != last) {
      pivots.emplace_back(static_cast<uint32_t>(last), val);
    }
  }
  PutVarint32(out, static_cast<uint32_t>(pivots.size()));
  uint32_t prev_idx = 0;
  for (const auto& [idx, val] : pivots) {
    PutVarint32(out, idx - prev_idx);
    prev_idx = idx;
    PutDouble(out, val);
  }
}

Status DecodeLinear(Slice* input, std::vector<double>* out) {
  uint32_t n, num_pivots;
  if (!GetVarint32(input, &n)) return Status::Corruption("linear n");
  out->assign(n, 0);
  if (n == 0) return Status::OK();
  if (!GetVarint32(input, &num_pivots) || num_pivots == 0) {
    return Status::Corruption("linear pivots");
  }
  uint32_t prev_idx = 0;
  double prev_val = 0;
  bool first = true;
  for (uint32_t p = 0; p < num_pivots; ++p) {
    uint32_t delta;
    double val;
    if (!GetVarint32(input, &delta) || !GetDouble(input, &val)) {
      return Status::Corruption("linear pivot");
    }
    uint32_t idx = first ? delta : prev_idx + delta;
    if (idx >= n) return Status::Corruption("linear pivot index");
    if (first) {
      (*out)[idx] = val;
    } else {
      for (uint32_t i = prev_idx + 1; i <= idx; ++i) {
        double t = static_cast<double>(i - prev_idx) /
                   static_cast<double>(idx - prev_idx);
        (*out)[i] = prev_val + t * (val - prev_val);
      }
    }
    prev_idx = idx;
    prev_val = val;
    first = false;
  }
  // Trailing values past the last pivot hold the last value.
  for (uint32_t i = prev_idx + 1; i < n; ++i) (*out)[i] = prev_val;
  return Status::OK();
}

/// Quantization: header (min, step, bit width), then bit-packed codes.
/// Returns false if the value range needs too many bits to pay off.
bool EncodeQuantized(const std::vector<double>& v, double max_error,
                     std::string* out) {
  if (v.empty()) {
    PutDouble(out, 0);
    PutDouble(out, 1);
    out->push_back(1);
    return true;
  }
  double min = v[0], max = v[0];
  for (double x : v) {
    if (x < min) min = x;
    if (x > max) max = x;
  }
  double step = 2 * max_error;
  double levels_d = step > 0 ? (max - min) / step : 0;
  if (!(levels_d < (1u << kMaxQuantBits))) return false;
  uint64_t max_code = static_cast<uint64_t>(std::llround(levels_d)) + 1;
  int width = BitWidth(max_code);
  PutDouble(out, min);
  PutDouble(out, step);
  out->push_back(static_cast<char>(width));
  BitWriter writer(out);
  for (double x : v) {
    uint64_t code =
        step > 0 ? static_cast<uint64_t>(std::llround((x - min) / step)) : 0;
    writer.Write(code, width);
  }
  writer.Finish();
  return true;
}

Status DecodeQuantized(Slice input, size_t n, std::vector<double>* out) {
  double min, step;
  if (!GetDouble(&input, &min) || !GetDouble(&input, &step)) {
    return Status::Corruption("quant header");
  }
  if (input.empty()) return Status::Corruption("quant width");
  int width = static_cast<uint8_t>(input[0]);
  input.remove_prefix(1);
  if (width <= 0 || width > 63) return Status::Corruption("quant width");
  out->resize(n);
  BitReader reader(input);
  for (size_t i = 0; i < n; ++i) {
    uint64_t code;
    if (!reader.Read(width, &code)) return Status::Corruption("quant code");
    (*out)[i] = min + static_cast<double>(code) * step;
  }
  return Status::OK();
}

}  // namespace

ValueCodec SelectCodec(const double* values, size_t n,
                       const CompressionSpec& spec) {
  if (spec.force) return spec.forced_codec;
  ColumnProfile p = Profile(values, n);
  if (p.present < 4) return ValueCodec::kRaw;
  if (spec.max_error > 0) {
    double range = p.max - p.min;
    if (range <= 0) return ValueCodec::kLinear;  // Constant: 2 pivots.
    double smoothness = p.mean_abs_step / range;
    // Smooth, slowly varying signals compress best piecewise-linearly;
    // noisy ones quantize better (paper's variability-aware strategy).
    return smoothness < 0.05 ? ValueCodec::kLinear : ValueCodec::kQuantized;
  }
  return ValueCodec::kXor;
}

Status EncodeColumn(const double* values, size_t n,
                    const CompressionSpec& spec, std::string* out) {
  ValueCodec codec = SelectCodec(values, n, spec);
  std::vector<double> present = PresentValues(values, n);
  // Lossy codecs require an error bound.
  if (spec.max_error <= 0 &&
      (codec == ValueCodec::kLinear || codec == ValueCodec::kQuantized)) {
    return Status::InvalidArgument("lossy codec requires max_error > 0");
  }

  size_t header_pos = out->size();
  out->push_back(static_cast<char>(codec));
  // Presence bitmap.
  const size_t bitmap_bytes = (n + 7) / 8;
  size_t bitmap_pos = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    if (!std::isnan(values[i])) {
      (*out)[bitmap_pos + i / 8] |= static_cast<char>(1 << (i % 8));
    }
  }
  switch (codec) {
    case ValueCodec::kRaw:
      EncodeRaw(present, out);
      break;
    case ValueCodec::kXor:
      EncodeXor(present, out);
      break;
    case ValueCodec::kLinear:
      EncodeLinear(present, spec.max_error, out);
      break;
    case ValueCodec::kQuantized:
      if (!EncodeQuantized(present, spec.max_error, out)) {
        // Range too wide for quantization: rewrite as XOR.
        out->resize(header_pos);
        CompressionSpec fallback;
        fallback.force = true;
        fallback.forced_codec = ValueCodec::kXor;
        return EncodeColumn(values, n, fallback, out);
      }
      break;
  }
  return Status::OK();
}

Status DecodeColumn(Slice input, size_t n, std::vector<double>* values) {
  if (input.empty()) return Status::Corruption("empty column");
  ValueCodec codec = static_cast<ValueCodec>(input[0]);
  input.remove_prefix(1);
  const size_t bitmap_bytes = (n + 7) / 8;
  if (input.size() < bitmap_bytes) return Status::Corruption("bitmap");
  const char* bitmap = input.data();
  input.remove_prefix(bitmap_bytes);
  size_t present = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1) ++present;
  }
  std::vector<double> decoded;
  switch (codec) {
    case ValueCodec::kRaw: {
      Slice in = input;
      ODH_RETURN_IF_ERROR(DecodeRaw(&in, present, &decoded));
      break;
    }
    case ValueCodec::kXor:
      ODH_RETURN_IF_ERROR(DecodeXor(input, present, &decoded));
      break;
    case ValueCodec::kLinear: {
      Slice in = input;
      ODH_RETURN_IF_ERROR(DecodeLinear(&in, &decoded));
      if (decoded.size() != present) {
        return Status::Corruption("linear count mismatch");
      }
      break;
    }
    case ValueCodec::kQuantized:
      ODH_RETURN_IF_ERROR(DecodeQuantized(input, present, &decoded));
      break;
    default:
      return Status::Corruption("unknown codec");
  }
  values->assign(n, std::numeric_limits<double>::quiet_NaN());
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((bitmap[i / 8] >> (i % 8)) & 1) (*values)[i] = decoded[next++];
  }
  return Status::OK();
}

void EncodeTimestamps(const Timestamp* ts, size_t n, Timestamp base,
                      std::string* out) {
  int64_t prev_delta = 0;
  Timestamp prev = base;
  for (size_t i = 0; i < n; ++i) {
    int64_t delta = ts[i] - prev;
    PutVarintSigned64(out, delta - prev_delta);  // Delta-of-delta.
    prev_delta = delta;
    prev = ts[i];
  }
}

Status DecodeTimestamps(Slice* input, size_t n, Timestamp base,
                        std::vector<Timestamp>* ts) {
  ts->resize(n);
  int64_t prev_delta = 0;
  Timestamp prev = base;
  for (size_t i = 0; i < n; ++i) {
    int64_t dod;
    if (!GetVarintSigned64(input, &dod)) {
      return Status::Corruption("timestamp dod");
    }
    int64_t delta = prev_delta + dod;
    prev += delta;
    (*ts)[i] = prev;
    prev_delta = delta;
  }
  return Status::OK();
}

}  // namespace odh::core
