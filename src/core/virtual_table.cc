#include "core/virtual_table.h"

#include <cmath>
#include <set>

#include "common/logging.h"
#include "sql/relational_provider.h"
#include "sql/vectorized.h"

namespace odh::core {
namespace {

/// Wraps a RecordCursor, assembling SQL rows and re-checking constraints.
class VirtualTableCursor : public sql::RowCursor {
 public:
  VirtualTableCursor(std::unique_ptr<RecordCursor> cursor,
                     sql::ScanSpec spec, int num_tags)
      : cursor_(std::move(cursor)),
        spec_(std::move(spec)),
        num_tags_(num_tags) {}

  Result<bool> Next(Row* row) override {
    OperationalRecord record;
    while (true) {
      ODH_ASSIGN_OR_RETURN(bool more, cursor_->Next(&record));
      if (!more) return false;
      // Row assembly: this per-value boxing is the VTI overhead.
      row->clear();
      row->reserve(2 + num_tags_);
      row->push_back(Datum::Int64(record.id));
      row->push_back(Datum::Time(record.ts));
      for (int t = 0; t < num_tags_; ++t) {
        if (std::isnan(record.tags[t])) {
          row->push_back(Datum::Null());
        } else {
          row->push_back(Datum::Double(record.tags[t]));
        }
      }
      if (!sql::RowSatisfies(*row, spec_.constraints)) continue;
      return true;
    }
  }

 private:
  std::unique_ptr<RecordCursor> cursor_;
  sql::ScanSpec spec_;
  int num_tags_;
};

/// Wraps a RecordBatchCursor: moves each decoded blob's columns straight
/// into a ColumnBatch (no per-value boxing — the point of the batch path)
/// and runs the pushed tag predicates as vectorized range kernels.
class VirtualTableBatchCursor : public sql::BatchCursor {
 public:
  VirtualTableBatchCursor(std::unique_ptr<RecordBatchCursor> cursor,
                          std::vector<TagFilter> filters, int num_tags)
      : cursor_(std::move(cursor)),
        filters_(std::move(filters)),
        num_tags_(num_tags) {}

  Result<bool> Next(sql::ColumnBatch* batch) override {
    RecordBatch record_batch;
    ODH_ASSIGN_OR_RETURN(bool more, cursor_->Next(&record_batch));
    if (!more) return false;
    batch->clear();
    batch->uniform_id = record_batch.uniform_id;
    batch->ids = std::move(record_batch.ids);
    batch->timestamps = std::move(record_batch.timestamps);
    batch->tags = std::move(record_batch.columns);
    batch->tags.resize(static_cast<size_t>(num_tags_));
    for (const TagFilter& f : filters_) {
      sql::FilterByRange(batch->tags[f.tag], f.min, f.max, f.min_exclusive,
                         f.max_exclusive, batch);
    }
    return true;
  }

 private:
  std::unique_ptr<RecordBatchCursor> cursor_;
  std::vector<TagFilter> filters_;
  int num_tags_;
};

/// A SQL predicate may name a source id the historian has never seen;
/// that matches no rows rather than being an error, so unknown-id routes
/// degrade to empty cursors on every scan path.
class EmptyRowCursor : public sql::RowCursor {
 public:
  Result<bool> Next(Row*) override { return false; }
};

class EmptyBatchCursor : public sql::BatchCursor {
 public:
  Result<bool> Next(sql::ColumnBatch*) override { return false; }
};

}  // namespace

OdhVirtualTable::OdhVirtualTable(std::string name, int schema_type,
                                 ConfigComponent* config, OdhReader* reader,
                                 OdhCostModel* cost_model)
    : name_(std::move(name)),
      schema_type_(schema_type),
      config_(config),
      reader_(reader),
      cost_model_(cost_model) {
  auto type = config_->GetSchemaType(schema_type);
  ODH_CHECK(type.ok());
  std::vector<relational::Column> columns;
  columns.push_back({"id", DataType::kInt64});
  columns.push_back({"ts", DataType::kTimestamp});
  for (const std::string& tag : (*type)->tag_names) {
    columns.push_back({tag, DataType::kDouble});
  }
  num_tags_ = static_cast<int>((*type)->tag_names.size());
  schema_ = relational::Schema(std::move(columns));
}

OdhVirtualTable::Pushdown OdhVirtualTable::ExtractPushdown(
    const sql::ScanSpec& spec) const {
  Pushdown push;
  std::set<int> tags;
  // A constraint is "absorbed" when the pushdown applies it exactly
  // (equals wins over range bounds, mirroring DatumSatisfies). Anything
  // else leaves a residual re-check, which only the row path performs.
  for (const sql::ColumnConstraint& c : spec.constraints) {
    if (c.column == kIdColumn) {
      if (c.equals.has_value() && c.equals->is_int64()) {
        push.id = c.equals->int64_value();
      } else {
        push.absorbed = false;
      }
    } else if (c.column == kTimestampColumn) {
      if (c.equals.has_value()) {
        if (c.equals->is_timestamp()) {
          push.lo = push.hi = c.equals->timestamp_value();
        } else {
          push.absorbed = false;
        }
      } else {
        if (c.lower.has_value()) {
          if (c.lower->value.is_timestamp()) {
            Timestamp v = c.lower->value.timestamp_value();
            push.lo = c.lower->inclusive ? v : v + 1;
          } else {
            push.absorbed = false;
          }
        }
        if (c.upper.has_value()) {
          if (c.upper->value.is_timestamp()) {
            Timestamp v = c.upper->value.timestamp_value();
            push.hi = c.upper->inclusive ? v : v - 1;
          } else {
            push.absorbed = false;
          }
        }
      }
    } else if (c.column >= 2) {
      tags.insert(c.column - 2);
      // Numeric constraints on tags become zone-map / vectorized filters.
      TagFilter filter;
      filter.tag = c.column - 2;
      bool usable = false;
      if (c.equals.has_value()) {
        if (c.equals->is_numeric()) {
          filter.min = filter.max = c.equals->AsDouble();
          usable = true;
        } else {
          push.absorbed = false;
        }
      } else {
        if (c.lower.has_value()) {
          if (c.lower->value.is_numeric()) {
            filter.min = c.lower->value.AsDouble();
            filter.min_exclusive = !c.lower->inclusive;
            usable = true;
          } else {
            push.absorbed = false;
          }
        }
        if (c.upper.has_value()) {
          if (c.upper->value.is_numeric()) {
            filter.max = c.upper->value.AsDouble();
            filter.max_exclusive = !c.upper->inclusive;
            usable = true;
          } else {
            push.absorbed = false;
          }
        }
      }
      if (usable) push.tag_filters.push_back(filter);
    } else {
      push.absorbed = false;
    }
  }
  if (!spec.projection.empty()) {
    for (int col : spec.projection) {
      if (col >= 2) tags.insert(col - 2);
    }
    push.wanted_tags.assign(tags.begin(), tags.end());
    push.tag_fraction =
        num_tags_ > 0
            ? static_cast<double>(push.wanted_tags.size()) / num_tags_
            : 1.0;
    // Timestamp/id sections are a small constant share of a blob.
    push.tag_fraction = std::min(1.0, push.tag_fraction + 0.05);
  }
  return push;
}

Result<std::unique_ptr<sql::RowCursor>> OdhVirtualTable::Scan(
    const sql::ScanSpec& spec) {
  Pushdown push = ExtractPushdown(spec);
  std::unique_ptr<RecordCursor> cursor;
  if (push.id >= 0) {
    auto opened = reader_->OpenHistorical(schema_type_, push.id, push.lo,
                                          push.hi, push.wanted_tags,
                                          push.tag_filters, spec.counters);
    if (!opened.ok() && opened.status().IsNotFound()) {
      return std::unique_ptr<sql::RowCursor>(
          std::make_unique<EmptyRowCursor>());
    }
    ODH_RETURN_IF_ERROR(opened.status());
    cursor = std::move(*opened);
  } else {
    ODH_ASSIGN_OR_RETURN(
        cursor, reader_->OpenSlice(schema_type_, push.lo, push.hi,
                                   push.wanted_tags, push.tag_filters,
                                   spec.counters));
  }
  return std::unique_ptr<sql::RowCursor>(std::make_unique<VirtualTableCursor>(
      std::move(cursor), spec, num_tags_));
}

bool OdhVirtualTable::SupportsBatchScan(const sql::ScanSpec& spec) const {
  if (!config_->options().enable_vectorized_scan) return false;
  return ExtractPushdown(spec).absorbed;
}

Result<std::unique_ptr<sql::BatchCursor>> OdhVirtualTable::ScanBatches(
    const sql::ScanSpec& spec) {
  Pushdown push = ExtractPushdown(spec);
  if (!config_->options().enable_vectorized_scan || !push.absorbed) {
    return Status::Unimplemented(
        "scan spec not fully absorbed; use the row path");
  }
  std::unique_ptr<RecordBatchCursor> cursor;
  if (push.id >= 0) {
    auto opened = reader_->OpenHistoricalBatches(schema_type_, push.id,
                                                 push.lo, push.hi,
                                                 push.wanted_tags,
                                                 push.tag_filters,
                                                 spec.counters);
    if (!opened.ok() && opened.status().IsNotFound()) {
      return std::unique_ptr<sql::BatchCursor>(
          std::make_unique<EmptyBatchCursor>());
    }
    ODH_RETURN_IF_ERROR(opened.status());
    cursor = std::move(*opened);
  } else {
    ODH_ASSIGN_OR_RETURN(
        cursor, reader_->OpenSliceBatches(schema_type_, push.lo, push.hi,
                                          push.wanted_tags,
                                          push.tag_filters, spec.counters));
  }
  return std::unique_ptr<sql::BatchCursor>(
      std::make_unique<VirtualTableBatchCursor>(
          std::move(cursor), std::move(push.tag_filters), num_tags_));
}

Result<std::optional<Row>> OdhVirtualTable::AggregateScan(
    const sql::ScanSpec& spec,
    const std::vector<sql::AggregateRequest>& requests) {
  if (!config_->options().enable_aggregate_pushdown) {
    return std::optional<Row>();
  }
  Pushdown push = ExtractPushdown(spec);
  if (!push.absorbed) return std::optional<Row>();
  // Classify the requests: COUNT(*) and COUNT(id|ts) need only the
  // matching-row count; tag aggregates need per-tag accumulators; value
  // aggregates over id/timestamp are not absorbed (wrong result type).
  std::vector<int> agg_tags;
  std::vector<int> request_slot(requests.size(), -1);
  bool need_values = false;
  for (size_t r = 0; r < requests.size(); ++r) {
    const sql::AggregateRequest& req = requests[r];
    if (req.op == sql::AggregateOp::kCountStar) continue;
    if (req.op == sql::AggregateOp::kCount && req.column < 2) {
      if (req.column < 0) return std::optional<Row>();
      continue;
    }
    if (req.column < 2) return std::optional<Row>();
    if (req.op != sql::AggregateOp::kCount) need_values = true;
    const int tag = req.column - 2;
    int slot = -1;
    for (size_t j = 0; j < agg_tags.size(); ++j) {
      if (agg_tags[j] == tag) slot = static_cast<int>(j);
    }
    if (slot < 0) {
      slot = static_cast<int>(agg_tags.size());
      agg_tags.push_back(tag);
    }
    request_slot[r] = slot;
  }
  auto computed = reader_->Aggregate(schema_type_, push.id, push.lo, push.hi,
                                     push.tag_filters, agg_tags, need_values,
                                     spec.counters);
  AggregateResult agg;
  if (computed.ok()) {
    agg = std::move(*computed);
  } else if (computed.status().IsNotFound()) {
    // Unknown id: zero matching rows, so every tag aggregate is empty and
    // the finalization below yields COUNT 0 / NULL.
    agg.tags.resize(agg_tags.size());
  } else {
    return computed.status();
  }
  Row row;
  row.reserve(requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    const sql::AggregateRequest& req = requests[r];
    if (request_slot[r] < 0) {
      // COUNT(*) / COUNT over the never-NULL id and timestamp columns.
      row.push_back(Datum::Int64(agg.rows_matched));
      continue;
    }
    const TagAggregate& t = agg.tags[static_cast<size_t>(request_slot[r])];
    switch (req.op) {
      case sql::AggregateOp::kCount:
        row.push_back(Datum::Int64(t.count));
        break;
      case sql::AggregateOp::kSum:
        row.push_back(t.count > 0 ? Datum::Double(t.sum) : Datum::Null());
        break;
      case sql::AggregateOp::kAvg:
        row.push_back(t.count > 0
                          ? Datum::Double(t.sum /
                                          static_cast<double>(t.count))
                          : Datum::Null());
        break;
      case sql::AggregateOp::kMin:
        row.push_back(t.has_value ? Datum::Double(t.min) : Datum::Null());
        break;
      case sql::AggregateOp::kMax:
        row.push_back(t.has_value ? Datum::Double(t.max) : Datum::Null());
        break;
      default:
        return std::optional<Row>();
    }
  }
  return std::optional<Row>(std::move(row));
}

sql::ScanEstimate OdhVirtualTable::Estimate(const sql::ScanSpec& spec) const {
  Pushdown push = ExtractPushdown(spec);
  OdhCostEstimate cost;
  if (push.id >= 0 || spec.FindColumn(kIdColumn) != nullptr) {
    // An id equality (possibly a join placeholder) -> historical path.
    cost = cost_model_->EstimateHistorical(schema_type_, push.id, push.lo,
                                           push.hi, push.tag_fraction);
  } else {
    cost = cost_model_->EstimateSlice(schema_type_, push.lo, push.hi,
                                      push.tag_fraction);
  }
  sql::ScanEstimate est;
  est.rows = cost.points;
  est.bytes = cost.bytes;
  return est;
}

}  // namespace odh::core
