#include "core/virtual_table.h"

#include <cmath>
#include <set>

#include "common/logging.h"
#include "sql/relational_provider.h"

namespace odh::core {
namespace {

/// Wraps a RecordCursor, assembling SQL rows and re-checking constraints.
class VirtualTableCursor : public sql::RowCursor {
 public:
  VirtualTableCursor(std::unique_ptr<RecordCursor> cursor,
                     sql::ScanSpec spec, int num_tags)
      : cursor_(std::move(cursor)),
        spec_(std::move(spec)),
        num_tags_(num_tags) {}

  Result<bool> Next(Row* row) override {
    OperationalRecord record;
    while (true) {
      ODH_ASSIGN_OR_RETURN(bool more, cursor_->Next(&record));
      if (!more) return false;
      // Row assembly: this per-value boxing is the VTI overhead.
      row->clear();
      row->reserve(2 + num_tags_);
      row->push_back(Datum::Int64(record.id));
      row->push_back(Datum::Time(record.ts));
      for (int t = 0; t < num_tags_; ++t) {
        if (std::isnan(record.tags[t])) {
          row->push_back(Datum::Null());
        } else {
          row->push_back(Datum::Double(record.tags[t]));
        }
      }
      if (!sql::RowSatisfies(*row, spec_.constraints)) continue;
      return true;
    }
  }

 private:
  std::unique_ptr<RecordCursor> cursor_;
  sql::ScanSpec spec_;
  int num_tags_;
};

}  // namespace

OdhVirtualTable::OdhVirtualTable(std::string name, int schema_type,
                                 ConfigComponent* config, OdhReader* reader,
                                 OdhCostModel* cost_model)
    : name_(std::move(name)),
      schema_type_(schema_type),
      config_(config),
      reader_(reader),
      cost_model_(cost_model) {
  auto type = config_->GetSchemaType(schema_type);
  ODH_CHECK(type.ok());
  std::vector<relational::Column> columns;
  columns.push_back({"id", DataType::kInt64});
  columns.push_back({"ts", DataType::kTimestamp});
  for (const std::string& tag : (*type)->tag_names) {
    columns.push_back({tag, DataType::kDouble});
  }
  num_tags_ = static_cast<int>((*type)->tag_names.size());
  schema_ = relational::Schema(std::move(columns));
}

OdhVirtualTable::Pushdown OdhVirtualTable::ExtractPushdown(
    const sql::ScanSpec& spec) const {
  Pushdown push;
  std::set<int> tags;
  for (const sql::ColumnConstraint& c : spec.constraints) {
    if (c.column == kIdColumn && c.equals.has_value() &&
        c.equals->is_int64()) {
      push.id = c.equals->int64_value();
    } else if (c.column == kTimestampColumn) {
      if (c.equals.has_value() && c.equals->is_timestamp()) {
        push.lo = push.hi = c.equals->timestamp_value();
      } else {
        if (c.lower.has_value() && c.lower->value.is_timestamp()) {
          Timestamp v = c.lower->value.timestamp_value();
          push.lo = c.lower->inclusive ? v : v + 1;
        }
        if (c.upper.has_value() && c.upper->value.is_timestamp()) {
          Timestamp v = c.upper->value.timestamp_value();
          push.hi = c.upper->inclusive ? v : v - 1;
        }
      }
    } else if (c.column >= 2) {
      tags.insert(c.column - 2);
      // Numeric constraints on tags become zone-map filters.
      TagFilter filter;
      filter.tag = c.column - 2;
      bool usable = false;
      if (c.equals.has_value() && c.equals->is_numeric()) {
        filter.min = filter.max = c.equals->AsDouble();
        usable = true;
      } else {
        if (c.lower.has_value() && c.lower->value.is_numeric()) {
          filter.min = c.lower->value.AsDouble();
          usable = true;
        }
        if (c.upper.has_value() && c.upper->value.is_numeric()) {
          filter.max = c.upper->value.AsDouble();
          usable = true;
        }
      }
      if (usable) push.tag_filters.push_back(filter);
    }
  }
  if (!spec.projection.empty()) {
    for (int col : spec.projection) {
      if (col >= 2) tags.insert(col - 2);
    }
    push.wanted_tags.assign(tags.begin(), tags.end());
    push.tag_fraction =
        num_tags_ > 0
            ? static_cast<double>(push.wanted_tags.size()) / num_tags_
            : 1.0;
    // Timestamp/id sections are a small constant share of a blob.
    push.tag_fraction = std::min(1.0, push.tag_fraction + 0.05);
  }
  return push;
}

Result<std::unique_ptr<sql::RowCursor>> OdhVirtualTable::Scan(
    const sql::ScanSpec& spec) {
  Pushdown push = ExtractPushdown(spec);
  std::unique_ptr<RecordCursor> cursor;
  if (push.id >= 0) {
    ODH_ASSIGN_OR_RETURN(
        cursor, reader_->OpenHistorical(schema_type_, push.id, push.lo,
                                        push.hi, push.wanted_tags,
                                        push.tag_filters));
  } else {
    ODH_ASSIGN_OR_RETURN(
        cursor, reader_->OpenSlice(schema_type_, push.lo, push.hi,
                                   push.wanted_tags, push.tag_filters));
  }
  return std::unique_ptr<sql::RowCursor>(std::make_unique<VirtualTableCursor>(
      std::move(cursor), spec, num_tags_));
}

sql::ScanEstimate OdhVirtualTable::Estimate(const sql::ScanSpec& spec) const {
  Pushdown push = ExtractPushdown(spec);
  OdhCostEstimate cost;
  if (push.id >= 0 || spec.FindColumn(kIdColumn) != nullptr) {
    // An id equality (possibly a join placeholder) -> historical path.
    cost = cost_model_->EstimateHistorical(schema_type_, push.id, push.lo,
                                           push.hi, push.tag_fraction);
  } else {
    cost = cost_model_->EstimateSlice(schema_type_, push.lo, push.hi,
                                      push.tag_fraction);
  }
  sql::ScanEstimate est;
  est.rows = cost.points;
  est.bytes = cost.bytes;
  return est;
}

}  // namespace odh::core
