#ifndef ODH_CORE_ODH_H_
#define ODH_CORE_ODH_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/blob_cache.h"
#include "core/compactor.h"
#include "core/config.h"
#include "core/cost_model.h"
#include "core/reader.h"
#include "core/reorganizer.h"
#include "core/router.h"
#include "core/store.h"
#include "core/system_tables.h"
#include "core/virtual_table.h"
#include "core/writer.h"
#include "sql/engine.h"

namespace odh::core {

/// The Operational Data Historian: one embedded data server hosting the
/// configuration, storage and query components of the paper plus ordinary
/// relational tables, all behind one SQL engine.
///
/// Typical use:
///
///   OdhSystem odh;
///   int type = odh.DefineSchemaType("environ_data",
///                                   {"temperature", "wind"}).value();
///   odh.RegisterSource(/*id=*/1, type, kMicrosPerSecond, true);
///   odh.Ingest({.id = 1, .ts = t, .tags = {21.5, 3.2}});
///   odh.FlushAll();
///   auto rows = odh.engine()->Execute(
///       "SELECT ts, temperature FROM environ_data_v WHERE id = 1");
///
/// Each schema type gets a virtual table named "<name>_v". Relational
/// tables created through SQL DDL live in the same database and can be
/// joined with the virtual tables freely (operational/relational fusion).
class OdhSystem {
 public:
  explicit OdhSystem(OdhOptions options = {});

  OdhSystem(const OdhSystem&) = delete;
  OdhSystem& operator=(const OdhSystem&) = delete;

  /// Defines a schema type with double-valued tags; creates its containers
  /// and virtual table. Returns the schema-type id.
  Result<int> DefineSchemaType(const std::string& name,
                               std::vector<std::string> tag_names,
                               CompressionSpec compression = {});

  /// Registers a data source. `sample_interval` is its expected sampling
  /// period; `regular` declares identical sampling intervals (paper §2).
  Status RegisterSource(SourceId id, int schema_type,
                        Timestamp sample_interval, bool regular);

  /// Ingests one operational record through the writer API.
  Status Ingest(const OperationalRecord& record);

  /// Flushes all writer buffers and metadata.
  Status FlushAll();

  /// Native (SQL-bypassing) query API — the paper's fast path.
  Result<std::unique_ptr<RecordCursor>> HistoricalQuery(
      int schema_type, SourceId id, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags = {});
  Result<std::unique_ptr<RecordCursor>> SliceQuery(
      int schema_type, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags = {});

  /// Runs the MG -> RTS/IRTS reorganizer for a schema type.
  Result<ReorganizeReport> Reorganize(int schema_type, Timestamp up_to);

  /// Compacts every sealed hot segment of a schema type synchronously
  /// (flushes the writer first so sealed segments hold everything ingested
  /// so far). No-op with segment_span == 0. The background variant runs
  /// through compactor()->CompactSealedAsync on the shared thread pool.
  Result<CompactionReport> CompactSegments(int schema_type);

  /// Sets (or with 0 clears) the retention window of a schema type and
  /// immediately drops expired segments. Returns the number of segments
  /// dropped now; later ApplyRetention calls keep enforcing the window.
  /// SQL equivalent: ALTER TABLE <name>_v RETENTION <interval>.
  Result<int64_t> SetRetention(int schema_type, Timestamp retention_micros);

  /// Drops segments that expired since the last call (the periodic sweep).
  Result<int64_t> ApplyRetention(int schema_type) {
    return store_->ApplyRetention(schema_type);
  }

  /// Replays the store WAL of a crashed instance (the SimDisk returned by
  /// CloneDurable() after a power cut) into this system. Define the same
  /// schema types first; see OdhStore::Recover.
  Result<RecoveryReport> Recover(storage::SimDisk* crashed_disk) {
    return store_->Recover(crashed_disk);
  }

  /// Component access.
  sql::SqlEngine* engine() { return engine_.get(); }
  relational::Database* database() { return db_.get(); }
  ConfigComponent* config() { return &config_; }
  OdhStore* store() { return store_.get(); }
  OdhWriter* writer() { return writer_.get(); }
  OdhReader* reader() { return reader_.get(); }
  /// Decoded-blob cache; nullptr when options.blob_cache_bytes == 0.
  BlobCache* blob_cache() { return blob_cache_.get(); }
  DataRouter* router() { return router_.get(); }
  OdhCostModel* cost_model() { return cost_model_.get(); }
  SegmentCompactor* compactor() { return compactor_.get(); }
  /// The instance's metrics registry, also queryable as the `odh_metrics`
  /// system table (with `odh_queries` and `odh_storage` alongside it).
  common::MetricsRegistry* metrics() { return metrics_.get(); }

  /// Total bytes stored (heap + index + metadata pages).
  uint64_t storage_bytes() const { return db_->TotalBytesStored(); }
  /// Snapshot of the disk's I/O counters (copied under the disk mutex).
  storage::IoStats io_stats() const { return db_->disk()->stats(); }
  void ResetIoStats() { db_->disk()->ResetStats(); }

 private:
  /// Registers pull-gauges over the components' existing atomic counters
  /// (buffer pool, disk, WAL, reader, writer, router, store) — zero added
  /// cost on the hot paths; the registry samples them at Collect time.
  void RegisterGauges();

  /// First member: instruments must outlive the components wired to them.
  std::unique_ptr<common::MetricsRegistry> metrics_;
  std::unique_ptr<relational::Database> db_;
  /// Decode workers for the read path; created when
  /// max(options.read_parallelism, options.query_parallelism) > 1 (the
  /// latter counting its -1 "pool size" default as the former) and shared
  /// by every cursor.
  std::unique_ptr<common::ThreadPool> read_pool_;
  /// Shared decoded-blob cache; created when options.blob_cache_bytes > 0.
  std::unique_ptr<BlobCache> blob_cache_;
  std::unique_ptr<sql::SqlEngine> engine_;
  ConfigComponent config_;
  std::unique_ptr<OdhStore> store_;
  std::unique_ptr<OdhWriter> writer_;
  std::unique_ptr<DataRouter> router_;
  std::unique_ptr<OdhCostModel> cost_model_;
  std::unique_ptr<OdhReader> reader_;
  std::unique_ptr<Reorganizer> reorganizer_;
  std::unique_ptr<SegmentCompactor> compactor_;
  std::vector<std::unique_ptr<OdhVirtualTable>> virtual_tables_;
  std::unique_ptr<MetricsSystemTable> metrics_table_;
  std::unique_ptr<QueriesSystemTable> queries_table_;
  std::unique_ptr<StorageSystemTable> storage_table_;
};

}  // namespace odh::core

#endif  // ODH_CORE_ODH_H_
