#ifndef ODH_CORE_VALUE_BLOB_H_
#define ODH_CORE_VALUE_BLOB_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/compression.h"

namespace odh::core {

/// One operational data record: what a sensor emits. Tag values are doubles
/// with NaN marking tags the source did not report (sparse records are the
/// norm in the paper's LD datasets).
struct OperationalRecord {
  SourceId id = 0;
  Timestamp ts = 0;
  std::vector<double> tags;
};

/// A decoded batch of points from one data source.
struct SeriesBatch {
  SourceId id = 0;
  std::vector<Timestamp> timestamps;
  /// tag-major: columns[t][i] is tag t of point i (NaN = missing).
  std::vector<std::vector<double>> columns;

  size_t num_points() const { return timestamps.size(); }
};

/// Encoders/decoders for the three batch structures of the ODH data model
/// (paper §2, Figure 1). Every blob stores values tag-major behind a
/// per-tag offset directory, so a query touching one tag out of hundreds
/// decodes only that tag's section (the "tag-oriented approach").
///
/// RTS  — Regular Time Series:  (id, begin_ts, interval, ValueBlob)
///        timestamps implicit: begin_ts + i * interval.
/// IRTS — Irregular Time Series: (id, begin_ts, ValueBlob)
///        timestamps delta-of-delta compressed inside the blob.
/// MG   — Mixed Grouping: (begin_ts, group, ValueBlob)
///        b points from many low-frequency sources packed by time window;
///        ids delta-compressed inside the blob.
class ValueBlobCodec {
 public:
  explicit ValueBlobCodec(CompressionSpec spec) : spec_(spec) {}

  /// RTS: timestamps must be begin + i*interval exactly (the writer
  /// verifies regularity before choosing RTS).
  Status EncodeRts(const SeriesBatch& batch, Timestamp interval,
                   std::string* out) const;
  Status DecodeRts(Slice blob, SourceId id, Timestamp begin,
                   Timestamp interval, const std::vector<int>& wanted_tags,
                   int num_tags, SeriesBatch* batch) const;

  /// IRTS: arbitrary increasing timestamps.
  Status EncodeIrts(const SeriesBatch& batch, std::string* out) const;
  Status DecodeIrts(Slice blob, SourceId id, Timestamp begin,
                    const std::vector<int>& wanted_tags, int num_tags,
                    SeriesBatch* batch) const;

  /// MG: records from many sources in one time window. Records must be
  /// sorted by (ts, id).
  Status EncodeMg(const std::vector<OperationalRecord>& records,
                  Timestamp begin, std::string* out) const;
  Status DecodeMg(Slice blob, Timestamp begin,
                  const std::vector<int>& wanted_tags, int num_tags,
                  std::vector<OperationalRecord>* records) const;

  const CompressionSpec& spec() const { return spec_; }

 private:
  /// Shared tag-column section: directory of offsets + encoded columns.
  Status EncodeColumns(const std::vector<std::vector<double>>& columns,
                       size_t n, std::string* out) const;
  Status DecodeColumns(Slice input, size_t n,
                       const std::vector<int>& wanted_tags, int num_tags,
                       std::vector<std::vector<double>>* columns) const;

  CompressionSpec spec_;
};

}  // namespace odh::core

#endif  // ODH_CORE_VALUE_BLOB_H_
