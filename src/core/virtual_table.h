#ifndef ODH_CORE_VIRTUAL_TABLE_H_
#define ODH_CORE_VIRTUAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/reader.h"
#include "sql/table_provider.h"

namespace odh::core {

/// The VTI adapter (paper §3): exposes one schema type as a relational
/// virtual table (id BIGINT, timestamp TIMESTAMP, <tags...> DOUBLE) so
/// standard SQL can query operational data and join it with relational
/// tables.
///
/// Pushed-down constraints on `id` (equality) and `timestamp` (range)
/// select the historical/slice read path; the projection restricts which
/// tag sections of each ValueBlob are decoded. Remaining constraints are
/// applied after row assembly — the per-row Datum materialization here is
/// the "VTI overhead" the paper measures against the native read path.
class OdhVirtualTable : public sql::TableProvider {
 public:
  OdhVirtualTable(std::string name, int schema_type, ConfigComponent* config,
                  OdhReader* reader, OdhCostModel* cost_model);

  const std::string& name() const override { return name_; }
  const relational::Schema& schema() const override { return schema_; }

  Result<std::unique_ptr<sql::RowCursor>> Scan(
      const sql::ScanSpec& spec) override;

  /// Batch path: available when vectorized scans are enabled and every
  /// constraint in `spec` is fully absorbed by the pushdown (id equality,
  /// timestamp range, numeric tag ranges) — absorbed constraints are
  /// applied exactly by the reader plus vectorized filter kernels, so no
  /// per-row re-check remains.
  bool SupportsBatchScan(const sql::ScanSpec& spec) const override;

  /// One tag-major ColumnBatch per decoded ValueBlob; tag predicates run
  /// as vectorized range kernels that populate the selection vector.
  Result<std::unique_ptr<sql::BatchCursor>> ScanBatches(
      const sql::ScanSpec& spec) override;

  /// Aggregate pushdown into the reader: blobs fully covered by the time
  /// range whose v2 zone map proves every row passes the tag filters are
  /// answered from the summary without decompression. Returns nullopt
  /// when disabled, when a constraint is not fully absorbed, or when a
  /// request shape is unsupported (value aggregates over id/timestamp).
  Result<std::optional<Row>> AggregateScan(
      const sql::ScanSpec& spec,
      const std::vector<sql::AggregateRequest>& requests) override;

  sql::ScanEstimate Estimate(const sql::ScanSpec& spec) const override;

  bool SupportsPointLookup(int column) const override {
    return column == kIdColumn || column == kTimestampColumn;
  }

  static constexpr int kIdColumn = 0;
  static constexpr int kTimestampColumn = 1;

  int schema_type() const { return schema_type_; }

 private:
  /// Extracts the pushdown parameters from a ScanSpec.
  struct Pushdown {
    SourceId id = -1;  // -1 = no id constraint.
    Timestamp lo = kMinTimestamp;
    Timestamp hi = kMaxTimestamp;
    std::vector<int> wanted_tags;  // Empty = all.
    std::vector<TagFilter> tag_filters;  // Zone-map pruning candidates.
    double tag_fraction = 1.0;
    /// True when every constraint is applied *exactly* by the pushdown
    /// (no residual row-level re-check needed). Gates the batch path and
    /// aggregate pushdown.
    bool absorbed = true;
  };
  Pushdown ExtractPushdown(const sql::ScanSpec& spec) const;

  std::string name_;
  int schema_type_;
  ConfigComponent* config_;
  OdhReader* reader_;
  OdhCostModel* cost_model_;
  relational::Schema schema_;
  int num_tags_;
};

}  // namespace odh::core

#endif  // ODH_CORE_VIRTUAL_TABLE_H_
