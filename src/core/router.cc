#include "core/router.h"

namespace odh::core {

Status DataRouter::CreateMetadataTables() {
  ODH_ASSIGN_OR_RETURN(
      metadata_,
      engine_->catalog()->database()->CreateTable(
          "odh$sources",
          relational::Schema({{"id", DataType::kInt64},
                              {"schema_type", DataType::kInt64},
                              {"cls", DataType::kInt64},
                              {"grp", DataType::kInt64},
                              {"sample_interval", DataType::kInt64}})));
  return metadata_->AddIndex({"by_id", {0}});
}

Status DataRouter::AddSourceMetadata(const DataSourceInfo& info) {
  if (metadata_ == nullptr) {
    return Status::FailedPrecondition("metadata tables not created");
  }
  Row row = {Datum::Int64(info.id), Datum::Int64(info.schema_type),
             Datum::Int64(static_cast<int64_t>(info.source_class)),
             Datum::Int64(info.group), Datum::Int64(info.expected_interval)};
  ODH_RETURN_IF_ERROR(metadata_->Insert(row).status());
  if (++pending_metadata_rows_ >= 4096) {
    ODH_RETURN_IF_ERROR(metadata_->Commit());
    pending_metadata_rows_ = 0;
  }
  return Status::OK();
}

Status DataRouter::SyncMetadata() {
  pending_metadata_rows_ = 0;
  return metadata_ == nullptr ? Status::OK() : metadata_->Commit();
}

Result<RouteDecision> DataRouter::DecisionFor(SourceClass source_class,
                                              int64_t group) {
  RouteDecision decision;
  if (IsHighFrequency(source_class)) {
    // A "regular" source can still spill irregular batches (jitter), so
    // both per-source structures are candidates.
    decision.scan_rts = true;
    decision.scan_irts = true;
  } else {
    // Low-frequency: recent data in MG, reorganized history in RTS/IRTS
    // (paper Table 1).
    decision.scan_mg = true;
    decision.mg_group = group;
    decision.scan_rts = IsRegular(source_class);
    decision.scan_irts = true;  // Reorganizer may demote jittery batches.
  }
  return decision;
}

Result<RouteDecision> DataRouter::RouteHistorical(int schema_type,
                                                  SourceId id) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (config_->options().sql_metadata_router) {
    // The paper's implementation: metadata resolved by a SQL point query.
    std::string sql = "SELECT cls, grp FROM odh$sources WHERE id = " +
                      std::to_string(id);
    ODH_ASSIGN_OR_RETURN(sql::QueryResult result, engine_->Execute(sql));
    if (result.rows.empty()) {
      return Status::NotFound("unregistered source: " + std::to_string(id));
    }
    auto source_class =
        static_cast<SourceClass>(result.rows[0][0].int64_value());
    return DecisionFor(source_class, result.rows[0][1].int64_value());
  }
  ODH_ASSIGN_OR_RETURN(const DataSourceInfo* info, config_->GetSource(id));
  if (info->schema_type != schema_type) {
    return Status::InvalidArgument("source belongs to another schema type");
  }
  return DecisionFor(info->source_class, info->group);
}

Result<RouteDecision> DataRouter::RouteSlice(int schema_type) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  RouteDecision decision;
  decision.scan_rts = true;
  decision.scan_irts = true;
  decision.scan_mg = true;
  decision.mg_group = -1;
  if (config_->options().sql_metadata_router) {
    // The slice route still consults metadata for the set of containers.
    std::string sql =
        "SELECT COUNT(*) FROM odh$sources WHERE schema_type = " +
        std::to_string(schema_type);
    ODH_RETURN_IF_ERROR(engine_->Execute(sql).status());
  }
  return decision;
}

}  // namespace odh::core
