#ifndef ODH_CORE_COMPRESSION_H_
#define ODH_CORE_COMPRESSION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/types.h"

namespace odh::core {

/// Tag-value compression algorithms (paper §3, Figure 3).
///
///  - kRaw:       8-byte doubles, lossless (the baseline inside a blob).
///  - kXor:       Gorilla-style XOR-of-previous, lossless; effective on
///                slowly moving signals.
///  - kLinear:    swinging-door linear compression (Hale & Sellars 1981);
///                stores pivot points of a piecewise-linear approximation
///                with a maximum absolute deviation bound. Lossy.
///  - kQuantized: many-to-few value mapping on the block's value range with
///                an absolute error bound; bit-packed codes. Lossy.
enum class ValueCodec : uint8_t {
  kRaw = 0,
  kXor = 1,
  kLinear = 2,
  kQuantized = 3,
};

/// How to compress tag values.
struct CompressionSpec {
  /// Lossy codecs are only used when `max_error > 0`; otherwise the
  /// variability-aware selector falls back to lossless.
  double max_error = 0.0;
  /// Force a specific codec instead of selecting by data characteristics.
  bool force = false;
  ValueCodec forced_codec = ValueCodec::kRaw;
};

/// Picks a codec for a block of values (NaNs = missing are skipped):
/// smooth signals (small mean step relative to spread) -> linear when lossy
/// is allowed; fluctuating bounded signals -> quantized when lossy is
/// allowed; otherwise XOR lossless (or raw for tiny/irregular blocks).
ValueCodec SelectCodec(const double* values, size_t n,
                       const CompressionSpec& spec);

/// Encodes one tag column of `n` values (NaN = missing). Layout:
///   [codec:1][presence bitmap: ceil(n/8)][payload]
/// The presence bitmap lets every codec skip missing values; decode
/// restores NaN at missing positions.
Status EncodeColumn(const double* values, size_t n,
                    const CompressionSpec& spec, std::string* out);

/// Decodes a column of `n` values produced by EncodeColumn.
Status DecodeColumn(Slice input, size_t n, std::vector<double>* values);

/// Timestamp compression for irregular series: delta-of-delta varints
/// against `base`.
void EncodeTimestamps(const Timestamp* ts, size_t n, Timestamp base,
                      std::string* out);
Status DecodeTimestamps(Slice* input, size_t n, Timestamp base,
                        std::vector<Timestamp>* ts);

}  // namespace odh::core

#endif  // ODH_CORE_COMPRESSION_H_
