#ifndef ODH_CORE_SYSTEM_TABLES_H_
#define ODH_CORE_SYSTEM_TABLES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/config.h"
#include "core/store.h"
#include "sql/engine.h"
#include "sql/table_provider.h"

namespace odh::core {

/// Read-only system tables, dog-fooded through the same TableProvider
/// interface (the VTI analogue) as the operational virtual tables — the
/// historian's observability is just more tables to SELECT from:
///
///   odh_metrics  (name, kind, value)          — registry snapshot
///   odh_queries  (statement, path, ...)       — recent query profiles
///   odh_storage  (schema_type, container, ..) — per-partition blob stats
///
/// Each Scan materializes a consistent snapshot up front (registry collect,
/// query-ring copy, stats copy under the store mutex), so cursors never
/// hold locks while the engine drains them. All three are safe to query
/// while ingestion and native scans run on other threads.

/// `odh_metrics`: one row per exported sample. Histograms appear expanded
/// (name.count / name.sum / name.p50 / name.p95 / name.p99).
class MetricsSystemTable : public sql::TableProvider {
 public:
  explicit MetricsSystemTable(const common::MetricsRegistry* registry);

  const std::string& name() const override { return name_; }
  const relational::Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<sql::RowCursor>> Scan(
      const sql::ScanSpec& spec) override;
  sql::ScanEstimate Estimate(const sql::ScanSpec& spec) const override;
  bool SupportsPointLookup(int column) const override { return false; }

 private:
  std::string name_ = "odh_metrics";
  const common::MetricsRegistry* registry_;
  relational::Schema schema_;
};

/// `odh_queries`: the engine's recent-statement ring, oldest first.
class QueriesSystemTable : public sql::TableProvider {
 public:
  explicit QueriesSystemTable(const sql::SqlEngine* engine);

  const std::string& name() const override { return name_; }
  const relational::Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<sql::RowCursor>> Scan(
      const sql::ScanSpec& spec) override;
  sql::ScanEstimate Estimate(const sql::ScanSpec& spec) const override;
  bool SupportsPointLookup(int column) const override { return false; }

 private:
  std::string name_ = "odh_queries";
  const sql::SqlEngine* engine_;
  relational::Schema schema_;
};

/// `odh_storage`: one row per (schema type, container) partition with blob
/// counts, bytes, and the compression ratio against the raw row-format
/// size (8 bytes per timestamp and per tag value).
class StorageSystemTable : public sql::TableProvider {
 public:
  StorageSystemTable(const ConfigComponent* config, const OdhStore* store);

  const std::string& name() const override { return name_; }
  const relational::Schema& schema() const override { return schema_; }
  Result<std::unique_ptr<sql::RowCursor>> Scan(
      const sql::ScanSpec& spec) override;
  sql::ScanEstimate Estimate(const sql::ScanSpec& spec) const override;
  bool SupportsPointLookup(int column) const override { return false; }

 private:
  std::string name_ = "odh_storage";
  const ConfigComponent* config_;
  const OdhStore* store_;
  relational::Schema schema_;
};

}  // namespace odh::core

#endif  // ODH_CORE_SYSTEM_TABLES_H_
