#ifndef ODH_CORE_REORGANIZER_H_
#define ODH_CORE_REORGANIZER_H_

#include "core/store.h"
#include "core/value_blob.h"

namespace odh::core {

/// Result of one reorganization pass.
struct ReorganizeReport {
  int64_t mg_blobs_consumed = 0;
  int64_t points_moved = 0;
  int64_t rts_blobs_written = 0;
  int64_t irts_blobs_written = 0;
};

/// Converts MG batches into per-source RTS/IRTS batches so historical
/// queries on low-frequency sources read per-source structures (paper
/// Table 1: low-frequency historical queries are served by RTS/IRTS).
/// Typically run in the background; here it is invoked explicitly.
class Reorganizer {
 public:
  Reorganizer(ConfigComponent* config, OdhStore* store)
      : config_(config), store_(store) {}

  /// Moves all MG data of `schema_type` with end_ts <= `up_to` into
  /// per-source structures and deletes the consumed MG blobs.
  Result<ReorganizeReport> Reorganize(int schema_type, Timestamp up_to);

 private:
  ConfigComponent* config_;
  OdhStore* store_;
};

}  // namespace odh::core

#endif  // ODH_CORE_REORGANIZER_H_
