#include "core/zone_map.h"

#include <cmath>

#include "common/coding.h"

namespace odh::core {

namespace {
// v2 wire header. v1 started directly with a varint32 tag count, so a v1
// encoding is either the single byte 0x00 (zero tags) or starts with a
// nonzero byte (count >= 1). A leading 0x00 with more bytes behind it can
// therefore unambiguously mark the v2 header.
constexpr char kV2Marker = 0;
constexpr char kV2Version = 2;
// Per-entry flags.
constexpr char kAbsent = 0;          // No values for this tag.
constexpr char kPresentAgg = 1;      // min/max + count/sum follow.
constexpr char kPresentMinMax = 2;   // min/max only (re-encoded v1 data).
}  // namespace

ZoneMap ZoneMap::FromColumns(
    const std::vector<std::vector<double>>& columns) {
  ZoneMap map;
  map.entries_.resize(columns.size());
  for (size_t t = 0; t < columns.size(); ++t) {
    Entry& entry = map.entries_[t];
    entry.has_agg = true;
    for (double v : columns[t]) {
      if (std::isnan(v)) continue;
      if (!entry.present || v < entry.min) entry.min = v;
      if (!entry.present || v > entry.max) entry.max = v;
      entry.present = true;
      entry.count++;
      entry.sum += v;
    }
  }
  return map;
}

ZoneMap ZoneMap::FromRecords(const std::vector<OperationalRecord>& records,
                             int num_tags) {
  ZoneMap map;
  map.entries_.resize(num_tags);
  for (Entry& entry : map.entries_) entry.has_agg = true;
  for (const OperationalRecord& record : records) {
    for (int t = 0; t < num_tags; ++t) {
      double v = record.tags[t];
      if (std::isnan(v)) continue;
      Entry& entry = map.entries_[t];
      if (!entry.present || v < entry.min) entry.min = v;
      if (!entry.present || v > entry.max) entry.max = v;
      entry.present = true;
      entry.count++;
      entry.sum += v;
    }
  }
  return map;
}

void ZoneMap::Widen(double margin) {
  if (margin <= 0) return;
  // Decoded values may now differ from the originals the summary was built
  // from; min/max/sum can no longer answer aggregates decode-consistently.
  exact_ = false;
  for (Entry& entry : entries_) {
    if (!entry.present) continue;
    entry.min -= margin;
    entry.max += margin;
  }
}

std::string ZoneMap::Encode() const {
  std::string out;
  out.push_back(kV2Marker);
  out.push_back(kV2Version);
  out.push_back(exact_ ? 1 : 0);  // Flags byte: bit0 = exact.
  PutVarint32(&out, static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    if (!entry.present) {
      out.push_back(kAbsent);
      continue;
    }
    out.push_back(entry.has_agg ? kPresentAgg : kPresentMinMax);
    PutDouble(&out, entry.min);
    PutDouble(&out, entry.max);
    if (entry.has_agg) {
      PutVarint64(&out, static_cast<uint64_t>(entry.count));
      PutDouble(&out, entry.sum);
    }
  }
  return out;
}

Result<ZoneMap> ZoneMap::Decode(Slice input) {
  ZoneMap map;
  const bool v2 = input.size() > 1 && input[0] == kV2Marker;
  if (v2) {
    input.remove_prefix(1);
    if (input[0] != kV2Version) return Status::Corruption("zone map version");
    input.remove_prefix(1);
    if (input.empty()) return Status::Corruption("zone map flags");
    map.exact_ = (input[0] & 1) != 0;
    input.remove_prefix(1);
  }
  uint32_t n;
  if (!GetVarint32(&input, &n)) return Status::Corruption("zone map count");
  map.entries_.resize(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (input.empty()) return Status::Corruption("zone map flag");
    char flag = input[0];
    input.remove_prefix(1);
    Entry& entry = map.entries_[t];
    if (v2 ? flag == kAbsent : flag == 0) continue;
    if (v2 && flag != kPresentAgg && flag != kPresentMinMax) {
      return Status::Corruption("zone map entry flag");
    }
    entry.present = true;
    if (!GetDouble(&input, &entry.min) || !GetDouble(&input, &entry.max)) {
      return Status::Corruption("zone map bounds");
    }
    if (v2 && flag == kPresentAgg) {
      uint64_t count;
      if (!GetVarint64(&input, &count) || !GetDouble(&input, &entry.sum)) {
        return Status::Corruption("zone map aggregates");
      }
      entry.count = static_cast<int64_t>(count);
      entry.has_agg = true;
    }
  }
  // Aggregates are usable map-wide only when every populated entry carries
  // them (vacuously true for all-absent maps: their counts are genuinely 0).
  for (const Entry& entry : map.entries_) {
    if (entry.present && !entry.has_agg) map.has_aggregates_ = false;
  }
  return map;
}

bool ZoneMap::MayMatch(const std::vector<TagFilter>& filters) const {
  if (entries_.empty()) return true;  // Unknown: stay conservative.
  for (const TagFilter& filter : filters) {
    if (filter.tag < 0 || filter.tag >= num_tags()) continue;
    const Entry& entry = entries_[filter.tag];
    // A filtered tag with no values in the blob can never satisfy the
    // predicate (SQL: NULL never matches), so the blob is skippable.
    if (!entry.present) return false;
    if (filter.min_exclusive ? entry.max <= filter.min
                             : entry.max < filter.min) {
      return false;
    }
    if (filter.max_exclusive ? entry.min >= filter.max
                             : entry.min > filter.max) {
      return false;
    }
  }
  return true;
}

bool ZoneMap::AllMatch(const std::vector<TagFilter>& filters,
                       int64_t num_rows) const {
  if (filters.empty()) return true;
  if (entries_.empty() || !has_aggregates_) return false;
  for (const TagFilter& filter : filters) {
    // An out-of-range tag cannot be proven; stay conservative.
    if (filter.tag < 0 || filter.tag >= num_tags()) return false;
    const Entry& entry = entries_[filter.tag];
    // Every row must have a value (no NaN holes) inside the filter range.
    if (!entry.present || entry.count != num_rows) return false;
    if (filter.min_exclusive ? !(entry.min > filter.min)
                             : !(entry.min >= filter.min)) {
      return false;
    }
    if (filter.max_exclusive ? !(entry.max < filter.max)
                             : !(entry.max <= filter.max)) {
      return false;
    }
  }
  return true;
}

}  // namespace odh::core
