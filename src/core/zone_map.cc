#include "core/zone_map.h"

#include <cmath>

#include "common/coding.h"

namespace odh::core {

ZoneMap ZoneMap::FromColumns(
    const std::vector<std::vector<double>>& columns) {
  ZoneMap map;
  map.entries_.resize(columns.size());
  for (size_t t = 0; t < columns.size(); ++t) {
    Entry& entry = map.entries_[t];
    for (double v : columns[t]) {
      if (std::isnan(v)) continue;
      if (!entry.present || v < entry.min) entry.min = v;
      if (!entry.present || v > entry.max) entry.max = v;
      entry.present = true;
    }
  }
  return map;
}

ZoneMap ZoneMap::FromRecords(const std::vector<OperationalRecord>& records,
                             int num_tags) {
  ZoneMap map;
  map.entries_.resize(num_tags);
  for (const OperationalRecord& record : records) {
    for (int t = 0; t < num_tags; ++t) {
      double v = record.tags[t];
      if (std::isnan(v)) continue;
      Entry& entry = map.entries_[t];
      if (!entry.present || v < entry.min) entry.min = v;
      if (!entry.present || v > entry.max) entry.max = v;
      entry.present = true;
    }
  }
  return map;
}

void ZoneMap::Widen(double margin) {
  if (margin <= 0) return;
  for (Entry& entry : entries_) {
    if (!entry.present) continue;
    entry.min -= margin;
    entry.max += margin;
  }
}

std::string ZoneMap::Encode() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(entries_.size()));
  for (const Entry& entry : entries_) {
    out.push_back(entry.present ? 1 : 0);
    if (entry.present) {
      PutDouble(&out, entry.min);
      PutDouble(&out, entry.max);
    }
  }
  return out;
}

Result<ZoneMap> ZoneMap::Decode(Slice input) {
  ZoneMap map;
  uint32_t n;
  if (!GetVarint32(&input, &n)) return Status::Corruption("zone map count");
  map.entries_.resize(n);
  for (uint32_t t = 0; t < n; ++t) {
    if (input.empty()) return Status::Corruption("zone map flag");
    bool present = input[0] != 0;
    input.remove_prefix(1);
    map.entries_[t].present = present;
    if (present) {
      if (!GetDouble(&input, &map.entries_[t].min) ||
          !GetDouble(&input, &map.entries_[t].max)) {
        return Status::Corruption("zone map bounds");
      }
    }
  }
  return map;
}

bool ZoneMap::MayMatch(const std::vector<TagFilter>& filters) const {
  if (entries_.empty()) return true;  // Unknown: stay conservative.
  for (const TagFilter& filter : filters) {
    if (filter.tag < 0 || filter.tag >= num_tags()) continue;
    const Entry& entry = entries_[filter.tag];
    // A filtered tag with no values in the blob can never satisfy the
    // predicate (SQL: NULL never matches), so the blob is skippable.
    if (!entry.present) return false;
    if (entry.max < filter.min || entry.min > filter.max) return false;
  }
  return true;
}

}  // namespace odh::core
