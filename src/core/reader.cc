#include "core/reader.h"

#include <cmath>
#include <deque>

namespace odh::core {
namespace {

enum class BlobKind { kRts, kIrts, kMg };

struct QueuedBlob {
  BlobKind kind;
  BlobRecord record;
};

}  // namespace

/// Implementation shared by historical and slice scans. Historical scans
/// queue the (bounded, per-source) blob lists up front; slice scans stream
/// the per-source containers with a table iterator and use the
/// (begin_ts, group) index for MG. Decoded records drain from a buffer one
/// blob at a time.
///
/// With a thread pool, the queued blobs are decoded in parallel right
/// after Init (each pool task decodes into its own slot, so emission order
/// is still queue order — byte-identical to the sequential scan); the
/// streaming side of slice scans remains sequential. The codec is
/// stateless, so one instance serves all decode tasks.
class OdhScanCursorImpl : public RecordCursor {
 public:
  OdhScanCursorImpl(OdhReader* reader, int schema_type, SourceId id,
                    Timestamp lo, Timestamp hi, std::vector<int> wanted_tags,
                    std::vector<TagFilter> tag_filters, int num_tags,
                    CompressionSpec spec)
      : reader_(reader),
        schema_type_(schema_type),
        id_(id),
        lo_(lo),
        hi_(hi),
        wanted_tags_(std::move(wanted_tags)),
        tag_filters_(std::move(tag_filters)),
        num_tags_(num_tags),
        codec_(spec) {}

  Status InitHistorical(const RouteDecision& route) {
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetRts(schema_type_, id_, lo_,
                                                   hi_));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kRts, std::move(b)});
      }
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetIrts(schema_type_, id_, lo_,
                                                    hi_));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kIrts, std::move(b)});
      }
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_,
                                                  route.mg_group, lo_, hi_));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    PredecodeQueued();
    return CollectDirty();
  }

  Status InitSlice(const RouteDecision& route) {
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(relational::Table * table,
                           reader_->store_->RtsTable(schema_type_));
      rts_stream_ = std::make_unique<relational::Table::Iterator>(
          table->NewIterator());
      ODH_RETURN_IF_ERROR(rts_stream_->SeekToFirst());
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(relational::Table * table,
                           reader_->store_->IrtsTable(schema_type_));
      irts_stream_ = std::make_unique<relational::Table::Iterator>(
          table->NewIterator());
      ODH_RETURN_IF_ERROR(irts_stream_->SeekToFirst());
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_, -1, lo_,
                                                  hi_));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    PredecodeQueued();
    return CollectDirty();
  }

  Result<bool> Next(OperationalRecord* record) override {
    while (true) {
      if (buffer_pos_ < buffer_.size()) {
        *record = std::move(buffer_[buffer_pos_++]);
        reader_->records_emitted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      buffer_.clear();
      buffer_pos_ = 0;
      // Refill from the next source of blobs: pre-decoded slots first
      // (same order the blobs were queued in), then lazy decode, then the
      // streaming scans, then the dirty buffers.
      if (!decoded_.empty()) {
        ODH_RETURN_IF_ERROR(decoded_statuses_.front());
        buffer_ = std::move(decoded_.front());
        decoded_.pop_front();
        decoded_statuses_.pop_front();
        continue;
      }
      if (!queued_.empty()) {
        QueuedBlob blob = std::move(queued_.front());
        queued_.pop_front();
        ODH_RETURN_IF_ERROR(DecodeBlobInto(blob, &buffer_));
        continue;
      }
      ODH_ASSIGN_OR_RETURN(bool streamed, RefillFromStreams());
      if (streamed) continue;
      if (!dirty_.empty()) {
        buffer_ = std::move(dirty_);
        dirty_.clear();
        continue;
      }
      return false;
    }
  }

 private:
  Status CollectDirty() {
    return reader_->writer_->CollectDirty(schema_type_, id_, lo_, hi_,
                                          &dirty_);
  }

  /// Fans the queued blobs out to the reader's pool, one result slot per
  /// blob. Decode errors are parked in decoded_statuses_ and surface from
  /// Next at the position the sequential scan would have hit them.
  void PredecodeQueued() {
    common::ThreadPool* pool = reader_->pool_;
    if (pool == nullptr || pool->num_threads() < 2 || queued_.size() < 2) {
      return;
    }
    const size_t n = queued_.size();
    std::vector<QueuedBlob> blobs(std::make_move_iterator(queued_.begin()),
                                  std::make_move_iterator(queued_.end()));
    queued_.clear();
    decoded_.resize(n);
    decoded_statuses_.resize(n);
    pool->ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
      decoded_statuses_[static_cast<size_t>(i)] =
          DecodeBlobInto(blobs[static_cast<size_t>(i)],
                         &decoded_[static_cast<size_t>(i)]);
    });
  }

  /// Pulls the next overlapping blob from the streaming table scans.
  Result<bool> RefillFromStreams() {
    for (auto* stream : {&rts_stream_, &irts_stream_}) {
      while (*stream != nullptr && (*stream)->Valid()) {
        ODH_ASSIGN_OR_RETURN(Row row, (*stream)->row());
        relational::Rid rid = (*stream)->rid();
        ODH_RETURN_IF_ERROR((*stream)->Next());
        BlobRecord rec;
        ODH_RETURN_IF_ERROR(
            OdhStore::RowToBlobRecord(row, rid, /*is_mg=*/false, &rec));
        if (rec.end < lo_ || rec.begin > hi_) continue;
        QueuedBlob blob{stream == &rts_stream_ ? BlobKind::kRts
                                               : BlobKind::kIrts,
                        std::move(rec)};
        ODH_RETURN_IF_ERROR(DecodeBlobInto(blob, &buffer_));
        return true;
      }
    }
    return false;
  }

  /// Zone-map pruning: skip the blob when its per-tag ranges cannot
  /// satisfy the pushed filters (paper §6 future work).
  bool Prunable(const BlobRecord& record) const {
    if (tag_filters_.empty() || record.zone_map.empty()) return false;
    auto map = ZoneMap::Decode(Slice(record.zone_map));
    if (!map.ok()) return false;  // Corrupt summaries never prune.
    return !map->MayMatch(tag_filters_);
  }

  /// Decodes one blob's surviving records into *out. Called from pool
  /// tasks as well as the cursor thread; touches only immutable cursor
  /// state and the reader's atomic counters.
  Status DecodeBlobInto(const QueuedBlob& blob,
                        std::vector<OperationalRecord>* out) {
    if (Prunable(blob.record)) {
      reader_->blobs_pruned_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    reader_->blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
    reader_->blob_bytes_read_.fetch_add(
        static_cast<int64_t>(blob.record.blob.size()),
        std::memory_order_relaxed);
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec_.DecodeMg(Slice(blob.record.blob),
                                          blob.record.begin, wanted_tags_,
                                          num_tags_, &records));
      for (auto& r : records) {
        if (r.ts < lo_ || r.ts > hi_) continue;
        if (id_ >= 0 && r.id != id_) continue;
        out->push_back(std::move(r));
      }
      return Status::OK();
    }
    SeriesBatch batch;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec_.DecodeRts(
          Slice(blob.record.blob), blob.record.id, blob.record.begin,
          blob.record.interval, wanted_tags_, num_tags_, &batch));
    } else {
      ODH_RETURN_IF_ERROR(codec_.DecodeIrts(Slice(blob.record.blob),
                                            blob.record.id,
                                            blob.record.begin, wanted_tags_,
                                            num_tags_, &batch));
    }
    const size_t n = batch.num_points();
    for (size_t i = 0; i < n; ++i) {
      if (batch.timestamps[i] < lo_ || batch.timestamps[i] > hi_) continue;
      OperationalRecord r;
      r.id = batch.id;
      r.ts = batch.timestamps[i];
      r.tags.resize(num_tags_);
      for (int t = 0; t < num_tags_; ++t) r.tags[t] = batch.columns[t][i];
      out->push_back(std::move(r));
    }
    return Status::OK();
  }

  OdhReader* reader_;
  int schema_type_;
  SourceId id_;  // -1 for slice scans.
  Timestamp lo_, hi_;
  std::vector<int> wanted_tags_;
  std::vector<TagFilter> tag_filters_;
  int num_tags_;
  ValueBlobCodec codec_;

  std::deque<QueuedBlob> queued_;
  /// Parallel-decode results, aligned slots in queue order.
  std::deque<std::vector<OperationalRecord>> decoded_;
  std::deque<Status> decoded_statuses_;
  std::unique_ptr<relational::Table::Iterator> rts_stream_;
  std::unique_ptr<relational::Table::Iterator> irts_stream_;
  std::vector<OperationalRecord> buffer_;
  size_t buffer_pos_ = 0;
  std::vector<OperationalRecord> dirty_;
};

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenHistorical(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteHistorical(schema_type, id));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, id, lo, hi, wanted_tags, std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression);
  ODH_RETURN_IF_ERROR(cursor->InitHistorical(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenSlice(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteSlice(schema_type));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, /*id=*/-1, lo, hi, wanted_tags,
      std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression);
  ODH_RETURN_IF_ERROR(cursor->InitSlice(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

}  // namespace odh::core
