#include "core/reader.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>
#include <set>

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

enum class BlobKind { kRts, kIrts, kMg };

struct QueuedBlob {
  BlobKind kind;
  BlobRecord record;
};

}  // namespace

/// Implementation shared by historical and slice scans, row and batch
/// flavors. Historical scans queue the (bounded, per-source) blob lists up
/// front; slice scans pull the series containers one segment chunk at a
/// time through OdhStore::NextSliceChunk (so no table iterator outlives
/// the store mutex) and use the (begin_ts, group) index for MG. Every blob
/// decodes into one columnar RecordBatch — the batch cursor hands those
/// out directly, the row cursor drains them one record at a time.
///
/// With a thread pool, the queued blobs are decoded in parallel right
/// after Init (each pool task decodes into its own slot, so emission order
/// is still queue order — byte-identical to the sequential scan); the
/// streaming side of slice scans remains sequential. The codec is
/// stateless, so one instance serves all decode tasks.
class OdhScanCursorImpl : public RecordCursor, public RecordBatchCursor {
 public:
  OdhScanCursorImpl(OdhReader* reader, int schema_type, SourceId id,
                    Timestamp lo, Timestamp hi, std::vector<int> wanted_tags,
                    std::vector<TagFilter> tag_filters, int num_tags,
                    CompressionSpec spec,
                    common::ScanCounters* counters = nullptr)
      : reader_(reader),
        schema_type_(schema_type),
        id_(id),
        lo_(lo),
        hi_(hi),
        wanted_tags_(std::move(wanted_tags)),
        tag_filters_(std::move(tag_filters)),
        num_tags_(num_tags),
        codec_(spec),
        counters_(counters) {}

  Status InitHistorical(const RouteDecision& route) {
    SegmentScanStats seg_stats;
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetRts(schema_type_, id_, lo_,
                                                   hi_, &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kRts, std::move(b)});
      }
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetIrts(schema_type_, id_, lo_,
                                                    hi_, &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kIrts, std::move(b)});
      }
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_,
                                                  route.mg_group, lo_, hi_,
                                                  &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    CountSegmentsPruned(seg_stats);
    PredecodeQueued();
    return CollectDirty();
  }

  Status InitSlice(const RouteDecision& route) {
    rts_stream_.active = route.scan_rts;
    irts_stream_.active = route.scan_irts;
    if (route.scan_mg) {
      SegmentScanStats seg_stats;
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_, -1, lo_,
                                                  hi_, &seg_stats));
      CountSegmentsPruned(seg_stats);
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    PredecodeQueued();
    return CollectDirty();
  }

  /// Row-at-a-time view: drains the current batch record by record.
  /// Poison contract: a failed refill poisons the cursor — continuing past
  /// it would silently drop the blob that failed to decode and resume with
  /// the next one, truncating the scan.
  Result<bool> Next(OperationalRecord* record) override {
    if (!poison_.ok()) return poison_;
    while (true) {
      if (row_pos_ < batch_.rows()) {
        const size_t i = row_pos_++;
        record->id = batch_.id_at(i);
        record->ts = batch_.timestamps[i];
        record->tags.assign(static_cast<size_t>(num_tags_), kNaN);
        for (int t = 0; t < num_tags_; ++t) {
          if (!batch_.columns[t].empty()) {
            record->tags[t] = batch_.columns[t][i];
          }
        }
        reader_->records_emitted_.fetch_add(1, std::memory_order_relaxed);
        if (counters_ != nullptr) {
          counters_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      }
      row_pos_ = 0;
      Result<bool> refilled = ProduceBatch(&batch_);
      if (!refilled.ok()) return poison_ = refilled.status();
      if (!refilled.value()) return false;
    }
  }

  /// Columnar view: one decoded blob per call (possibly zero rows).
  Result<bool> Next(RecordBatch* batch) override {
    if (!poison_.ok()) return poison_;
    Result<bool> produced = ProduceBatch(batch);
    if (!produced.ok()) return poison_ = produced.status();
    const bool more = produced.value();
    if (more) {
      reader_->records_emitted_.fetch_add(
          static_cast<int64_t>(batch->rows()), std::memory_order_relaxed);
      if (counters_ != nullptr) {
        counters_->batches.fetch_add(1, std::memory_order_relaxed);
        counters_->rows_scanned.fetch_add(
            static_cast<int64_t>(batch->rows()), std::memory_order_relaxed);
      }
    }
    return more;
  }

 private:
  Status CollectDirty() {
    return reader_->writer_->CollectDirty(schema_type_, id_, lo_, hi_,
                                          &dirty_);
  }

  /// Refills *batch from the next source of blobs: pre-decoded slots first
  /// (same order the blobs were queued in), then lazy decode, then the
  /// streaming scans, then the dirty buffers. False at end of stream.
  Result<bool> ProduceBatch(RecordBatch* batch) {
    batch->clear();
    if (!decoded_.empty()) {
      ODH_RETURN_IF_ERROR(decoded_statuses_.front());
      *batch = std::move(decoded_.front());
      decoded_.pop_front();
      decoded_statuses_.pop_front();
      return true;
    }
    if (!queued_.empty()) {
      QueuedBlob blob = std::move(queued_.front());
      queued_.pop_front();
      ODH_RETURN_IF_ERROR(DecodeBlobToBatch(blob, batch));
      return true;
    }
    ODH_ASSIGN_OR_RETURN(bool streamed, RefillFromStreams(batch));
    if (streamed) return true;
    if (!dirty_.empty()) {
      ColumnarizeRecords(dirty_, batch);
      dirty_.clear();
      return true;
    }
    return false;
  }

  /// Fans the queued blobs out to the reader's pool, one result slot per
  /// blob. Decode errors are parked in decoded_statuses_ and surface from
  /// Next at the position the sequential scan would have hit them.
  void PredecodeQueued() {
    common::ThreadPool* pool = reader_->pool_;
    if (pool == nullptr || pool->num_threads() < 2 || queued_.size() < 2) {
      return;
    }
    const size_t n = queued_.size();
    std::vector<QueuedBlob> blobs(std::make_move_iterator(queued_.begin()),
                                  std::make_move_iterator(queued_.end()));
    queued_.clear();
    decoded_.resize(n);
    decoded_statuses_.resize(n);
    pool->ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
      decoded_statuses_[static_cast<size_t>(i)] =
          DecodeBlobToBatch(blobs[static_cast<size_t>(i)],
                            &decoded_[static_cast<size_t>(i)]);
    });
  }

  /// Folds a store segment-elimination count into the reader-global and
  /// per-query counters.
  void CountSegmentsPruned(const SegmentScanStats& seg_stats) {
    if (seg_stats.segments_pruned == 0) return;
    reader_->segments_pruned_.fetch_add(seg_stats.segments_pruned,
                                        std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->segments_pruned.fetch_add(seg_stats.segments_pruned,
                                           std::memory_order_relaxed);
    }
  }

  /// Pulls the next overlapping blob from the chunked slice scans: RTS
  /// first, then IRTS, each advancing one segment at a time through the
  /// store (the chunk is materialized under the store mutex, so a
  /// concurrent retention drop can never invalidate this cursor).
  Result<bool> RefillFromStreams(RecordBatch* batch) {
    for (auto* stream : {&rts_stream_, &irts_stream_}) {
      const bool is_irts = stream == &irts_stream_;
      if (!stream->active) continue;
      while (true) {
        if (!stream->buffered.empty()) {
          QueuedBlob blob{is_irts ? BlobKind::kIrts : BlobKind::kRts,
                          std::move(stream->buffered.front())};
          stream->buffered.pop_front();
          ODH_RETURN_IF_ERROR(DecodeBlobToBatch(blob, batch));
          return true;
        }
        if (stream->done) break;
        SegmentScanStats seg_stats;
        std::vector<BlobRecord> chunk;
        ODH_RETURN_IF_ERROR(reader_->store_->NextSliceChunk(
            schema_type_, is_irts, lo_, hi_, &stream->cursor, &chunk,
            &stream->done, &seg_stats));
        CountSegmentsPruned(seg_stats);
        for (auto& rec : chunk) stream->buffered.push_back(std::move(rec));
      }
    }
    return false;
  }

  /// Zone-map pruning: skip the blob when its per-tag ranges cannot
  /// satisfy the pushed filters (paper §6 future work).
  bool Prunable(const BlobRecord& record) const {
    if (tag_filters_.empty() || record.zone_map.empty()) return false;
    auto map = ZoneMap::Decode(Slice(record.zone_map));
    if (!map.ok()) return false;  // Corrupt summaries never prune.
    return !map->MayMatch(tag_filters_);
  }

  /// Decodes one blob into a columnar batch, trimmed to [lo_, hi_]. Pruned
  /// blobs leave *batch empty. Called from pool tasks as well as the
  /// cursor thread; touches only immutable cursor state and the reader's
  /// atomic counters.
  Status DecodeBlobToBatch(const QueuedBlob& blob, RecordBatch* batch) {
    if (Prunable(blob.record)) {
      reader_->blobs_pruned_.fetch_add(1, std::memory_order_relaxed);
      if (counters_ != nullptr) {
        counters_->blobs_pruned.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    reader_->blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
    reader_->blob_bytes_read_.fetch_add(
        static_cast<int64_t>(blob.record.blob.size()),
        std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->blobs_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_->blob_bytes_read.fetch_add(
          static_cast<int64_t>(blob.record.blob.size()),
          std::memory_order_relaxed);
    }
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec_.DecodeMg(Slice(blob.record.blob),
                                          blob.record.begin, wanted_tags_,
                                          num_tags_, &records));
      std::vector<OperationalRecord> kept;
      kept.reserve(records.size());
      for (auto& r : records) {
        if (r.ts < lo_ || r.ts > hi_) continue;
        if (id_ >= 0 && r.id != id_) continue;
        kept.push_back(std::move(r));
      }
      ColumnarizeRecords(kept, batch);
      return Status::OK();
    }
    SeriesBatch series;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec_.DecodeRts(
          Slice(blob.record.blob), blob.record.id, blob.record.begin,
          blob.record.interval, wanted_tags_, num_tags_, &series));
    } else {
      ODH_RETURN_IF_ERROR(codec_.DecodeIrts(Slice(blob.record.blob),
                                            blob.record.id,
                                            blob.record.begin, wanted_tags_,
                                            num_tags_, &series));
    }
    // In-place trim to the time range; when nothing is dropped (interior
    // blob, the common case) the loop writes nothing and the decoded
    // columns move straight into the batch.
    const size_t n = series.num_points();
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      if (series.timestamps[i] < lo_ || series.timestamps[i] > hi_) continue;
      if (kept != i) {
        series.timestamps[kept] = series.timestamps[i];
        for (auto& col : series.columns) {
          if (!col.empty()) col[kept] = col[i];
        }
      }
      ++kept;
    }
    series.timestamps.resize(kept);
    for (auto& col : series.columns) {
      if (!col.empty()) col.resize(kept);
    }
    batch->uniform_id = series.id;
    batch->timestamps = std::move(series.timestamps);
    batch->columns = std::move(series.columns);
    batch->columns.resize(static_cast<size_t>(num_tags_));
    return Status::OK();
  }

  /// Transposes row-format records (MG decode, dirty buffers) into a
  /// columnar batch with an explicit id vector.
  void ColumnarizeRecords(const std::vector<OperationalRecord>& records,
                          RecordBatch* batch) const {
    const size_t n = records.size();
    batch->ids.reserve(n);
    batch->timestamps.reserve(n);
    batch->columns.assign(static_cast<size_t>(num_tags_), {});
    for (auto& col : batch->columns) col.reserve(n);
    for (const auto& r : records) {
      batch->ids.push_back(r.id);
      batch->timestamps.push_back(r.ts);
      for (int t = 0; t < num_tags_; ++t) {
        batch->columns[t].push_back(
            t < static_cast<int>(r.tags.size()) ? r.tags[t] : kNaN);
      }
    }
  }

  OdhReader* reader_;
  int schema_type_;
  SourceId id_;  // -1 for slice scans.
  Timestamp lo_, hi_;
  std::vector<int> wanted_tags_;
  std::vector<TagFilter> tag_filters_;
  int num_tags_;
  ValueBlobCodec codec_;
  common::ScanCounters* counters_;  // Per-query profile; may be null.

  /// Chunked slice-scan state for one series structure: the next segment
  /// key to ask the store for, plus the not-yet-decoded remainder of the
  /// last chunk it handed back.
  struct SliceStream {
    bool active = false;
    bool done = false;
    OdhStore::SliceCursor cursor;
    std::deque<BlobRecord> buffered;
  };

  std::deque<QueuedBlob> queued_;
  /// Parallel-decode results, aligned slots in queue order.
  std::deque<RecordBatch> decoded_;
  std::deque<Status> decoded_statuses_;
  SliceStream rts_stream_;
  SliceStream irts_stream_;
  /// Current batch being drained by the row-at-a-time view.
  RecordBatch batch_;
  size_t row_pos_ = 0;
  Status poison_;  // First error seen; repeated by every later Next.
  std::vector<OperationalRecord> dirty_;
};

namespace {

/// Accumulates the aggregate-pushdown answer across blob summaries,
/// decoded blobs, and dirty rows.
class AggregateAccumulator {
 public:
  AggregateAccumulator(const std::vector<TagFilter>* filters,
                       const std::vector<int>* agg_tags)
      : filters_(filters), agg_tags_(agg_tags) {
    result_.tags.resize(agg_tags->size());
  }

  /// Folds in a whole blob from its summary (caller proved AllMatch).
  void AddSummary(const ZoneMap& map, int64_t num_rows) {
    result_.rows_matched += num_rows;
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      TagAggregate& agg = result_.tags[j];
      agg.count += map.count(tag);
      agg.sum += map.sum(tag);
      if (map.has_values(tag)) {
        if (!agg.has_value || map.min(tag) < agg.min) agg.min = map.min(tag);
        if (!agg.has_value || map.max(tag) > agg.max) agg.max = map.max(tag);
        agg.has_value = true;
      }
    }
  }

  /// Folds in one row (decoded blob or dirty buffer); `tags` may be
  /// shorter than the schema (missing = NaN).
  void AddRow(const std::vector<double>& tags) {
    for (const TagFilter& f : *filters_) {
      const double v =
          f.tag < static_cast<int>(tags.size()) ? tags[f.tag] : kNaN;
      if (!TagFilterMatches(f, v)) return;
    }
    ++result_.rows_matched;
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      const double v =
          tag < static_cast<int>(tags.size()) ? tags[tag] : kNaN;
      if (std::isnan(v)) continue;
      TagAggregate& agg = result_.tags[j];
      ++agg.count;
      agg.sum += v;
      if (!agg.has_value || v < agg.min) agg.min = v;
      if (!agg.has_value || v > agg.max) agg.max = v;
      agg.has_value = true;
    }
  }

  /// Folds in a decoded RTS/IRTS blob column-wise: builds a selection
  /// (time bounds, then each tag filter) and sweeps the per-tag arrays,
  /// skipping the per-row tag-vector materialization AddRow needs.
  /// Accumulation order matches AddRow, so results are bit-identical.
  /// Returns the number of rows inside [lo, hi] before tag filtering.
  int64_t AddColumns(const SeriesBatch& series, Timestamp lo, Timestamp hi) {
    const size_t n = series.num_points();
    sel_.clear();
    sel_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (series.timestamps[i] >= lo && series.timestamps[i] <= hi) {
        sel_.push_back(static_cast<int32_t>(i));
      }
    }
    const int64_t in_range = static_cast<int64_t>(sel_.size());
    for (const TagFilter& f : *filters_) {
      const std::vector<double>* col =
          f.tag >= 0 && f.tag < static_cast<int>(series.columns.size()) &&
                  !series.columns[f.tag].empty()
              ? &series.columns[f.tag]
              : nullptr;
      size_t out = 0;
      for (int32_t i : sel_) {
        const double v = col != nullptr ? (*col)[i] : kNaN;
        if (TagFilterMatches(f, v)) sel_[out++] = i;
      }
      sel_.resize(out);
    }
    result_.rows_matched += static_cast<int64_t>(sel_.size());
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      if (tag < 0 || tag >= static_cast<int>(series.columns.size()) ||
          series.columns[tag].empty()) {
        continue;  // Unprojected / unknown: all NULL, contributes nothing.
      }
      const std::vector<double>& col = series.columns[tag];
      TagAggregate& agg = result_.tags[j];
      for (int32_t i : sel_) {
        const double v = col[i];
        if (std::isnan(v)) continue;
        ++agg.count;
        agg.sum += v;
        if (!agg.has_value || v < agg.min) agg.min = v;
        if (!agg.has_value || v > agg.max) agg.max = v;
        agg.has_value = true;
      }
    }
    return in_range;
  }

  AggregateResult&& Take() { return std::move(result_); }

 private:
  const std::vector<TagFilter>* filters_;
  const std::vector<int>* agg_tags_;
  AggregateResult result_;
  std::vector<int32_t> sel_;
};

}  // namespace

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenHistorical(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteHistorical(schema_type, id));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, id, lo, hi, wanted_tags, std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitHistorical(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenSlice(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteSlice(schema_type));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, /*id=*/-1, lo, hi, wanted_tags,
      std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitSlice(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordBatchCursor>> OdhReader::OpenHistoricalBatches(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteHistorical(schema_type, id));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, id, lo, hi, wanted_tags, std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitHistorical(route));
  return std::unique_ptr<RecordBatchCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordBatchCursor>> OdhReader::OpenSliceBatches(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteSlice(schema_type));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, /*id=*/-1, lo, hi, wanted_tags,
      std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitSlice(route));
  return std::unique_ptr<RecordBatchCursor>(std::move(cursor));
}

Result<AggregateResult> OdhReader::Aggregate(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<TagFilter>& tag_filters,
    const std::vector<int>& agg_tags, bool need_values,
    common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  const int num_tags = static_cast<int>(type->tag_names.size());
  ValueBlobCodec codec(type->compression);
  AggregateAccumulator acc(&tag_filters, &agg_tags);

  // Tags the decode fallback actually needs: aggregated plus filtered.
  std::set<int> needed(agg_tags.begin(), agg_tags.end());
  for (const TagFilter& f : tag_filters) needed.insert(f.tag);
  const std::vector<int> decode_tags(needed.begin(), needed.end());

  // Candidate blobs, enumerated exactly like the scan paths (including the
  // segment-manifest elimination the Get*/NextSliceChunk entry points do).
  std::vector<QueuedBlob> blobs;
  auto add = [&blobs](BlobKind kind, std::vector<BlobRecord> recs) {
    for (auto& b : recs) blobs.push_back({kind, std::move(b)});
  };
  SegmentScanStats seg_stats;
  if (id >= 0) {
    ODH_ASSIGN_OR_RETURN(RouteDecision route,
                         router_->RouteHistorical(schema_type, id));
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetRts(schema_type, id, lo, hi,
                                          &seg_stats));
      add(BlobKind::kRts, std::move(recs));
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetIrts(schema_type, id, lo, hi,
                                           &seg_stats));
      add(BlobKind::kIrts, std::move(recs));
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetMg(schema_type, route.mg_group, lo, hi,
                                         &seg_stats));
      add(BlobKind::kMg, std::move(recs));
    }
  } else {
    ODH_ASSIGN_OR_RETURN(RouteDecision route, router_->RouteSlice(schema_type));
    for (bool is_irts : {false, true}) {
      if (is_irts ? !route.scan_irts : !route.scan_rts) continue;
      OdhStore::SliceCursor seg_cursor;
      bool done = false;
      while (!done) {
        std::vector<BlobRecord> chunk;
        ODH_RETURN_IF_ERROR(store_->NextSliceChunk(schema_type, is_irts, lo,
                                                   hi, &seg_cursor, &chunk,
                                                   &done, &seg_stats));
        add(is_irts ? BlobKind::kIrts : BlobKind::kRts, std::move(chunk));
      }
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetMg(schema_type, -1, lo, hi,
                                         &seg_stats));
      add(BlobKind::kMg, std::move(recs));
    }
  }
  if (seg_stats.segments_pruned > 0) {
    segments_pruned_.fetch_add(seg_stats.segments_pruned,
                               std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->segments_pruned.fetch_add(seg_stats.segments_pruned,
                                          std::memory_order_relaxed);
    }
  }

  for (const QueuedBlob& blob : blobs) {
    const BlobRecord& rec = blob.record;
    std::optional<ZoneMap> map;
    if (!rec.zone_map.empty()) {
      auto decoded = ZoneMap::Decode(Slice(rec.zone_map));
      if (decoded.ok()) map = *std::move(decoded);
    }
    if (map.has_value() && !tag_filters.empty() &&
        !map->MayMatch(tag_filters)) {
      blobs_pruned_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) {
        counters->blobs_pruned.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    // Summary-only answer: the blob must lie entirely inside the time
    // range, carry v2 aggregates covering every referenced tag, be exact
    // when values (not just counts) are wanted, prove that all rows pass
    // the filters, and — for MG under an id constraint — not mix sources.
    const bool covers_tags = [&] {
      if (!map.has_value()) return false;
      for (int tag : agg_tags) {
        if (tag < 0 || tag >= map->num_tags()) return false;
      }
      for (const TagFilter& f : tag_filters) {
        if (f.tag < 0 || f.tag >= map->num_tags()) return false;
      }
      return true;
    }();
    if (map.has_value() && map->has_aggregates() && covers_tags &&
        (blob.kind != BlobKind::kMg || id < 0) &&
        rec.begin >= lo && rec.end <= hi &&
        (!need_values || map->exact()) &&
        map->AllMatch(tag_filters, rec.n)) {
      acc.AddSummary(*map, rec.n);
      blobs_skipped_by_summary_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) {
        counters->blobs_skipped_by_summary.fetch_add(
            1, std::memory_order_relaxed);
      }
      continue;
    }
    // Fallback: decode and scan the boundary / unprovable blob.
    blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
    blob_bytes_read_.fetch_add(static_cast<int64_t>(rec.blob.size()),
                               std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->blobs_decoded.fetch_add(1, std::memory_order_relaxed);
      counters->blob_bytes_read.fetch_add(
          static_cast<int64_t>(rec.blob.size()), std::memory_order_relaxed);
    }
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec.DecodeMg(Slice(rec.blob), rec.begin,
                                         decode_tags, num_tags, &records));
      for (const auto& r : records) {
        if (r.ts < lo || r.ts > hi) continue;
        if (id >= 0 && r.id != id) continue;
        records_emitted_.fetch_add(1, std::memory_order_relaxed);
        if (counters != nullptr) {
          counters->rows_scanned.fetch_add(1, std::memory_order_relaxed);
        }
        acc.AddRow(r.tags);
      }
      continue;
    }
    SeriesBatch series;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec.DecodeRts(Slice(rec.blob), rec.id, rec.begin,
                                          rec.interval, decode_tags,
                                          num_tags, &series));
    } else {
      ODH_RETURN_IF_ERROR(codec.DecodeIrts(Slice(rec.blob), rec.id,
                                           rec.begin, decode_tags, num_tags,
                                           &series));
    }
    const int64_t in_range = acc.AddColumns(series, lo, hi);
    records_emitted_.fetch_add(in_range, std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->rows_scanned.fetch_add(in_range, std::memory_order_relaxed);
    }
  }

  // Unflushed writer buffers (dirty-read isolation): row-format, already
  // filtered to [lo, hi] and `id` by the writer.
  std::vector<OperationalRecord> dirty;
  ODH_RETURN_IF_ERROR(writer_->CollectDirty(schema_type, id, lo, hi, &dirty));
  for (const auto& r : dirty) {
    if (r.ts < lo || r.ts > hi) continue;
    acc.AddRow(r.tags);
  }

  return acc.Take();
}

}  // namespace odh::core
