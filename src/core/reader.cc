#include "core/reader.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>

#include "core/blob_cache.h"

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

using BlobKind = BlobStructure;

struct QueuedBlob {
  BlobKind kind;
  BlobRecord record;
};

/// Blobs per parallel scan unit: small enough that several units per
/// segment keep the merge frontier close behind the workers, large enough
/// to amortize the submit/notify overhead.
constexpr size_t kUnitMaxBlobs = 8;
/// Decoded batches a unit buffers ahead of the merge frontier before its
/// worker parks (bounded ordered merge: memory stays O(units * buffer)).
constexpr size_t kUnitBufferBatches = 8;

uint64_t PackRid(const relational::Rid& rid) {
  return (static_cast<uint64_t>(rid.page) << 32) | rid.slot;
}

/// Cache identity of the decoded tag set. Empty wanted list means "decode
/// everything" (the codec's convention); a tag outside [0, 63) cannot be
/// represented and makes the scan uncacheable.
bool TagMaskOf(const std::vector<int>& wanted_tags, uint64_t* mask) {
  if (wanted_tags.empty()) {
    *mask = ~0ull;
    return true;
  }
  uint64_t m = 0;
  for (int t : wanted_tags) {
    if (t < 0 || t >= 63) return false;
    m |= 1ull << t;
  }
  *mask = m;
  return true;
}

/// Decoded footprint of a cached batch (the LRU charges this).
size_t BatchBytes(const RecordBatch& b) {
  size_t bytes = sizeof(RecordBatch);
  bytes += b.ids.size() * sizeof(SourceId);
  bytes += b.timestamps.size() * sizeof(Timestamp);
  for (const auto& col : b.columns) {
    bytes += col.size() * sizeof(double) + sizeof(col);
  }
  return bytes;
}

/// Copies the [lo, hi] (and, when `id_filter` >= 0 and the batch carries
/// per-row ids, matching-id) rows of a cached untrimmed decode into *out —
/// exactly the rows the serial decode-and-trim path would have produced,
/// in the same order, from the same decoded doubles.
void TrimBatch(const RecordBatch& src, Timestamp lo, Timestamp hi,
               SourceId id_filter, RecordBatch* out) {
  out->uniform_id = src.uniform_id;
  const size_t n = src.rows();
  const bool has_ids = !src.ids.empty();
  bool all = true;
  std::vector<uint32_t> sel;
  sel.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (src.timestamps[i] < lo || src.timestamps[i] > hi ||
        (has_ids && id_filter >= 0 && src.ids[i] != id_filter)) {
      all = false;
      continue;
    }
    sel.push_back(static_cast<uint32_t>(i));
  }
  if (all) {
    out->ids = src.ids;
    out->timestamps = src.timestamps;
    out->columns = src.columns;
    return;
  }
  if (has_ids) {
    out->ids.reserve(sel.size());
    for (uint32_t i : sel) out->ids.push_back(src.ids[i]);
  }
  out->timestamps.reserve(sel.size());
  for (uint32_t i : sel) out->timestamps.push_back(src.timestamps[i]);
  out->columns.resize(src.columns.size());
  for (size_t c = 0; c < src.columns.size(); ++c) {
    const auto& col = src.columns[c];
    if (col.empty()) continue;  // Stays empty (reads as all-missing).
    out->columns[c].reserve(sel.size());
    for (uint32_t i : sel) out->columns[c].push_back(col[i]);
  }
}

/// Transposes row-format records (MG decode, dirty buffers) into a
/// columnar batch with an explicit id vector.
void ColumnarizeInto(const std::vector<OperationalRecord>& records,
                     int num_tags, RecordBatch* batch) {
  const size_t n = records.size();
  batch->ids.reserve(n);
  batch->timestamps.reserve(n);
  batch->columns.assign(static_cast<size_t>(num_tags), {});
  for (auto& col : batch->columns) col.reserve(n);
  for (const auto& r : records) {
    batch->ids.push_back(r.id);
    batch->timestamps.push_back(r.ts);
    for (int t = 0; t < num_tags; ++t) {
      batch->columns[t].push_back(
          t < static_cast<int>(r.tags.size()) ? r.tags[t] : kNaN);
    }
  }
}

}  // namespace

/// Implementation shared by historical and slice scans, row and batch
/// flavors. Historical scans queue the (bounded, per-source) blob lists up
/// front; slice scans pull the series containers one segment chunk at a
/// time through OdhStore::NextSliceChunk (so no table iterator outlives
/// the store mutex) and use the (begin_ts, group) index for MG. Every blob
/// decodes into one columnar RecordBatch — the batch cursor hands those
/// out directly, the row cursor drains them one record at a time.
///
/// With a thread pool, the queued blobs are decoded in parallel right
/// after Init (each pool task decodes into its own slot, so emission order
/// is still queue order — byte-identical to the sequential scan); the
/// streaming side of slice scans remains sequential. The codec is
/// stateless, so one instance serves all decode tasks.
///
/// With a pool AND query_parallelism >= 2, multi-segment scans instead run
/// the segment-parallel driver: the candidate blobs split into scan units
/// along (structure, segment) boundaries, slice scans get one pinned
/// SliceCursor unit per surviving segment, and a bounded window of units
/// decodes on the pool while the cursor thread merges their batches back
/// in unit order — the exact sequence (including zero-row pruned batches)
/// the serial scan emits. Workers never block: a unit whose ready buffer
/// is full parks (returns its pool thread) and the consumer resubmits it
/// after draining. The decoded-blob cache, when configured, serves both
/// paths.
class OdhScanCursorImpl : public RecordCursor, public RecordBatchCursor {
 public:
  OdhScanCursorImpl(OdhReader* reader, int schema_type, SourceId id,
                    Timestamp lo, Timestamp hi, std::vector<int> wanted_tags,
                    std::vector<TagFilter> tag_filters, int num_tags,
                    CompressionSpec spec,
                    common::ScanCounters* counters = nullptr)
      : reader_(reader),
        schema_type_(schema_type),
        id_(id),
        lo_(lo),
        hi_(hi),
        wanted_tags_(std::move(wanted_tags)),
        tag_filters_(std::move(tag_filters)),
        num_tags_(num_tags),
        codec_(spec),
        counters_(counters) {
    cache_usable_ = TagMaskOf(wanted_tags_, &tag_mask_);
  }

  ~OdhScanCursorImpl() { AbandonParallel(); }

  Status InitHistorical(const RouteDecision& route) {
    SegmentScanStats seg_stats;
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetRts(schema_type_, id_, lo_,
                                                   hi_, &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kRts, std::move(b)});
      }
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetIrts(schema_type_, id_, lo_,
                                                    hi_, &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kIrts, std::move(b)});
      }
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_,
                                                  route.mg_group, lo_, hi_,
                                                  &seg_stats));
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    CountSegmentsPruned(seg_stats);
    if (reader_->EffectiveParallelism() >= 2 && queued_.size() >= 2) {
      const size_t groups = BuildUnitsFromQueued();
      if (units_.size() >= 2) {
        StartParallel(groups);
      } else {
        // One unit cannot beat the serial predecode; restore the queue.
        for (auto& u : units_) {
          for (auto& b : u->blobs) queued_.push_back(std::move(b));
        }
        units_.clear();
      }
    }
    if (!parallel_) PredecodeQueued();
    return CollectDirty();
  }

  Status InitSlice(const RouteDecision& route) {
    if (route.scan_mg) {
      SegmentScanStats seg_stats;
      ODH_ASSIGN_OR_RETURN(auto blobs,
                           reader_->store_->GetMg(schema_type_, -1, lo_,
                                                  hi_, &seg_stats));
      CountSegmentsPruned(seg_stats);
      for (auto& b : blobs) {
        queued_.push_back({BlobKind::kMg, std::move(b)});
      }
    }
    if (reader_->EffectiveParallelism() >= 2) {
      // Commit to the unit driver before listing segments: SliceSegments
      // counts segment pruning, so a post-listing fallback to the
      // streaming path would double-count it.
      size_t groups = BuildUnitsFromQueued();
      SegmentScanStats seg_stats;
      if (route.scan_rts) {
        ODH_ASSIGN_OR_RETURN(auto keys,
                             reader_->store_->SliceSegments(
                                 schema_type_, /*irts=*/false, lo_, hi_,
                                 &seg_stats));
        groups += keys.size();
        AddSliceUnits(/*irts=*/false, keys);
      }
      if (route.scan_irts) {
        ODH_ASSIGN_OR_RETURN(auto keys,
                             reader_->store_->SliceSegments(
                                 schema_type_, /*irts=*/true, lo_, hi_,
                                 &seg_stats));
        groups += keys.size();
        AddSliceUnits(/*irts=*/true, keys);
      }
      CountSegmentsPruned(seg_stats);
      StartParallel(groups);
    } else {
      rts_stream_.active = route.scan_rts;
      irts_stream_.active = route.scan_irts;
      PredecodeQueued();
    }
    return CollectDirty();
  }

  /// Row-at-a-time view: drains the current batch record by record.
  /// Poison contract: a failed refill poisons the cursor — continuing past
  /// it would silently drop the blob that failed to decode and resume with
  /// the next one, truncating the scan.
  Result<bool> Next(OperationalRecord* record) override {
    if (!poison_.ok()) return poison_;
    while (true) {
      if (row_pos_ < batch_.rows()) {
        const size_t i = row_pos_++;
        record->id = batch_.id_at(i);
        record->ts = batch_.timestamps[i];
        record->tags.assign(static_cast<size_t>(num_tags_), kNaN);
        for (int t = 0; t < num_tags_; ++t) {
          if (!batch_.columns[t].empty()) {
            record->tags[t] = batch_.columns[t][i];
          }
        }
        reader_->records_emitted_.fetch_add(1, std::memory_order_relaxed);
        if (counters_ != nullptr) {
          counters_->rows_scanned.fetch_add(1, std::memory_order_relaxed);
        }
        return true;
      }
      row_pos_ = 0;
      Result<bool> refilled = ProduceBatch(&batch_);
      if (!refilled.ok()) return poison_ = refilled.status();
      if (!refilled.value()) return false;
    }
  }

  /// Columnar view: one decoded blob per call (possibly zero rows).
  Result<bool> Next(RecordBatch* batch) override {
    if (!poison_.ok()) return poison_;
    Result<bool> produced = ProduceBatch(batch);
    if (!produced.ok()) return poison_ = produced.status();
    const bool more = produced.value();
    if (more) {
      reader_->records_emitted_.fetch_add(
          static_cast<int64_t>(batch->rows()), std::memory_order_relaxed);
      if (counters_ != nullptr) {
        counters_->batches.fetch_add(1, std::memory_order_relaxed);
        counters_->rows_scanned.fetch_add(
            static_cast<int64_t>(batch->rows()), std::memory_order_relaxed);
      }
    }
    return more;
  }

 private:
  Status CollectDirty() {
    return reader_->writer_->CollectDirty(schema_type_, id_, lo_, hi_,
                                          &dirty_);
  }

  /// Refills *batch from the next source of blobs: pre-decoded slots first
  /// (same order the blobs were queued in), then lazy decode, then the
  /// streaming scans, then the dirty buffers. False at end of stream.
  Result<bool> ProduceBatch(RecordBatch* batch) {
    batch->clear();
    if (parallel_) {
      ODH_ASSIGN_OR_RETURN(bool got, NextParallelBatch(batch));
      if (got) return true;
      if (!dirty_.empty()) {
        ColumnarizeRecords(dirty_, batch);
        dirty_.clear();
        return true;
      }
      return false;
    }
    if (!decoded_.empty()) {
      ODH_RETURN_IF_ERROR(decoded_statuses_.front());
      *batch = std::move(decoded_.front());
      decoded_.pop_front();
      decoded_statuses_.pop_front();
      return true;
    }
    if (!queued_.empty()) {
      QueuedBlob blob = std::move(queued_.front());
      queued_.pop_front();
      ODH_RETURN_IF_ERROR(DecodeBlobToBatch(blob, batch));
      return true;
    }
    ODH_ASSIGN_OR_RETURN(bool streamed, RefillFromStreams(batch));
    if (streamed) return true;
    if (!dirty_.empty()) {
      ColumnarizeRecords(dirty_, batch);
      dirty_.clear();
      return true;
    }
    return false;
  }

  /// Fans the queued blobs out to the reader's pool, one result slot per
  /// blob. Decode errors are parked in decoded_statuses_ and surface from
  /// Next at the position the sequential scan would have hit them.
  void PredecodeQueued() {
    common::ThreadPool* pool = reader_->pool_;
    if (pool == nullptr || pool->num_threads() < 2 || queued_.size() < 2) {
      return;
    }
    const size_t n = queued_.size();
    std::vector<QueuedBlob> blobs(std::make_move_iterator(queued_.begin()),
                                  std::make_move_iterator(queued_.end()));
    queued_.clear();
    decoded_.resize(n);
    decoded_statuses_.resize(n);
    pool->ParallelFor(static_cast<int64_t>(n), [&](int64_t i) {
      decoded_statuses_[static_cast<size_t>(i)] =
          DecodeBlobToBatch(blobs[static_cast<size_t>(i)],
                            &decoded_[static_cast<size_t>(i)]);
    });
  }

  /// Folds a store segment-elimination count into the reader-global and
  /// per-query counters.
  void CountSegmentsPruned(const SegmentScanStats& seg_stats) {
    if (seg_stats.segments_pruned == 0) return;
    reader_->segments_pruned_.fetch_add(seg_stats.segments_pruned,
                                        std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->segments_pruned.fetch_add(seg_stats.segments_pruned,
                                           std::memory_order_relaxed);
    }
  }

  /// Pulls the next overlapping blob from the chunked slice scans: RTS
  /// first, then IRTS, each advancing one segment at a time through the
  /// store (the chunk is materialized under the store mutex, so a
  /// concurrent retention drop can never invalidate this cursor).
  Result<bool> RefillFromStreams(RecordBatch* batch) {
    for (auto* stream : {&rts_stream_, &irts_stream_}) {
      const bool is_irts = stream == &irts_stream_;
      if (!stream->active) continue;
      while (true) {
        if (!stream->buffered.empty()) {
          QueuedBlob blob{is_irts ? BlobKind::kIrts : BlobKind::kRts,
                          std::move(stream->buffered.front())};
          stream->buffered.pop_front();
          ODH_RETURN_IF_ERROR(DecodeBlobToBatch(blob, batch));
          return true;
        }
        if (stream->done) break;
        SegmentScanStats seg_stats;
        std::vector<BlobRecord> chunk;
        ODH_RETURN_IF_ERROR(reader_->store_->NextSliceChunk(
            schema_type_, is_irts, lo_, hi_, &stream->cursor, &chunk,
            &stream->done, &seg_stats));
        CountSegmentsPruned(seg_stats);
        for (auto& rec : chunk) stream->buffered.push_back(std::move(rec));
      }
    }
    return false;
  }

  /// Zone-map pruning: skip the blob when its per-tag ranges cannot
  /// satisfy the pushed filters (paper §6 future work).
  bool Prunable(const BlobRecord& record) const {
    if (tag_filters_.empty() || record.zone_map.empty()) return false;
    auto map = ZoneMap::Decode(Slice(record.zone_map));
    if (!map.ok()) return false;  // Corrupt summaries never prune.
    return !map->MayMatch(tag_filters_);
  }

  /// Decodes one blob into a columnar batch, trimmed to [lo_, hi_]. Pruned
  /// blobs leave *batch empty. Called from pool tasks as well as the
  /// cursor thread; touches only immutable cursor state, the reader's
  /// atomic counters, and the (thread-safe) blob cache.
  Status DecodeBlobToBatch(const QueuedBlob& blob, RecordBatch* batch) {
    if (Prunable(blob.record)) {
      reader_->blobs_pruned_.fetch_add(1, std::memory_order_relaxed);
      if (counters_ != nullptr) {
        counters_->blobs_pruned.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    BlobCache* cache = reader_->cache_;
    if (cache != nullptr && cache_usable_) {
      BlobCacheKey key;
      key.schema_type = schema_type_;
      key.structure = blob.kind;
      key.seg = blob.record.seg;
      key.generation = blob.record.generation;
      key.rid = PackRid(blob.record.rid);
      key.tag_mask = tag_mask_;
      // MG blobs mix sources, so the cached value is un-id-filtered and
      // TrimBatch applies the id constraint; series blobs are single-id.
      const SourceId id_filter = blob.kind == BlobKind::kMg ? id_ : -1;
      if (auto hit = cache->Lookup(key)) {
        reader_->blob_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (counters_ != nullptr) {
          counters_->blob_cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
        TrimBatch(*hit, lo_, hi_, id_filter, batch);
        return Status::OK();
      }
      auto full = std::make_shared<RecordBatch>();
      ODH_RETURN_IF_ERROR(DecodeUntrimmed(blob, full.get()));
      TrimBatch(*full, lo_, hi_, id_filter, batch);
      const size_t bytes = BatchBytes(*full);
      cache->Insert(key, std::move(full), bytes);
      return Status::OK();
    }
    // Cache off (or unrepresentable tag set): decode straight into the
    // output batch and trim in place — the zero-extra-copy fast path.
    CountDecoded(blob.record);
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec_.DecodeMg(Slice(blob.record.blob),
                                          blob.record.begin, wanted_tags_,
                                          num_tags_, &records));
      std::vector<OperationalRecord> kept;
      kept.reserve(records.size());
      for (auto& r : records) {
        if (r.ts < lo_ || r.ts > hi_) continue;
        if (id_ >= 0 && r.id != id_) continue;
        kept.push_back(std::move(r));
      }
      ColumnarizeRecords(kept, batch);
      return Status::OK();
    }
    SeriesBatch series;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec_.DecodeRts(
          Slice(blob.record.blob), blob.record.id, blob.record.begin,
          blob.record.interval, wanted_tags_, num_tags_, &series));
    } else {
      ODH_RETURN_IF_ERROR(codec_.DecodeIrts(Slice(blob.record.blob),
                                            blob.record.id,
                                            blob.record.begin, wanted_tags_,
                                            num_tags_, &series));
    }
    // In-place trim to the time range; when nothing is dropped (interior
    // blob, the common case) the loop writes nothing and the decoded
    // columns move straight into the batch.
    const size_t n = series.num_points();
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      if (series.timestamps[i] < lo_ || series.timestamps[i] > hi_) continue;
      if (kept != i) {
        series.timestamps[kept] = series.timestamps[i];
        for (auto& col : series.columns) {
          if (!col.empty()) col[kept] = col[i];
        }
      }
      ++kept;
    }
    series.timestamps.resize(kept);
    for (auto& col : series.columns) {
      if (!col.empty()) col.resize(kept);
    }
    batch->uniform_id = series.id;
    batch->timestamps = std::move(series.timestamps);
    batch->columns = std::move(series.columns);
    batch->columns.resize(static_cast<size_t>(num_tags_));
    return Status::OK();
  }

  void CountDecoded(const BlobRecord& rec) {
    reader_->blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
    reader_->blob_bytes_read_.fetch_add(
        static_cast<int64_t>(rec.blob.size()), std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->blobs_decoded.fetch_add(1, std::memory_order_relaxed);
      counters_->blob_bytes_read.fetch_add(
          static_cast<int64_t>(rec.blob.size()), std::memory_order_relaxed);
    }
  }

  /// Decodes the whole blob — no time trim, no id filter — into the shape
  /// the cache stores: series batches with every column full-length, MG
  /// batches columnarized with per-row ids. TrimBatch recovers exactly the
  /// serial decode-and-trim output from this.
  Status DecodeUntrimmed(const QueuedBlob& blob, RecordBatch* batch) {
    CountDecoded(blob.record);
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec_.DecodeMg(Slice(blob.record.blob),
                                          blob.record.begin, wanted_tags_,
                                          num_tags_, &records));
      ColumnarizeRecords(records, batch);
      return Status::OK();
    }
    SeriesBatch series;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec_.DecodeRts(
          Slice(blob.record.blob), blob.record.id, blob.record.begin,
          blob.record.interval, wanted_tags_, num_tags_, &series));
    } else {
      ODH_RETURN_IF_ERROR(codec_.DecodeIrts(Slice(blob.record.blob),
                                            blob.record.id,
                                            blob.record.begin, wanted_tags_,
                                            num_tags_, &series));
    }
    batch->uniform_id = series.id;
    batch->timestamps = std::move(series.timestamps);
    batch->columns = std::move(series.columns);
    batch->columns.resize(static_cast<size_t>(num_tags_));
    return Status::OK();
  }

  // --- Segment-parallel driver ---------------------------------------
  //
  // Units are consumed strictly in order by the cursor thread; a bounded
  // window of them (EffectiveParallelism) runs on the pool at once. A
  // worker owns its unit's progress state exclusively while its task is
  // live and hands batches over under the unit mutex. Because dispatch is
  // in unit order and parked workers release their pool thread, the unit
  // at the merge frontier always makes progress — no consumer stall can
  // pin the pool.

  struct ScanUnit {
    // Immutable after construction:
    bool is_slice = false;
    bool slice_irts = false;
    std::vector<QueuedBlob> blobs;  // Historical / queued-MG units.
    // Progress state, touched only by the unit's active worker task:
    size_t next_blob = 0;
    OdhStore::SliceCursor slice_cursor;  // Pinned to one segment.
    bool slice_done = false;
    std::deque<BlobRecord> slice_buffered;
    // Handover state, guarded by mu:
    std::mutex mu;
    std::condition_variable cv;
    std::deque<RecordBatch> ready;
    std::deque<Status> ready_status;
    bool done = false;      // Worker finished (or was finalized).
    bool parked = false;    // Worker returned; consumer must resubmit.
    bool abandoned = false; // Cursor destroyed mid-scan; stop producing.
  };

  /// Splits queued_ into scan units along (structure, segment) boundaries,
  /// capped at kUnitMaxBlobs blobs each, preserving queue order. Returns
  /// the number of distinct (structure, segment) groups.
  size_t BuildUnitsFromQueued() {
    std::vector<QueuedBlob> all(std::make_move_iterator(queued_.begin()),
                                std::make_move_iterator(queued_.end()));
    queued_.clear();
    size_t groups = 0;
    size_t i = 0;
    while (i < all.size()) {
      const BlobKind kind = all[i].kind;
      const int64_t seg = all[i].record.seg;
      ++groups;
      size_t j = i;
      while (j < all.size() && all[j].kind == kind &&
             all[j].record.seg == seg) {
        ++j;
      }
      for (size_t k = i; k < j; k += kUnitMaxBlobs) {
        const size_t end = std::min(j, k + kUnitMaxBlobs);
        auto unit = std::make_unique<ScanUnit>();
        unit->blobs.assign(std::make_move_iterator(all.begin() + k),
                           std::make_move_iterator(all.begin() + end));
        units_.push_back(std::move(unit));
      }
      i = j;
    }
    return groups;
  }

  /// One pinned-cursor unit per surviving slice segment, in key order.
  void AddSliceUnits(bool irts, const std::vector<int64_t>& keys) {
    for (int64_t key : keys) {
      auto unit = std::make_unique<ScanUnit>();
      unit->is_slice = true;
      unit->slice_irts = irts;
      unit->slice_cursor.seg = key;
      unit->slice_cursor.pin = true;
      units_.push_back(std::move(unit));
    }
  }

  void StartParallel(size_t segment_groups) {
    parallel_ = true;
    window_ = reader_->EffectiveParallelism();
    reader_->segments_scanned_parallel_.fetch_add(
        static_cast<int64_t>(segment_groups), std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->segments_scanned_parallel.fetch_add(
          static_cast<int64_t>(segment_groups), std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(driver_mu_);
    while (next_dispatch_ < units_.size() && inflight_ < window_) {
      DispatchOneLocked();
    }
  }

  /// Requires driver_mu_. Hands the next unit in order to the pool.
  void DispatchOneLocked() {
    ScanUnit* u = units_[next_dispatch_++].get();
    ++inflight_;
    reader_->parallel_tasks_.fetch_add(1, std::memory_order_relaxed);
    reader_->pool_->Submit([this, u] { RunUnit(u); });
  }

  /// Guarantees the merge-frontier unit has a worker (dispatch is strictly
  /// in unit order), then fills the rest of the window.
  void EnsureDispatched() {
    std::unique_lock<std::mutex> lock(driver_mu_);
    while (next_dispatch_ <= current_unit_) {
      if (inflight_ < window_) {
        DispatchOneLocked();
      } else {
        driver_cv_.wait(lock);
      }
    }
    while (next_dispatch_ < units_.size() && inflight_ < window_) {
      DispatchOneLocked();
    }
  }

  /// Worker body: produce batches until the unit is exhausted, the buffer
  /// fills (park), an error occurs, or the cursor is abandoned. NOTHING
  /// may run after the park return — the consumer owns the unit from the
  /// moment parked is set.
  void RunUnit(ScanUnit* u) {
    while (true) {
      {
        std::unique_lock<std::mutex> lock(u->mu);
        if (u->abandoned) break;
        if (u->ready.size() >= kUnitBufferBatches) {
          u->parked = true;
          return;
        }
      }
      RecordBatch batch;
      bool more = false;
      Status st = NextUnitBatch(u, &batch, &more);
      if (st.ok() && !more) break;
      bool stop = false;
      {
        std::lock_guard<std::mutex> lock(u->mu);
        u->ready.push_back(std::move(batch));
        u->ready_status.push_back(std::move(st));
        stop = !u->ready_status.back().ok();
        u->cv.notify_all();
      }
      if (stop) break;  // The error surfaces at its serial position.
    }
    FinishUnit(u);
  }

  /// Next batch of one unit: the pre-listed blobs for historical/MG units,
  /// the pinned chunked slice scan for slice units (stats deliberately
  /// null: SliceSegments already counted this scan's pruning).
  Status NextUnitBatch(ScanUnit* u, RecordBatch* batch, bool* more) {
    *more = false;
    if (!u->is_slice) {
      if (u->next_blob >= u->blobs.size()) return Status::OK();
      *more = true;
      return DecodeBlobToBatch(u->blobs[u->next_blob++], batch);
    }
    while (true) {
      if (!u->slice_buffered.empty()) {
        QueuedBlob blob{u->slice_irts ? BlobKind::kIrts : BlobKind::kRts,
                        std::move(u->slice_buffered.front())};
        u->slice_buffered.pop_front();
        *more = true;
        return DecodeBlobToBatch(blob, batch);
      }
      if (u->slice_done) return Status::OK();
      std::vector<BlobRecord> chunk;
      ODH_RETURN_IF_ERROR(reader_->store_->NextSliceChunk(
          schema_type_, u->slice_irts, lo_, hi_, &u->slice_cursor, &chunk,
          &u->slice_done, /*stats=*/nullptr));
      for (auto& rec : chunk) u->slice_buffered.push_back(std::move(rec));
    }
  }

  void FinishUnit(ScanUnit* u) {
    {
      std::lock_guard<std::mutex> lock(u->mu);
      u->done = true;
      u->cv.notify_all();
    }
    std::lock_guard<std::mutex> lock(driver_mu_);
    --inflight_;
    driver_cv_.notify_all();
  }

  /// Consumer side of the ordered merge: batches come off the units in
  /// unit order, which is exactly the serial emission order.
  Result<bool> NextParallelBatch(RecordBatch* batch) {
    while (current_unit_ < units_.size()) {
      EnsureDispatched();
      ScanUnit* u = units_[current_unit_].get();
      RecordBatch b;
      Status st;
      bool got = false;
      bool resume = false;
      {
        std::unique_lock<std::mutex> lock(u->mu);
        if (u->ready.empty() && !u->done) {
          reader_->merge_stalls_.fetch_add(1, std::memory_order_relaxed);
          u->cv.wait(lock, [&] { return !u->ready.empty() || u->done; });
        }
        if (!u->ready.empty()) {
          b = std::move(u->ready.front());
          st = std::move(u->ready_status.front());
          u->ready.pop_front();
          u->ready_status.pop_front();
          got = true;
          if (u->parked) {
            u->parked = false;
            resume = true;  // Resubmit outside the unit lock.
          }
        }
      }
      if (resume) {
        ScanUnit* parked = u;
        reader_->pool_->Submit([this, parked] { RunUnit(parked); });
      }
      if (!got) {
        ++current_unit_;
        continue;
      }
      ODH_RETURN_IF_ERROR(st);
      *batch = std::move(b);
      return true;
    }
    return false;
  }

  /// Stops all workers and waits for them: abandoned workers exit at the
  /// next loop check, parked units (which have no live task) are finalized
  /// inline. After this, no task references the cursor — safe to destroy
  /// even mid-scan (LIMIT short-circuit, error poison).
  void AbandonParallel() {
    if (!parallel_) return;
    for (auto& up : units_) {
      std::lock_guard<std::mutex> lock(up->mu);
      up->abandoned = true;
      up->cv.notify_all();
    }
    for (auto& up : units_) {
      bool finalize = false;
      {
        std::lock_guard<std::mutex> lock(up->mu);
        if (up->parked && !up->done) {
          up->parked = false;
          up->done = true;
          finalize = true;
        }
      }
      if (finalize) {
        std::lock_guard<std::mutex> lock(driver_mu_);
        --inflight_;
        driver_cv_.notify_all();
      }
    }
    std::unique_lock<std::mutex> lock(driver_mu_);
    driver_cv_.wait(lock, [&] { return inflight_ == 0; });
    parallel_ = false;
  }

  void ColumnarizeRecords(const std::vector<OperationalRecord>& records,
                          RecordBatch* batch) const {
    ColumnarizeInto(records, num_tags_, batch);
  }

  OdhReader* reader_;
  int schema_type_;
  SourceId id_;  // -1 for slice scans.
  Timestamp lo_, hi_;
  std::vector<int> wanted_tags_;
  std::vector<TagFilter> tag_filters_;
  int num_tags_;
  ValueBlobCodec codec_;
  common::ScanCounters* counters_;  // Per-query profile; may be null.

  /// Chunked slice-scan state for one series structure: the next segment
  /// key to ask the store for, plus the not-yet-decoded remainder of the
  /// last chunk it handed back.
  struct SliceStream {
    bool active = false;
    bool done = false;
    OdhStore::SliceCursor cursor;
    std::deque<BlobRecord> buffered;
  };

  std::deque<QueuedBlob> queued_;
  /// Parallel-decode results, aligned slots in queue order.
  std::deque<RecordBatch> decoded_;
  std::deque<Status> decoded_statuses_;
  SliceStream rts_stream_;
  SliceStream irts_stream_;
  /// Current batch being drained by the row-at-a-time view.
  RecordBatch batch_;
  size_t row_pos_ = 0;
  Status poison_;  // First error seen; repeated by every later Next.
  std::vector<OperationalRecord> dirty_;

  /// Cache identity of this scan's decoded tag set (see TagMaskOf).
  uint64_t tag_mask_ = 0;
  bool cache_usable_ = false;

  /// Segment-parallel driver state. units_ and window_ are fixed at
  /// StartParallel; next_dispatch_ and inflight_ are guarded by
  /// driver_mu_; current_unit_ is touched only by the consumer thread.
  bool parallel_ = false;
  std::vector<std::unique_ptr<ScanUnit>> units_;
  size_t current_unit_ = 0;
  int window_ = 0;
  std::mutex driver_mu_;
  std::condition_variable driver_cv_;
  size_t next_dispatch_ = 0;
  int inflight_ = 0;
};

namespace {

/// Accumulates the aggregate-pushdown answer across blob summaries,
/// decoded blobs, and dirty rows.
class AggregateAccumulator {
 public:
  AggregateAccumulator(const std::vector<TagFilter>* filters,
                       const std::vector<int>* agg_tags)
      : filters_(filters), agg_tags_(agg_tags) {
    result_.tags.resize(agg_tags->size());
  }

  /// Folds in a whole blob from its summary (caller proved AllMatch).
  void AddSummary(const ZoneMap& map, int64_t num_rows) {
    result_.rows_matched += num_rows;
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      TagAggregate& agg = result_.tags[j];
      agg.count += map.count(tag);
      agg.sum += map.sum(tag);
      if (map.has_values(tag)) {
        if (!agg.has_value || map.min(tag) < agg.min) agg.min = map.min(tag);
        if (!agg.has_value || map.max(tag) > agg.max) agg.max = map.max(tag);
        agg.has_value = true;
      }
    }
  }

  /// Folds in one row (decoded blob or dirty buffer); `tags` may be
  /// shorter than the schema (missing = NaN).
  void AddRow(const std::vector<double>& tags) {
    for (const TagFilter& f : *filters_) {
      const double v =
          f.tag < static_cast<int>(tags.size()) ? tags[f.tag] : kNaN;
      if (!TagFilterMatches(f, v)) return;
    }
    ++result_.rows_matched;
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      const double v =
          tag < static_cast<int>(tags.size()) ? tags[tag] : kNaN;
      if (std::isnan(v)) continue;
      TagAggregate& agg = result_.tags[j];
      ++agg.count;
      agg.sum += v;
      if (!agg.has_value || v < agg.min) agg.min = v;
      if (!agg.has_value || v > agg.max) agg.max = v;
      agg.has_value = true;
    }
  }

  /// Folds in a decoded RTS/IRTS blob column-wise: builds a selection
  /// (time bounds, then each tag filter) and sweeps the per-tag arrays,
  /// skipping the per-row tag-vector materialization AddRow needs.
  /// Accumulation order matches AddRow, so results are bit-identical.
  /// Returns the number of rows inside [lo, hi] before tag filtering.
  int64_t AddColumns(const SeriesBatch& series, Timestamp lo, Timestamp hi) {
    const size_t n = series.num_points();
    sel_.clear();
    sel_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (series.timestamps[i] >= lo && series.timestamps[i] <= hi) {
        sel_.push_back(static_cast<int32_t>(i));
      }
    }
    const int64_t in_range = static_cast<int64_t>(sel_.size());
    for (const TagFilter& f : *filters_) {
      const std::vector<double>* col =
          f.tag >= 0 && f.tag < static_cast<int>(series.columns.size()) &&
                  !series.columns[f.tag].empty()
              ? &series.columns[f.tag]
              : nullptr;
      size_t out = 0;
      for (int32_t i : sel_) {
        const double v = col != nullptr ? (*col)[i] : kNaN;
        if (TagFilterMatches(f, v)) sel_[out++] = i;
      }
      sel_.resize(out);
    }
    result_.rows_matched += static_cast<int64_t>(sel_.size());
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      if (tag < 0 || tag >= static_cast<int>(series.columns.size()) ||
          series.columns[tag].empty()) {
        continue;  // Unprojected / unknown: all NULL, contributes nothing.
      }
      const std::vector<double>& col = series.columns[tag];
      TagAggregate& agg = result_.tags[j];
      for (int32_t i : sel_) {
        const double v = col[i];
        if (std::isnan(v)) continue;
        ++agg.count;
        agg.sum += v;
        if (!agg.has_value || v < agg.min) agg.min = v;
        if (!agg.has_value || v > agg.max) agg.max = v;
        agg.has_value = true;
      }
    }
    return in_range;
  }

  /// Folds in a decoded-blob-cache batch: same selection/sweep structure
  /// as AddColumns (so per-tag accumulation order — hence the floating-
  /// point result — matches the direct decode paths row for row), plus the
  /// per-row id constraint MG batches need. Returns rows inside [lo, hi]
  /// (and matching `id_filter`) before tag filtering.
  int64_t AddColumnsBatch(const RecordBatch& batch, Timestamp lo,
                          Timestamp hi, SourceId id_filter) {
    const size_t n = batch.rows();
    const bool has_ids = !batch.ids.empty();
    sel_.clear();
    sel_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (batch.timestamps[i] < lo || batch.timestamps[i] > hi) continue;
      if (has_ids && id_filter >= 0 && batch.ids[i] != id_filter) continue;
      sel_.push_back(static_cast<int32_t>(i));
    }
    const int64_t in_range = static_cast<int64_t>(sel_.size());
    for (const TagFilter& f : *filters_) {
      const std::vector<double>* col =
          f.tag >= 0 && f.tag < static_cast<int>(batch.columns.size()) &&
                  !batch.columns[f.tag].empty()
              ? &batch.columns[f.tag]
              : nullptr;
      size_t out = 0;
      for (int32_t i : sel_) {
        const double v = col != nullptr ? (*col)[i] : kNaN;
        if (TagFilterMatches(f, v)) sel_[out++] = i;
      }
      sel_.resize(out);
    }
    result_.rows_matched += static_cast<int64_t>(sel_.size());
    for (size_t j = 0; j < agg_tags_->size(); ++j) {
      const int tag = (*agg_tags_)[j];
      if (tag < 0 || tag >= static_cast<int>(batch.columns.size()) ||
          batch.columns[tag].empty()) {
        continue;
      }
      const std::vector<double>& col = batch.columns[tag];
      TagAggregate& agg = result_.tags[j];
      for (int32_t i : sel_) {
        const double v = col[i];
        if (std::isnan(v)) continue;
        ++agg.count;
        agg.sum += v;
        if (!agg.has_value || v < agg.min) agg.min = v;
        if (!agg.has_value || v > agg.max) agg.max = v;
        agg.has_value = true;
      }
    }
    return in_range;
  }

  /// Combines a partial result from a parallel aggregate unit. Counts add
  /// exactly; sums reassociate (the documented last-ulp difference of
  /// parallel aggregation); min/max merge exactly.
  void Merge(const AggregateResult& other) {
    result_.rows_matched += other.rows_matched;
    for (size_t j = 0; j < result_.tags.size(); ++j) {
      const TagAggregate& o = other.tags[j];
      TagAggregate& agg = result_.tags[j];
      agg.count += o.count;
      agg.sum += o.sum;
      if (o.has_value) {
        if (!agg.has_value || o.min < agg.min) agg.min = o.min;
        if (!agg.has_value || o.max > agg.max) agg.max = o.max;
        agg.has_value = true;
      }
    }
  }

  AggregateResult&& Take() { return std::move(result_); }

 private:
  const std::vector<TagFilter>* filters_;
  const std::vector<int>* agg_tags_;
  AggregateResult result_;
  std::vector<int32_t> sel_;
};

}  // namespace

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenHistorical(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteHistorical(schema_type, id));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, id, lo, hi, wanted_tags, std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitHistorical(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordCursor>> OdhReader::OpenSlice(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteSlice(schema_type));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, /*id=*/-1, lo, hi, wanted_tags,
      std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitSlice(route));
  return std::unique_ptr<RecordCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordBatchCursor>> OdhReader::OpenHistoricalBatches(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteHistorical(schema_type, id));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, id, lo, hi, wanted_tags, std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitHistorical(route));
  return std::unique_ptr<RecordBatchCursor>(std::move(cursor));
}

Result<std::unique_ptr<RecordBatchCursor>> OdhReader::OpenSliceBatches(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags,
    std::vector<TagFilter> tag_filters, common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ODH_ASSIGN_OR_RETURN(RouteDecision route,
                       router_->RouteSlice(schema_type));
  auto cursor = std::make_unique<OdhScanCursorImpl>(
      this, schema_type, /*id=*/-1, lo, hi, wanted_tags,
      std::move(tag_filters),
      static_cast<int>(type->tag_names.size()), type->compression, counters);
  ODH_RETURN_IF_ERROR(cursor->InitSlice(route));
  return std::unique_ptr<RecordBatchCursor>(std::move(cursor));
}

Result<AggregateResult> OdhReader::Aggregate(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<TagFilter>& tag_filters,
    const std::vector<int>& agg_tags, bool need_values,
    common::ScanCounters* counters) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  const int num_tags = static_cast<int>(type->tag_names.size());
  ValueBlobCodec codec(type->compression);
  AggregateAccumulator acc(&tag_filters, &agg_tags);

  // Tags the decode fallback actually needs: aggregated plus filtered.
  std::set<int> needed(agg_tags.begin(), agg_tags.end());
  for (const TagFilter& f : tag_filters) needed.insert(f.tag);
  const std::vector<int> decode_tags(needed.begin(), needed.end());

  // Candidate blobs, enumerated exactly like the scan paths (including the
  // segment-manifest elimination the Get*/NextSliceChunk entry points do).
  std::vector<QueuedBlob> blobs;
  auto add = [&blobs](BlobKind kind, std::vector<BlobRecord> recs) {
    for (auto& b : recs) blobs.push_back({kind, std::move(b)});
  };
  SegmentScanStats seg_stats;
  if (id >= 0) {
    ODH_ASSIGN_OR_RETURN(RouteDecision route,
                         router_->RouteHistorical(schema_type, id));
    if (route.scan_rts) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetRts(schema_type, id, lo, hi,
                                          &seg_stats));
      add(BlobKind::kRts, std::move(recs));
    }
    if (route.scan_irts) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetIrts(schema_type, id, lo, hi,
                                           &seg_stats));
      add(BlobKind::kIrts, std::move(recs));
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetMg(schema_type, route.mg_group, lo, hi,
                                         &seg_stats));
      add(BlobKind::kMg, std::move(recs));
    }
  } else {
    ODH_ASSIGN_OR_RETURN(RouteDecision route, router_->RouteSlice(schema_type));
    for (bool is_irts : {false, true}) {
      if (is_irts ? !route.scan_irts : !route.scan_rts) continue;
      OdhStore::SliceCursor seg_cursor;
      bool done = false;
      while (!done) {
        std::vector<BlobRecord> chunk;
        ODH_RETURN_IF_ERROR(store_->NextSliceChunk(schema_type, is_irts, lo,
                                                   hi, &seg_cursor, &chunk,
                                                   &done, &seg_stats));
        add(is_irts ? BlobKind::kIrts : BlobKind::kRts, std::move(chunk));
      }
    }
    if (route.scan_mg) {
      ODH_ASSIGN_OR_RETURN(auto recs,
                           store_->GetMg(schema_type, -1, lo, hi,
                                         &seg_stats));
      add(BlobKind::kMg, std::move(recs));
    }
  }
  if (seg_stats.segments_pruned > 0) {
    segments_pruned_.fetch_add(seg_stats.segments_pruned,
                               std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->segments_pruned.fetch_add(seg_stats.segments_pruned,
                                          std::memory_order_relaxed);
    }
  }

  // The decode fallback below may serve from the decoded-blob cache. The
  // cached value is the untrimmed, un-id-filtered decode of the tag set
  // this aggregate needs (agg + filter tags), so scan cursors with the
  // same projection share entries with aggregates.
  BlobCache* cache = cache_;
  uint64_t agg_mask = 0;
  const bool agg_cacheable =
      cache != nullptr && TagMaskOf(decode_tags, &agg_mask);

  // Per-blob worker: summary pruning / summary-only answers exactly as the
  // serial aggregate always did, folding into *acc (a unit-local
  // accumulator under the parallel driver). Thread-safe: it touches only
  // the stateless codec, the atomic counters, and the blob cache.
  auto process_blob = [&](const QueuedBlob& blob,
                          AggregateAccumulator* acc) -> Status {
    const BlobRecord& rec = blob.record;
    std::optional<ZoneMap> map;
    if (!rec.zone_map.empty()) {
      auto decoded = ZoneMap::Decode(Slice(rec.zone_map));
      if (decoded.ok()) map = *std::move(decoded);
    }
    if (map.has_value() && !tag_filters.empty() &&
        !map->MayMatch(tag_filters)) {
      blobs_pruned_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) {
        counters->blobs_pruned.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    // Summary-only answer: the blob must lie entirely inside the time
    // range, carry v2 aggregates covering every referenced tag, be exact
    // when values (not just counts) are wanted, prove that all rows pass
    // the filters, and — for MG under an id constraint — not mix sources.
    const bool covers_tags = [&] {
      if (!map.has_value()) return false;
      for (int tag : agg_tags) {
        if (tag < 0 || tag >= map->num_tags()) return false;
      }
      for (const TagFilter& f : tag_filters) {
        if (f.tag < 0 || f.tag >= map->num_tags()) return false;
      }
      return true;
    }();
    if (map.has_value() && map->has_aggregates() && covers_tags &&
        (blob.kind != BlobKind::kMg || id < 0) &&
        rec.begin >= lo && rec.end <= hi &&
        (!need_values || map->exact()) &&
        map->AllMatch(tag_filters, rec.n)) {
      acc->AddSummary(*map, rec.n);
      blobs_skipped_by_summary_.fetch_add(1, std::memory_order_relaxed);
      if (counters != nullptr) {
        counters->blobs_skipped_by_summary.fetch_add(
            1, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    // Fallback: decode and scan the boundary / unprovable blob.
    if (agg_cacheable) {
      BlobCacheKey key;
      key.schema_type = schema_type;
      key.structure = blob.kind;
      key.seg = rec.seg;
      key.generation = rec.generation;
      key.rid = PackRid(rec.rid);
      key.tag_mask = agg_mask;
      std::shared_ptr<const RecordBatch> full = cache->Lookup(key);
      if (full != nullptr) {
        blob_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        if (counters != nullptr) {
          counters->blob_cache_hits.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
        blob_bytes_read_.fetch_add(static_cast<int64_t>(rec.blob.size()),
                                   std::memory_order_relaxed);
        if (counters != nullptr) {
          counters->blobs_decoded.fetch_add(1, std::memory_order_relaxed);
          counters->blob_bytes_read.fetch_add(
              static_cast<int64_t>(rec.blob.size()),
              std::memory_order_relaxed);
        }
        auto decoded = std::make_shared<RecordBatch>();
        if (blob.kind == BlobKind::kMg) {
          std::vector<OperationalRecord> records;
          ODH_RETURN_IF_ERROR(codec.DecodeMg(Slice(rec.blob), rec.begin,
                                             decode_tags, num_tags,
                                             &records));
          ColumnarizeInto(records, num_tags, decoded.get());
        } else {
          SeriesBatch series;
          if (blob.kind == BlobKind::kRts) {
            ODH_RETURN_IF_ERROR(codec.DecodeRts(
                Slice(rec.blob), rec.id, rec.begin, rec.interval,
                decode_tags, num_tags, &series));
          } else {
            ODH_RETURN_IF_ERROR(codec.DecodeIrts(Slice(rec.blob), rec.id,
                                                 rec.begin, decode_tags,
                                                 num_tags, &series));
          }
          decoded->uniform_id = series.id;
          decoded->timestamps = std::move(series.timestamps);
          decoded->columns = std::move(series.columns);
          decoded->columns.resize(static_cast<size_t>(num_tags));
        }
        const size_t bytes = BatchBytes(*decoded);
        full = decoded;
        cache->Insert(key, std::move(decoded), bytes);
      }
      const int64_t in_range = acc->AddColumnsBatch(
          *full, lo, hi, blob.kind == BlobKind::kMg ? id : -1);
      records_emitted_.fetch_add(in_range, std::memory_order_relaxed);
      if (counters != nullptr) {
        counters->rows_scanned.fetch_add(in_range, std::memory_order_relaxed);
      }
      return Status::OK();
    }
    blobs_decoded_.fetch_add(1, std::memory_order_relaxed);
    blob_bytes_read_.fetch_add(static_cast<int64_t>(rec.blob.size()),
                               std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->blobs_decoded.fetch_add(1, std::memory_order_relaxed);
      counters->blob_bytes_read.fetch_add(
          static_cast<int64_t>(rec.blob.size()), std::memory_order_relaxed);
    }
    if (blob.kind == BlobKind::kMg) {
      std::vector<OperationalRecord> records;
      ODH_RETURN_IF_ERROR(codec.DecodeMg(Slice(rec.blob), rec.begin,
                                         decode_tags, num_tags, &records));
      for (const auto& r : records) {
        if (r.ts < lo || r.ts > hi) continue;
        if (id >= 0 && r.id != id) continue;
        records_emitted_.fetch_add(1, std::memory_order_relaxed);
        if (counters != nullptr) {
          counters->rows_scanned.fetch_add(1, std::memory_order_relaxed);
        }
        acc->AddRow(r.tags);
      }
      return Status::OK();
    }
    SeriesBatch series;
    if (blob.kind == BlobKind::kRts) {
      ODH_RETURN_IF_ERROR(codec.DecodeRts(Slice(rec.blob), rec.id, rec.begin,
                                          rec.interval, decode_tags,
                                          num_tags, &series));
    } else {
      ODH_RETURN_IF_ERROR(codec.DecodeIrts(Slice(rec.blob), rec.id,
                                           rec.begin, decode_tags, num_tags,
                                           &series));
    }
    const int64_t in_range = acc->AddColumns(series, lo, hi);
    records_emitted_.fetch_add(in_range, std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->rows_scanned.fetch_add(in_range, std::memory_order_relaxed);
    }
    return Status::OK();
  };

  // Partition the candidate blobs into units along (structure, segment)
  // boundaries — the same grouping the scan driver uses — and run them
  // with unit-local accumulators merged back in unit order. Counts merge
  // exactly; parallel sums reassociate (documented last-ulp caveat).
  struct AggUnit {
    size_t begin = 0;
    size_t end = 0;
    Status status;
    AggregateResult result;
  };
  std::vector<AggUnit> units;
  size_t groups = 0;
  {
    size_t i = 0;
    while (i < blobs.size()) {
      const BlobKind kind = blobs[i].kind;
      const int64_t seg = blobs[i].record.seg;
      ++groups;
      size_t j = i;
      while (j < blobs.size() && blobs[j].kind == kind &&
             blobs[j].record.seg == seg) {
        ++j;
      }
      for (size_t k = i; k < j; k += kUnitMaxBlobs) {
        AggUnit unit;
        unit.begin = k;
        unit.end = std::min(j, k + kUnitMaxBlobs);
        units.push_back(std::move(unit));
      }
      i = j;
    }
  }
  const int width = EffectiveParallelism();
  if (pool_ != nullptr && width >= 2 && units.size() >= 2) {
    parallel_tasks_.fetch_add(static_cast<int64_t>(units.size()),
                              std::memory_order_relaxed);
    segments_scanned_parallel_.fetch_add(static_cast<int64_t>(groups),
                                         std::memory_order_relaxed);
    if (counters != nullptr) {
      counters->segments_scanned_parallel.fetch_add(
          static_cast<int64_t>(groups), std::memory_order_relaxed);
    }
    std::atomic<size_t> next{0};
    auto work = [&] {
      while (true) {
        const size_t u = next.fetch_add(1, std::memory_order_relaxed);
        if (u >= units.size()) break;
        AggUnit& unit = units[u];
        AggregateAccumulator local(&tag_filters, &agg_tags);
        for (size_t b = unit.begin; b < unit.end; ++b) {
          unit.status = process_blob(blobs[b], &local);
          if (!unit.status.ok()) break;
        }
        unit.result = local.Take();
      }
    };
    // The caller participates, so cap helpers at the pool size and never
    // exceed width total workers.
    const int helpers =
        std::min(width, pool_->num_threads() + 1) - 1;
    std::mutex done_mu;
    std::condition_variable done_cv;
    int active = helpers;
    for (int h = 0; h < helpers; ++h) {
      pool_->Submit([&] {
        work();
        std::lock_guard<std::mutex> lock(done_mu);
        if (--active == 0) done_cv.notify_all();
      });
    }
    work();
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return active == 0; });
    }
    for (AggUnit& unit : units) {
      ODH_RETURN_IF_ERROR(unit.status);
      acc.Merge(unit.result);
    }
  } else {
    for (const QueuedBlob& blob : blobs) {
      ODH_RETURN_IF_ERROR(process_blob(blob, &acc));
    }
  }

  // Unflushed writer buffers (dirty-read isolation): row-format, already
  // filtered to [lo, hi] and `id` by the writer.
  std::vector<OperationalRecord> dirty;
  ODH_RETURN_IF_ERROR(writer_->CollectDirty(schema_type, id, lo, hi, &dirty));
  for (const auto& r : dirty) {
    if (r.ts < lo || r.ts > hi) continue;
    acc.AddRow(r.tags);
  }

  return acc.Take();
}

}  // namespace odh::core
