#include "core/writer.h"

#include "common/stopwatch.h"
#include "core/zone_map.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>

namespace odh::core {
namespace {

// Fibonacci-style mixer: source ids and group numbers are often small and
// sequential, so a plain modulo would put neighbouring sources in
// neighbouring shards — fine — but correlated bench workloads (ids striped
// across threads) would then collide on one shard. Mixing spreads them.
size_t MixToShard(uint64_t key, size_t num_shards) {
  key *= 0x9E3779B97F4A7C15ULL;
  key ^= key >> 32;
  return static_cast<size_t>(key % num_shards);
}

}  // namespace

OdhWriter::OdhWriter(OdhStore* store, ConfigComponent* config)
    : store_(store), config_(config) {
  int num_shards = config->options().writer_shards;
  if (num_shards < 1) num_shards = 1;
  shards_.reserve(static_cast<size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

OdhWriter::Shard& OdhWriter::ShardForSource(SourceId id) {
  return *shards_[MixToShard(static_cast<uint64_t>(id), shards_.size())];
}

OdhWriter::Shard& OdhWriter::ShardForGroup(int schema_type, int64_t group) {
  uint64_t key = (static_cast<uint64_t>(static_cast<uint32_t>(schema_type))
                  << 32) ^
                 static_cast<uint64_t>(group);
  return *shards_[MixToShard(key, shards_.size())];
}

Result<const ValueBlobCodec*> OdhWriter::CodecFor(int schema_type) {
  std::lock_guard<std::mutex> lock(codec_mu_);
  auto it = codecs_.find(schema_type);
  if (it == codecs_.end()) {
    ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                         config_->GetSchemaType(schema_type));
    it = codecs_.emplace(schema_type, ValueBlobCodec(type->compression))
             .first;
  }
  // The map never erases, so the pointer stays valid after the lock drops;
  // the codec itself is immutable and safe to share across threads.
  return &it->second;
}

Status OdhWriter::Ingest(const OperationalRecord& record) {
  // Config lookups are lock-free: the configuration component is immutable
  // once ingestion starts (setup happens before threads are spawned).
  ODH_ASSIGN_OR_RETURN(const DataSourceInfo* info,
                       config_->GetSource(record.id));
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(info->schema_type));
  if (record.tags.size() != type->tag_names.size()) {
    return Status::InvalidArgument("record arity mismatch for type " +
                                   type->name);
  }

  // A low-frequency source lives in its group's shard so the group buffer
  // has exactly one owner; a high-frequency source lives in its id's shard.
  const bool high_freq = IsHighFrequency(info->source_class);
  Shard& shard = high_freq
                     ? ShardForSource(record.id)
                     : ShardForGroup(info->schema_type, info->group);
  std::lock_guard<std::mutex> lock(shard.mu);

  auto [ts_it, first] = shard.last_ts.try_emplace(record.id, kMinTimestamp);
  if (!first && record.ts < ts_it->second) {
    return Status::InvalidArgument(
        "timestamps must be non-decreasing per source");
  }
  ts_it->second = record.ts;
  ++shard.stats.points_ingested;

  const int b = config_->options().batch_size;
  if (high_freq) {
    SourceBuffer& buffer = shard.source_buffers[record.id];
    if (buffer.columns.empty()) {
      buffer.columns.resize(type->tag_names.size());
    }
    buffer.timestamps.push_back(record.ts);
    for (size_t t = 0; t < record.tags.size(); ++t) {
      buffer.columns[t].push_back(record.tags[t]);
    }
    if (static_cast<int>(buffer.size()) >= b) {
      ODH_RETURN_IF_ERROR(FlushSource(shard, record.id, *info, &buffer));
    }
    return Status::OK();
  }

  // Low-frequency: mixed grouping.
  GroupBuffer& buffer =
      shard.group_buffers[{info->schema_type, info->group}];
  if (buffer.records.empty()) buffer.window_begin = record.ts;
  const Timestamp window = config_->options().mg_window;
  if (record.ts - buffer.window_begin > window &&
      !buffer.records.empty()) {
    ODH_RETURN_IF_ERROR(
        FlushGroup(shard, info->schema_type, info->group, &buffer));
    buffer.window_begin = record.ts;
  }
  buffer.records.push_back(record);
  if (static_cast<int>(buffer.records.size()) >= b) {
    ODH_RETURN_IF_ERROR(
        FlushGroup(shard, info->schema_type, info->group, &buffer));
  }
  return Status::OK();
}

Status OdhWriter::FlushSource(Shard& shard, SourceId id,
                              const DataSourceInfo& info,
                              SourceBuffer* buffer) {
  if (buffer->timestamps.empty()) return Status::OK();
  const Stopwatch flush_timer;
  ODH_ASSIGN_OR_RETURN(const ValueBlobCodec* codec,
                       CodecFor(info.schema_type));
  SeriesBatch batch;
  batch.id = id;
  batch.timestamps = std::move(buffer->timestamps);
  batch.columns = std::move(buffer->columns);
  buffer->timestamps.clear();
  buffer->columns.clear();

  const size_t n = batch.timestamps.size();
  const Timestamp begin = batch.timestamps.front();
  const Timestamp end = batch.timestamps.back();

  // Regularity check: a "regular" source whose batch actually is regular
  // (within 1% jitter) stores as RTS with snapped timestamps; anything else
  // stores as IRTS (paper Table 1).
  bool regular = IsRegular(info.source_class) && n >= 2;
  const Timestamp interval = info.expected_interval;
  if (regular) {
    const Timestamp tolerance = std::max<Timestamp>(interval / 100, 1);
    for (size_t i = 0; i < n; ++i) {
      Timestamp expected = begin + static_cast<Timestamp>(i) * interval;
      if (std::llabs(batch.timestamps[i] - expected) > tolerance) {
        regular = false;
        break;
      }
    }
  }

  std::string blob;
  std::string zone_map;
  if (config_->options().enable_zone_maps) {
    ZoneMap map = ZoneMap::FromColumns(batch.columns);
    map.Widen(codec->spec().max_error);  // Conservative under lossy codecs.
    zone_map = map.Encode();
  }
  if (regular) {
    for (size_t i = 0; i < n; ++i) {
      batch.timestamps[i] = begin + static_cast<Timestamp>(i) * interval;
    }
    ODH_RETURN_IF_ERROR(codec->EncodeRts(batch, interval, &blob));
    ODH_RETURN_IF_ERROR(store_->PutRts(info.schema_type, id, begin,
                                       batch.timestamps.back(), interval,
                                       static_cast<int64_t>(n), blob,
                                       zone_map));
    ++shard.stats.rts_blobs;
  } else {
    ODH_RETURN_IF_ERROR(codec->EncodeIrts(batch, &blob));
    ODH_RETURN_IF_ERROR(store_->PutIrts(info.schema_type, id, begin, end,
                                        static_cast<int64_t>(n), blob,
                                        zone_map));
    ++shard.stats.irts_blobs;
  }
  shard.stats.blob_bytes += static_cast<int64_t>(blob.size());
  if (flush_hist_ != nullptr) flush_hist_->Observe(flush_timer.ElapsedMicros());
  return Status::OK();
}

Status OdhWriter::FlushGroup(Shard& shard, int schema_type, int64_t group,
                             GroupBuffer* buffer) {
  if (buffer->records.empty()) return Status::OK();
  const Stopwatch flush_timer;
  // MG blobs are encoded losslessly: the paper's lossy codecs apply "when
  // the values are put into RTS or IRTS batch structures" (Figure 3), i.e.
  // at ingestion for high-frequency sources and at reorganization for
  // low-frequency ones. Compressing MG lossily too would double the error.
  static const ValueBlobCodec lossless{CompressionSpec{}};
  const ValueBlobCodec* codec = &lossless;
  std::vector<OperationalRecord> records = std::move(buffer->records);
  buffer->records.clear();
  std::stable_sort(records.begin(), records.end(),
                   [](const OperationalRecord& a, const OperationalRecord& b) {
                     return a.ts != b.ts ? a.ts < b.ts : a.id < b.id;
                   });
  Timestamp begin = records.front().ts;
  Timestamp end = records.back().ts;
  std::string blob;
  ODH_RETURN_IF_ERROR(codec->EncodeMg(records, begin, &blob));
  std::string zone_map;
  if (config_->options().enable_zone_maps && !records.empty()) {
    zone_map = ZoneMap::FromRecords(
                   records, static_cast<int>(records[0].tags.size()))
                   .Encode();
  }
  ODH_RETURN_IF_ERROR(store_->PutMg(schema_type, group, begin, end,
                                    static_cast<int64_t>(records.size()),
                                    blob, zone_map));
  ++shard.stats.mg_blobs;
  shard.stats.blob_bytes += static_cast<int64_t>(blob.size());
  if (flush_hist_ != nullptr) flush_hist_->Observe(flush_timer.ElapsedMicros());
  return Status::OK();
}

Status OdhWriter::Flush(int schema_type) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [id, buffer] : shard.source_buffers) {
      if (buffer.size() == 0) continue;
      ODH_ASSIGN_OR_RETURN(const DataSourceInfo* info,
                           config_->GetSource(id));
      if (info->schema_type != schema_type) continue;
      ODH_RETURN_IF_ERROR(FlushSource(shard, id, *info, &buffer));
    }
    for (auto& [key, buffer] : shard.group_buffers) {
      if (key.first != schema_type) continue;
      ODH_RETURN_IF_ERROR(FlushGroup(shard, key.first, key.second, &buffer));
    }
  }
  // Sync is idempotent, so if a transient fault burst outlives the storage
  // layer's backoff (which already retried each page), re-issue the whole
  // sync a few times before giving up.
  constexpr int kMaxSyncAttempts = 4;
  Status synced;
  for (int attempt = 0; attempt < kMaxSyncAttempts; ++attempt) {
    syncs_.fetch_add(1, std::memory_order_relaxed);
    synced = store_->Sync(schema_type);
    if (!synced.IsUnavailable()) return synced;
    sync_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  return synced;
}

Status OdhWriter::FlushAll() {
  for (int t = 0; t < config_->num_schema_types(); ++t) {
    ODH_RETURN_IF_ERROR(Flush(t));
  }
  return Status::OK();
}

Status OdhWriter::CollectDirty(int schema_type, SourceId id, Timestamp lo,
                               Timestamp hi,
                               std::vector<OperationalRecord>* out) const {
  // Reproduce the single-shard ordering byte for byte: high-frequency
  // sources by ascending id, then group buffers by (schema_type, group).
  // Shard snapshots are merged through ordered maps to get there.
  std::map<SourceId, std::vector<OperationalRecord>> by_source;
  std::map<std::pair<int, int64_t>, std::vector<OperationalRecord>> by_group;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [source_id, buffer] : shard.source_buffers) {
      if (id >= 0 && source_id != id) continue;
      if (buffer.size() == 0) continue;
      auto info = config_->GetSource(source_id);
      if (!info.ok() || (*info)->schema_type != schema_type) continue;
      std::vector<OperationalRecord>& dst = by_source[source_id];
      for (size_t i = 0; i < buffer.size(); ++i) {
        if (buffer.timestamps[i] < lo || buffer.timestamps[i] > hi) continue;
        OperationalRecord record;
        record.id = source_id;
        record.ts = buffer.timestamps[i];
        record.tags.resize(buffer.columns.size());
        for (size_t t = 0; t < buffer.columns.size(); ++t) {
          record.tags[t] = buffer.columns[t][i];
        }
        dst.push_back(std::move(record));
      }
    }
    for (const auto& [key, buffer] : shard.group_buffers) {
      if (key.first != schema_type) continue;
      std::vector<OperationalRecord>& dst = by_group[key];
      for (const OperationalRecord& record : buffer.records) {
        if (id >= 0 && record.id != id) continue;
        if (record.ts < lo || record.ts > hi) continue;
        dst.push_back(record);
      }
    }
  }
  for (auto& [source_id, records] : by_source) {
    (void)source_id;
    for (OperationalRecord& record : records) {
      out->push_back(std::move(record));
    }
  }
  for (auto& [key, records] : by_group) {
    (void)key;
    for (OperationalRecord& record : records) {
      out->push_back(std::move(record));
    }
  }
  return Status::OK();
}

WriterStats OdhWriter::stats() const {
  WriterStats total;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    total.points_ingested += shard.stats.points_ingested;
    total.rts_blobs += shard.stats.rts_blobs;
    total.irts_blobs += shard.stats.irts_blobs;
    total.mg_blobs += shard.stats.mg_blobs;
    total.blob_bytes += shard.stats.blob_bytes;
  }
  total.syncs = syncs_.load(std::memory_order_relaxed);
  total.sync_retries = sync_retries_.load(std::memory_order_relaxed);
  return total;
}

}  // namespace odh::core
