#include "core/wal.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/coding.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/checksum.h"

namespace odh::core {
namespace {

constexpr size_t kFrameHeader = 8;  // payload_len(4) + crc32c(4).

// Same bounded backoff model as the buffer pool; the WAL bypasses the pool
// so it carries its own retry loop.
constexpr int kMaxIoAttempts = 6;
constexpr std::chrono::microseconds kBackoffBase{1};
constexpr std::chrono::microseconds kBackoffCap{64};

void Backoff(int attempt) {
  auto delay = kBackoffBase * (1 << attempt);
  if (delay > kBackoffCap) delay = kBackoffCap;
  std::this_thread::sleep_for(delay);
}

}  // namespace

void EncodeWalPayload(WalRecord::Kind kind, int schema_type,
                      int64_t id_or_group, Timestamp begin, Timestamp end,
                      Timestamp interval, int64_t n, const Slice& blob,
                      const Slice& zone_map, std::string* dst) {
  dst->push_back(static_cast<char>(kind));
  PutVarint32(dst, static_cast<uint32_t>(schema_type));
  PutVarintSigned64(dst, id_or_group);
  PutVarintSigned64(dst, begin);
  PutVarintSigned64(dst, end);
  PutVarintSigned64(dst, interval);
  PutVarintSigned64(dst, n);
  PutLengthPrefixed(dst, blob);
  PutLengthPrefixed(dst, zone_map);
}

void WalRecord::EncodeTo(std::string* dst) const {
  EncodeWalPayload(kind, schema_type, id_or_group, begin, end, interval, n,
                   blob, zone_map, dst);
}

bool WalRecord::Decode(Slice input, WalRecord* record) {
  if (input.empty()) return false;
  uint8_t kind = static_cast<uint8_t>(input[0]);
  if (kind < 1 || kind > 7) return false;
  record->kind = static_cast<Kind>(kind);
  input.remove_prefix(1);
  uint32_t schema_type;
  if (!GetVarint32(&input, &schema_type)) return false;
  record->schema_type = static_cast<int>(schema_type);
  Slice blob, zone_map;
  if (!GetVarintSigned64(&input, &record->id_or_group) ||
      !GetVarintSigned64(&input, &record->begin) ||
      !GetVarintSigned64(&input, &record->end) ||
      !GetVarintSigned64(&input, &record->interval) ||
      !GetVarintSigned64(&input, &record->n) ||
      !GetLengthPrefixed(&input, &blob) ||
      !GetLengthPrefixed(&input, &zone_map)) {
    return false;
  }
  record->blob.assign(blob.data(), blob.size());
  record->zone_map.assign(zone_map.data(), zone_map.size());
  return input.empty();
}

Wal::Wal(storage::SimDisk* disk, storage::FileId file)
    : disk_(disk),
      file_(file),
      page_size_(disk->page_size()),
      tail_page_(std::make_unique<char[]>(disk->page_size())) {}

Result<std::unique_ptr<Wal>> Wal::Create(storage::SimDisk* disk,
                                         const std::string& name) {
  ODH_ASSIGN_OR_RETURN(storage::FileId file, disk->CreateFile(name));
  return std::unique_ptr<Wal>(new Wal(disk, file));
}

void Wal::Append(const Slice& payload) {
  ODH_CHECK(!payload.empty());
  // Short critical section: framing into the append queue only. Disk I/O
  // is the leader's job in Sync.
  std::lock_guard<std::mutex> lock(mu_);
  PutFixed32(&pending_, static_cast<uint32_t>(payload.size()));
  PutFixed32(&pending_, storage::Crc32c(payload.data(), payload.size()));
  pending_.append(payload.data(), payload.size());
  records_appended_.fetch_add(1, std::memory_order_relaxed);
}

Status Wal::WritePageRetry(storage::PageNo page, const char* buf) {
  Status status;
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    status = disk_->WritePage(file_, page, buf);
    if (!status.IsUnavailable()) return status;
    ++io_retries_;
    Backoff(attempt);
  }
  return status;
}

Result<storage::PageNo> Wal::AllocatePageRetry() {
  Result<storage::PageNo> result = Status::Internal("unreachable");
  for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
    result = disk_->AllocatePage(file_);
    if (!result.status().IsUnavailable()) return result;
    ++io_retries_;
    Backoff(attempt);
  }
  return result;
}

Status Wal::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  // Group commit: `target` is everything this caller needs durable. If a
  // concurrent leader's batch covers it, piggyback on that sync; otherwise
  // become the leader once the active one (if any) finishes.
  const uint64_t target = records_appended_.load(std::memory_order_relaxed);
  bool waited = false;
  for (;;) {
    if (records_synced_.load(std::memory_order_relaxed) >= target) {
      if (waited && piggybacked_ != nullptr) piggybacked_->Add();
      return Status::OK();
    }
    if (!sync_active_) break;
    sync_cv_.wait(lock);
    waited = true;
  }

  // Leader: take the whole queue (our records plus any appended since) and
  // write it with the mutex released, so appenders keep streaming into a
  // fresh queue. pages_allocated_ and tail_page_ are leader-only state,
  // handed from leader to leader through mu_.
  sync_active_ = true;
  std::string batch = std::move(pending_);
  pending_.clear();
  const uint64_t batch_target =
      records_appended_.load(std::memory_order_relaxed);
  lock.unlock();

  const Stopwatch sync_timer;
  Status result = Status::OK();
  size_t consumed = 0;
  while (consumed < batch.size()) {
    const uint64_t synced = synced_bytes_.load(std::memory_order_relaxed);
    const uint64_t page_index = synced / page_size_;
    const size_t offset = synced % page_size_;
    if (page_index >= pages_allocated_) {
      Result<storage::PageNo> allocated = AllocatePageRetry();
      if (!allocated.ok()) {
        result = allocated.status();
        break;
      }
      ODH_CHECK(*allocated == page_index);
      ++pages_allocated_;
      std::memset(tail_page_.get(), 0, page_size_);
    }
    size_t n = std::min(page_size_ - offset, batch.size() - consumed);
    std::memcpy(tail_page_.get() + offset, batch.data() + consumed, n);
    Status written = WritePageRetry(static_cast<storage::PageNo>(page_index),
                                    tail_page_.get());
    if (!written.ok()) {
      result = written;
      break;
    }
    // Release pairs with ReadDurable's acquire: a cursor that observes the
    // advanced watermark must also observe the page bytes behind it.
    synced_bytes_.store(synced + n, std::memory_order_release);
    consumed += n;
  }

  if (sync_hist_ != nullptr) sync_hist_->Observe(sync_timer.ElapsedMicros());
  if (group_commits_ != nullptr) group_commits_->Add();

  lock.lock();
  if (result.ok()) {
    records_synced_.store(batch_target, std::memory_order_relaxed);
  } else {
    // The durable prefix (previous iterations) stays durable. The
    // unwritten suffix goes back to the FRONT of the queue — ahead of
    // anything appended while we were writing — so log order always
    // equals append order.
    batch.erase(0, consumed);
    batch.append(pending_);
    pending_ = std::move(batch);
  }
  sync_active_ = false;
  lock.unlock();
  sync_cv_.notify_all();
  return result;
}

Result<Wal::TailChunk> Wal::ReadDurable(uint64_t from_lsn,
                                        size_t max_bytes) const {
  TailChunk out;
  const uint64_t durable = synced_bytes_.load(std::memory_order_acquire);
  out.durable_lsn = durable;
  out.next_lsn = from_lsn;
  if (from_lsn > durable) {
    return Status::OutOfRange("lsn " + std::to_string(from_lsn) +
                              " beyond durable log end " +
                              std::to_string(durable));
  }
  if (from_lsn == durable) return out;

  // Pages are loaded lazily as frames demand them (a blob record may
  // straddle several); a transient read fault retries with the same
  // bounded backoff the write path uses.
  const uint64_t base = (from_lsn / page_size_) * page_size_;
  std::string buf;
  uint64_t loaded_end = base;
  auto ensure = [&](uint64_t upto) -> Status {
    while (loaded_end < upto) {
      const auto page = static_cast<storage::PageNo>(loaded_end / page_size_);
      const size_t off = buf.size();
      buf.resize(off + page_size_);
      Status read;
      for (int attempt = 0; attempt < kMaxIoAttempts; ++attempt) {
        read = disk_->ReadPage(file_, page, &buf[off]);
        if (!read.IsUnavailable()) break;
        Backoff(attempt);
      }
      ODH_RETURN_IF_ERROR(read);
      loaded_end += page_size_;
    }
    return Status::OK();
  };

  uint64_t pos = from_lsn;
  size_t produced = 0;
  while (pos + kFrameHeader <= durable && produced < max_bytes) {
    ODH_RETURN_IF_ERROR(ensure(pos + kFrameHeader));
    const char* header = buf.data() + (pos - base);
    const uint32_t len = DecodeFixed32(header);
    const uint32_t crc = DecodeFixed32(header + 4);
    if (len == 0) {
      return Status::DataLoss("zero-length frame below the durable "
                              "watermark at lsn " + std::to_string(pos));
    }
    // A frame straddling the watermark is still being synced; it becomes
    // readable once the watermark moves past it.
    if (pos + kFrameHeader + len > durable) break;
    ODH_RETURN_IF_ERROR(ensure(pos + kFrameHeader + len));
    const char* payload = buf.data() + (pos - base) + kFrameHeader;
    if (storage::Crc32c(payload, len) != crc) {
      return Status::DataLoss("crc mismatch below the durable watermark "
                              "at lsn " + std::to_string(pos));
    }
    out.records.emplace_back(payload, len);
    produced += len;
    pos += kFrameHeader + len;
  }
  out.next_lsn = pos;
  return out;
}

Result<Wal::ReadResult> Wal::ReadLog(storage::SimDisk* disk,
                                     const std::string& name) {
  ReadResult result;
  Result<storage::FileId> file = disk->OpenFile(name);
  if (file.status().IsNotFound()) return result;  // Never synced: empty log.
  ODH_RETURN_IF_ERROR(file.status());
  ODH_ASSIGN_OR_RETURN(uint32_t pages, disk->PageCount(*file));

  const size_t page_size = disk->page_size();
  std::string log(static_cast<size_t>(pages) * page_size, '\0');
  for (uint32_t p = 0; p < pages; ++p) {
    ODH_RETURN_IF_ERROR(disk->ReadPage(*file, p, &log[p * page_size]));
  }

  // Logical end of the log: the last non-zero byte. Anything between the
  // first bad frame and this point is a torn tail.
  size_t logical_end = log.size();
  while (logical_end > 0 && log[logical_end - 1] == '\0') --logical_end;

  size_t pos = 0;
  while (pos + kFrameHeader <= log.size()) {
    uint32_t len = DecodeFixed32(log.data() + pos);
    uint32_t crc = DecodeFixed32(log.data() + pos + 4);
    if (len == 0) break;  // Zero-filled region: clean end of log.
    if (pos + kFrameHeader + len > log.size()) break;  // Torn length.
    const char* payload = log.data() + pos + kFrameHeader;
    if (storage::Crc32c(payload, len) != crc) break;  // Torn payload.
    result.records.emplace_back(payload, len);
    pos += kFrameHeader + len;
  }
  result.valid_bytes = pos;
  if (logical_end > pos) result.torn_bytes_dropped = logical_end - pos;
  return result;
}

}  // namespace odh::core
