#include "core/value_blob.h"

#include <cmath>
#include <limits>

#include "common/coding.h"

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

Status ValueBlobCodec::EncodeColumns(
    const std::vector<std::vector<double>>& columns, size_t n,
    std::string* out) const {
  // Encode each column, then write a directory of section offsets so a
  // reader can jump straight to the tags it needs.
  std::vector<std::string> sections(columns.size());
  for (size_t t = 0; t < columns.size(); ++t) {
    if (columns[t].size() != n) {
      return Status::InvalidArgument("column length mismatch");
    }
    ODH_RETURN_IF_ERROR(
        EncodeColumn(columns[t].data(), n, spec_, &sections[t]));
  }
  PutVarint32(out, static_cast<uint32_t>(columns.size()));
  for (const std::string& s : sections) {
    PutVarint32(out, static_cast<uint32_t>(s.size()));
  }
  for (const std::string& s : sections) out->append(s);
  return Status::OK();
}

Status ValueBlobCodec::DecodeColumns(
    Slice input, size_t n, const std::vector<int>& wanted_tags, int num_tags,
    std::vector<std::vector<double>>* columns) const {
  uint32_t stored_tags;
  if (!GetVarint32(&input, &stored_tags)) {
    return Status::Corruption("tag count");
  }
  if (static_cast<int>(stored_tags) != num_tags) {
    return Status::Corruption("tag count mismatch");
  }
  std::vector<uint32_t> sizes(stored_tags);
  for (uint32_t t = 0; t < stored_tags; ++t) {
    if (!GetVarint32(&input, &sizes[t])) {
      return Status::Corruption("tag section size");
    }
  }
  columns->assign(num_tags, {});
  // Only requested tags are decoded; others stay empty (the caller treats
  // empty columns as all-missing). Empty wanted list = decode everything.
  std::vector<bool> want(num_tags, wanted_tags.empty());
  for (int t : wanted_tags) {
    if (t < 0 || t >= num_tags) return Status::InvalidArgument("bad tag");
    want[t] = true;
  }
  size_t offset = 0;
  for (uint32_t t = 0; t < stored_tags; ++t) {
    if (want[t]) {
      if (offset + sizes[t] > input.size()) {
        return Status::Corruption("tag section out of range");
      }
      Slice section(input.data() + offset, sizes[t]);
      ODH_RETURN_IF_ERROR(DecodeColumn(section, n, &(*columns)[t]));
    }
    offset += sizes[t];
  }
  return Status::OK();
}

Status ValueBlobCodec::EncodeRts(const SeriesBatch& batch, Timestamp interval,
                                 std::string* out) const {
  const size_t n = batch.num_points();
  if (n == 0) return Status::InvalidArgument("empty batch");
  if (interval <= 0) return Status::InvalidArgument("bad interval");
  for (size_t i = 0; i < n; ++i) {
    if (batch.timestamps[i] !=
        batch.timestamps[0] + static_cast<Timestamp>(i) * interval) {
      return Status::InvalidArgument("RTS batch is not regular");
    }
  }
  PutVarint32(out, static_cast<uint32_t>(n));
  PutVarint64(out, static_cast<uint64_t>(interval));
  return EncodeColumns(batch.columns, n, out);
}

Status ValueBlobCodec::DecodeRts(Slice blob, SourceId id, Timestamp begin,
                                 Timestamp interval,
                                 const std::vector<int>& wanted_tags,
                                 int num_tags, SeriesBatch* batch) const {
  uint32_t n;
  uint64_t stored_interval;
  if (!GetVarint32(&blob, &n) || !GetVarint64(&blob, &stored_interval)) {
    return Status::Corruption("rts header");
  }
  if (interval != 0 &&
      static_cast<Timestamp>(stored_interval) != interval) {
    return Status::Corruption("rts interval mismatch");
  }
  batch->id = id;
  batch->timestamps.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    batch->timestamps[i] =
        begin + static_cast<Timestamp>(i) *
                    static_cast<Timestamp>(stored_interval);
  }
  ODH_RETURN_IF_ERROR(
      DecodeColumns(blob, n, wanted_tags, num_tags, &batch->columns));
  // Materialize undecoded columns as all-missing for positional stability.
  for (auto& col : batch->columns) {
    if (col.empty()) col.assign(n, kNaN);
  }
  return Status::OK();
}

Status ValueBlobCodec::EncodeIrts(const SeriesBatch& batch,
                                  std::string* out) const {
  const size_t n = batch.num_points();
  if (n == 0) return Status::InvalidArgument("empty batch");
  for (size_t i = 1; i < n; ++i) {
    if (batch.timestamps[i] < batch.timestamps[i - 1]) {
      return Status::InvalidArgument("timestamps must be non-decreasing");
    }
  }
  PutVarint32(out, static_cast<uint32_t>(n));
  EncodeTimestamps(batch.timestamps.data(), n, batch.timestamps[0], out);
  return EncodeColumns(batch.columns, n, out);
}

Status ValueBlobCodec::DecodeIrts(Slice blob, SourceId id, Timestamp begin,
                                  const std::vector<int>& wanted_tags,
                                  int num_tags, SeriesBatch* batch) const {
  uint32_t n;
  if (!GetVarint32(&blob, &n)) return Status::Corruption("irts header");
  batch->id = id;
  ODH_RETURN_IF_ERROR(DecodeTimestamps(&blob, n, begin, &batch->timestamps));
  ODH_RETURN_IF_ERROR(
      DecodeColumns(blob, n, wanted_tags, num_tags, &batch->columns));
  for (auto& col : batch->columns) {
    if (col.empty()) col.assign(n, kNaN);
  }
  return Status::OK();
}

Status ValueBlobCodec::EncodeMg(const std::vector<OperationalRecord>& records,
                                Timestamp begin, std::string* out) const {
  const size_t n = records.size();
  if (n == 0) return Status::InvalidArgument("empty batch");
  const size_t num_tags = records[0].tags.size();
  PutVarint32(out, static_cast<uint32_t>(n));
  // Ids: zig-zag deltas (records sorted by (ts, id); ids still cluster).
  int64_t prev_id = 0;
  for (const OperationalRecord& r : records) {
    if (r.tags.size() != num_tags) {
      return Status::InvalidArgument("ragged MG records");
    }
    PutVarintSigned64(out, r.id - prev_id);
    prev_id = r.id;
  }
  // Timestamps: delta-of-delta against the window start.
  std::vector<Timestamp> ts(n);
  for (size_t i = 0; i < n; ++i) ts[i] = records[i].ts;
  EncodeTimestamps(ts.data(), n, begin, out);
  // Values: tag-major columns across the grouped records.
  std::vector<std::vector<double>> columns(num_tags,
                                           std::vector<double>(n, kNaN));
  for (size_t i = 0; i < n; ++i) {
    for (size_t t = 0; t < num_tags; ++t) columns[t][i] = records[i].tags[t];
  }
  return EncodeColumns(columns, n, out);
}

Status ValueBlobCodec::DecodeMg(Slice blob, Timestamp begin,
                                const std::vector<int>& wanted_tags,
                                int num_tags,
                                std::vector<OperationalRecord>* records)
    const {
  uint32_t n;
  if (!GetVarint32(&blob, &n)) return Status::Corruption("mg header");
  records->assign(n, OperationalRecord{});
  int64_t prev_id = 0;
  for (uint32_t i = 0; i < n; ++i) {
    int64_t delta;
    if (!GetVarintSigned64(&blob, &delta)) return Status::Corruption("mg id");
    prev_id += delta;
    (*records)[i].id = prev_id;
  }
  std::vector<Timestamp> ts;
  ODH_RETURN_IF_ERROR(DecodeTimestamps(&blob, n, begin, &ts));
  std::vector<std::vector<double>> columns;
  ODH_RETURN_IF_ERROR(
      DecodeColumns(blob, n, wanted_tags, num_tags, &columns));
  for (uint32_t i = 0; i < n; ++i) {
    (*records)[i].ts = ts[i];
    (*records)[i].tags.assign(num_tags, kNaN);
    for (int t = 0; t < num_tags; ++t) {
      if (!columns[t].empty()) (*records)[i].tags[t] = columns[t][i];
    }
  }
  return Status::OK();
}

}  // namespace odh::core
