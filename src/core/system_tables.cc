#include "core/system_tables.h"

#include <utility>

#include "sql/relational_provider.h"

namespace odh::core {
namespace {

/// Cursor over rows materialized at Scan time. Constraints are re-checked
/// per row (system tables are tiny; nothing is pushed down).
class SnapshotCursor : public sql::RowCursor {
 public:
  SnapshotCursor(std::vector<Row> rows, sql::ScanSpec spec)
      : rows_(std::move(rows)), spec_(std::move(spec)) {}

  Result<bool> Next(Row* row) override {
    while (pos_ < rows_.size()) {
      Row& candidate = rows_[pos_++];
      if (!sql::RowSatisfies(candidate, spec_.constraints)) continue;
      *row = std::move(candidate);
      return true;
    }
    return false;
  }

 private:
  std::vector<Row> rows_;
  sql::ScanSpec spec_;
  size_t pos_ = 0;
};

std::unique_ptr<sql::RowCursor> MakeCursor(std::vector<Row> rows,
                                           const sql::ScanSpec& spec) {
  return std::make_unique<SnapshotCursor>(std::move(rows), spec);
}

}  // namespace

MetricsSystemTable::MetricsSystemTable(
    const common::MetricsRegistry* registry)
    : registry_(registry),
      schema_({{"name", DataType::kString},
               {"kind", DataType::kString},
               {"value", DataType::kDouble}}) {}

Result<std::unique_ptr<sql::RowCursor>> MetricsSystemTable::Scan(
    const sql::ScanSpec& spec) {
  std::vector<Row> rows;
  for (const common::MetricSample& s : registry_->Collect()) {
    rows.push_back({Datum::String(s.name), Datum::String(s.kind),
                    Datum::Double(s.value)});
  }
  return MakeCursor(std::move(rows), spec);
}

sql::ScanEstimate MetricsSystemTable::Estimate(
    const sql::ScanSpec& spec) const {
  (void)spec;
  return {64, 4096};
}

QueriesSystemTable::QueriesSystemTable(const sql::SqlEngine* engine)
    : engine_(engine),
      schema_({{"statement", DataType::kString},
               {"path", DataType::kString},
               {"rows_returned", DataType::kInt64},
               {"rows_scanned", DataType::kInt64},
               {"batches", DataType::kInt64},
               {"blobs_decoded", DataType::kInt64},
               {"blobs_pruned", DataType::kInt64},
               {"blobs_skipped_by_summary", DataType::kInt64},
               {"blob_bytes_read", DataType::kInt64},
               {"plan_micros", DataType::kDouble},
               {"total_micros", DataType::kDouble},
               {"segments_pruned", DataType::kInt64},
               {"segments_scanned_parallel", DataType::kInt64},
               {"blob_cache_hits", DataType::kInt64},
               // Memory-governance columns (appended, like the storage
               // table's segment columns, so positional readers keep
               // working).
               {"mem_peak_bytes", DataType::kInt64},
               {"spill_runs", DataType::kInt64},
               {"spill_bytes", DataType::kInt64}}) {}

Result<std::unique_ptr<sql::RowCursor>> QueriesSystemTable::Scan(
    const sql::ScanSpec& spec) {
  std::vector<Row> rows;
  for (const sql::QueryProfile& p : engine_->RecentQueries()) {
    rows.push_back({Datum::String(p.statement), Datum::String(p.path),
                    Datum::Int64(p.rows_returned),
                    Datum::Int64(p.rows_scanned), Datum::Int64(p.batches),
                    Datum::Int64(p.blobs_decoded),
                    Datum::Int64(p.blobs_pruned),
                    Datum::Int64(p.blobs_skipped_by_summary),
                    Datum::Int64(p.blob_bytes_read),
                    Datum::Double(p.plan_micros),
                    Datum::Double(p.total_micros),
                    Datum::Int64(p.segments_pruned),
                    Datum::Int64(p.segments_scanned_parallel),
                    Datum::Int64(p.blob_cache_hits),
                    Datum::Int64(p.mem_peak_bytes),
                    Datum::Int64(p.spill_runs),
                    Datum::Int64(p.spill_bytes)});
  }
  return MakeCursor(std::move(rows), spec);
}

sql::ScanEstimate QueriesSystemTable::Estimate(
    const sql::ScanSpec& spec) const {
  (void)spec;
  return {128, 16384};
}

StorageSystemTable::StorageSystemTable(const ConfigComponent* config,
                                       const OdhStore* store)
    : config_(config),
      store_(store),
      schema_({{"schema_type", DataType::kInt64},
               {"type_name", DataType::kString},
               {"container", DataType::kString},
               {"blob_count", DataType::kInt64},
               {"point_count", DataType::kInt64},
               {"blob_bytes", DataType::kInt64},
               {"raw_bytes", DataType::kInt64},
               {"compression_ratio", DataType::kDouble},
               // Segment columns (appended; NULL on the aggregate
               // 'rts'/'irts'/'mg' rows, filled on 'segment' rows).
               {"segment_key", DataType::kInt64},
               {"generation", DataType::kInt64},
               {"tier", DataType::kString},
               {"lo_ts", DataType::kInt64},
               {"hi_ts", DataType::kInt64}}) {}

Result<std::unique_ptr<sql::RowCursor>> StorageSystemTable::Scan(
    const sql::ScanSpec& spec) {
  std::vector<Row> rows;
  for (int t = 0; t < config_->num_schema_types(); ++t) {
    ODH_ASSIGN_OR_RETURN(const SchemaType* type, config_->GetSchemaType(t));
    const int64_t value_width =
        8 * (1 + static_cast<int64_t>(type->tag_names.size()));
    const std::pair<const char*, ContainerStats> containers[] = {
        {"rts", store_->rts_stats(t)},
        {"irts", store_->irts_stats(t)},
        {"mg", store_->mg_stats(t)},
    };
    for (const auto& [container, stats] : containers) {
      // Raw size = row-format equivalent: 8 bytes of timestamp plus 8 per
      // tag, per point. The ratio is what ValueBlob packing bought us.
      const int64_t raw_bytes = stats.point_count * value_width;
      const double ratio =
          stats.blob_bytes > 0
              ? static_cast<double>(raw_bytes) / stats.blob_bytes
              : 0.0;
      rows.push_back({Datum::Int64(t), Datum::String(type->name),
                      Datum::String(container),
                      Datum::Int64(stats.blob_count),
                      Datum::Int64(stats.point_count),
                      Datum::Int64(stats.blob_bytes),
                      Datum::Int64(raw_bytes), Datum::Double(ratio),
                      Datum::Null(), Datum::Null(), Datum::Null(),
                      Datum::Null(), Datum::Null()});
    }
    // One row per segment, key (= time) order: the partition-level view
    // behind the aggregates. container = 'segment' keeps the aggregate
    // rows' consumers (WHERE container = 'rts') unaffected.
    for (const SegmentInfo& seg : store_->SegmentInfos(t)) {
      const int64_t raw_bytes = seg.point_count * value_width;
      const double ratio =
          seg.blob_bytes > 0
              ? static_cast<double>(raw_bytes) / seg.blob_bytes
              : 0.0;
      rows.push_back({Datum::Int64(t), Datum::String(type->name),
                      Datum::String("segment"),
                      Datum::Int64(seg.blob_count),
                      Datum::Int64(seg.point_count),
                      Datum::Int64(seg.blob_bytes),
                      Datum::Int64(raw_bytes), Datum::Double(ratio),
                      Datum::Int64(seg.key),
                      Datum::Int64(seg.generation),
                      Datum::String(storage::SegmentTierName(seg.tier)),
                      Datum::Int64(seg.lo), Datum::Int64(seg.hi)});
    }
  }
  return MakeCursor(std::move(rows), spec);
}

sql::ScanEstimate StorageSystemTable::Estimate(
    const sql::ScanSpec& spec) const {
  (void)spec;
  return {16, 2048};
}

}  // namespace odh::core
