#ifndef ODH_CORE_CONFIG_H_
#define ODH_CORE_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "core/compression.h"

namespace odh::core {

/// How a data source samples (paper §2, Table 1). High-frequency sources
/// get per-source structures (RTS/IRTS); low-frequency sources are grouped
/// (MG) at ingestion and reorganized into per-source structures for
/// historical queries.
enum class SourceClass {
  kRegularHighFrequency,
  kIrregularHighFrequency,
  kRegularLowFrequency,
  kIrregularLowFrequency,
};

std::string SourceClassName(SourceClass c);

inline bool IsHighFrequency(SourceClass c) {
  return c == SourceClass::kRegularHighFrequency ||
         c == SourceClass::kIrregularHighFrequency;
}
inline bool IsRegular(SourceClass c) {
  return c == SourceClass::kRegularHighFrequency ||
         c == SourceClass::kRegularLowFrequency;
}

/// A schema type: the fixed record shape shared by a set of data sources.
/// The virtual table for it exposes (id BIGINT, timestamp TIMESTAMP,
/// <tags...> DOUBLE).
struct SchemaType {
  std::string name;
  std::vector<std::string> tag_names;
  CompressionSpec compression;
};

/// Registered metadata for one data source.
struct DataSourceInfo {
  SourceId id = 0;
  int schema_type = -1;
  SourceClass source_class = SourceClass::kIrregularHighFrequency;
  /// Expected sampling interval (used to verify RTS regularity).
  Timestamp expected_interval = 0;
  /// MG group for low-frequency sources.
  int64_t group = 0;
};

/// Tunables of the ODH instance.
struct OdhOptions {
  /// Batch size b: points packed into one ValueBlob (paper §2).
  int batch_size = 256;
  /// Sources per MG group.
  int mg_group_size = 1024;
  /// MG time window: an MG blob never spans more than this.
  Timestamp mg_window = 15 * kMicrosPerMinute;
  /// Sources classified as high-frequency at or above this rate.
  double high_frequency_threshold_hz = 1.0;
  /// When true, the data router resolves metadata through SQL queries on
  /// the metadata tables (the paper's implementation, whose overhead
  /// dominates small queries like LQ1); when false it uses direct in-memory
  /// lookups (the fix the paper proposes for a future Informix version).
  bool sql_metadata_router = true;
  /// Per-blob tag min/max zone maps: the paper's §6 future-work indexing
  /// that lets queries on attribute values skip non-matching ValueBlobs.
  bool enable_zone_maps = true;
  /// Buffer-pool pages for the embedded storage engine.
  size_t pool_pages = 8192;
  /// Writer shards: Ingest routes each source (or MG group) to one of
  /// these by hash, so concurrent ingestion threads rarely contend. One
  /// shard reproduces the single-threaded writer exactly.
  int writer_shards = 8;
  /// Worker threads for parallel blob decoding on the read path. Values
  /// below 2 keep scans fully sequential (no thread pool is created).
  int read_parallelism = 0;
  /// Columnar batch execution: virtual-table scans emit one tag-major
  /// batch per decoded ValueBlob and filters run as vectorized kernels
  /// instead of per-row Datum evaluation. Off = the row-at-a-time path.
  bool enable_vectorized_scan = true;
  /// Aggregate pushdown: COUNT/SUM/AVG/MIN/MAX over blobs fully covered
  /// by the time range and tag predicates are answered from the per-blob
  /// summary alone (zero decompression). Off = aggregates scan rows.
  bool enable_aggregate_pushdown = true;
  /// Observability: wire flush/sync instruments into the components,
  /// register the pull-gauges, and expose the odh_metrics / odh_queries /
  /// odh_storage system tables. Off exists for the bench's overhead
  /// ablation — production instances have no reason to disable it.
  bool enable_metrics = true;
  /// Time-partitioned segments: blobs are routed to the segment covering
  /// floor(begin_ts / segment_span). Scans consult segment time bounds
  /// first, so a recent-window query skips cold history with O(segments)
  /// metadata checks; retention drops whole segments as a metadata
  /// operation. 0 (the default) keeps the pre-segment layout: one
  /// unbounded segment per schema type, no pruning, no retention.
  Timestamp segment_span = 0;
  /// Compaction merges small cold blobs up to this many points per
  /// rewritten blob (RTS/IRTS only; MG blobs are left alone so the WAL's
  /// content-keyed delete cancellation stays valid).
  int64_t compaction_max_blob_points = 4096;
  /// Worker cap for segment-parallel query execution: multi-segment scans
  /// and aggregate pushdowns fan one task per surviving (post-prune)
  /// segment run across the shared thread pool, merged back in emission
  /// order. -1 (the default) uses the pool size; 0 or 1 keeps every scan
  /// on the serial path. The pool itself is created when
  /// max(read_parallelism, query_parallelism) > 1.
  int query_parallelism = -1;
  /// Capacity in bytes of the shared decoded-blob cache (LRU, keyed by
  /// {segment, generation, blob rid, decoded tag set}); repeated queries
  /// over immutable cold blobs skip decompression entirely. 0 (the
  /// default) disables the cache.
  size_t blob_cache_bytes = 0;
  /// Memory governance budgets (bytes; 0 = unbounded at that level). The
  /// hierarchy is process -> session -> query: every buffered execution
  /// path (ORDER BY working sets, aggregation state, materialized
  /// results) reserves against all three. An ORDER BY that outgrows
  /// `query_memory_budget` spills sorted runs to the store's disk and
  /// merges them on emission; non-spillable paths fail fast with
  /// ResourceExhausted. `server_memory_budget` additionally arms
  /// HistorianServer's admission gate: new connections are rejected with
  /// kMemoryPressure while reserved bytes sit at or above the budget.
  int64_t query_memory_budget = 0;
  int64_t session_memory_budget = 0;
  int64_t server_memory_budget = 0;
};

/// The ODH configuration component (paper §3): owns schema-type and
/// data-source metadata used by the storage and query components.
class ConfigComponent {
 public:
  explicit ConfigComponent(OdhOptions options) : options_(options) {}

  const OdhOptions& options() const { return options_; }

  /// Flips the scan-path toggles on a live instance. Benchmarks and tests
  /// use this to compare row-at-a-time, vectorized, and pushdown execution
  /// over the same loaded data.
  void SetScanPathOptions(bool vectorized, bool aggregate_pushdown) {
    options_.enable_vectorized_scan = vectorized;
    options_.enable_aggregate_pushdown = aggregate_pushdown;
  }

  /// Flips the segment-parallel scan cap on a live instance (same
  /// quiesced-toggle contract as SetScanPathOptions): benches and the
  /// parity tests compare serial vs parallel execution over one store.
  /// Cannot raise the worker count past the pool created at construction.
  void SetQueryParallelism(int query_parallelism) {
    options_.query_parallelism = query_parallelism;
  }

  Result<int> DefineSchemaType(SchemaType type);
  Result<const SchemaType*> GetSchemaType(int type_id) const;
  Result<int> FindSchemaType(const std::string& name) const;
  int num_schema_types() const { return static_cast<int>(types_.size()); }

  /// Registers a source; derives its class from `sample_interval` and
  /// `regular`, and assigns an MG group for low-frequency sources.
  Status RegisterSource(SourceId id, int schema_type,
                        Timestamp sample_interval, bool regular);

  Result<const DataSourceInfo*> GetSource(SourceId id) const;
  int64_t num_sources() const { return static_cast<int64_t>(sources_.size()); }

  /// All groups of a schema type (for slice-query fan-out).
  std::vector<int64_t> GroupsOf(int schema_type) const;

  /// All registered sources of a schema type.
  std::vector<SourceId> SourcesOf(int schema_type) const;

 private:
  OdhOptions options_;
  std::vector<SchemaType> types_;
  std::map<SourceId, DataSourceInfo> sources_;
  std::map<int, std::vector<int64_t>> groups_by_type_;
  std::map<int, int64_t> next_group_slot_;
};

}  // namespace odh::core

#endif  // ODH_CORE_CONFIG_H_
