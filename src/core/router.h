#ifndef ODH_CORE_ROUTER_H_
#define ODH_CORE_ROUTER_H_

#include <atomic>
#include <vector>

#include "core/config.h"
#include "sql/engine.h"

namespace odh::core {

/// Which batch structures a query must visit, and where.
struct RouteDecision {
  bool scan_rts = false;
  bool scan_irts = false;
  bool scan_mg = false;
  /// MG group of the source (historical routes on low-frequency sources);
  /// -1 = all groups.
  int64_t mg_group = -1;
};

/// The ODH data router: per query, looks up data-source metadata to locate
/// the containers holding the requested data (paper §5.3: "for each query,
/// the data router looks up the metadata to locate the required data. This
/// process is currently completed by SQL statements" — the overhead that
/// dominates small queries like LQ1).
///
/// Two modes, selected by OdhOptions::sql_metadata_router:
///  - SQL mode reproduces the paper: metadata lives in a relational table
///    (odh$sources) and every route runs a SQL point query against it.
///  - Direct mode is the paper's proposed fix: an in-memory lookup.
class DataRouter {
 public:
  DataRouter(ConfigComponent* config, sql::SqlEngine* engine)
      : config_(config), engine_(engine) {}

  /// Creates the metadata table (call once, before registering sources).
  Status CreateMetadataTables();

  /// Mirrors a registered source into the metadata table.
  Status AddSourceMetadata(const DataSourceInfo& info);

  /// Flushes pending metadata inserts.
  Status SyncMetadata();

  /// Routes a historical query (single source, long time window).
  Result<RouteDecision> RouteHistorical(int schema_type, SourceId id);

  /// Routes a slice query (all sources of a type, short time window).
  Result<RouteDecision> RouteSlice(int schema_type);

  /// Routes performed so far. Direct-mode routing is thread-safe (it reads
  /// the immutable config and bumps this atomic); SQL-mode routing runs
  /// statements through the single-threaded SQL engine and must be
  /// serialized by the caller.
  int64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

 private:
  Result<RouteDecision> DecisionFor(SourceClass source_class, int64_t group);

  ConfigComponent* config_;
  sql::SqlEngine* engine_;
  relational::Table* metadata_ = nullptr;
  int64_t pending_metadata_rows_ = 0;
  std::atomic<int64_t> lookups_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_ROUTER_H_
