#include "core/cost_model.h"

namespace odh::core {

double OdhCostModel::TimeFraction(const ContainerStats& stats, Timestamp lo,
                                  Timestamp hi) {
  if (stats.blob_count == 0) return 0;
  if (stats.max_ts <= stats.min_ts) return 1.0;
  double extent = static_cast<double>(stats.max_ts - stats.min_ts);
  double from = static_cast<double>(std::max(lo, stats.min_ts));
  double to = static_cast<double>(std::min(hi, stats.max_ts));
  if (to <= from) return 1.0 / static_cast<double>(stats.blob_count);
  return std::min(1.0, (to - from) / extent);
}

OdhCostEstimate OdhCostModel::EstimateHistorical(int schema_type,
                                                 SourceId id, Timestamp lo,
                                                 Timestamp hi,
                                                 double tag_fraction) const {
  OdhCostEstimate est;
  double num_sources =
      std::max<double>(1, static_cast<double>(config_->num_sources()));
  // Stats are value snapshots: the accessors copy under the store mutex so
  // estimates stay consistent while ingestion runs.
  for (const ContainerStats& stats :
       {store_->rts_stats(schema_type), store_->irts_stats(schema_type)}) {
    if (stats.blob_count == 0) continue;
    double frac = TimeFraction(stats, lo, hi);
    // Per-source blobs: the (id, begin_ts) index narrows to this source.
    double blobs = static_cast<double>(stats.blob_count) / num_sources *
                   frac;
    est.blobs += blobs;
    est.bytes += blobs * stats.AvgBlobBytes() * tag_fraction;
    est.points += blobs * stats.AvgPointsPerBlob();
  }
  const ContainerStats mg = store_->mg_stats(schema_type);
  if (mg.blob_count > 0) {
    double num_groups = std::max<double>(
        1, static_cast<double>(config_->GroupsOf(schema_type).size()));
    double frac = TimeFraction(mg, lo, hi);
    // MG blobs of the source's group must be read whole; only the id's
    // points survive.
    double blobs =
        static_cast<double>(mg.blob_count) / num_groups * frac;
    est.blobs += blobs;
    est.bytes += blobs * mg.AvgBlobBytes() * tag_fraction;
    double sources_per_group =
        num_sources / std::max(1.0, num_groups);
    est.points += blobs * mg.AvgPointsPerBlob() /
                  std::max(1.0, sources_per_group);
  }
  return est;
}

OdhCostEstimate OdhCostModel::EstimateSlice(int schema_type, Timestamp lo,
                                            Timestamp hi,
                                            double tag_fraction) const {
  OdhCostEstimate est;
  for (const ContainerStats& stats :
       {store_->rts_stats(schema_type), store_->irts_stats(schema_type),
        store_->mg_stats(schema_type)}) {
    if (stats.blob_count == 0) continue;
    double frac = TimeFraction(stats, lo, hi);
    double blobs = static_cast<double>(stats.blob_count) * frac;
    est.blobs += blobs;
    est.bytes += blobs * stats.AvgBlobBytes() * tag_fraction;
    est.points += blobs * stats.AvgPointsPerBlob();
  }
  return est;
}

}  // namespace odh::core
