#ifndef ODH_CORE_BITS_H_
#define ODH_CORE_BITS_H_

#include <cstdint>
#include <string>

#include "common/slice.h"

namespace odh::core {

/// Appends bits (MSB-first within the stream) to a byte buffer. Used by the
/// quantization and XOR codecs.
class BitWriter {
 public:
  explicit BitWriter(std::string* out) : out_(out) {}

  /// Writes the low `nbits` bits of `value` (0 <= nbits <= 64).
  void Write(uint64_t value, int nbits) {
    for (int i = nbits - 1; i >= 0; --i) {
      PushBit((value >> i) & 1);
    }
  }

  void WriteBit(bool bit) { PushBit(bit ? 1 : 0); }

  /// Pads the final partial byte with zeros.
  void Finish() {
    if (fill_ > 0) {
      out_->push_back(static_cast<char>(current_ << (8 - fill_)));
      current_ = 0;
      fill_ = 0;
    }
  }

 private:
  void PushBit(int bit) {
    current_ = static_cast<uint8_t>((current_ << 1) | bit);
    if (++fill_ == 8) {
      out_->push_back(static_cast<char>(current_));
      current_ = 0;
      fill_ = 0;
    }
  }

  std::string* out_;
  uint8_t current_ = 0;
  int fill_ = 0;
};

/// Reads bits written by BitWriter.
class BitReader {
 public:
  explicit BitReader(Slice input) : input_(input) {}

  /// Reads `nbits` bits; returns false past the end.
  bool Read(int nbits, uint64_t* value) {
    uint64_t v = 0;
    for (int i = 0; i < nbits; ++i) {
      int bit = NextBit();
      if (bit < 0) return false;
      v = (v << 1) | static_cast<uint64_t>(bit);
    }
    *value = v;
    return true;
  }

  bool ReadBit(bool* bit) {
    int b = NextBit();
    if (b < 0) return false;
    *bit = b != 0;
    return true;
  }

 private:
  int NextBit() {
    if (pos_ >= input_.size() * 8) return -1;
    size_t byte = pos_ / 8;
    int offset = 7 - static_cast<int>(pos_ % 8);
    ++pos_;
    return (static_cast<uint8_t>(input_[byte]) >> offset) & 1;
  }

  Slice input_;
  size_t pos_ = 0;
};

/// Number of bits needed to represent `v` (at least 1).
inline int BitWidth(uint64_t v) {
  int bits = 1;
  while (v > 1) {
    v >>= 1;
    ++bits;
  }
  return bits;
}

}  // namespace odh::core

#endif  // ODH_CORE_BITS_H_
