#ifndef ODH_CORE_WRITER_H_
#define ODH_CORE_WRITER_H_

#include <map>
#include <vector>

#include "core/store.h"
#include "core/value_blob.h"

namespace odh::core {

/// Ingestion counters (reported by the benchmark harness).
struct WriterStats {
  int64_t points_ingested = 0;
  int64_t rts_blobs = 0;
  int64_t irts_blobs = 0;
  int64_t mg_blobs = 0;
  int64_t blob_bytes = 0;
  /// Store syncs issued by Flush, and how many had to be re-issued after a
  /// transient fault outlived the storage layer's own backoff retries.
  int64_t syncs = 0;
  int64_t sync_retries = 0;
};

/// The ODH writer (paper §3 storage component): buffers incoming
/// operational records and packs every `b` points into a ValueBlob.
///
///  - High-frequency sources buffer per source; a full buffer becomes an
///    RTS blob when the timestamps are regular (within 1% jitter of the
///    source's expected interval), else an IRTS blob.
///  - Low-frequency sources buffer per MG group; a group buffer becomes an
///    MG blob when it reaches `b` points or its time window closes.
///
/// Ingestion is transaction-free (paper: "The insertion process does not
/// support transactions"). Unflushed buffers are visible to queries through
/// CollectDirty — the paper's dirty-read isolation level.
class OdhWriter {
 public:
  OdhWriter(OdhStore* store, ConfigComponent* config)
      : store_(store), config_(config) {}

  OdhWriter(const OdhWriter&) = delete;
  OdhWriter& operator=(const OdhWriter&) = delete;

  /// Ingests one record. Timestamps per source must be non-decreasing.
  Status Ingest(const OperationalRecord& record);

  /// Flushes every buffer of a schema type (partial blobs included).
  Status Flush(int schema_type);
  Status FlushAll();

  /// Appends buffered-but-unflushed records matching the filters to *out.
  /// `id` < 0 matches all sources; tags outside `wanted_tags` are still
  /// included (buffers are row-format; the saving only applies to blobs).
  Status CollectDirty(int schema_type, SourceId id, Timestamp lo,
                      Timestamp hi,
                      std::vector<OperationalRecord>* out) const;

  const WriterStats& stats() const { return stats_; }

 private:
  struct SourceBuffer {
    std::vector<Timestamp> timestamps;
    std::vector<std::vector<double>> columns;  // Tag-major.
    size_t size() const { return timestamps.size(); }
  };
  struct GroupBuffer {
    std::vector<OperationalRecord> records;
    Timestamp window_begin = 0;
  };

  Status FlushSource(SourceId id, const DataSourceInfo& info,
                     SourceBuffer* buffer);
  Status FlushGroup(int schema_type, int64_t group, GroupBuffer* buffer);

  Result<const ValueBlobCodec*> CodecFor(int schema_type);

  OdhStore* store_;
  ConfigComponent* config_;
  std::map<SourceId, SourceBuffer> source_buffers_;
  std::map<std::pair<int, int64_t>, GroupBuffer> group_buffers_;
  std::map<SourceId, Timestamp> last_ts_;
  std::map<int, ValueBlobCodec> codecs_;
  WriterStats stats_;
};

}  // namespace odh::core

#endif  // ODH_CORE_WRITER_H_
