#ifndef ODH_CORE_WRITER_H_
#define ODH_CORE_WRITER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "core/store.h"
#include "core/value_blob.h"

namespace odh::core {

/// Ingestion counters (reported by the benchmark harness).
struct WriterStats {
  int64_t points_ingested = 0;
  int64_t rts_blobs = 0;
  int64_t irts_blobs = 0;
  int64_t mg_blobs = 0;
  int64_t blob_bytes = 0;
  /// Store syncs issued by Flush, and how many had to be re-issued after a
  /// transient fault outlived the storage layer's own backoff retries.
  int64_t syncs = 0;
  int64_t sync_retries = 0;
};

/// The ODH writer (paper §3 storage component): buffers incoming
/// operational records and packs every `b` points into a ValueBlob.
///
///  - High-frequency sources buffer per source; a full buffer becomes an
///    RTS blob when the timestamps are regular (within 1% jitter of the
///    source's expected interval), else an IRTS blob.
///  - Low-frequency sources buffer per MG group; a group buffer becomes an
///    MG blob when it reaches `b` points or its time window closes.
///
/// Ingestion is transaction-free (paper: "The insertion process does not
/// support transactions"). Unflushed buffers are visible to queries through
/// CollectDirty — the paper's dirty-read isolation level.
///
/// Thread-safe: the writer is split into `options().writer_shards`
/// independent shards, each owning its sources' buffers, last-timestamp
/// watermarks and counters under its own mutex. A high-frequency source
/// maps to a shard by source id; a low-frequency source by its MG group,
/// so a group buffer is only ever touched by one shard. Blob encoding runs
/// under the shard mutex but outside any store lock — lock order is
/// writer shard -> store -> WAL -> disk. Ingest may be called from many
/// threads; per-source timestamp monotonicity is still required (a single
/// source must not be fed from two threads at once without ordering).
class OdhWriter {
 public:
  OdhWriter(OdhStore* store, ConfigComponent* config);

  OdhWriter(const OdhWriter&) = delete;
  OdhWriter& operator=(const OdhWriter&) = delete;

  /// Ingests one record. Timestamps per source must be non-decreasing.
  Status Ingest(const OperationalRecord& record);

  /// Flushes every buffer of a schema type (partial blobs included).
  Status Flush(int schema_type);
  Status FlushAll();

  /// Appends buffered-but-unflushed records matching the filters to *out.
  /// `id` < 0 matches all sources; tags outside `wanted_tags` are still
  /// included (buffers are row-format; the saving only applies to blobs).
  /// The result is ordered exactly as the single-shard writer would order
  /// it: high-frequency sources by ascending id, then group buffers by
  /// (schema_type, group). Each shard is snapshotted under its own mutex.
  Status CollectDirty(int schema_type, SourceId id, Timestamp lo,
                      Timestamp hi,
                      std::vector<OperationalRecord>* out) const;

  /// Aggregated counters across all shards (a consistent-enough snapshot:
  /// each shard is summed under its own mutex).
  WriterStats stats() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Hooks the writer up to a metrics registry: flush latency (encode +
  /// store put, one observation per blob — never per record) lands in the
  /// `odh.writer.flush_micros` histogram. Call before ingest starts.
  void SetMetrics(common::MetricsRegistry* metrics) {
    flush_hist_ = metrics == nullptr
                      ? nullptr
                      : metrics->GetHistogram("odh.writer.flush_micros");
  }

 private:
  struct SourceBuffer {
    std::vector<Timestamp> timestamps;
    std::vector<std::vector<double>> columns;  // Tag-major.
    size_t size() const { return timestamps.size(); }
  };
  struct GroupBuffer {
    std::vector<OperationalRecord> records;
    Timestamp window_begin = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<SourceId, SourceBuffer> source_buffers;
    std::map<std::pair<int, int64_t>, GroupBuffer> group_buffers;
    std::map<SourceId, Timestamp> last_ts;
    WriterStats stats;  // Guarded by mu; syncs/sync_retries stay zero.
  };

  Shard& ShardForSource(SourceId id);
  Shard& ShardForGroup(int schema_type, int64_t group);

  Status FlushSource(Shard& shard, SourceId id, const DataSourceInfo& info,
                     SourceBuffer* buffer);
  Status FlushGroup(Shard& shard, int schema_type, int64_t group,
                    GroupBuffer* buffer);

  Result<const ValueBlobCodec*> CodecFor(int schema_type);

  OdhStore* store_;
  ConfigComponent* config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Guards codecs_ (std::map gives pointer stability, so CodecFor hands
  /// out pointers that outlive the lock).
  std::mutex codec_mu_;
  std::map<int, ValueBlobCodec> codecs_;
  /// Sync counters are writer-global, not per shard: Flush syncs the store
  /// once for all shards.
  std::atomic<int64_t> syncs_{0};
  std::atomic<int64_t> sync_retries_{0};
  common::Histogram* flush_hist_ = nullptr;  // Null when not wired.
};

}  // namespace odh::core

#endif  // ODH_CORE_WRITER_H_
