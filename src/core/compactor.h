#ifndef ODH_CORE_COMPACTOR_H_
#define ODH_CORE_COMPACTOR_H_

#include <atomic>
#include <vector>

#include "common/thread_pool.h"
#include "core/config.h"
#include "core/store.h"

namespace odh::core {

/// What one CompactSealed pass did (aggregated over the segments it
/// rewrote). byte counts cover blob payloads only, the dominant term of a
/// segment's footprint.
struct CompactionReport {
  int64_t segments_compacted = 0;
  /// Sealed segments left alone: a Put or drop raced the snapshot
  /// (version moved; they stay hot and a later pass retries them).
  int64_t segments_skipped = 0;
  int64_t blobs_before = 0;
  int64_t blobs_after = 0;
  int64_t bytes_before = 0;
  int64_t bytes_after = 0;
};

/// Background compactor for sealed segments (cold-tier rewriter).
///
/// A segment is sealed once a newer segment exists: the writer routes by
/// begin_ts, so with monotonic ingestion no further blobs land in it. The
/// compactor snapshots such a segment under the store mutex, then — outside
/// any lock — merges its many small writer-sized blobs into few large ones
/// (RTS runs that stay contiguous at one interval, IRTS runs that do not
/// overlap), re-encodes them with the lossless XOR codec, and recomputes
/// exact zone maps from the decoded values (PR 3's `exact`-bit contract:
/// a summary built from true values never widens). The rewritten blobs are
/// installed with OdhStore::SwapCompactedSegment, whose WAL episode makes
/// the swap atomic across crashes; a version mismatch (concurrent write)
/// aborts that segment's rewrite harmlessly.
///
/// The rewrite is lossless relative to what is stored: values are decoded
/// and re-encoded exactly, so query results are byte-identical before and
/// after compaction. MG blobs are never rewritten (see SwapCompactedSegment).
class SegmentCompactor {
 public:
  SegmentCompactor(ConfigComponent* config, OdhStore* store,
                   common::ThreadPool* pool = nullptr)
      : config_(config), store_(store), pool_(pool) {}

  SegmentCompactor(const SegmentCompactor&) = delete;
  SegmentCompactor& operator=(const SegmentCompactor&) = delete;

  /// Synchronously compacts every sealed hot segment of `schema_type`.
  /// Safe to run concurrently with ingest and queries.
  Result<CompactionReport> CompactSealed(int schema_type);

  /// Queues CompactSealed on the thread pool (runs inline without one).
  /// The result folds into `last_report()` / `last_status()`; callers that
  /// need the report synchronously use CompactSealed directly.
  void CompactSealedAsync(int schema_type);

  /// Blocks until every queued async pass has finished.
  void WaitIdle() const;

  /// Outcome of the most recent pass (sync or async).
  CompactionReport last_report() const;
  Status last_status() const;

 private:
  /// Rewrites one segment; false (with no error) when the swap was aborted
  /// by a concurrent writer.
  Result<bool> CompactSegment(int schema_type, int64_t key,
                              CompactionReport* report);

  ConfigComponent* config_;
  OdhStore* store_;
  common::ThreadPool* pool_;  // Not owned; nullptr = synchronous.

  mutable std::mutex mu_;  // Guards the last_* results.
  CompactionReport last_report_;
  Status last_status_;
  std::atomic<int64_t> inflight_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_COMPACTOR_H_
