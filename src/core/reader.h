#ifndef ODH_CORE_READER_H_
#define ODH_CORE_READER_H_

#include <memory>
#include <vector>

#include "core/router.h"
#include "core/store.h"
#include "core/value_blob.h"
#include "core/writer.h"
#include "core/zone_map.h"

namespace odh::core {

/// Pull-based stream of decoded operational records. This is the shared
/// read path: the native query API returns it directly (the paper's
/// "bypass the SQL interface" fast path), and the VTI adapter wraps it
/// with Datum row assembly for SQL.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;
  /// Produces the next record; false at end of stream. Tags outside the
  /// requested set are NaN.
  virtual Result<bool> Next(OperationalRecord* record) = 0;
};

/// Counters for one scan (exposed so benches can report blob I/O).
struct ReadStats {
  int64_t blobs_decoded = 0;
  int64_t blobs_pruned = 0;  // Skipped entirely via zone maps.
  int64_t blob_bytes_read = 0;
  int64_t records_emitted = 0;
};

/// The ODH read path: routes, fetches blobs with partition elimination,
/// decodes only the requested tags (tag-oriented access), merges unflushed
/// writer buffers (dirty-read isolation).
class OdhReader {
 public:
  OdhReader(ConfigComponent* config, OdhStore* store, OdhWriter* writer,
            DataRouter* router)
      : config_(config), store_(store), writer_(writer), router_(router) {}

  /// Historical query: all points of `id` in [lo, hi]. `tag_filters`
  /// (optional) lets the reader prune whole blobs via their zone maps; the
  /// caller still re-checks row-level predicates.
  Result<std::unique_ptr<RecordCursor>> OpenHistorical(
      int schema_type, SourceId id, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {});

  /// Slice query: all points of every source of the type in [lo, hi].
  Result<std::unique_ptr<RecordCursor>> OpenSlice(
      int schema_type, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {});

  /// Cumulative stats across all cursors opened from this reader.
  const ReadStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ReadStats(); }

 private:
  friend class OdhScanCursorImpl;

  ConfigComponent* config_;
  OdhStore* store_;
  OdhWriter* writer_;
  DataRouter* router_;
  ReadStats stats_;
};

}  // namespace odh::core

#endif  // ODH_CORE_READER_H_
