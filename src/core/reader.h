#ifndef ODH_CORE_READER_H_
#define ODH_CORE_READER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/router.h"
#include "core/store.h"
#include "core/value_blob.h"
#include "core/writer.h"
#include "core/zone_map.h"

namespace odh::core {

class BlobCache;

/// Pull-based stream of decoded operational records. This is the shared
/// read path: the native query API returns it directly (the paper's
/// "bypass the SQL interface" fast path), and the VTI adapter wraps it
/// with Datum row assembly for SQL.
class RecordCursor {
 public:
  virtual ~RecordCursor() = default;
  /// Produces the next record; false at end of stream. Tags outside the
  /// requested set are NaN.
  virtual Result<bool> Next(OperationalRecord* record) = 0;
};

/// One decoded blob (or the dirty-buffer slice) in columnar, tag-major
/// form — what a ValueBlob already is on disk, handed out without per-row
/// materialization. `columns` has one slot per schema tag; each column is
/// either full-length (NaN = missing value) or empty (tag not requested;
/// reads as all-missing). `ids` is empty when every row belongs to
/// `uniform_id` (the common case: one blob = one source).
struct RecordBatch {
  SourceId uniform_id = -1;
  std::vector<SourceId> ids;
  std::vector<Timestamp> timestamps;
  std::vector<std::vector<double>> columns;

  size_t rows() const { return timestamps.size(); }
  SourceId id_at(size_t i) const { return ids.empty() ? uniform_id : ids[i]; }
  void clear() {
    uniform_id = -1;
    ids.clear();
    timestamps.clear();
    columns.clear();
  }
};

/// Pull-based stream of RecordBatches: the columnar twin of RecordCursor.
/// Batches may have zero rows (a fully pruned blob); callers keep pulling
/// until end of stream.
class RecordBatchCursor {
 public:
  virtual ~RecordBatchCursor() = default;
  virtual Result<bool> Next(RecordBatch* batch) = 0;
};

/// Counters for one scan (exposed so benches can report blob I/O).
struct ReadStats {
  int64_t blobs_decoded = 0;
  int64_t blobs_pruned = 0;  // Skipped entirely via zone maps.
  int64_t blobs_skipped_by_summary = 0;  // Aggregated without decoding.
  int64_t blob_bytes_read = 0;
  int64_t records_emitted = 0;
  /// Whole segments skipped by manifest time bounds (no page reads).
  int64_t segments_pruned = 0;
  /// Blobs served from the decoded-blob cache (disjoint from
  /// blobs_decoded).
  int64_t blob_cache_hits = 0;
  /// Scan units handed to pool workers by the segment-parallel driver.
  int64_t parallel_tasks = 0;
  /// Times the ordered-merge consumer had to block waiting for the batch
  /// at the emission frontier (its worker was still decoding it).
  int64_t merge_stalls = 0;
  /// Distinct (structure, segment) groups scanned by parallel workers.
  int64_t segments_scanned_parallel = 0;
};

/// Per-tag accumulator returned by OdhReader::Aggregate. `count`/`sum`
/// cover the non-NaN values of the tag among matching rows; min/max are
/// valid only when `has_value`.
struct TagAggregate {
  int64_t count = 0;
  double sum = 0;
  bool has_value = false;
  double min = 0;
  double max = 0;
};

/// Result of an aggregate-pushdown read. `rows_matched` counts rows that
/// satisfy the time range and every tag filter (COUNT(*)); `tags` is
/// aligned with the `agg_tags` argument.
struct AggregateResult {
  int64_t rows_matched = 0;
  std::vector<TagAggregate> tags;
};

/// The ODH read path: routes, fetches blobs with partition elimination,
/// decodes only the requested tags (tag-oriented access), merges unflushed
/// writer buffers (dirty-read isolation).
///
/// When constructed with a thread pool, historical scans fan their
/// candidate blobs (the ones surviving zone-map pruning) out to the pool
/// for parallel decoding; records still come back from the cursor in
/// exactly the order a sequential scan would produce. Counters are atomic,
/// so cursors may be driven while other threads open more cursors; a single
/// cursor itself is not for sharing between threads.
class OdhReader {
 public:
  OdhReader(ConfigComponent* config, OdhStore* store, OdhWriter* writer,
            DataRouter* router, common::ThreadPool* pool = nullptr,
            BlobCache* cache = nullptr)
      : config_(config),
        store_(store),
        writer_(writer),
        router_(router),
        pool_(pool),
        cache_(cache) {}

  /// Historical query: all points of `id` in [lo, hi]. `tag_filters`
  /// (optional) lets the reader prune whole blobs via their zone maps; the
  /// caller still re-checks row-level predicates.
  /// `counters` (optional, must outlive the cursor) receives per-scan
  /// profile counts in addition to the reader-global atomics.
  Result<std::unique_ptr<RecordCursor>> OpenHistorical(
      int schema_type, SourceId id, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {},
      common::ScanCounters* counters = nullptr);

  /// Slice query: all points of every source of the type in [lo, hi].
  /// Slice scans stream table iterators and stay sequential regardless of
  /// the pool.
  Result<std::unique_ptr<RecordCursor>> OpenSlice(
      int schema_type, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {},
      common::ScanCounters* counters = nullptr);

  /// Columnar variants of the scans above: one RecordBatch per decoded
  /// blob, no per-record materialization. Same routing, pruning, parallel
  /// predecode, and dirty-read merge as the row cursors.
  Result<std::unique_ptr<RecordBatchCursor>> OpenHistoricalBatches(
      int schema_type, SourceId id, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {},
      common::ScanCounters* counters = nullptr);
  Result<std::unique_ptr<RecordBatchCursor>> OpenSliceBatches(
      int schema_type, Timestamp lo, Timestamp hi,
      const std::vector<int>& wanted_tags,
      std::vector<TagFilter> tag_filters = {},
      common::ScanCounters* counters = nullptr);

  /// Aggregate pushdown: COUNT(*) plus per-tag COUNT/SUM/MIN/MAX over the
  /// rows of [lo, hi] (all sources when `id` < 0) that pass every
  /// `tag_filter`. Blobs whose v2 zone map proves full coverage — time
  /// range containment, no missing values on filtered tags, ranges inside
  /// the filter bounds — are answered from the summary alone and counted
  /// in `blobs_skipped_by_summary`; the rest decode and scan. Set
  /// `need_values` when SUM/AVG/MIN/MAX is wanted: value aggregates are
  /// only taken from summaries marked exact (lossless codecs), since a
  /// widened lossy summary can disagree with decoded values. Counts are
  /// summary-answerable even for lossy blobs (codecs preserve which
  /// values are missing).
  Result<AggregateResult> Aggregate(int schema_type, SourceId id,
                                    Timestamp lo, Timestamp hi,
                                    const std::vector<TagFilter>& tag_filters,
                                    const std::vector<int>& agg_tags,
                                    bool need_values,
                                    common::ScanCounters* counters = nullptr);

  /// Cumulative stats across all cursors opened from this reader
  /// (snapshot of the atomic counters).
  ReadStats stats() const {
    ReadStats s;
    s.blobs_decoded = blobs_decoded_.load(std::memory_order_relaxed);
    s.blobs_pruned = blobs_pruned_.load(std::memory_order_relaxed);
    s.blobs_skipped_by_summary =
        blobs_skipped_by_summary_.load(std::memory_order_relaxed);
    s.blob_bytes_read = blob_bytes_read_.load(std::memory_order_relaxed);
    s.records_emitted = records_emitted_.load(std::memory_order_relaxed);
    s.segments_pruned = segments_pruned_.load(std::memory_order_relaxed);
    s.blob_cache_hits = blob_cache_hits_.load(std::memory_order_relaxed);
    s.parallel_tasks = parallel_tasks_.load(std::memory_order_relaxed);
    s.merge_stalls = merge_stalls_.load(std::memory_order_relaxed);
    s.segments_scanned_parallel =
        segments_scanned_parallel_.load(std::memory_order_relaxed);
    return s;
  }
  /// Atomically returns the counters accumulated since the last reset and
  /// zeroes them in the same operation. Increments that race the snapshot
  /// land in exactly one epoch — a `stats()` load followed by `ResetStats()`
  /// would lose them, so benches that subtract across a reset use this.
  ReadStats SnapshotAndResetStats() {
    ReadStats s;
    s.blobs_decoded = blobs_decoded_.exchange(0, std::memory_order_relaxed);
    s.blobs_pruned = blobs_pruned_.exchange(0, std::memory_order_relaxed);
    s.blobs_skipped_by_summary =
        blobs_skipped_by_summary_.exchange(0, std::memory_order_relaxed);
    s.blob_bytes_read =
        blob_bytes_read_.exchange(0, std::memory_order_relaxed);
    s.records_emitted =
        records_emitted_.exchange(0, std::memory_order_relaxed);
    s.segments_pruned =
        segments_pruned_.exchange(0, std::memory_order_relaxed);
    s.blob_cache_hits =
        blob_cache_hits_.exchange(0, std::memory_order_relaxed);
    s.parallel_tasks = parallel_tasks_.exchange(0, std::memory_order_relaxed);
    s.merge_stalls = merge_stalls_.exchange(0, std::memory_order_relaxed);
    s.segments_scanned_parallel =
        segments_scanned_parallel_.exchange(0, std::memory_order_relaxed);
    return s;
  }
  void ResetStats() { SnapshotAndResetStats(); }

  common::ThreadPool* pool() const { return pool_; }
  BlobCache* cache() const { return cache_; }

  /// Worker cap for segment-parallel scans: 1 (serial) without a pool or
  /// with query_parallelism 0/1, the pool size when query_parallelism is
  /// negative, the configured cap otherwise.
  int EffectiveParallelism() const {
    if (pool_ == nullptr) return 1;
    const int qp = config_->options().query_parallelism;
    if (qp < 0) return pool_->num_threads();
    return qp <= 1 ? 1 : qp;
  }

 private:
  friend class OdhScanCursorImpl;

  ConfigComponent* config_;
  OdhStore* store_;
  OdhWriter* writer_;
  DataRouter* router_;
  common::ThreadPool* pool_;  // Not owned; nullptr = sequential decode.
  BlobCache* cache_;  // Not owned; nullptr = no decoded-blob cache.
  std::atomic<int64_t> blobs_decoded_{0};
  std::atomic<int64_t> blobs_pruned_{0};
  std::atomic<int64_t> blobs_skipped_by_summary_{0};
  std::atomic<int64_t> blob_bytes_read_{0};
  std::atomic<int64_t> records_emitted_{0};
  std::atomic<int64_t> segments_pruned_{0};
  std::atomic<int64_t> blob_cache_hits_{0};
  std::atomic<int64_t> parallel_tasks_{0};
  std::atomic<int64_t> merge_stalls_{0};
  std::atomic<int64_t> segments_scanned_parallel_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_READER_H_
