#ifndef ODH_CORE_BLOB_CACHE_H_
#define ODH_CORE_BLOB_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace odh::core {

struct RecordBatch;

/// Which batch structure a cached decode came from. Part of the cache key:
/// RTS, IRTS and MG rids live in different tables, so the same {segment,
/// generation, rid} can name three different blobs.
enum class BlobStructure : uint8_t { kRts = 0, kIrts = 1, kMg = 2 };

/// Identity of one decoded blob. Correctness never depends on explicit
/// invalidation: every mutation that could change what a rid points at
/// also changes the generation component —
///
///   - compaction swap bumps the segment's manifest generation (RTS/IRTS),
///   - an MG table rebuild (CompactMg) bumps the segment's MG epoch,
///   - a retention drop records max(generation, epoch) + 1 so a re-created
///     segment starts past every generation the dropped one ever used,
///
/// so a stale entry is simply unreachable and ages out of the LRU.
/// `tag_mask` pins the decoded tag set: the codec materializes unrequested
/// tags as all-missing, so batches decoded with different tag sets are not
/// interchangeable.
struct BlobCacheKey {
  int schema_type = 0;
  BlobStructure structure = BlobStructure::kRts;
  int64_t seg = 0;
  int64_t generation = 0;
  uint64_t rid = 0;       // Packed heap address: (page << 32) | slot.
  uint64_t tag_mask = 0;  // Bit t = tag t decoded; ~0 = all tags.

  bool operator==(const BlobCacheKey&) const = default;
};

/// Monotonic counters, snapshotted without stopping the world. hits +
/// misses = lookups; bytes/entries are the current residency.
struct BlobCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t inserts = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
};

/// A sharded LRU over decoded, untrimmed RecordBatches, shared by every
/// scan path of one OdhSystem (row, batch, aggregate fallback). Entries
/// hold the full decode of a blob — callers trim to their time range on
/// the way out — so one entry serves any query shape over that blob.
///
/// Thread-safe: one mutex per shard, chosen by key hash; values are
/// shared_ptr<const RecordBatch>, so a batch handed out stays alive even
/// if the entry is evicted mid-scan. Capacity is enforced per shard
/// (capacity_bytes / num_shards); an entry larger than a whole shard is
/// refused rather than allowed to thrash the LRU.
class BlobCache {
 public:
  explicit BlobCache(size_t capacity_bytes, int num_shards = 8);

  BlobCache(const BlobCache&) = delete;
  BlobCache& operator=(const BlobCache&) = delete;

  /// Returns the cached decode (marking it most-recent) or nullptr.
  std::shared_ptr<const RecordBatch> Lookup(const BlobCacheKey& key);

  /// Inserts (or refreshes) an entry of `bytes` decoded size, evicting
  /// least-recently-used entries of the shard until it fits.
  void Insert(const BlobCacheKey& key,
              std::shared_ptr<const RecordBatch> value, size_t bytes);

  size_t capacity_bytes() const { return capacity_; }
  BlobCacheStats stats() const;

 private:
  struct Entry {
    BlobCacheKey key;
    std::shared_ptr<const RecordBatch> value;
    size_t bytes = 0;
  };
  struct KeyHash {
    size_t operator()(const BlobCacheKey& k) const;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  // Front = most recently used.
    std::unordered_map<BlobCacheKey, std::list<Entry>::iterator, KeyHash> map;
    size_t bytes = 0;
  };

  Shard* ShardFor(const BlobCacheKey& key);

  size_t capacity_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> entries_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_BLOB_CACHE_H_
