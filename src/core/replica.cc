#include "core/replica.h"

#include <chrono>
#include <utility>

namespace odh::core {

Status ReplicaApplier::ApplySnapshotRecords(
    const std::vector<std::string>& payloads) {
  for (const std::string& payload : payloads) {
    ODH_RETURN_IF_ERROR(ApplyRecord(payload));
  }
  return Status::OK();
}

Status ReplicaApplier::FinishSnapshot(uint64_t base_lsn) {
  if (in_episode_) {
    return Status::Corruption("snapshot ended inside a compaction episode");
  }
  ODH_RETURN_IF_ERROR(Flush());
  SetAppliedLsn(base_lsn);
  return Status::OK();
}

Status ReplicaApplier::ApplyWalBatch(uint64_t start_lsn, uint64_t end_lsn,
                                     const std::vector<std::string>& payloads) {
  const uint64_t applied = applied_lsn();
  if (end_lsn <= applied) return Status::OK();  // Duplicate after reconnect.
  if (start_lsn > applied) {
    return Status::DataLoss(
        "replication gap: batch starts at lsn " + std::to_string(start_lsn) +
        " but only " + std::to_string(applied) + " bytes are applied");
  }
  if (start_lsn < applied) {
    // A batch straddling the applied position would re-apply a prefix;
    // the source always resumes exactly at the subscriber's LSN, so this
    // is a protocol violation, not a benign overlap.
    return Status::DataLoss("replication batch overlaps applied prefix");
  }
  for (const std::string& payload : payloads) {
    ODH_RETURN_IF_ERROR(ApplyRecord(payload));
  }
  SetAppliedLsn(end_lsn);
  if (end_lsn > primary_durable_lsn()) {
    primary_durable_lsn_.store(end_lsn, std::memory_order_release);
  }
  return Status::OK();
}

void ReplicaApplier::ObserveHeartbeat(uint64_t durable_lsn,
                                      int64_t watermark_micros) {
  if (durable_lsn > primary_durable_lsn()) {
    primary_durable_lsn_.store(durable_lsn, std::memory_order_release);
  }
  if (watermark_micros > primary_watermark()) {
    primary_watermark_.store(watermark_micros, std::memory_order_release);
  }
}

Status ReplicaApplier::Flush() {
  for (int schema_type : touched_types_) {
    ODH_RETURN_IF_ERROR(store_->Sync(schema_type));
  }
  touched_types_.clear();
  return Status::OK();
}

bool ReplicaApplier::WaitForLsn(uint64_t lsn, int timeout_ms) {
  std::unique_lock<std::mutex> lock(lsn_mu_);
  return lsn_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                          [&] { return applied_lsn() >= lsn; });
}

void ReplicaApplier::SetAppliedLsn(uint64_t lsn) {
  {
    std::lock_guard<std::mutex> lock(lsn_mu_);
    applied_lsn_.store(lsn, std::memory_order_release);
  }
  lsn_cv_.notify_all();
}

void ReplicaApplier::AdvanceWatermark(int64_t end_ts) {
  if (end_ts > applied_watermark()) {
    applied_watermark_.store(end_ts, std::memory_order_release);
  }
}

Status ReplicaApplier::ApplyPut(const WalRecord& rec) {
  switch (rec.kind) {
    case WalRecord::Kind::kRts:
      return store_->PutRts(rec.schema_type, rec.id_or_group, rec.begin,
                            rec.end, rec.interval, rec.n, rec.blob,
                            rec.zone_map);
    case WalRecord::Kind::kIrts:
      return store_->PutIrts(rec.schema_type, rec.id_or_group, rec.begin,
                             rec.end, rec.n, rec.blob, rec.zone_map);
    case WalRecord::Kind::kMg:
      return store_->PutMg(rec.schema_type, rec.id_or_group, rec.begin,
                           rec.end, rec.n, rec.blob, rec.zone_map);
    default:
      return Status::Internal("ApplyPut on a non-put record");
  }
}

Status ReplicaApplier::CommitCompaction() {
  in_episode_ = false;
  std::vector<BlobRecord> rts = std::move(episode_rts_);
  std::vector<BlobRecord> irts = std::move(episode_irts_);
  episode_rts_.clear();
  episode_irts_.clear();

  // The swap can race the replica's own background compactor bumping the
  // segment version; re-snapshot and retry a few times before giving up.
  for (int attempt = 0; attempt < 8; ++attempt) {
    Result<SegmentSnapshot> snap =
        store_->SnapshotSegment(episode_schema_, episode_key_);
    if (snap.status().IsNotFound()) {
      // The segment never materialized locally (bootstrap snapshot already
      // contained the compacted form, so nothing routed rows here). The
      // replacement blobs ARE the segment's content: apply them as puts.
      for (const BlobRecord& r : rts) {
        ODH_RETURN_IF_ERROR(store_->PutRts(episode_schema_, r.id, r.begin,
                                           r.end, r.interval, r.n, r.blob,
                                           r.zone_map));
      }
      for (const BlobRecord& r : irts) {
        ODH_RETURN_IF_ERROR(store_->PutIrts(episode_schema_, r.id, r.begin,
                                            r.end, r.n, r.blob, r.zone_map));
      }
      return Status::OK();
    }
    ODH_RETURN_IF_ERROR(snap.status());
    Status swapped = store_->SwapCompactedSegment(
        episode_schema_, episode_key_, snap->manifest.version, rts, irts);
    if (!swapped.IsAborted()) return swapped;
  }
  return Status::Aborted("replicated compaction kept racing local writes");
}

Status ReplicaApplier::ApplyRecord(const std::string& payload) {
  WalRecord rec;
  if (!WalRecord::Decode(Slice(payload), &rec)) {
    return Status::Corruption("undecodable replicated WAL record");
  }
  touched_types_.insert(rec.schema_type);
  records_applied_.fetch_add(1, std::memory_order_release);

  if (in_episode_) {
    // Between CompactBegin and CompactCommit only replacement kRts/kIrts
    // records (for the episode's segment) are legal.
    switch (rec.kind) {
      case WalRecord::Kind::kRts:
      case WalRecord::Kind::kIrts: {
        BlobRecord blob;
        blob.id = rec.id_or_group;
        blob.begin = rec.begin;
        blob.end = rec.end;
        blob.interval = rec.interval;
        blob.n = rec.n;
        blob.blob = std::move(rec.blob);
        blob.zone_map = std::move(rec.zone_map);
        (rec.kind == WalRecord::Kind::kRts ? episode_rts_ : episode_irts_)
            .push_back(std::move(blob));
        return Status::OK();
      }
      case WalRecord::Kind::kSegmentCompactCommit:
        return CommitCompaction();
      default:
        return Status::Corruption(
            "unexpected record kind inside a compaction episode");
    }
  }

  switch (rec.kind) {
    case WalRecord::Kind::kRts:
    case WalRecord::Kind::kIrts:
    case WalRecord::Kind::kMg: {
      ODH_RETURN_IF_ERROR(ApplyPut(rec));
      AdvanceWatermark(rec.end);
      return Status::OK();
    }
    case WalRecord::Kind::kMgDelete:
      return store_->DeleteMgByContent(rec.schema_type, rec.id_or_group,
                                       rec.begin, rec.end, rec.n);
    case WalRecord::Kind::kSegmentCompactBegin:
      in_episode_ = true;
      episode_schema_ = rec.schema_type;
      episode_key_ = rec.id_or_group;
      episode_rts_.clear();
      episode_irts_.clear();
      return Status::OK();
    case WalRecord::Kind::kSegmentCompactCommit:
      return Status::Corruption("compaction commit without a begin");
    case WalRecord::Kind::kSegmentDrop:
      return store_->ApplyReplicatedDrop(rec.schema_type, rec.id_or_group,
                                         rec.begin, rec.end);
  }
  return Status::Internal("unreachable");
}

}  // namespace odh::core
