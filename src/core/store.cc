#include "core/store.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <tuple>

#include "common/key_codec.h"
#include "storage/spill_file.h"

namespace odh::core {
namespace {

using relational::Column;
using relational::Schema;
using storage::SegmentKeyFor;
using storage::SegmentTier;

// Column positions in the RTS/IRTS tables.
constexpr int kSeriesId = 0;
constexpr int kSeriesBegin = 1;
constexpr int kSeriesEnd = 2;
constexpr int kSeriesInterval = 3;
constexpr int kSeriesCount = 4;
constexpr int kSeriesBlob = 5;
constexpr int kSeriesZone = 6;

// Column positions in the MG table.
constexpr int kMgBegin = 0;
constexpr int kMgGroup = 1;
constexpr int kMgEnd = 2;
constexpr int kMgCount = 3;
constexpr int kMgBlob = 4;
constexpr int kMgZone = 5;

Schema SeriesSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"begin_ts", DataType::kTimestamp},
                 {"end_ts", DataType::kTimestamp},
                 {"interval", DataType::kInt64},
                 {"n", DataType::kInt64},
                 {"blob", DataType::kString},
                 {"zonemap", DataType::kString}});
}

Schema MgSchema() {
  return Schema({{"begin_ts", DataType::kTimestamp},
                 {"grp", DataType::kInt64},
                 {"end_ts", DataType::kTimestamp},
                 {"n", DataType::kInt64},
                 {"blob", DataType::kString},
                 {"zonemap", DataType::kString}});
}

bool IsDataRecord(WalRecord::Kind kind) {
  return kind == WalRecord::Kind::kRts || kind == WalRecord::Kind::kIrts ||
         kind == WalRecord::Kind::kMg || kind == WalRecord::Kind::kMgDelete;
}

}  // namespace

std::string OdhStore::SegmentPrefix(const std::string& type_name,
                                    int64_t key, int generation) const {
  if (config_->options().segment_span == 0) return "odh$" + type_name + "$";
  return "odh$" + type_name + "$s" + std::to_string(key) + "$g" +
         std::to_string(generation) + "$";
}

Result<OdhStore::Segment> OdhStore::CreateSegment(int schema_type,
                                                  int64_t key,
                                                  int generation) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  const Timestamp span = config_->options().segment_span;
  Segment seg;
  seg.manifest.key = key;
  if (span == 0) {
    seg.manifest.lo = kMinTimestamp;
    seg.manifest.hi = kMaxTimestamp;
  } else {
    seg.manifest.lo = key * span;
    seg.manifest.hi = seg.manifest.lo + span;
  }
  seg.manifest.generation = generation;
  seg.mg_epoch = generation;
  const std::string prefix = SegmentPrefix(type->name, key, generation);
  // B-tree indexes on the first two fields of each batch structure
  // (paper §2: "B-tree indices are created on the first two fields").
  ODH_ASSIGN_OR_RETURN(seg.rts,
                       db_->CreateTable(prefix + "rts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(seg.rts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ODH_ASSIGN_OR_RETURN(seg.irts,
                       db_->CreateTable(prefix + "irts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(seg.irts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ODH_ASSIGN_OR_RETURN(seg.mg, db_->CreateTable(prefix + "mg", MgSchema()));
  ODH_RETURN_IF_ERROR(seg.mg->AddIndex({"pk", {kMgBegin, kMgGroup}}));
  return seg;
}

Status OdhStore::CreateContainers(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  if (containers_.count(schema_type) > 0) {
    return Status::AlreadyExists("containers exist for " + type->name);
  }
  Container container;
  if (config_->options().segment_span == 0) {
    // Unsegmented layout: the single unbounded segment exists up front
    // under the historical flat table names.
    ODH_ASSIGN_OR_RETURN(Segment seg,
                         CreateSegment(schema_type, 0, /*generation=*/0));
    container.segments.emplace(0, std::move(seg));
  }
  containers_[schema_type] = std::move(container);
  return Status::OK();
}

Result<OdhStore::Container*> OdhStore::GetContainer(int schema_type) {
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) {
    return Status::NotFound("no containers for schema type " +
                            std::to_string(schema_type));
  }
  return &it->second;
}

Result<const OdhStore::Container*> OdhStore::GetContainer(
    int schema_type) const {
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) {
    return Status::NotFound("no containers for schema type " +
                            std::to_string(schema_type));
  }
  return &it->second;
}

Result<OdhStore::Segment*> OdhStore::GetSegmentForWrite(
    int schema_type, Container* container, Timestamp begin) {
  const int64_t key = SegmentKeyFor(begin, config_->options().segment_span);
  auto it = container->segments.find(key);
  if (it == container->segments.end()) {
    // A re-created key (late write after a retention drop) starts past
    // every generation the dropped segment ever used, so stale cached
    // decodes of the old incarnation stay unreachable.
    int generation = 0;
    auto ng = container->next_generation.find(key);
    if (ng != container->next_generation.end()) generation = ng->second;
    ODH_ASSIGN_OR_RETURN(Segment seg,
                         CreateSegment(schema_type, key, generation));
    it = container->segments.emplace(key, std::move(seg)).first;
  }
  return &it->second;
}

void OdhStore::UpdateStats(ContainerStats* stats, Timestamp begin,
                           Timestamp end, int64_t n, size_t blob_bytes) {
  ++stats->blob_count;
  stats->point_count += n;
  stats->blob_bytes += static_cast<int64_t>(blob_bytes);
  if (begin < stats->min_ts) stats->min_ts = begin;
  if (end > stats->max_ts) stats->max_ts = end;
  if (end - begin > stats->max_span) stats->max_span = end - begin;
}

Status OdhStore::LogPut(WalRecord::Kind kind, int schema_type,
                        int64_t id_or_group, Timestamp begin, Timestamp end,
                        Timestamp interval, int64_t n, const Slice& blob,
                        const Slice& zone_map) {
  if (wal_ == nullptr) {
    ODH_ASSIGN_OR_RETURN(wal_, Wal::Create(db_->disk(), kWalFileName));
    wal_->SetInstruments(wal_sync_hist_, wal_group_commits_,
                         wal_piggybacked_);
  }
  std::string payload;
  EncodeWalPayload(kind, schema_type, id_or_group, begin, end, interval, n,
                   blob, zone_map, &payload);
  wal_->Append(payload);
  return Status::OK();
}

Status OdhStore::PutRts(int schema_type, SourceId id, Timestamp begin,
                        Timestamp end, Timestamp interval, int64_t n,
                        const std::string& blob,
                        const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  // Log before the heap/index write: once Sync() flushes the log, the blob
  // is replayable even if the table pages never made it to disk.
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kRts, schema_type, id, begin,
                             end, interval, n, blob, zone_map));
  ODH_ASSIGN_OR_RETURN(Segment * seg,
                       GetSegmentForWrite(schema_type, container, begin));
  Row row = {Datum::Int64(id),       Datum::Time(begin),
             Datum::Time(end),       Datum::Int64(interval),
             Datum::Int64(n),        Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(seg->rts->Insert(row).status());
  UpdateStats(&seg->rts_stats, begin, end, n, blob.size());
  ++seg->manifest.version;
  return Status::OK();
}

Status OdhStore::PutIrts(int schema_type, SourceId id, Timestamp begin,
                         Timestamp end, int64_t n, const std::string& blob,
                         const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kIrts, schema_type, id, begin,
                             end, /*interval=*/0, n, blob, zone_map));
  ODH_ASSIGN_OR_RETURN(Segment * seg,
                       GetSegmentForWrite(schema_type, container, begin));
  Row row = {Datum::Int64(id), Datum::Time(begin), Datum::Time(end),
             Datum::Int64(0),  Datum::Int64(n),    Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(seg->irts->Insert(row).status());
  UpdateStats(&seg->irts_stats, begin, end, n, blob.size());
  ++seg->manifest.version;
  return Status::OK();
}

Status OdhStore::PutMg(int schema_type, int64_t group, Timestamp begin,
                       Timestamp end, int64_t n, const std::string& blob,
                       const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kMg, schema_type, group,
                             begin, end, /*interval=*/0, n, blob, zone_map));
  ODH_ASSIGN_OR_RETURN(Segment * seg,
                       GetSegmentForWrite(schema_type, container, begin));
  Row row = {Datum::Time(begin), Datum::Int64(group), Datum::Time(end),
             Datum::Int64(n), Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(seg->mg->Insert(row).status());
  UpdateStats(&seg->mg_stats, begin, end, n, blob.size());
  ++seg->manifest.version;
  return Status::OK();
}

namespace {

Status ScanSeries(relational::Table* table, const ContainerStats& stats,
                  int64_t seg_key, int64_t generation, SourceId id,
                  Timestamp lo, Timestamp hi,
                  std::atomic<int64_t>* examined,
                  std::atomic<int64_t>* discarded,
                  std::vector<BlobRecord>* out) {
  // Partition elimination: only blobs with begin_ts in
  // [lo - max_span, hi] can overlap [lo, hi].
  Timestamp scan_lo =
      lo == kMinTimestamp ? kMinTimestamp : lo - stats.max_span;
  if (scan_lo > lo) scan_lo = kMinTimestamp;  // Underflow guard.
  std::string lo_key = EncodeKey({Datum::Int64(id), Datum::Time(scan_lo)});
  std::string hi_key = EncodeKey({Datum::Int64(id), Datum::Time(hi)});
  ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                       table->IndexScan(0, lo_key, hi_key));
  while (it.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, table->Get(it.rid()));
    BlobRecord rec;
    rec.id = row[0].int64_value();
    rec.begin = row[1].timestamp_value();
    rec.end = row[2].timestamp_value();
    rec.interval = row[3].int64_value();
    rec.n = row[4].int64_value();
    rec.blob = row[5].string_value();
    rec.zone_map = row[6].string_value();
    rec.rid = it.rid();
    rec.seg = seg_key;
    rec.generation = generation;
    examined->fetch_add(1, std::memory_order_relaxed);
    if (rec.end >= lo) {
      out->push_back(std::move(rec));
    } else {
      discarded->fetch_add(1, std::memory_order_relaxed);
    }
    ODH_RETURN_IF_ERROR(it.Next());
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<BlobRecord>> OdhStore::GetRts(int schema_type,
                                                 SourceId id, Timestamp lo,
                                                 Timestamp hi,
                                                 SegmentScanStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  std::vector<BlobRecord> out;
  for (auto& [key, seg] : container->segments) {
    if (SegmentDisjoint(seg.rts_stats, lo, hi)) {
      if (seg.rts_stats.blob_count > 0) CountSegmentPruned(stats);
      continue;
    }
    ODH_RETURN_IF_ERROR(ScanSeries(seg.rts, seg.rts_stats, key,
                                   seg.manifest.generation, id, lo, hi,
                                   &blobs_examined_, &blobs_discarded_,
                                   &out));
  }
  return out;
}

Result<std::vector<BlobRecord>> OdhStore::GetIrts(int schema_type,
                                                  SourceId id, Timestamp lo,
                                                  Timestamp hi,
                                                  SegmentScanStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  std::vector<BlobRecord> out;
  for (auto& [key, seg] : container->segments) {
    if (SegmentDisjoint(seg.irts_stats, lo, hi)) {
      if (seg.irts_stats.blob_count > 0) CountSegmentPruned(stats);
      continue;
    }
    ODH_RETURN_IF_ERROR(ScanSeries(seg.irts, seg.irts_stats, key,
                                   seg.manifest.generation, id, lo, hi,
                                   &blobs_examined_, &blobs_discarded_,
                                   &out));
  }
  return out;
}

Result<std::vector<BlobRecord>> OdhStore::GetMg(int schema_type,
                                                int64_t group, Timestamp lo,
                                                Timestamp hi,
                                                SegmentScanStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  std::vector<BlobRecord> out;
  for (auto& [key, seg] : container->segments) {
    if (SegmentDisjoint(seg.mg_stats, lo, hi)) {
      if (seg.mg_stats.blob_count > 0) CountSegmentPruned(stats);
      continue;
    }
    Timestamp scan_lo =
        lo == kMinTimestamp ? kMinTimestamp : lo - seg.mg_stats.max_span;
    if (scan_lo > lo) scan_lo = kMinTimestamp;
    std::string lo_key = EncodeKey({Datum::Time(scan_lo)});
    std::string hi_key = EncodeKey({Datum::Time(hi)});
    ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                         seg.mg->IndexScan(0, lo_key, hi_key));
    while (it.Valid()) {
      ODH_ASSIGN_OR_RETURN(Row row, seg.mg->Get(it.rid()));
      BlobRecord rec;
      rec.begin = row[0].timestamp_value();
      rec.group = row[1].int64_value();
      rec.end = row[2].timestamp_value();
      rec.n = row[3].int64_value();
      rec.blob = row[4].string_value();
      rec.zone_map = row[5].string_value();
      rec.rid = it.rid();
      rec.seg = key;
      rec.generation = seg.mg_epoch;
      blobs_examined_.fetch_add(1, std::memory_order_relaxed);
      if (rec.end >= lo && (group < 0 || rec.group == group)) {
        out.push_back(std::move(rec));
      } else {
        blobs_discarded_.fetch_add(1, std::memory_order_relaxed);
      }
      ODH_RETURN_IF_ERROR(it.Next());
    }
  }
  return out;
}

Status OdhStore::DeleteMg(int schema_type, int64_t seg_key,
                          const relational::Rid& rid) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  auto it = container->segments.find(seg_key);
  if (it == container->segments.end()) {
    return Status::NotFound("no segment " + std::to_string(seg_key));
  }
  Segment& seg = it->second;
  // Keep the count/byte stats honest for the cost model; the min/max/span
  // fields stay conservative.
  auto row = seg.mg->Get(rid);
  if (row.ok()) {
    ContainerStats& stats = seg.mg_stats;
    --stats.blob_count;
    stats.point_count -= (*row)[kMgCount].int64_value();
    stats.blob_bytes -=
        static_cast<int64_t>((*row)[kMgBlob].string_value().size());
    // Log the deletion so recovery does not resurrect a blob the
    // reorganizer already converted (its RTS/IRTS replacements are logged
    // by their own Puts).
    ODH_RETURN_IF_ERROR(LogPut(
        WalRecord::Kind::kMgDelete, schema_type,
        (*row)[kMgGroup].int64_value(), (*row)[kMgBegin].timestamp_value(),
        (*row)[kMgEnd].timestamp_value(), /*interval=*/0,
        (*row)[kMgCount].int64_value(), Slice(), Slice()));
  }
  ++seg.manifest.version;
  return seg.mg->Delete(rid);
}

Status OdhStore::CompactMg(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  for (auto& [key, seg] : container->segments) {
    std::string old_name = seg.mg->name();
    std::string new_name =
        SegmentPrefix(type->name, key, seg.manifest.generation) + "mg$v" +
        std::to_string(++mg_version_);
    ODH_ASSIGN_OR_RETURN(relational::Table * fresh,
                         db_->CreateTable(new_name, MgSchema()));
    ODH_RETURN_IF_ERROR(fresh->AddIndex({"pk", {kMgBegin, kMgGroup}}));

    ContainerStats stats;
    auto it = seg.mg->NewIterator();
    ODH_RETURN_IF_ERROR(it.SeekToFirst());
    while (it.Valid()) {
      ODH_ASSIGN_OR_RETURN(Row row, it.row());
      ODH_RETURN_IF_ERROR(fresh->Insert(row).status());
      UpdateStats(&stats, row[kMgBegin].timestamp_value(),
                  row[kMgEnd].timestamp_value(),
                  row[kMgCount].int64_value(),
                  row[kMgBlob].string_value().size());
      ODH_RETURN_IF_ERROR(it.Next());
    }
    ODH_RETURN_IF_ERROR(fresh->Commit());
    ODH_RETURN_IF_ERROR(db_->DropTable(old_name));
    seg.mg = fresh;
    seg.mg_stats = stats;
    // The rebuild reshuffled rids without a manifest-generation bump;
    // advance the MG epoch so cached decodes of the old layout expire.
    ++seg.mg_epoch;
    ++seg.manifest.version;
  }
  return Status::OK();
}

Status OdhStore::NextSliceChunk(int schema_type, bool irts, Timestamp lo,
                                Timestamp hi, SliceCursor* cursor,
                                std::vector<BlobRecord>* out, bool* done,
                                SegmentScanStats* stats) {
  out->clear();
  *done = false;
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  auto it = container->segments.lower_bound(cursor->seg);
  if (cursor->in_segment &&
      (it == container->segments.end() || it->first != cursor->seg ||
       it->second.manifest.generation != cursor->generation)) {
    // The segment we were mid-way through was dropped or compacted into a
    // new generation. Its replacement has a different physical layout, so
    // the resume rid is meaningless — skip the remainder and move on
    // (same contract as a drop between whole-segment chunks).
    cursor->in_segment = false;
    if (cursor->pin || cursor->seg == INT64_MAX) {
      *done = true;
      return Status::OK();
    }
    ++cursor->seg;
    it = container->segments.lower_bound(cursor->seg);
  }
  if (it == container->segments.end() ||
      (cursor->pin && it->first != cursor->seg)) {
    // Pinned cursor whose segment vanished: lower_bound would land on the
    // NEXT key, which belongs to another worker — report done instead.
    *done = true;
    return Status::OK();
  }
  Segment& seg = it->second;
  const int64_t key = it->first;
  cursor->seg = key;
  if (!cursor->in_segment) {
    const ContainerStats& sstats = irts ? seg.irts_stats : seg.rts_stats;
    if (SegmentDisjoint(sstats, lo, hi)) {
      // Pinned cursors never count pruning: the SliceSegments listing that
      // produced them already did.
      if (cursor->pin) {
        *done = true;
        return Status::OK();
      }
      if (sstats.blob_count > 0) CountSegmentPruned(stats);
      if (key == INT64_MAX) {
        *done = true;
      } else {
        ++cursor->seg;
      }
      return Status::OK();
    }
  }
  relational::Table* table = irts ? seg.irts : seg.rts;
  auto rows = table->NewIterator();
  if (cursor->in_segment) {
    ODH_RETURN_IF_ERROR(rows.SeekAfter(cursor->last));
  } else {
    ODH_RETURN_IF_ERROR(rows.SeekToFirst());
  }
  int consumed = 0;
  bool more = false;
  relational::Rid last{};
  while (rows.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, rows.row());
    BlobRecord rec;
    ODH_RETURN_IF_ERROR(
        RowToBlobRecord(row, rows.rid(), /*is_mg=*/false, &rec));
    rec.seg = key;
    rec.generation = seg.manifest.generation;
    last = rows.rid();
    ++consumed;
    // Same overlap filter the streaming path applied; deliberately not
    // counted in blobs_examined/discarded (slice scans never were).
    if (rec.end >= lo && rec.begin <= hi) out->push_back(std::move(rec));
    ODH_RETURN_IF_ERROR(rows.Next());
    if (consumed >= kSliceChunkRows && rows.Valid()) {
      more = true;
      break;
    }
  }
  if (more) {
    cursor->in_segment = true;
    cursor->generation = seg.manifest.generation;
    cursor->last = last;
  } else {
    cursor->in_segment = false;
    if (cursor->pin || key == INT64_MAX) {
      *done = true;
    } else {
      ++cursor->seg;
    }
  }
  return Status::OK();
}

Result<std::vector<int64_t>> OdhStore::SliceSegments(
    int schema_type, bool irts, Timestamp lo, Timestamp hi,
    SegmentScanStats* stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  std::vector<int64_t> out;
  for (auto& [key, seg] : container->segments) {
    const ContainerStats& sstats = irts ? seg.irts_stats : seg.rts_stats;
    if (SegmentDisjoint(sstats, lo, hi)) {
      if (sstats.blob_count > 0) CountSegmentPruned(stats);
      continue;
    }
    out.push_back(key);
  }
  return out;
}

ContainerStats OdhStore::rts_stats(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  ContainerStats total;
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) return total;
  for (const auto& [key, seg] : it->second.segments) {
    (void)key;
    total.Merge(seg.rts_stats);
  }
  return total;
}

ContainerStats OdhStore::irts_stats(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  ContainerStats total;
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) return total;
  for (const auto& [key, seg] : it->second.segments) {
    (void)key;
    total.Merge(seg.irts_stats);
  }
  return total;
}

ContainerStats OdhStore::mg_stats(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  ContainerStats total;
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) return total;
  for (const auto& [key, seg] : it->second.segments) {
    (void)key;
    total.Merge(seg.mg_stats);
  }
  return total;
}

std::vector<SegmentInfo> OdhStore::SegmentInfos(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentInfo> out;
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) return out;
  for (const auto& [key, seg] : it->second.segments) {
    SegmentInfo info;
    info.key = key;
    info.lo = seg.manifest.lo;
    info.hi = seg.manifest.hi;
    info.generation = seg.manifest.generation;
    info.tier = seg.manifest.tier;
    for (const ContainerStats* s :
         {&seg.rts_stats, &seg.irts_stats, &seg.mg_stats}) {
      info.blob_count += s->blob_count;
      info.point_count += s->point_count;
      info.blob_bytes += s->blob_bytes;
      if (s->min_ts < info.min_ts) info.min_ts = s->min_ts;
      if (s->max_ts > info.max_ts) info.max_ts = s->max_ts;
    }
    out.push_back(info);
  }
  return out;
}

Status OdhStore::SetRetention(int schema_type, Timestamp retention_micros) {
  if (retention_micros < 0) {
    return Status::InvalidArgument("retention must be non-negative");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (containers_.count(schema_type) == 0) {
    return Status::NotFound("no containers for schema type " +
                            std::to_string(schema_type));
  }
  if (retention_micros == 0) {
    retention_.erase(schema_type);
  } else {
    retention_[schema_type] = retention_micros;
  }
  return Status::OK();
}

Timestamp OdhStore::retention(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retention_.find(schema_type);
  return it == retention_.end() ? 0 : it->second;
}

Result<int64_t> OdhStore::ApplyRetention(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  auto rit = retention_.find(schema_type);
  if (rit == retention_.end() || config_->options().segment_span == 0 ||
      container->segments.size() < 2) {
    return int64_t{0};
  }
  // Watermark: the newest ingested timestamp of this schema type.
  Timestamp watermark = kMinTimestamp;
  for (const auto& [key, seg] : container->segments) {
    (void)key;
    for (const ContainerStats* s :
         {&seg.rts_stats, &seg.irts_stats, &seg.mg_stats}) {
      if (s->max_ts > watermark) watermark = s->max_ts;
    }
  }
  if (watermark == kMinTimestamp) return int64_t{0};
  const Timestamp cutoff = watermark - rit->second;
  const int64_t newest_key = container->segments.rbegin()->first;

  std::vector<int64_t> expired;
  for (const auto& [key, seg] : container->segments) {
    if (key == newest_key) continue;  // Never drop the ingesting segment.
    if (seg.manifest.hi > cutoff) continue;  // Nominal range not expired.
    // Data bounds may spill past the nominal hi (a blob beginning near the
    // boundary ends in the next window); never drop unexpired points.
    Timestamp data_max = kMinTimestamp;
    for (const ContainerStats* s :
         {&seg.rts_stats, &seg.irts_stats, &seg.mg_stats}) {
      if (s->max_ts > data_max) data_max = s->max_ts;
    }
    if (data_max >= cutoff) continue;
    expired.push_back(key);
  }

  for (int64_t key : expired) {
    Segment& seg = container->segments.at(key);
    // WAL first, synced before any table goes away: recovery must know the
    // drop happened before it can be allowed to forget the data records.
    // A crash before the sync merely resurrects the expired segment; the
    // next ApplyRetention drops it again.
    ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kSegmentDrop, schema_type,
                               key, seg.manifest.lo, seg.manifest.hi,
                               /*interval=*/0, /*n=*/0, Slice(), Slice()));
    ODH_RETURN_IF_ERROR(wal_->Sync());
    ODH_RETURN_IF_ERROR(db_->DropTable(seg.rts->name()));
    ODH_RETURN_IF_ERROR(db_->DropTable(seg.irts->name()));
    ODH_RETURN_IF_ERROR(db_->DropTable(seg.mg->name()));
    // A later write re-creating this key must start past every generation
    // the dropped segment used, or cached decodes of it would resurface.
    container->next_generation[key] =
        std::max(seg.manifest.generation, seg.mg_epoch) + 1;
    container->segments.erase(key);
    segments_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return static_cast<int64_t>(expired.size());
}

std::vector<int64_t> OdhStore::SealedHotSegments(int schema_type) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> out;
  auto it = containers_.find(schema_type);
  if (it == containers_.end() || it->second.segments.size() < 2 ||
      config_->options().segment_span == 0) {
    return out;
  }
  const int64_t newest_key = it->second.segments.rbegin()->first;
  for (const auto& [key, seg] : it->second.segments) {
    if (key == newest_key) continue;
    if (seg.manifest.tier != SegmentTier::kHot) continue;
    if (seg.rts_stats.blob_count + seg.irts_stats.blob_count == 0) continue;
    out.push_back(key);
  }
  return out;
}

Result<SegmentSnapshot> OdhStore::SnapshotSegment(int schema_type,
                                                  int64_t key) const {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(const Container* container,
                       GetContainer(schema_type));
  auto it = container->segments.find(key);
  if (it == container->segments.end()) {
    return Status::NotFound("no segment " + std::to_string(key));
  }
  const Segment& seg = it->second;
  SegmentSnapshot snap;
  snap.manifest = seg.manifest;
  for (bool irts : {false, true}) {
    relational::Table* table = irts ? seg.irts : seg.rts;
    std::vector<BlobRecord>* out = irts ? &snap.irts : &snap.rts;
    auto rows = table->NewIterator();
    ODH_RETURN_IF_ERROR(rows.SeekToFirst());
    while (rows.Valid()) {
      ODH_ASSIGN_OR_RETURN(Row row, rows.row());
      BlobRecord rec;
      ODH_RETURN_IF_ERROR(
          RowToBlobRecord(row, rows.rid(), /*is_mg=*/false, &rec));
      rec.seg = key;
      rec.generation = seg.manifest.generation;
      out->push_back(std::move(rec));
      ODH_RETURN_IF_ERROR(rows.Next());
    }
  }
  return snap;
}

Status OdhStore::SwapCompactedSegment(int schema_type, int64_t key,
                                      uint64_t expected_version,
                                      const std::vector<BlobRecord>& rts,
                                      const std::vector<BlobRecord>& irts) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  auto it = container->segments.find(key);
  if (it == container->segments.end()) {
    return Status::NotFound("no segment " + std::to_string(key));
  }
  Segment& seg = it->second;
  if (seg.manifest.version != expected_version) {
    return Status::Aborted("segment " + std::to_string(key) +
                           " changed during compaction");
  }

  // One contiguous WAL episode under mu_: Begin (carrying the segment's
  // nominal bounds so recovery can suppress the superseded records), the
  // replacement blobs, Commit. Synced before the in-memory swap so a crash
  // at any later point replays the compacted segment, and a crash before
  // the Commit frame is durable discards the episode and keeps the old
  // one — exactly one of the two ever survives.
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kSegmentCompactBegin,
                             schema_type, key, seg.manifest.lo,
                             seg.manifest.hi, /*interval=*/0, /*n=*/0,
                             Slice(), Slice()));
  for (const BlobRecord& rec : rts) {
    ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kRts, schema_type, rec.id,
                               rec.begin, rec.end, rec.interval, rec.n,
                               rec.blob, rec.zone_map));
  }
  for (const BlobRecord& rec : irts) {
    ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kIrts, schema_type, rec.id,
                               rec.begin, rec.end, /*interval=*/0, rec.n,
                               rec.blob, rec.zone_map));
  }
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kSegmentCompactCommit,
                             schema_type, key, seg.manifest.lo,
                             seg.manifest.hi, /*interval=*/0, /*n=*/0,
                             Slice(), Slice()));
  ODH_RETURN_IF_ERROR(wal_->Sync());

  // Build the next generation's tables, then swap and drop the old ones.
  const int next_gen = seg.manifest.generation + 1;
  const std::string prefix = SegmentPrefix(type->name, key, next_gen);
  ODH_ASSIGN_OR_RETURN(relational::Table * new_rts,
                       db_->CreateTable(prefix + "rts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(new_rts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ODH_ASSIGN_OR_RETURN(relational::Table * new_irts,
                       db_->CreateTable(prefix + "irts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(
      new_irts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ContainerStats rts_stats, irts_stats;
  for (const BlobRecord& rec : rts) {
    Row row = {Datum::Int64(rec.id),       Datum::Time(rec.begin),
               Datum::Time(rec.end),       Datum::Int64(rec.interval),
               Datum::Int64(rec.n),        Datum::String(rec.blob),
               Datum::String(rec.zone_map)};
    ODH_RETURN_IF_ERROR(new_rts->Insert(row).status());
    UpdateStats(&rts_stats, rec.begin, rec.end, rec.n, rec.blob.size());
  }
  for (const BlobRecord& rec : irts) {
    Row row = {Datum::Int64(rec.id), Datum::Time(rec.begin),
               Datum::Time(rec.end), Datum::Int64(0),
               Datum::Int64(rec.n),  Datum::String(rec.blob),
               Datum::String(rec.zone_map)};
    ODH_RETURN_IF_ERROR(new_irts->Insert(row).status());
    UpdateStats(&irts_stats, rec.begin, rec.end, rec.n, rec.blob.size());
  }
  ODH_RETURN_IF_ERROR(new_rts->Commit());
  ODH_RETURN_IF_ERROR(new_irts->Commit());
  ODH_RETURN_IF_ERROR(db_->DropTable(seg.rts->name()));
  ODH_RETURN_IF_ERROR(db_->DropTable(seg.irts->name()));
  seg.rts = new_rts;
  seg.irts = new_irts;
  seg.rts_stats = rts_stats;
  seg.irts_stats = irts_stats;
  seg.manifest.generation = next_gen;
  seg.manifest.tier = SegmentTier::kCold;
  ++seg.manifest.version;
  segments_compacted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status OdhStore::RowToBlobRecord(const Row& row, const relational::Rid& rid,
                                 bool is_mg, BlobRecord* rec) {
  if (is_mg) {
    rec->begin = row[kMgBegin].timestamp_value();
    rec->group = row[kMgGroup].int64_value();
    rec->end = row[kMgEnd].timestamp_value();
    rec->n = row[kMgCount].int64_value();
    rec->blob = row[kMgBlob].string_value();
    rec->zone_map = row[kMgZone].string_value();
  } else {
    rec->id = row[kSeriesId].int64_value();
    rec->begin = row[kSeriesBegin].timestamp_value();
    rec->end = row[kSeriesEnd].timestamp_value();
    rec->interval = row[kSeriesInterval].int64_value();
    rec->n = row[kSeriesCount].int64_value();
    rec->blob = row[kSeriesBlob].string_value();
    rec->zone_map = row[kSeriesZone].string_value();
  }
  rec->rid = rid;
  return Status::OK();
}

Status OdhStore::Sync(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  // Write-ahead: the log reaches disk before the table pages, so any blob
  // visible in the flushed containers is also replayable.
  if (wal_ != nullptr) ODH_RETURN_IF_ERROR(wal_->Sync());
  for (auto& [key, seg] : container->segments) {
    (void)key;
    ODH_RETURN_IF_ERROR(seg.rts->Commit());
    ODH_RETURN_IF_ERROR(seg.irts->Commit());
    ODH_RETURN_IF_ERROR(seg.mg->Commit());
  }
  return Status::OK();
}

Result<OdhStore::ReplicationSnapshot> OdhStore::SnapshotForReplication() {
  std::lock_guard<std::mutex> lock(mu_);
  ReplicationSnapshot snap;
  if (wal_ != nullptr) {
    // Appends are blocked while mu_ is held, so after this Sync the
    // durable log covers every record any table row below came from.
    ODH_RETURN_IF_ERROR(wal_->Sync());
    snap.base_lsn = wal_->synced_bytes();
  }
  for (const auto& [schema_type, container] : containers_) {
    for (const auto& [key, seg] : container.segments) {
      (void)key;
      for (bool irts : {false, true}) {
        relational::Table* table = irts ? seg.irts : seg.rts;
        auto rows = table->NewIterator();
        ODH_RETURN_IF_ERROR(rows.SeekToFirst());
        while (rows.Valid()) {
          ODH_ASSIGN_OR_RETURN(Row row, rows.row());
          std::string payload;
          EncodeWalPayload(
              irts ? WalRecord::Kind::kIrts : WalRecord::Kind::kRts,
              schema_type, row[kSeriesId].int64_value(),
              row[kSeriesBegin].timestamp_value(),
              row[kSeriesEnd].timestamp_value(),
              row[kSeriesInterval].int64_value(),
              row[kSeriesCount].int64_value(),
              Slice(row[kSeriesBlob].string_value()),
              Slice(row[kSeriesZone].string_value()), &payload);
          snap.records.push_back(std::move(payload));
          ODH_RETURN_IF_ERROR(rows.Next());
        }
      }
      auto rows = seg.mg->NewIterator();
      ODH_RETURN_IF_ERROR(rows.SeekToFirst());
      while (rows.Valid()) {
        ODH_ASSIGN_OR_RETURN(Row row, rows.row());
        std::string payload;
        EncodeWalPayload(WalRecord::Kind::kMg, schema_type,
                         row[kMgGroup].int64_value(),
                         row[kMgBegin].timestamp_value(),
                         row[kMgEnd].timestamp_value(), /*interval=*/0,
                         row[kMgCount].int64_value(),
                         Slice(row[kMgBlob].string_value()),
                         Slice(row[kMgZone].string_value()), &payload);
        snap.records.push_back(std::move(payload));
        ODH_RETURN_IF_ERROR(rows.Next());
      }
    }
  }
  return snap;
}

uint64_t OdhStore::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_ == nullptr ? 0 : wal_->synced_bytes();
}

Result<Wal::TailChunk> OdhStore::ReadWal(uint64_t from_lsn,
                                         size_t max_bytes) const {
  const Wal* log;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log = wal_.get();
  }
  if (log == nullptr) {
    Wal::TailChunk empty;
    empty.next_lsn = from_lsn;
    return empty;
  }
  // The Wal lives as long as the store once created; ReadDurable is
  // thread-safe, so the cursor read runs outside mu_ and never blocks
  // ingestion.
  return log->ReadDurable(from_lsn, max_bytes);
}

Timestamp OdhStore::MaxIngestedTimestamp() const {
  std::lock_guard<std::mutex> lock(mu_);
  Timestamp watermark = kMinTimestamp;
  for (const auto& [schema_type, container] : containers_) {
    (void)schema_type;
    for (const auto& [key, seg] : container.segments) {
      (void)key;
      for (const ContainerStats* s :
           {&seg.rts_stats, &seg.irts_stats, &seg.mg_stats}) {
        if (s->max_ts > watermark) watermark = s->max_ts;
      }
    }
  }
  return watermark;
}

Status OdhStore::DeleteMgByContent(int schema_type, int64_t group,
                                   Timestamp begin, Timestamp end,
                                   int64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  const std::string key = EncodeKey({Datum::Time(begin), Datum::Int64(group)});
  for (auto& [seg_key, seg] : container->segments) {
    (void)seg_key;
    if (SegmentDisjoint(seg.mg_stats, begin, begin)) continue;
    ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                         seg.mg->IndexScan(0, key, key));
    while (it.Valid()) {
      ODH_ASSIGN_OR_RETURN(Row row, seg.mg->Get(it.rid()));
      if (row[kMgEnd].timestamp_value() == end &&
          row[kMgCount].int64_value() == n) {
        ContainerStats& stats = seg.mg_stats;
        --stats.blob_count;
        stats.point_count -= n;
        stats.blob_bytes -=
            static_cast<int64_t>(row[kMgBlob].string_value().size());
        ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kMgDelete, schema_type,
                                   group, begin, end, /*interval=*/0, n,
                                   Slice(), Slice()));
        ++seg.manifest.version;
        return seg.mg->Delete(it.rid());
      }
      ODH_RETURN_IF_ERROR(it.Next());
    }
  }
  // Already absent: the bootstrap snapshot can precede the delete record
  // it replicates, so this is convergence, not loss.
  return Status::OK();
}

Status OdhStore::ApplyReplicatedDrop(int schema_type, int64_t key,
                                     Timestamp lo, Timestamp hi) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  auto it = container->segments.find(key);
  if (it == container->segments.end()) return Status::OK();  // Idempotent.
  Segment& seg = it->second;
  // Log the LOCAL manifest bounds, not the primary's: this record drives
  // the replica's own recovery, which suppresses data records inside the
  // logged window. Same OdhOptions make the two identical anyway.
  (void)lo;
  (void)hi;
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kSegmentDrop, schema_type, key,
                             seg.manifest.lo, seg.manifest.hi,
                             /*interval=*/0, /*n=*/0, Slice(), Slice()));
  ODH_RETURN_IF_ERROR(wal_->Sync());
  ODH_RETURN_IF_ERROR(db_->DropTable(seg.rts->name()));
  ODH_RETURN_IF_ERROR(db_->DropTable(seg.irts->name()));
  ODH_RETURN_IF_ERROR(db_->DropTable(seg.mg->name()));
  container->next_generation[key] =
      std::max(seg.manifest.generation, seg.mg_epoch) + 1;
  container->segments.erase(key);
  segments_dropped_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<RecoveryReport> OdhStore::Recover(storage::SimDisk* crashed_disk) {
  ODH_ASSIGN_OR_RETURN(Wal::ReadResult log,
                       Wal::ReadLog(crashed_disk, kWalFileName));
  RecoveryReport report;
  report.wal_valid_bytes = log.valid_bytes;
  report.torn_bytes_dropped = log.torn_bytes_dropped;

  // Queries in flight at the crash may have left spill runs behind; they
  // are pure temp state (the WAL never references them), so recovery
  // sweeps them before replay.
  for (const std::string& name : crashed_disk->ListFiles()) {
    if (storage::IsSpillFileName(name)) {
      ODH_RETURN_IF_ERROR(crashed_disk->DeleteFile(name));
      ++report.spill_files_swept;
    }
  }

  std::vector<WalRecord> records;
  records.reserve(log.records.size());
  for (const std::string& payload : log.records) {
    WalRecord rec;
    if (!WalRecord::Decode(payload, &rec)) {
      ++report.undecodable_records;
      continue;
    }
    records.push_back(std::move(rec));
  }

  // Pass 1: classify segment ops. A committed compaction episode
  // (Begin..Commit, appended contiguously under the store mutex) or a
  // retention drop supersedes every EARLIER data record of its schema type
  // whose begin lies inside the logged segment bounds; an episode whose
  // Commit never made it to the log is discarded wholesale.
  struct Supersede {
    int schema_type;
    Timestamp lo, hi;  // hi exclusive.
    size_t cutoff;     // Records before this index are superseded.
  };
  std::vector<Supersede> supersedes;
  std::vector<bool> skip(records.size(), false);
  size_t open_begin = records.size();  // == size: no open episode.
  for (size_t i = 0; i < records.size(); ++i) {
    const WalRecord& rec = records[i];
    if (rec.kind == WalRecord::Kind::kSegmentCompactBegin) {
      skip[i] = true;
      open_begin = i;
    } else if (rec.kind == WalRecord::Kind::kSegmentCompactCommit) {
      skip[i] = true;
      if (open_begin < i) {
        supersedes.push_back(
            {rec.schema_type, rec.begin, rec.end, open_begin});
      }
      open_begin = records.size();
    } else if (rec.kind == WalRecord::Kind::kSegmentDrop) {
      skip[i] = true;
      supersedes.push_back({rec.schema_type, rec.begin, rec.end, i});
    }
  }
  if (open_begin < records.size()) {
    // Crash mid-episode: the suffix from Begin on is the half-written
    // rewrite. Drop it; the superseded originals replay normally.
    for (size_t i = open_begin; i < records.size(); ++i) {
      if (!skip[i]) {
        skip[i] = true;
        ++report.uncommitted_episode_records;
      }
    }
  }
  for (const Supersede& s : supersedes) {
    for (size_t i = 0; i < s.cutoff; ++i) {
      if (skip[i]) continue;
      const WalRecord& rec = records[i];
      if (rec.schema_type != s.schema_type || !IsDataRecord(rec.kind)) {
        continue;
      }
      if (rec.begin >= s.lo && rec.begin < s.hi) {
        skip[i] = true;
        ++report.records_superseded;
      }
    }
  }

  // MG deletions cancel one matching earlier Put each; collect the
  // surviving ones (rids are not stable across recovery, so matching is
  // by content key).
  using MgKey = std::tuple<int, int64_t, Timestamp, Timestamp, int64_t>;
  std::multiset<MgKey> mg_deletes;
  for (size_t i = 0; i < records.size(); ++i) {
    if (skip[i]) continue;
    const WalRecord& rec = records[i];
    if (rec.kind == WalRecord::Kind::kMgDelete) {
      mg_deletes.insert(
          {rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n});
    }
  }

  // Pass 2: replay the survivors in log order through the normal Puts.
  for (size_t i = 0; i < records.size(); ++i) {
    if (skip[i]) continue;
    const WalRecord& rec = records[i];
    switch (rec.kind) {
      case WalRecord::Kind::kRts:
        ODH_RETURN_IF_ERROR(PutRts(rec.schema_type, rec.id_or_group,
                                   rec.begin, rec.end, rec.interval, rec.n,
                                   rec.blob, rec.zone_map));
        ++report.rts_blobs;
        break;
      case WalRecord::Kind::kIrts:
        ODH_RETURN_IF_ERROR(PutIrts(rec.schema_type, rec.id_or_group,
                                    rec.begin, rec.end, rec.n, rec.blob,
                                    rec.zone_map));
        ++report.irts_blobs;
        break;
      case WalRecord::Kind::kMg: {
        auto it = mg_deletes.find(
            {rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n});
        if (it != mg_deletes.end()) {
          mg_deletes.erase(it);  // Converted by the reorganizer: skip.
          break;
        }
        ODH_RETURN_IF_ERROR(PutMg(rec.schema_type, rec.id_or_group,
                                  rec.begin, rec.end, rec.n, rec.blob,
                                  rec.zone_map));
        ++report.mg_blobs;
        break;
      }
      case WalRecord::Kind::kMgDelete:
        break;  // Applied via the skip above.
      case WalRecord::Kind::kSegmentCompactBegin:
      case WalRecord::Kind::kSegmentCompactCommit:
      case WalRecord::Kind::kSegmentDrop:
        break;  // Control records, consumed in pass 1.
    }
  }
  report.records_replayed =
      report.rts_blobs + report.irts_blobs + report.mg_blobs;

  // Make the recovered state durable in its own right (replay went through
  // the normal Put path, so this store's WAL has all surviving records).
  for (auto& [schema_type, container] : containers_) {
    (void)container;
    ODH_RETURN_IF_ERROR(Sync(schema_type));
  }
  return report;
}

}  // namespace odh::core
