#include "core/store.h"

#include <mutex>
#include <set>
#include <tuple>

#include "common/key_codec.h"

namespace odh::core {
namespace {

using relational::Column;
using relational::Schema;

// Column positions in the RTS/IRTS tables.
constexpr int kSeriesId = 0;
constexpr int kSeriesBegin = 1;
constexpr int kSeriesEnd = 2;
constexpr int kSeriesInterval = 3;
constexpr int kSeriesCount = 4;
constexpr int kSeriesBlob = 5;
constexpr int kSeriesZone = 6;

// Column positions in the MG table.
constexpr int kMgBegin = 0;
constexpr int kMgGroup = 1;
constexpr int kMgEnd = 2;
constexpr int kMgCount = 3;
constexpr int kMgBlob = 4;
constexpr int kMgZone = 5;

Schema SeriesSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"begin_ts", DataType::kTimestamp},
                 {"end_ts", DataType::kTimestamp},
                 {"interval", DataType::kInt64},
                 {"n", DataType::kInt64},
                 {"blob", DataType::kString},
                 {"zonemap", DataType::kString}});
}

Schema MgSchema() {
  return Schema({{"begin_ts", DataType::kTimestamp},
                 {"grp", DataType::kInt64},
                 {"end_ts", DataType::kTimestamp},
                 {"n", DataType::kInt64},
                 {"blob", DataType::kString},
                 {"zonemap", DataType::kString}});
}

}  // namespace

Status OdhStore::CreateContainers(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  if (containers_.count(schema_type) > 0) {
    return Status::AlreadyExists("containers exist for " + type->name);
  }
  Container container;
  // B-tree indexes on the first two fields of each batch structure
  // (paper §2: "B-tree indices are created on the first two fields").
  ODH_ASSIGN_OR_RETURN(
      container.rts,
      db_->CreateTable("odh$" + type->name + "$rts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(
      container.rts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ODH_ASSIGN_OR_RETURN(
      container.irts,
      db_->CreateTable("odh$" + type->name + "$irts", SeriesSchema()));
  ODH_RETURN_IF_ERROR(
      container.irts->AddIndex({"pk", {kSeriesId, kSeriesBegin}}));
  ODH_ASSIGN_OR_RETURN(
      container.mg,
      db_->CreateTable("odh$" + type->name + "$mg", MgSchema()));
  ODH_RETURN_IF_ERROR(container.mg->AddIndex({"pk", {kMgBegin, kMgGroup}}));
  containers_[schema_type] = container;
  return Status::OK();
}

Result<OdhStore::Container*> OdhStore::GetContainer(int schema_type) {
  auto it = containers_.find(schema_type);
  if (it == containers_.end()) {
    return Status::NotFound("no containers for schema type " +
                            std::to_string(schema_type));
  }
  return &it->second;
}

void OdhStore::UpdateStats(ContainerStats* stats, Timestamp begin,
                           Timestamp end, int64_t n, size_t blob_bytes) {
  ++stats->blob_count;
  stats->point_count += n;
  stats->blob_bytes += static_cast<int64_t>(blob_bytes);
  if (begin < stats->min_ts) stats->min_ts = begin;
  if (end > stats->max_ts) stats->max_ts = end;
  if (end - begin > stats->max_span) stats->max_span = end - begin;
}

Status OdhStore::LogPut(WalRecord::Kind kind, int schema_type,
                        int64_t id_or_group, Timestamp begin, Timestamp end,
                        Timestamp interval, int64_t n, const Slice& blob,
                        const Slice& zone_map) {
  if (wal_ == nullptr) {
    ODH_ASSIGN_OR_RETURN(wal_, Wal::Create(db_->disk(), kWalFileName));
    wal_->SetInstruments(wal_sync_hist_, wal_group_commits_,
                         wal_piggybacked_);
  }
  std::string payload;
  EncodeWalPayload(kind, schema_type, id_or_group, begin, end, interval, n,
                   blob, zone_map, &payload);
  wal_->Append(payload);
  return Status::OK();
}

Status OdhStore::PutRts(int schema_type, SourceId id, Timestamp begin,
                        Timestamp end, Timestamp interval, int64_t n,
                        const std::string& blob,
                        const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  // Log before the heap/index write: once Sync() flushes the log, the blob
  // is replayable even if the table pages never made it to disk.
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kRts, schema_type, id, begin,
                             end, interval, n, blob, zone_map));
  Row row = {Datum::Int64(id),       Datum::Time(begin),
             Datum::Time(end),       Datum::Int64(interval),
             Datum::Int64(n),        Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(container->rts->Insert(row).status());
  UpdateStats(&container->rts_stats, begin, end, n, blob.size());
  return Status::OK();
}

Status OdhStore::PutIrts(int schema_type, SourceId id, Timestamp begin,
                         Timestamp end, int64_t n, const std::string& blob,
                         const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kIrts, schema_type, id, begin,
                             end, /*interval=*/0, n, blob, zone_map));
  Row row = {Datum::Int64(id), Datum::Time(begin), Datum::Time(end),
             Datum::Int64(0),  Datum::Int64(n),    Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(container->irts->Insert(row).status());
  UpdateStats(&container->irts_stats, begin, end, n, blob.size());
  return Status::OK();
}

Status OdhStore::PutMg(int schema_type, int64_t group, Timestamp begin,
                       Timestamp end, int64_t n, const std::string& blob,
                       const std::string& zone_map) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_RETURN_IF_ERROR(LogPut(WalRecord::Kind::kMg, schema_type, group,
                             begin, end, /*interval=*/0, n, blob, zone_map));
  Row row = {Datum::Time(begin), Datum::Int64(group), Datum::Time(end),
             Datum::Int64(n), Datum::String(blob),
             Datum::String(zone_map)};
  ODH_RETURN_IF_ERROR(container->mg->Insert(row).status());
  UpdateStats(&container->mg_stats, begin, end, n, blob.size());
  return Status::OK();
}

namespace {

Result<std::vector<BlobRecord>> ScanSeries(relational::Table* table,
                                           const ContainerStats& stats,
                                           SourceId id, Timestamp lo,
                                           Timestamp hi,
                                           std::atomic<int64_t>* examined,
                                           std::atomic<int64_t>* discarded) {
  std::vector<BlobRecord> out;
  // Partition elimination: only blobs with begin_ts in
  // [lo - max_span, hi] can overlap [lo, hi].
  Timestamp scan_lo =
      lo == kMinTimestamp ? kMinTimestamp : lo - stats.max_span;
  if (scan_lo > lo) scan_lo = kMinTimestamp;  // Underflow guard.
  std::string lo_key = EncodeKey({Datum::Int64(id), Datum::Time(scan_lo)});
  std::string hi_key = EncodeKey({Datum::Int64(id), Datum::Time(hi)});
  ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                       table->IndexScan(0, lo_key, hi_key));
  while (it.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, table->Get(it.rid()));
    BlobRecord rec;
    rec.id = row[0].int64_value();
    rec.begin = row[1].timestamp_value();
    rec.end = row[2].timestamp_value();
    rec.interval = row[3].int64_value();
    rec.n = row[4].int64_value();
    rec.blob = row[5].string_value();
    rec.zone_map = row[6].string_value();
    rec.rid = it.rid();
    examined->fetch_add(1, std::memory_order_relaxed);
    if (rec.end >= lo) {
      out.push_back(std::move(rec));
    } else {
      discarded->fetch_add(1, std::memory_order_relaxed);
    }
    ODH_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

}  // namespace

Result<std::vector<BlobRecord>> OdhStore::GetRts(int schema_type,
                                                 SourceId id, Timestamp lo,
                                                 Timestamp hi) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  return ScanSeries(container->rts, container->rts_stats, id, lo, hi,
                    &blobs_examined_, &blobs_discarded_);
}

Result<std::vector<BlobRecord>> OdhStore::GetIrts(int schema_type,
                                                  SourceId id, Timestamp lo,
                                                  Timestamp hi) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  return ScanSeries(container->irts, container->irts_stats, id, lo, hi,
                    &blobs_examined_, &blobs_discarded_);
}

Result<std::vector<BlobRecord>> OdhStore::GetMg(int schema_type,
                                                int64_t group, Timestamp lo,
                                                Timestamp hi) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  const ContainerStats& stats = container->mg_stats;
  Timestamp scan_lo =
      lo == kMinTimestamp ? kMinTimestamp : lo - stats.max_span;
  if (scan_lo > lo) scan_lo = kMinTimestamp;
  std::string lo_key = EncodeKey({Datum::Time(scan_lo)});
  std::string hi_key = EncodeKey({Datum::Time(hi)});
  ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                       container->mg->IndexScan(0, lo_key, hi_key));
  std::vector<BlobRecord> out;
  while (it.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, container->mg->Get(it.rid()));
    BlobRecord rec;
    rec.begin = row[0].timestamp_value();
    rec.group = row[1].int64_value();
    rec.end = row[2].timestamp_value();
    rec.n = row[3].int64_value();
    rec.blob = row[4].string_value();
    rec.zone_map = row[5].string_value();
    rec.rid = it.rid();
    blobs_examined_.fetch_add(1, std::memory_order_relaxed);
    if (rec.end >= lo && (group < 0 || rec.group == group)) {
      out.push_back(std::move(rec));
    } else {
      blobs_discarded_.fetch_add(1, std::memory_order_relaxed);
    }
    ODH_RETURN_IF_ERROR(it.Next());
  }
  return out;
}

Status OdhStore::DeleteMg(int schema_type, const relational::Rid& rid) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  // Keep the count/byte stats honest for the cost model; the min/max/span
  // fields stay conservative.
  auto row = container->mg->Get(rid);
  if (row.ok()) {
    ContainerStats& stats = container->mg_stats;
    --stats.blob_count;
    stats.point_count -= (*row)[kMgCount].int64_value();
    stats.blob_bytes -=
        static_cast<int64_t>((*row)[kMgBlob].string_value().size());
    // Log the deletion so recovery does not resurrect a blob the
    // reorganizer already converted (its RTS/IRTS replacements are logged
    // by their own Puts).
    ODH_RETURN_IF_ERROR(LogPut(
        WalRecord::Kind::kMgDelete, schema_type,
        (*row)[kMgGroup].int64_value(), (*row)[kMgBegin].timestamp_value(),
        (*row)[kMgEnd].timestamp_value(), /*interval=*/0,
        (*row)[kMgCount].int64_value(), Slice(), Slice()));
  }
  return container->mg->Delete(rid);
}

Status OdhStore::CompactMg(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  std::string old_name = container->mg->name();
  std::string new_name = "odh$" + type->name + "$mg$v" +
                         std::to_string(++mg_version_);
  ODH_ASSIGN_OR_RETURN(relational::Table * fresh,
                       db_->CreateTable(new_name, MgSchema()));
  ODH_RETURN_IF_ERROR(fresh->AddIndex({"pk", {kMgBegin, kMgGroup}}));

  ContainerStats stats;
  auto it = container->mg->NewIterator();
  ODH_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, it.row());
    ODH_RETURN_IF_ERROR(fresh->Insert(row).status());
    UpdateStats(&stats, row[kMgBegin].timestamp_value(),
                row[kMgEnd].timestamp_value(), row[kMgCount].int64_value(),
                row[kMgBlob].string_value().size());
    ODH_RETURN_IF_ERROR(it.Next());
  }
  ODH_RETURN_IF_ERROR(fresh->Commit());
  ODH_RETURN_IF_ERROR(db_->DropTable(old_name));
  container->mg = fresh;
  container->mg_stats = stats;
  return Status::OK();
}

Result<relational::Table*> OdhStore::RtsTable(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  return container->rts;
}

Result<relational::Table*> OdhStore::IrtsTable(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  return container->irts;
}

Result<relational::Table*> OdhStore::MgTable(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  return container->mg;
}

Status OdhStore::RowToBlobRecord(const Row& row, const relational::Rid& rid,
                                 bool is_mg, BlobRecord* rec) {
  if (is_mg) {
    rec->begin = row[kMgBegin].timestamp_value();
    rec->group = row[kMgGroup].int64_value();
    rec->end = row[kMgEnd].timestamp_value();
    rec->n = row[kMgCount].int64_value();
    rec->blob = row[kMgBlob].string_value();
    rec->zone_map = row[kMgZone].string_value();
  } else {
    rec->id = row[kSeriesId].int64_value();
    rec->begin = row[kSeriesBegin].timestamp_value();
    rec->end = row[kSeriesEnd].timestamp_value();
    rec->interval = row[kSeriesInterval].int64_value();
    rec->n = row[kSeriesCount].int64_value();
    rec->blob = row[kSeriesBlob].string_value();
    rec->zone_map = row[kSeriesZone].string_value();
  }
  rec->rid = rid;
  return Status::OK();
}

Status OdhStore::Sync(int schema_type) {
  std::lock_guard<std::mutex> lock(mu_);
  ODH_ASSIGN_OR_RETURN(Container * container, GetContainer(schema_type));
  // Write-ahead: the log reaches disk before the table pages, so any blob
  // visible in the flushed containers is also replayable.
  if (wal_ != nullptr) ODH_RETURN_IF_ERROR(wal_->Sync());
  ODH_RETURN_IF_ERROR(container->rts->Commit());
  ODH_RETURN_IF_ERROR(container->irts->Commit());
  return container->mg->Commit();
}

Result<RecoveryReport> OdhStore::Recover(storage::SimDisk* crashed_disk) {
  ODH_ASSIGN_OR_RETURN(Wal::ReadResult log,
                       Wal::ReadLog(crashed_disk, kWalFileName));
  RecoveryReport report;
  report.wal_valid_bytes = log.valid_bytes;
  report.torn_bytes_dropped = log.torn_bytes_dropped;

  std::vector<WalRecord> records;
  records.reserve(log.records.size());
  // MG deletions cancel one matching earlier Put each; collect them first
  // (rids are not stable across recovery, so matching is by content key).
  using MgKey = std::tuple<int, int64_t, Timestamp, Timestamp, int64_t>;
  std::multiset<MgKey> mg_deletes;
  for (const std::string& payload : log.records) {
    WalRecord rec;
    if (!WalRecord::Decode(payload, &rec)) {
      ++report.undecodable_records;
      continue;
    }
    if (rec.kind == WalRecord::Kind::kMgDelete) {
      mg_deletes.insert(
          {rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n});
    }
    records.push_back(std::move(rec));
  }

  for (const WalRecord& rec : records) {
    switch (rec.kind) {
      case WalRecord::Kind::kRts:
        ODH_RETURN_IF_ERROR(PutRts(rec.schema_type, rec.id_or_group,
                                   rec.begin, rec.end, rec.interval, rec.n,
                                   rec.blob, rec.zone_map));
        ++report.rts_blobs;
        break;
      case WalRecord::Kind::kIrts:
        ODH_RETURN_IF_ERROR(PutIrts(rec.schema_type, rec.id_or_group,
                                    rec.begin, rec.end, rec.n, rec.blob,
                                    rec.zone_map));
        ++report.irts_blobs;
        break;
      case WalRecord::Kind::kMg: {
        auto it = mg_deletes.find(
            {rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n});
        if (it != mg_deletes.end()) {
          mg_deletes.erase(it);  // Converted by the reorganizer: skip.
          break;
        }
        ODH_RETURN_IF_ERROR(PutMg(rec.schema_type, rec.id_or_group,
                                  rec.begin, rec.end, rec.n, rec.blob,
                                  rec.zone_map));
        ++report.mg_blobs;
        break;
      }
      case WalRecord::Kind::kMgDelete:
        break;  // Applied via the skip above.
    }
  }
  report.records_replayed =
      report.rts_blobs + report.irts_blobs + report.mg_blobs;

  // Make the recovered state durable in its own right (replay went through
  // the normal Put path, so this store's WAL has all surviving records).
  for (auto& [schema_type, container] : containers_) {
    (void)container;
    ODH_RETURN_IF_ERROR(Sync(schema_type));
  }
  return report;
}

}  // namespace odh::core
