#ifndef ODH_CORE_STORE_H_
#define ODH_CORE_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/config.h"
#include "core/wal.h"
#include "relational/database.h"

namespace odh::core {

/// What OdhStore::Recover() did. Only blobs that reached the WAL via a
/// successful Sync come back; dirty writer buffers and un-synced Puts are
/// legitimately lost (the paper's transaction-free ingestion contract).
struct RecoveryReport {
  uint64_t records_replayed = 0;
  uint64_t rts_blobs = 0;
  uint64_t irts_blobs = 0;
  uint64_t mg_blobs = 0;
  uint64_t wal_valid_bytes = 0;
  uint64_t torn_bytes_dropped = 0;  // Bytes after the first torn frame.
  uint64_t undecodable_records = 0;  // CRC-valid but unparseable (never
                                     // expected; counted, not fatal).
};

/// Aggregate statistics per container, maintained on every Put. The cost
/// model (paper §3: "we approximate the cost ... as the expected size, in
/// bytes, of the ValueBlobs that need to be accessed") reads these.
struct ContainerStats {
  int64_t blob_count = 0;
  int64_t point_count = 0;
  int64_t blob_bytes = 0;
  Timestamp min_ts = kMaxTimestamp;
  Timestamp max_ts = kMinTimestamp;
  /// Largest (end_ts - begin_ts) of any blob: the partition-elimination
  /// window widening needed on the lower bound.
  Timestamp max_span = 0;

  double AvgBlobBytes() const {
    return blob_count > 0 ? static_cast<double>(blob_bytes) / blob_count : 0;
  }
  double AvgPointsPerBlob() const {
    return blob_count > 0 ? static_cast<double>(point_count) / blob_count : 0;
  }
};

/// A fetched batch record.
struct BlobRecord {
  SourceId id = 0;        // RTS/IRTS only.
  int64_t group = 0;      // MG only.
  Timestamp begin = 0;
  Timestamp end = 0;
  Timestamp interval = 0;  // RTS only.
  int64_t n = 0;
  std::string blob;
  std::string zone_map;   // Encoded ZoneMap (may be empty on old rows).
  relational::Rid rid;
};

/// The ODH storage component: one container triple (RTS / IRTS / MG
/// tables) per schema type, stored in the embedded relational engine with
/// B-tree indexes on the first two fields of each structure — exactly the
/// paper's Figure 1 layout. Time-range scans do partition elimination via
/// the (id|begin_ts, begin_ts|group) index plus the max-span widening.
///
/// Thread-safe: one store mutex serializes table mutations, index scans,
/// stats updates and WAL appends (the relational tables underneath are not
/// concurrent). Writer shards do their buffering and blob encoding outside
/// this lock, so the store is the serialization point, not the whole write
/// path. Lock order: writer shard -> store -> WAL -> disk; the store never
/// calls back into the writer. Exceptions: Recover() takes no lock itself
/// (it replays through the locked Put/Sync entry points and runs on a
/// quiescent store), and the Table* accessors hand out iterators whose use
/// requires external quiescence (slice streaming).
class OdhStore {
 public:
  /// Name of the store's write-ahead log file on the database disk. (The
  /// relational tables keep their own modeled "<table>.wal" files; this one
  /// is the store-level redo log that Recover() replays.)
  static constexpr char kWalFileName[] = "odh$store.wal";

  OdhStore(relational::Database* db, ConfigComponent* config)
      : db_(db), config_(config) {}

  OdhStore(const OdhStore&) = delete;
  OdhStore& operator=(const OdhStore&) = delete;

  /// Creates the three internal tables for a schema type.
  Status CreateContainers(int schema_type);

  Status PutRts(int schema_type, SourceId id, Timestamp begin, Timestamp end,
                Timestamp interval, int64_t n, const std::string& blob,
                const std::string& zone_map = {});
  Status PutIrts(int schema_type, SourceId id, Timestamp begin,
                 Timestamp end, int64_t n, const std::string& blob,
                 const std::string& zone_map = {});
  Status PutMg(int schema_type, int64_t group, Timestamp begin,
               Timestamp end, int64_t n, const std::string& blob,
               const std::string& zone_map = {});

  /// Blobs of `id` overlapping [lo, hi], in begin_ts order.
  Result<std::vector<BlobRecord>> GetRts(int schema_type, SourceId id,
                                         Timestamp lo, Timestamp hi);
  Result<std::vector<BlobRecord>> GetIrts(int schema_type, SourceId id,
                                          Timestamp lo, Timestamp hi);

  /// MG blobs overlapping [lo, hi]; `group` < 0 means all groups.
  Result<std::vector<BlobRecord>> GetMg(int schema_type, int64_t group,
                                        Timestamp lo, Timestamp hi);

  /// Removes an MG blob (used by the reorganizer after conversion).
  Status DeleteMg(int schema_type, const relational::Rid& rid);

  /// Rebuilds the MG container, reclaiming the space of deleted blobs
  /// (run after reorganization; heap pages are never compacted in place).
  Status CompactMg(int schema_type);

  /// Stats snapshots (copied under the store mutex; safe during ingest).
  ContainerStats rts_stats(int schema_type) const {
    std::lock_guard<std::mutex> lock(mu_);
    return containers_.at(schema_type).rts_stats;
  }
  ContainerStats irts_stats(int schema_type) const {
    std::lock_guard<std::mutex> lock(mu_);
    return containers_.at(schema_type).irts_stats;
  }
  ContainerStats mg_stats(int schema_type) const {
    std::lock_guard<std::mutex> lock(mu_);
    return containers_.at(schema_type).mg_stats;
  }

  /// Flushes buffered table writes (ODH ingestion has no transactions; this
  /// is a page flush, not a commit). The store WAL is synced first, so every
  /// blob visible in the flushed tables is also replayable from the log.
  Status Sync(int schema_type);

  /// Replays the store WAL found on `crashed_disk` (a post-crash
  /// SimDisk::CloneDurable()) into this store. Containers for every schema
  /// type appearing in the log must already exist — the caller re-creates
  /// its schema types, then recovers. Replayed blobs go through the normal
  /// Put path, so heap rows, B-tree entries, container stats and this
  /// store's own WAL are all rebuilt. The torn tail (an interrupted Sync)
  /// is detected via per-record CRC32C and dropped.
  Result<RecoveryReport> Recover(storage::SimDisk* crashed_disk);

  /// The store's write-ahead log, nullptr until the first Put. Exposed for
  /// stats (retry counters) and tests. The Wal itself is thread-safe.
  const Wal* wal() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_.get();
  }

  /// Wires WAL group-commit instruments into `metrics` — immediately when
  /// the WAL already exists, otherwise at its lazy creation. Instruments
  /// are resolved from the registry BEFORE taking mu_: registry gauges
  /// sample this store (registry lock -> store lock), so the store must
  /// never acquire the registry lock while holding mu_.
  void SetMetrics(common::MetricsRegistry* metrics) {
    common::Histogram* sync_hist = nullptr;
    common::Counter* group_commits = nullptr;
    common::Counter* piggybacked = nullptr;
    if (metrics != nullptr) {
      sync_hist = metrics->GetHistogram("odh.wal.sync_micros");
      group_commits = metrics->GetCounter("odh.wal.group_commits");
      piggybacked = metrics->GetCounter("odh.wal.piggybacked");
    }
    std::lock_guard<std::mutex> lock(mu_);
    wal_sync_hist_ = sync_hist;
    wal_group_commits_ = group_commits;
    wal_piggybacked_ = piggybacked;
    if (wal_ != nullptr) {
      wal_->SetInstruments(sync_hist, group_commits, piggybacked);
    }
  }

  /// Partition-elimination effectiveness across all Get* scans: candidate
  /// blobs the widened index range produced, and how many of those the
  /// exact overlap re-check (end >= lo, MG group match) then discarded.
  /// Blobs outside the index range are never touched at all — that saving
  /// is the difference against the container's blob_count.
  int64_t blobs_examined() const {
    return blobs_examined_.load(std::memory_order_relaxed);
  }
  int64_t blobs_discarded() const {
    return blobs_discarded_.load(std::memory_order_relaxed);
  }

  /// Direct access to the container tables for streaming full scans (slice
  /// queries over per-source structures have no index to use). Internal to
  /// the core module.
  Result<relational::Table*> RtsTable(int schema_type);
  Result<relational::Table*> IrtsTable(int schema_type);
  Result<relational::Table*> MgTable(int schema_type);

  /// Decodes a series-container row fetched by a streaming scan.
  static Status RowToBlobRecord(const Row& row, const relational::Rid& rid,
                                bool is_mg, BlobRecord* rec);

 private:
  struct Container {
    relational::Table* rts = nullptr;
    relational::Table* irts = nullptr;
    relational::Table* mg = nullptr;
    ContainerStats rts_stats;
    ContainerStats irts_stats;
    ContainerStats mg_stats;
  };

  Result<Container*> GetContainer(int schema_type);

  /// Lazily creates the WAL file and appends one record to it. Called
  /// before the corresponding heap/index write.
  Status LogPut(WalRecord::Kind kind, int schema_type, int64_t id_or_group,
                Timestamp begin, Timestamp end, Timestamp interval,
                int64_t n, const Slice& blob, const Slice& zone_map);

  int mg_version_ = 0;  // Suffix for rebuilt MG container tables.

  static void UpdateStats(ContainerStats* stats, Timestamp begin,
                          Timestamp end, int64_t n, size_t blob_bytes);

  relational::Database* db_;
  ConfigComponent* config_;
  /// Guards containers_, their stats, wal_ creation and mg_version_.
  mutable std::mutex mu_;
  std::map<int, Container> containers_;
  std::unique_ptr<Wal> wal_;
  /// Pre-resolved WAL instruments (guarded by mu_), handed to the Wal at
  /// its lazy creation without touching the registry.
  common::Histogram* wal_sync_hist_ = nullptr;
  common::Counter* wal_group_commits_ = nullptr;
  common::Counter* wal_piggybacked_ = nullptr;
  mutable std::atomic<int64_t> blobs_examined_{0};
  mutable std::atomic<int64_t> blobs_discarded_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_STORE_H_
