#ifndef ODH_CORE_STORE_H_
#define ODH_CORE_STORE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "core/config.h"
#include "core/wal.h"
#include "relational/database.h"
#include "storage/segment.h"

namespace odh::core {

/// What OdhStore::Recover() did. Only blobs that reached the WAL via a
/// successful Sync come back; dirty writer buffers and un-synced Puts are
/// legitimately lost (the paper's transaction-free ingestion contract).
struct RecoveryReport {
  uint64_t records_replayed = 0;
  uint64_t rts_blobs = 0;
  uint64_t irts_blobs = 0;
  uint64_t mg_blobs = 0;
  uint64_t wal_valid_bytes = 0;
  uint64_t torn_bytes_dropped = 0;  // Bytes after the first torn frame.
  uint64_t undecodable_records = 0;  // CRC-valid but unparseable (never
                                     // expected; counted, not fatal).
  /// Data records suppressed because a later committed compaction episode
  /// or retention drop superseded them.
  uint64_t records_superseded = 0;
  /// Records of a compaction episode whose Commit never reached the log:
  /// discarded wholesale, the pre-compaction segment survives.
  uint64_t uncommitted_episode_records = 0;
  /// Orphaned query-spill files (odh$spill$*) deleted from the crashed
  /// disk — temp state of in-flight ORDER BY sorts, never replayed.
  uint64_t spill_files_swept = 0;
};

/// Aggregate statistics per container, maintained on every Put. The cost
/// model (paper §3: "we approximate the cost ... as the expected size, in
/// bytes, of the ValueBlobs that need to be accessed") reads these.
struct ContainerStats {
  int64_t blob_count = 0;
  int64_t point_count = 0;
  int64_t blob_bytes = 0;
  Timestamp min_ts = kMaxTimestamp;
  Timestamp max_ts = kMinTimestamp;
  /// Largest (end_ts - begin_ts) of any blob: the partition-elimination
  /// window widening needed on the lower bound.
  Timestamp max_span = 0;

  double AvgBlobBytes() const {
    return blob_count > 0 ? static_cast<double>(blob_bytes) / blob_count : 0;
  }
  double AvgPointsPerBlob() const {
    return blob_count > 0 ? static_cast<double>(point_count) / blob_count : 0;
  }

  /// Folds `other` in (segment stats -> schema-type aggregate).
  void Merge(const ContainerStats& other) {
    blob_count += other.blob_count;
    point_count += other.point_count;
    blob_bytes += other.blob_bytes;
    if (other.min_ts < min_ts) min_ts = other.min_ts;
    if (other.max_ts > max_ts) max_ts = other.max_ts;
    if (other.max_span > max_span) max_span = other.max_span;
  }
};

/// A fetched batch record.
struct BlobRecord {
  SourceId id = 0;        // RTS/IRTS only.
  int64_t group = 0;      // MG only.
  Timestamp begin = 0;
  Timestamp end = 0;
  Timestamp interval = 0;  // RTS only.
  int64_t n = 0;
  std::string blob;
  std::string zone_map;   // Encoded ZoneMap (may be empty on old rows).
  relational::Rid rid;
  /// Key of the segment the record came from (0 in the unsegmented
  /// layout). A rid is only meaningful together with its segment.
  int64_t seg = 0;
  /// Generation the rid was read under: the segment manifest generation
  /// for series records, the MG table epoch for MG records (MG rebuilds
  /// reshuffle rids without a manifest-generation bump). {seg, generation,
  /// rid} is a stable identity for the blob cache.
  int64_t generation = 0;
};

/// Per-scan segment-elimination counters, filled by the Get*/slice entry
/// points when the caller passes one (the reader threads them into the
/// per-query ScanCounters so EXPLAIN PROFILE can report segment pruning
/// next to blob pruning without double counting: blobs inside a pruned
/// segment are never examined, so they appear in neither blob counter).
struct SegmentScanStats {
  int64_t segments_pruned = 0;
};

/// One row of the odh_storage per-segment listing.
struct SegmentInfo {
  int64_t key = 0;
  Timestamp lo = 0;
  Timestamp hi = 0;
  int generation = 0;
  storage::SegmentTier tier = storage::SegmentTier::kHot;
  int64_t blob_count = 0;
  int64_t point_count = 0;
  int64_t blob_bytes = 0;
  Timestamp min_ts = kMaxTimestamp;  // Data bounds (kMax/kMin when empty).
  Timestamp max_ts = kMinTimestamp;
};

/// Snapshot of one segment's series blobs, taken under the store mutex for
/// the compactor to rewrite outside it. `version` is the manifest version
/// at snapshot time; SwapCompactedSegment refuses the swap when the
/// segment changed since (a racing Put or drop).
struct SegmentSnapshot {
  storage::SegmentManifest manifest;
  std::vector<BlobRecord> rts;
  std::vector<BlobRecord> irts;
};

/// The ODH storage component: containers per schema type, each split into
/// time-partitioned segments. A segment owns a contiguous nominal time
/// range [lo, hi) of blobs — routed by floor(begin_ts / segment_span) — as
/// its own RTS / IRTS / MG table triple in the embedded relational engine,
/// with B-tree indexes on the first two fields of each structure (the
/// paper's Figure 1 layout, now per segment). A per-segment manifest keeps
/// the time bounds, tier, generation and per-structure stats; every scan
/// consults the manifests first, so a recent-window query skips cold
/// history with O(segments) metadata checks and zero page reads
/// (segments_pruned counts those skips). With segment_span == 0 (the
/// default) there is exactly one unbounded segment per schema type and
/// behavior is identical to the pre-segment store.
///
/// Segments are the unit of compaction (SnapshotSegment /
/// SwapCompactedSegment, driven by core::SegmentCompactor) and of
/// retention (SetRetention / ApplyRetention): an expired segment is
/// dropped as an O(1) metadata operation — one WAL record, table drops,
/// map erase — never a scan-and-delete. Both are WAL-logged so Recover()
/// replays a committed rewrite/drop and rolls back an uncommitted one.
///
/// Thread-safe: one store mutex serializes table mutations, index scans,
/// stats updates and WAL appends (the relational tables underneath are not
/// concurrent). Writer shards do their buffering and blob encoding outside
/// this lock, so the store is the serialization point, not the whole write
/// path. Lock order: writer shard -> store -> WAL -> disk; the store never
/// calls back into the writer. Exception: Recover() takes no lock itself
/// (it replays through the locked Put/Sync entry points and runs on a
/// quiescent store). Slice scans materialize one bounded chunk of rows per
/// call under the mutex (NextSliceChunk), so no table pointer or iterator
/// ever leaves the lock — a concurrent retention drop can never invalidate
/// a cursor mid-scan.
class OdhStore {
 public:
  /// Name of the store's write-ahead log file on the database disk. (The
  /// relational tables keep their own modeled "<table>.wal" files; this one
  /// is the store-level redo log that Recover() replays.)
  static constexpr char kWalFileName[] = "odh$store.wal";

  OdhStore(relational::Database* db, ConfigComponent* config)
      : db_(db), config_(config) {}

  OdhStore(const OdhStore&) = delete;
  OdhStore& operator=(const OdhStore&) = delete;

  /// Creates the container for a schema type. With segment_span == 0 this
  /// creates the single unbounded segment's tables immediately; otherwise
  /// segments materialize lazily at the first Put that routes to them.
  Status CreateContainers(int schema_type);

  Status PutRts(int schema_type, SourceId id, Timestamp begin, Timestamp end,
                Timestamp interval, int64_t n, const std::string& blob,
                const std::string& zone_map = {});
  Status PutIrts(int schema_type, SourceId id, Timestamp begin,
                 Timestamp end, int64_t n, const std::string& blob,
                 const std::string& zone_map = {});
  Status PutMg(int schema_type, int64_t group, Timestamp begin,
               Timestamp end, int64_t n, const std::string& blob,
               const std::string& zone_map = {});

  /// Blobs of `id` overlapping [lo, hi], in begin_ts order. Segments whose
  /// data bounds are disjoint from [lo, hi] are skipped without touching
  /// their tables (`stats->segments_pruned` counts the skips).
  Result<std::vector<BlobRecord>> GetRts(int schema_type, SourceId id,
                                         Timestamp lo, Timestamp hi,
                                         SegmentScanStats* stats = nullptr);
  Result<std::vector<BlobRecord>> GetIrts(int schema_type, SourceId id,
                                          Timestamp lo, Timestamp hi,
                                          SegmentScanStats* stats = nullptr);

  /// MG blobs overlapping [lo, hi]; `group` < 0 means all groups.
  Result<std::vector<BlobRecord>> GetMg(int schema_type, int64_t group,
                                        Timestamp lo, Timestamp hi,
                                        SegmentScanStats* stats = nullptr);

  /// Removes an MG blob (used by the reorganizer after conversion). `seg`
  /// is the BlobRecord::seg the blob was fetched with — rids are only
  /// unique within one segment's table.
  Status DeleteMg(int schema_type, int64_t seg, const relational::Rid& rid);

  /// Rebuilds every segment's MG table, reclaiming the space of deleted
  /// blobs (run after reorganization; heap pages are never compacted in
  /// place).
  Status CompactMg(int schema_type);

  /// Resume point of a chunked slice scan. Value-type state only: no
  /// table pointer or iterator survives between calls, so a concurrent
  /// segment drop or compaction can never invalidate a cursor — the next
  /// chunk just skips the vanished rows.
  struct SliceCursor {
    int64_t seg = INT64_MIN;  // Next segment key to visit (or current).
    bool in_segment = false;  // Resuming inside `seg` after `last`.
    int generation = 0;       // Generation `last` was read from.
    relational::Rid last;     // Physically last row already returned.
    /// Pinned to `seg` only: the cursor finishes (or skips, on a
    /// generation mismatch or drop) that one segment and reports done
    /// instead of advancing. Segment-parallel scans use one pinned cursor
    /// per worker; pinned cursors never count segment pruning (the
    /// SliceSegments listing already did).
    bool pin = false;
  };

  /// Chunked slice scan: materializes up to kSliceChunkRows blob rows of
  /// one segment's RTS or IRTS table overlapping [lo, hi] per call, under
  /// the store mutex — a scan over years of history never holds more than
  /// one chunk of blob rows. Start with a default SliceCursor; the call
  /// advances it. `*done` turns true when no rows remain (out may be
  /// empty on any call — keep calling until done). Chunks arrive in
  /// segment-key then physical order, so concatenated results are
  /// begin_ts-ordered per source. If the current segment is compacted or
  /// dropped between chunks (generation mismatch), its remaining rows are
  /// skipped rather than re-read from a different layout.
  static constexpr int kSliceChunkRows = 8;
  Status NextSliceChunk(int schema_type, bool irts, Timestamp lo,
                        Timestamp hi, SliceCursor* cursor,
                        std::vector<BlobRecord>* out, bool* done,
                        SegmentScanStats* stats = nullptr);

  /// Keys of segments whose RTS (irts == false) or IRTS data bounds
  /// overlap [lo, hi], in key order — the fan-out list for a
  /// segment-parallel slice scan (one pinned SliceCursor per key).
  /// Disjoint non-empty segments are counted into `stats` exactly like
  /// the streaming scan, so a scan that lists segments here and then
  /// visits each with a pinned cursor reports identical pruning totals.
  Result<std::vector<int64_t>> SliceSegments(int schema_type, bool irts,
                                             Timestamp lo, Timestamp hi,
                                             SegmentScanStats* stats = nullptr);

  /// Stats snapshots, aggregated across segments (copied under the store
  /// mutex; safe during ingest).
  ContainerStats rts_stats(int schema_type) const;
  ContainerStats irts_stats(int schema_type) const;
  ContainerStats mg_stats(int schema_type) const;

  /// Per-segment manifest + stats listing, key order (odh_storage rows).
  std::vector<SegmentInfo> SegmentInfos(int schema_type) const;

  // --- Retention -------------------------------------------------------

  /// Sets (or with 0 clears) the retention interval for a schema type.
  /// Takes effect at the next ApplyRetention call. Fails on a negative
  /// interval or an unknown schema type.
  Status SetRetention(int schema_type, Timestamp retention_micros);
  Timestamp retention(int schema_type) const;

  /// Drops every expired segment of `schema_type`: nominal bounds AND data
  /// bounds entirely before (max ingested ts - retention). The newest
  /// segment never drops, segment_span == 0 never drops, no retention set
  /// never drops. Each drop is one WAL record (synced before the tables
  /// go away) plus table drops and a map erase — O(1) in the number of
  /// dropped points, no page reads of dropped data. Returns the number of
  /// segments dropped.
  Result<int64_t> ApplyRetention(int schema_type);

  // --- Compaction (driven by core::SegmentCompactor) -------------------

  /// Keys of sealed hot segments: every hot segment except the
  /// highest-keyed one (still ingesting). Empty when segment_span == 0.
  std::vector<int64_t> SealedHotSegments(int schema_type) const;

  /// Copies one segment's manifest and series blobs out under the mutex.
  Result<SegmentSnapshot> SnapshotSegment(int schema_type, int64_t key) const;

  /// Atomically replaces a segment's RTS/IRTS tables with the compacted
  /// blobs. Aborted when the segment's version moved past
  /// `expected_version` (a Put or drop raced the rewrite — retry later).
  /// The swap WAL-logs one kSegmentCompactBegin, the replacement blob
  /// records, and one kSegmentCompactCommit contiguously, then syncs the
  /// log before the in-memory swap: recovery replays the episode if the
  /// Commit made it to disk and discards it (keeping the old segment)
  /// otherwise. The MG table is never rewritten — merging MG blobs would
  /// break the WAL's content-keyed kMgDelete cancellation.
  Status SwapCompactedSegment(int schema_type, int64_t key,
                              uint64_t expected_version,
                              const std::vector<BlobRecord>& rts,
                              const std::vector<BlobRecord>& irts);

  /// Flushes buffered table writes (ODH ingestion has no transactions; this
  /// is a page flush, not a commit). The store WAL is synced first, so every
  /// blob visible in the flushed tables is also replayable from the log.
  Status Sync(int schema_type);

  /// Replays the store WAL found on `crashed_disk` (a post-crash
  /// SimDisk::CloneDurable()) into this store. Containers for every schema
  /// type appearing in the log must already exist — the caller re-creates
  /// its schema types, then recovers. Replayed blobs go through the normal
  /// Put path, so heap rows, B-tree entries, container stats and this
  /// store's own WAL are all rebuilt. The torn tail (an interrupted Sync)
  /// is detected via per-record CRC32C and dropped.
  ///
  /// Segment ops replay in two passes: pass one classifies compaction
  /// episodes (Begin..Commit) and retention drops, pass two replays every
  /// surviving data record in log order. A committed episode or a drop
  /// suppresses all earlier data records of its schema type whose begin
  /// falls inside the logged segment bounds; an episode without a Commit
  /// is discarded wholesale, so exactly one of {old segment, compacted
  /// segment} survives any crash point.
  Result<RecoveryReport> Recover(storage::SimDisk* crashed_disk);

  /// The store's write-ahead log, nullptr until the first Put. Exposed for
  /// stats (retry counters) and tests. The Wal itself is thread-safe.
  const Wal* wal() const {
    std::lock_guard<std::mutex> lock(mu_);
    return wal_.get();
  }

  // --- Replication (primary side) --------------------------------------

  /// A consistent bootstrap image for a fresh replica: every stored blob,
  /// re-encoded as WAL record payloads, plus the durable LSN the image is
  /// exactly as of. Streaming `records` and then tailing the WAL from
  /// `base_lsn` reproduces this store with no gap and no overlap.
  struct ReplicationSnapshot {
    uint64_t base_lsn = 0;
    std::vector<std::string> records;  // Encoded WalRecord payloads.
  };

  /// Takes the bootstrap snapshot under the store mutex: the WAL is synced
  /// first (appends are blocked, so durable == appended), then every
  /// segment's RTS/IRTS/MG rows are encoded. An empty store (no WAL yet)
  /// yields base_lsn 0 and no records.
  Result<ReplicationSnapshot> SnapshotForReplication();

  /// Durable WAL length — the replication LSN watermark. 0 before the
  /// first Put creates the log.
  uint64_t durable_lsn() const;

  /// Cursor read over the durable WAL (see Wal::ReadDurable). An empty
  /// chunk with next_lsn == from_lsn when the log does not exist yet.
  Result<Wal::TailChunk> ReadWal(uint64_t from_lsn, size_t max_bytes) const;

  /// Newest ingested timestamp across every container (kMinTimestamp when
  /// empty) — the primary's data watermark carried in replication
  /// heartbeats, against which replicas compute staleness.
  Timestamp MaxIngestedTimestamp() const;

  // --- Replication (replica side, driven by core::ReplicaApplier) ------

  /// Applies a replicated kMgDelete: finds the MG blob with this exact
  /// content key (group, begin, end, n), deletes it and re-logs the
  /// deletion into this store's own WAL. Rids are not stable across the
  /// wire, so the match is by content — the same rule Recover() uses. A
  /// missing blob is OK (the snapshot bootstrap may already reflect the
  /// deletion).
  Status DeleteMgByContent(int schema_type, int64_t group, Timestamp begin,
                           Timestamp end, int64_t n);

  /// Applies a replicated kSegmentDrop: drops segment `key` (nominal
  /// bounds [lo, hi)) with the same WAL-first discipline ApplyRetention
  /// uses. Idempotent — a segment this replica never materialized is OK.
  Status ApplyReplicatedDrop(int schema_type, int64_t key, Timestamp lo,
                             Timestamp hi);

  /// Wires WAL group-commit instruments into `metrics` — immediately when
  /// the WAL already exists, otherwise at its lazy creation. Instruments
  /// are resolved from the registry BEFORE taking mu_: registry gauges
  /// sample this store (registry lock -> store lock), so the store must
  /// never acquire the registry lock while holding mu_.
  void SetMetrics(common::MetricsRegistry* metrics) {
    common::Histogram* sync_hist = nullptr;
    common::Counter* group_commits = nullptr;
    common::Counter* piggybacked = nullptr;
    if (metrics != nullptr) {
      sync_hist = metrics->GetHistogram("odh.wal.sync_micros");
      group_commits = metrics->GetCounter("odh.wal.group_commits");
      piggybacked = metrics->GetCounter("odh.wal.piggybacked");
    }
    std::lock_guard<std::mutex> lock(mu_);
    wal_sync_hist_ = sync_hist;
    wal_group_commits_ = group_commits;
    wal_piggybacked_ = piggybacked;
    if (wal_ != nullptr) {
      wal_->SetInstruments(sync_hist, group_commits, piggybacked);
    }
  }

  /// Partition-elimination effectiveness across all Get* scans: candidate
  /// blobs the widened index range produced, and how many of those the
  /// exact overlap re-check (end >= lo, MG group match) then discarded.
  /// Blobs outside the index range are never touched at all — that saving
  /// is the difference against the container's blob_count.
  int64_t blobs_examined() const {
    return blobs_examined_.load(std::memory_order_relaxed);
  }
  int64_t blobs_discarded() const {
    return blobs_discarded_.load(std::memory_order_relaxed);
  }
  /// Segment-level elimination and lifecycle counters (store-global; the
  /// per-query twin lives in common::ScanCounters).
  int64_t segments_pruned() const {
    return segments_pruned_.load(std::memory_order_relaxed);
  }
  int64_t segments_compacted() const {
    return segments_compacted_.load(std::memory_order_relaxed);
  }
  int64_t segments_dropped() const {
    return segments_dropped_.load(std::memory_order_relaxed);
  }

  /// Decodes a series-container row fetched by a streaming scan.
  static Status RowToBlobRecord(const Row& row, const relational::Rid& rid,
                                bool is_mg, BlobRecord* rec);

 private:
  struct Segment {
    storage::SegmentManifest manifest;
    relational::Table* rts = nullptr;
    relational::Table* irts = nullptr;
    relational::Table* mg = nullptr;
    ContainerStats rts_stats;
    ContainerStats irts_stats;
    ContainerStats mg_stats;
    /// Generation of the MG table's rids, bumped by CompactMg (which
    /// rebuilds the table, reshuffling rids, without touching the
    /// manifest generation). Starts at the manifest generation so a
    /// re-created segment's epochs are fresh too.
    int mg_epoch = 0;
  };

  struct Container {
    std::map<int64_t, Segment> segments;  // Key order == time order.
    /// Floor for the generation of a re-created segment: a retention
    /// drop records max(manifest generation, mg_epoch) + 1 here so a
    /// late write re-creating the key can never reuse a generation the
    /// dropped segment's cached blobs were decoded under.
    std::map<int64_t, int> next_generation;
  };

  Result<Container*> GetContainer(int schema_type);
  Result<const Container*> GetContainer(int schema_type) const;

  /// Finds or lazily creates the segment covering `begin`.
  Result<Segment*> GetSegmentForWrite(int schema_type, Container* container,
                                      Timestamp begin);

  /// Creates a segment's three tables (+ pk indexes) and manifest.
  Result<Segment> CreateSegment(int schema_type, int64_t key,
                                int generation);

  /// Table-name prefix for one segment generation. The unsegmented layout
  /// keeps the historical flat names ("odh$<type>$rts").
  std::string SegmentPrefix(const std::string& type_name, int64_t key,
                            int generation) const;

  /// True when the segment cannot contain any blob overlapping [lo, hi]
  /// for the structure described by `stats` (data bounds, not nominal).
  static bool SegmentDisjoint(const ContainerStats& stats, Timestamp lo,
                              Timestamp hi) {
    return stats.blob_count == 0 || stats.max_ts < lo || stats.min_ts > hi;
  }

  void CountSegmentPruned(SegmentScanStats* stats) {
    segments_pruned_.fetch_add(1, std::memory_order_relaxed);
    if (stats != nullptr) ++stats->segments_pruned;
  }

  /// Lazily creates the WAL file and appends one record to it. Called
  /// before the corresponding heap/index write.
  Status LogPut(WalRecord::Kind kind, int schema_type, int64_t id_or_group,
                Timestamp begin, Timestamp end, Timestamp interval,
                int64_t n, const Slice& blob, const Slice& zone_map);

  int mg_version_ = 0;  // Suffix for rebuilt MG container tables.

  static void UpdateStats(ContainerStats* stats, Timestamp begin,
                          Timestamp end, int64_t n, size_t blob_bytes);

  relational::Database* db_;
  ConfigComponent* config_;
  /// Guards containers_, their segments and stats, retention_, wal_
  /// creation and mg_version_.
  mutable std::mutex mu_;
  std::map<int, Container> containers_;
  std::map<int, Timestamp> retention_;
  std::unique_ptr<Wal> wal_;
  /// Pre-resolved WAL instruments (guarded by mu_), handed to the Wal at
  /// its lazy creation without touching the registry.
  common::Histogram* wal_sync_hist_ = nullptr;
  common::Counter* wal_group_commits_ = nullptr;
  common::Counter* wal_piggybacked_ = nullptr;
  mutable std::atomic<int64_t> blobs_examined_{0};
  mutable std::atomic<int64_t> blobs_discarded_{0};
  mutable std::atomic<int64_t> segments_pruned_{0};
  std::atomic<int64_t> segments_compacted_{0};
  std::atomic<int64_t> segments_dropped_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_STORE_H_
