#include "core/compactor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>
#include <utility>

#include "core/value_blob.h"
#include "core/zone_map.h"

namespace odh::core {
namespace {

/// Sort key for merge planning: runs are only ever formed from consecutive
/// blobs of the same source, so group by id first, then time.
bool ByIdThenBegin(const BlobRecord& a, const BlobRecord& b) {
  return a.id != b.id ? a.id < b.id : a.begin < b.begin;
}

}  // namespace

Result<CompactionReport> SegmentCompactor::CompactSealed(int schema_type) {
  CompactionReport report;
  for (int64_t key : store_->SealedHotSegments(schema_type)) {
    ODH_ASSIGN_OR_RETURN(bool swapped,
                         CompactSegment(schema_type, key, &report));
    if (swapped) {
      ++report.segments_compacted;
    } else {
      ++report.segments_skipped;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    last_report_ = report;
    last_status_ = Status::OK();
  }
  return report;
}

void SegmentCompactor::CompactSealedAsync(int schema_type) {
  if (pool_ == nullptr) {
    (void)CompactSealed(schema_type);
    return;
  }
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit([this, schema_type] {
    Result<CompactionReport> result = CompactSealed(schema_type);
    if (!result.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      last_status_ = result.status();
    }
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  });
}

void SegmentCompactor::WaitIdle() const {
  while (inflight_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

CompactionReport SegmentCompactor::last_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_report_;
}

Status SegmentCompactor::last_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_status_;
}

Result<bool> SegmentCompactor::CompactSegment(int schema_type, int64_t key,
                                              CompactionReport* report) {
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  const int num_tags = static_cast<int>(type->tag_names.size());
  ValueBlobCodec decoder(type->compression);
  // Cold tier re-encodes losslessly: the decoded values round-trip exactly
  // (re-applying a lossy codec would compound its quantization error on
  // every compaction), and summaries computed from them stay exact.
  CompressionSpec cold_spec;
  cold_spec.force = true;
  cold_spec.forced_codec = ValueCodec::kXor;
  ValueBlobCodec cold(cold_spec);
  const int64_t cap =
      std::max<int64_t>(config_->options().compaction_max_blob_points, 1);
  const bool zone_maps = config_->options().enable_zone_maps;

  Result<SegmentSnapshot> snapshot = store_->SnapshotSegment(schema_type, key);
  if (snapshot.status().IsNotFound()) return false;  // Dropped meanwhile.
  ODH_RETURN_IF_ERROR(snapshot.status());
  SegmentSnapshot snap = *std::move(snapshot);

  std::sort(snap.rts.begin(), snap.rts.end(), ByIdThenBegin);
  std::sort(snap.irts.begin(), snap.irts.end(), ByIdThenBegin);
  for (const BlobRecord& rec : snap.rts) {
    report->bytes_before += static_cast<int64_t>(rec.blob.size());
  }
  for (const BlobRecord& rec : snap.irts) {
    report->bytes_before += static_cast<int64_t>(rec.blob.size());
  }
  report->blobs_before +=
      static_cast<int64_t>(snap.rts.size() + snap.irts.size());

  // Decodes blobs [i, j) of `src` into one concatenated batch.
  auto merge = [&](const std::vector<BlobRecord>& src, size_t i, size_t j,
                   bool irts, SeriesBatch* batch) -> Status {
    batch->id = src[i].id;
    batch->timestamps.clear();
    batch->columns.assign(static_cast<size_t>(num_tags), {});
    for (size_t k = i; k < j; ++k) {
      SeriesBatch piece;
      if (irts) {
        ODH_RETURN_IF_ERROR(decoder.DecodeIrts(Slice(src[k].blob), src[k].id,
                                               src[k].begin,
                                               /*wanted_tags=*/{}, num_tags,
                                               &piece));
      } else {
        ODH_RETURN_IF_ERROR(decoder.DecodeRts(Slice(src[k].blob), src[k].id,
                                              src[k].begin, src[k].interval,
                                              /*wanted_tags=*/{}, num_tags,
                                              &piece));
      }
      batch->timestamps.insert(batch->timestamps.end(),
                               piece.timestamps.begin(),
                               piece.timestamps.end());
      for (int t = 0; t < num_tags; ++t) {
        std::vector<double>& dst = batch->columns[static_cast<size_t>(t)];
        if (t < static_cast<int>(piece.columns.size()) &&
            !piece.columns[static_cast<size_t>(t)].empty()) {
          dst.insert(dst.end(), piece.columns[static_cast<size_t>(t)].begin(),
                     piece.columns[static_cast<size_t>(t)].end());
        } else {
          dst.insert(dst.end(), piece.timestamps.size(),
                     std::numeric_limits<double>::quiet_NaN());
        }
      }
    }
    return Status::OK();
  };

  auto emit = [&](SeriesBatch& batch, Timestamp interval, bool irts,
                  std::vector<BlobRecord>* out) -> Status {
    BlobRecord rec;
    rec.id = batch.id;
    rec.begin = batch.timestamps.front();
    rec.end = batch.timestamps.back();
    rec.interval = irts ? 0 : interval;
    rec.n = static_cast<int64_t>(batch.num_points());
    if (irts) {
      ODH_RETURN_IF_ERROR(cold.EncodeIrts(batch, &rec.blob));
    } else {
      ODH_RETURN_IF_ERROR(cold.EncodeRts(batch, interval, &rec.blob));
    }
    if (zone_maps) {
      // Built from the decoded (= stored) values under a lossless codec:
      // no widening, the summary keeps its `exact` bit.
      rec.zone_map = ZoneMap::FromColumns(batch.columns).Encode();
    }
    report->bytes_after += static_cast<int64_t>(rec.blob.size());
    ++report->blobs_after;
    out->push_back(std::move(rec));
    return Status::OK();
  };

  // RTS: merge maximal runs that stay one regular series — same source,
  // same interval, each blob starting exactly one interval after the
  // previous ends — so the merged timestamps are still begin + i*interval.
  std::vector<BlobRecord> new_rts;
  for (size_t i = 0; i < snap.rts.size();) {
    size_t j = i + 1;
    int64_t points = snap.rts[i].n;
    while (j < snap.rts.size() && snap.rts[j].id == snap.rts[i].id &&
           snap.rts[j].interval == snap.rts[i].interval &&
           snap.rts[i].interval > 0 &&
           snap.rts[j].begin ==
               snap.rts[j - 1].end + snap.rts[i].interval &&
           points + snap.rts[j].n <= cap) {
      points += snap.rts[j].n;
      ++j;
    }
    SeriesBatch batch;
    ODH_RETURN_IF_ERROR(merge(snap.rts, i, j, /*irts=*/false, &batch));
    ODH_RETURN_IF_ERROR(
        emit(batch, snap.rts[i].interval, /*irts=*/false, &new_rts));
    i = j;
  }

  // IRTS: merge runs whose time ranges do not overlap (timestamps must
  // stay strictly ordered across the concatenation).
  std::vector<BlobRecord> new_irts;
  for (size_t i = 0; i < snap.irts.size();) {
    size_t j = i + 1;
    int64_t points = snap.irts[i].n;
    while (j < snap.irts.size() && snap.irts[j].id == snap.irts[i].id &&
           snap.irts[j].begin > snap.irts[j - 1].end &&
           points + snap.irts[j].n <= cap) {
      points += snap.irts[j].n;
      ++j;
    }
    SeriesBatch batch;
    ODH_RETURN_IF_ERROR(merge(snap.irts, i, j, /*irts=*/true, &batch));
    ODH_RETURN_IF_ERROR(emit(batch, 0, /*irts=*/true, &new_irts));
    i = j;
  }

  Status swapped = store_->SwapCompactedSegment(
      schema_type, key, snap.manifest.version, new_rts, new_irts);
  if (swapped.IsAborted() || swapped.IsNotFound()) {
    // A Put or retention drop raced the rewrite; undo this segment's
    // contribution to the footprint deltas and leave it for a later pass.
    for (const BlobRecord& rec : new_rts) {
      report->bytes_after -= static_cast<int64_t>(rec.blob.size());
      --report->blobs_after;
    }
    for (const BlobRecord& rec : new_irts) {
      report->bytes_after -= static_cast<int64_t>(rec.blob.size());
      --report->blobs_after;
    }
    for (const BlobRecord& rec : snap.rts) {
      report->bytes_before -= static_cast<int64_t>(rec.blob.size());
    }
    for (const BlobRecord& rec : snap.irts) {
      report->bytes_before -= static_cast<int64_t>(rec.blob.size());
    }
    report->blobs_before -=
        static_cast<int64_t>(snap.rts.size() + snap.irts.size());
    return false;
  }
  ODH_RETURN_IF_ERROR(swapped);
  return true;
}

}  // namespace odh::core
