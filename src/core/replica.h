#ifndef ODH_CORE_REPLICA_H_
#define ODH_CORE_REPLICA_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/store.h"

namespace odh::core {

/// Applies a primary's replication stream to a local OdhStore. Transport-
/// agnostic: net::ReplicationClient feeds it decoded frame contents; tests
/// feed it Wal::TailChunk records directly.
///
/// Every applied record goes through the store's normal WAL-logged Put
/// path, so the replica re-logs the stream into its OWN log and a crashed
/// replica recovers through the same OdhStore::Recover redo machinery as a
/// crashed primary — crash-consistent by construction, and a recovered
/// replica resumes the stream from its re-derived applied LSN.
///
/// The replica store must be configured like the primary: same schema
/// types (DefineSchemaType in the same order), the same registered
/// sources (the stream ships data, not catalog — reads resolve sources
/// through local metadata) and the same OdhOptions — segment routing is
/// floor(begin/segment_span), so equal spans make the primary's segment
/// keys meaningful locally.
///
/// Threading: one applier thread calls the Apply*/Observe/Flush methods
/// (net::ReplicationClient's tail loop); the lag/watermark accessors and
/// WaitForLsn are safe from any thread.
class ReplicaApplier {
 public:
  explicit ReplicaApplier(OdhStore* store) : store_(store) {}

  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Applies one bootstrap-snapshot chunk (encoded WalRecord payloads).
  Status ApplySnapshotRecords(const std::vector<std::string>& payloads);

  /// Ends the bootstrap: the store now mirrors the primary at `base_lsn`.
  Status FinishSnapshot(uint64_t base_lsn);

  /// Applies one WAL batch covering primary byte range [start_lsn,
  /// end_lsn). A batch entirely at or below the applied LSN is a
  /// duplicate after reconnect and is skipped; a batch starting beyond it
  /// is a gap in the stream and fails with kDataLoss (the subscriber must
  /// re-bootstrap).
  Status ApplyWalBatch(uint64_t start_lsn, uint64_t end_lsn,
                       const std::vector<std::string>& payloads);

  /// Records the primary's durable LSN and data watermark from a
  /// heartbeat (also carried by every batch via its end_lsn).
  void ObserveHeartbeat(uint64_t durable_lsn, int64_t watermark_micros);

  /// Syncs every schema type touched since the last Flush, making the
  /// applied prefix of the stream crash-durable locally.
  Status Flush();

  /// Blocks until the applied LSN reaches `lsn` (true) or `timeout_ms`
  /// lapses (false). The primary's ack path uses this for semi-sync
  /// waits.
  bool WaitForLsn(uint64_t lsn, int timeout_ms);

  /// Seeds the resume position after a replica reboot: the operator
  /// re-derives the primary LSN the recovered store reflects (a
  /// checkpoint recorded alongside the replica's own WAL) and the next
  /// subscribe resumes there instead of re-bootstrapping. Only legal
  /// before the stream starts.
  void ResumeAt(uint64_t lsn) { SetAppliedLsn(lsn); }

  // Lag/watermark observers (safe from any thread) -----------------------

  /// Primary WAL bytes applied locally — the position a reconnecting
  /// subscription resumes from.
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_acquire);
  }
  uint64_t primary_durable_lsn() const {
    return primary_durable_lsn_.load(std::memory_order_acquire);
  }
  /// Bytes of primary WAL not yet applied here (>= 0).
  int64_t lag_bytes() const {
    const int64_t lag = static_cast<int64_t>(primary_durable_lsn()) -
                        static_cast<int64_t>(applied_lsn());
    return lag > 0 ? lag : 0;
  }
  /// Newest data timestamp applied locally (the replica's watermark —
  /// monotone by construction).
  int64_t applied_watermark() const {
    return applied_watermark_.load(std::memory_order_acquire);
  }
  int64_t primary_watermark() const {
    return primary_watermark_.load(std::memory_order_acquire);
  }
  /// How far the replica's data trails the primary's, in timestamp units
  /// (>= 0): the staleness a read-only session is exposed to.
  int64_t staleness_micros() const {
    const int64_t lag = primary_watermark() - applied_watermark();
    return lag > 0 ? lag : 0;
  }
  int64_t records_applied() const {
    return records_applied_.load(std::memory_order_acquire);
  }

 private:
  Status ApplyRecord(const std::string& payload);
  Status ApplyPut(const WalRecord& rec);
  /// Closes a compaction episode: swap the buffered replacement blobs in
  /// (or apply them as plain puts when the segment never materialized
  /// locally).
  Status CommitCompaction();
  void AdvanceWatermark(int64_t end_ts);
  void SetAppliedLsn(uint64_t lsn);

  OdhStore* store_;

  // Applier-thread-only state.
  std::set<int> touched_types_;
  /// In-flight compaction episode (may span several batches).
  bool in_episode_ = false;
  int episode_schema_ = 0;
  int64_t episode_key_ = 0;
  std::vector<BlobRecord> episode_rts_;
  std::vector<BlobRecord> episode_irts_;

  std::mutex lsn_mu_;  // Guards lsn_cv_ waits; the value itself is atomic.
  std::condition_variable lsn_cv_;

  std::atomic<uint64_t> applied_lsn_{0};
  std::atomic<uint64_t> primary_durable_lsn_{0};
  std::atomic<int64_t> applied_watermark_{kMinTimestamp};
  std::atomic<int64_t> primary_watermark_{kMinTimestamp};
  std::atomic<int64_t> records_applied_{0};
};

}  // namespace odh::core

#endif  // ODH_CORE_REPLICA_H_
