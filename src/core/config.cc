#include "core/config.h"

#include <algorithm>

namespace odh::core {

std::string SourceClassName(SourceClass c) {
  switch (c) {
    case SourceClass::kRegularHighFrequency:
      return "regular high-frequency";
    case SourceClass::kIrregularHighFrequency:
      return "irregular high-frequency";
    case SourceClass::kRegularLowFrequency:
      return "regular low-frequency";
    case SourceClass::kIrregularLowFrequency:
      return "irregular low-frequency";
  }
  return "?";
}

Result<int> ConfigComponent::DefineSchemaType(SchemaType type) {
  if (type.name.empty() || type.tag_names.empty()) {
    return Status::InvalidArgument("schema type needs a name and tags");
  }
  for (const SchemaType& existing : types_) {
    if (existing.name == type.name) {
      return Status::AlreadyExists("schema type exists: " + type.name);
    }
  }
  types_.push_back(std::move(type));
  return static_cast<int>(types_.size() - 1);
}

Result<const SchemaType*> ConfigComponent::GetSchemaType(int type_id) const {
  if (type_id < 0 || type_id >= static_cast<int>(types_.size())) {
    return Status::NotFound("no such schema type");
  }
  return &types_[type_id];
}

Result<int> ConfigComponent::FindSchemaType(const std::string& name) const {
  for (size_t i = 0; i < types_.size(); ++i) {
    if (types_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no such schema type: " + name);
}

Status ConfigComponent::RegisterSource(SourceId id, int schema_type,
                                       Timestamp sample_interval,
                                       bool regular) {
  if (schema_type < 0 || schema_type >= static_cast<int>(types_.size())) {
    return Status::InvalidArgument("bad schema type");
  }
  if (sources_.count(id) > 0) {
    return Status::AlreadyExists("source registered: " + std::to_string(id));
  }
  if (sample_interval <= 0) {
    return Status::InvalidArgument("sample interval must be positive");
  }
  DataSourceInfo info;
  info.id = id;
  info.schema_type = schema_type;
  info.expected_interval = sample_interval;
  double hz = static_cast<double>(kMicrosPerSecond) /
              static_cast<double>(sample_interval);
  bool high = hz >= options_.high_frequency_threshold_hz;
  info.source_class =
      high ? (regular ? SourceClass::kRegularHighFrequency
                      : SourceClass::kIrregularHighFrequency)
           : (regular ? SourceClass::kRegularLowFrequency
                      : SourceClass::kIrregularLowFrequency);
  if (!high) {
    // Assign MG groups in registration order, mg_group_size sources each.
    int64_t& slot = next_group_slot_[schema_type];
    info.group = slot / options_.mg_group_size;
    ++slot;
    auto& groups = groups_by_type_[schema_type];
    if (groups.empty() || groups.back() != info.group) {
      groups.push_back(info.group);
    }
  }
  sources_[id] = info;
  return Status::OK();
}

Result<const DataSourceInfo*> ConfigComponent::GetSource(SourceId id) const {
  auto it = sources_.find(id);
  if (it == sources_.end()) {
    return Status::NotFound("unregistered source: " + std::to_string(id));
  }
  return &it->second;
}

std::vector<int64_t> ConfigComponent::GroupsOf(int schema_type) const {
  auto it = groups_by_type_.find(schema_type);
  if (it == groups_by_type_.end()) return {};
  return it->second;
}

std::vector<SourceId> ConfigComponent::SourcesOf(int schema_type) const {
  std::vector<SourceId> out;
  for (const auto& [id, info] : sources_) {
    if (info.schema_type == schema_type) out.push_back(id);
  }
  return out;
}

}  // namespace odh::core
