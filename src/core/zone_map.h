#ifndef ODH_CORE_ZONE_MAP_H_
#define ODH_CORE_ZONE_MAP_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "core/value_blob.h"

namespace odh::core {

/// A numeric range filter on one tag, pushed down from a SQL predicate
/// (e.g. `temperature > 50` -> {tag, 50, +inf, false-exclusive-low}).
struct TagFilter {
  int tag = -1;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
};

/// Per-blob tag min/max summary — the paper's §6 future-work item "adding
/// proper indexing to reduce BLOB scanning for queries on attribute
/// values". Stored as a small column next to each ValueBlob, it lets the
/// reader skip decoding blobs whose value ranges cannot satisfy a pushed
/// tag predicate (a zone map / block-range index).
class ZoneMap {
 public:
  /// Builds the summary from tag-major columns (NaN = missing).
  static ZoneMap FromColumns(const std::vector<std::vector<double>>& columns);

  /// Builds from row-format records (MG path).
  static ZoneMap FromRecords(const std::vector<OperationalRecord>& records,
                             int num_tags);

  /// Compact serialization (per tag: presence flag + min/max).
  std::string Encode() const;
  static Result<ZoneMap> Decode(Slice input);

  /// Widens every range by `margin` on both sides. Lossy codecs may emit
  /// decoded values up to their error bound away from the originals the
  /// map was built from; widening keeps pruning conservative w.r.t.
  /// predicates evaluated on decoded values.
  void Widen(double margin);

  /// True when a blob with this summary may contain rows satisfying every
  /// filter. False means the blob can be skipped entirely. Conservative:
  /// an empty/unknown zone map always returns true.
  bool MayMatch(const std::vector<TagFilter>& filters) const;

  int num_tags() const { return static_cast<int>(entries_.size()); }
  bool has_values(int tag) const { return entries_[tag].present; }
  double min(int tag) const { return entries_[tag].min; }
  double max(int tag) const { return entries_[tag].max; }

 private:
  struct Entry {
    bool present = false;  // Any non-NaN value for this tag?
    double min = 0;
    double max = 0;
  };
  std::vector<Entry> entries_;
};

}  // namespace odh::core

#endif  // ODH_CORE_ZONE_MAP_H_
