#ifndef ODH_CORE_ZONE_MAP_H_
#define ODH_CORE_ZONE_MAP_H_

#include <cmath>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "core/value_blob.h"

namespace odh::core {

/// A numeric range filter on one tag, pushed down from a SQL predicate
/// (e.g. `temperature > 50` -> {tag, 50, +inf, min_exclusive}). The
/// exclusivity flags preserve the SQL bound strictness so the filter can be
/// evaluated *exactly* (aggregate pushdown) and not just conservatively
/// (blob pruning).
struct TagFilter {
  int tag = -1;
  double min = -std::numeric_limits<double>::infinity();
  double max = std::numeric_limits<double>::infinity();
  bool min_exclusive = false;
  bool max_exclusive = false;
};

/// Exact row-level evaluation of one filter, matching SQL comparison
/// semantics: a missing value (NaN) never satisfies a predicate.
inline bool TagFilterMatches(const TagFilter& f, double v) {
  if (std::isnan(v)) return false;
  if (f.min_exclusive ? !(v > f.min) : !(v >= f.min)) return false;
  if (f.max_exclusive ? !(v < f.max) : !(v <= f.max)) return false;
  return true;
}

/// Per-blob tag summary — the paper's §6 future-work item "adding proper
/// indexing to reduce BLOB scanning for queries on attribute values".
/// Stored as a small column next to each ValueBlob.
///
/// Format v1 carried min/max per tag (a zone map / block-range index) and
/// only supported pruning. Format v2 adds a per-tag non-NaN count and sum
/// plus an `exact` bit, which upgrades the summary into an aggregate
/// index: COUNT/SUM/AVG/MIN/MAX over a blob that is fully covered by the
/// query's time range and tag predicates can be answered from the summary
/// alone, skipping decompression entirely. Decode accepts both formats;
/// Encode always writes v2.
///
/// `exact` is cleared by Widen(): under a lossy codec the decoded values
/// can deviate from the originals the summary was built from, so min/max/
/// sum would disagree with a decode-and-scan answer. Per-tag counts stay
/// trustworthy under widening (lossy codecs never change which values are
/// missing), which is why AllMatch() still works on widened maps.
class ZoneMap {
 public:
  /// Builds the summary from tag-major columns (NaN = missing).
  static ZoneMap FromColumns(const std::vector<std::vector<double>>& columns);

  /// Builds from row-format records (MG path).
  static ZoneMap FromRecords(const std::vector<OperationalRecord>& records,
                             int num_tags);

  /// Compact serialization (v2: header + per tag presence flag, min/max,
  /// count, sum).
  std::string Encode() const;
  static Result<ZoneMap> Decode(Slice input);

  /// Widens every range by `margin` on both sides. Lossy codecs may emit
  /// decoded values up to their error bound away from the originals the
  /// map was built from; widening keeps pruning conservative w.r.t.
  /// predicates evaluated on decoded values. A positive margin marks the
  /// map inexact: summary-only aggregate answers are disabled for it.
  void Widen(double margin);

  /// True when a blob with this summary may contain rows satisfying every
  /// filter. False means the blob can be skipped entirely. Conservative:
  /// an empty/unknown zone map always returns true.
  bool MayMatch(const std::vector<TagFilter>& filters) const;

  /// True when the summary *proves* that every one of the blob's
  /// `num_rows` rows satisfies every filter: each filtered tag has no
  /// missing values (count == num_rows) and its whole [min, max] range
  /// lies inside the filter bounds. Requires per-tag counts (v2);
  /// conservative `false` otherwise. Sound on widened maps: decoded
  /// values stay inside the widened range, so full containment still
  /// implies every decoded row passes.
  bool AllMatch(const std::vector<TagFilter>& filters,
                int64_t num_rows) const;

  int num_tags() const { return static_cast<int>(entries_.size()); }
  bool has_values(int tag) const { return entries_[tag].present; }
  double min(int tag) const { return entries_[tag].min; }
  double max(int tag) const { return entries_[tag].max; }

  /// Aggregate accessors (meaningful when has_aggregates()).
  int64_t count(int tag) const { return entries_[tag].count; }
  double sum(int tag) const { return entries_[tag].sum; }

  /// True when every present entry carries count/sum (v2 summaries).
  bool has_aggregates() const { return has_aggregates_; }
  /// False once Widen() ran with a positive margin (lossy codec): min/max/
  /// sum may disagree with decoded values and must not answer aggregates.
  bool exact() const { return exact_; }

 private:
  struct Entry {
    bool present = false;   // Any non-NaN value for this tag?
    bool has_agg = false;   // count/sum valid (v2)?
    double min = 0;
    double max = 0;
    int64_t count = 0;      // Non-NaN values of this tag in the blob.
    double sum = 0;         // Sum of those values (pre-compression).
  };
  std::vector<Entry> entries_;
  bool exact_ = true;
  bool has_aggregates_ = true;  // Vacuously true for an empty map.
};

}  // namespace odh::core

#endif  // ODH_CORE_ZONE_MAP_H_
