#include "core/blob_cache.h"

namespace odh::core {
namespace {

/// splitmix64 finalizer: cheap, well-distributed over the packed fields.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

size_t BlobCache::KeyHash::operator()(const BlobCacheKey& k) const {
  uint64_t h = Mix(static_cast<uint64_t>(k.schema_type) << 2 |
                   static_cast<uint64_t>(k.structure));
  h = Mix(h ^ static_cast<uint64_t>(k.seg));
  h = Mix(h ^ static_cast<uint64_t>(k.generation));
  h = Mix(h ^ k.rid);
  h = Mix(h ^ k.tag_mask);
  return static_cast<size_t>(h);
}

BlobCache::BlobCache(size_t capacity_bytes, int num_shards)
    : capacity_(capacity_bytes) {
  int shards = 1;
  while (shards < num_shards) shards <<= 1;  // Power of two for masking.
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_ / shards_.size();
}

BlobCache::Shard* BlobCache::ShardFor(const BlobCacheKey& key) {
  const size_t h = KeyHash{}(key);
  // The low hash bits pick the bucket inside the shard map; use high bits
  // for the shard so the two choices stay independent.
  return shards_[(h >> 17) & (shards_.size() - 1)].get();
}

std::shared_ptr<const RecordBatch> BlobCache::Lookup(
    const BlobCacheKey& key) {
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(key);
  if (it == shard->map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->value;
}

void BlobCache::Insert(const BlobCacheKey& key,
                       std::shared_ptr<const RecordBatch> value,
                       size_t bytes) {
  if (bytes > shard_capacity_) return;  // Would evict a whole shard.
  Shard* shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->map.find(key);
  if (it != shard->map.end()) {
    // Replace in place (two scans racing the same miss): keep the newer
    // decode, refresh recency.
    shard->bytes -= it->second->bytes;
    bytes_.fetch_sub(static_cast<int64_t>(it->second->bytes),
                     std::memory_order_relaxed);
    it->second->value = std::move(value);
    it->second->bytes = bytes;
    shard->lru.splice(shard->lru.begin(), shard->lru, it->second);
  } else {
    shard->lru.push_front(Entry{key, std::move(value), bytes});
    shard->map.emplace(key, shard->lru.begin());
    entries_.fetch_add(1, std::memory_order_relaxed);
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }
  shard->bytes += bytes;
  bytes_.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
  while (shard->bytes > shard_capacity_ && !shard->lru.empty()) {
    Entry& victim = shard->lru.back();
    shard->bytes -= victim.bytes;
    bytes_.fetch_sub(static_cast<int64_t>(victim.bytes),
                     std::memory_order_relaxed);
    shard->map.erase(victim.key);
    shard->lru.pop_back();
    entries_.fetch_sub(1, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

BlobCacheStats BlobCache::stats() const {
  BlobCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = entries_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace odh::core
