#ifndef ODH_CORE_WAL_H_
#define ODH_CORE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/slice.h"
#include "core/config.h"
#include "storage/sim_disk.h"

namespace odh::core {

/// One logical redo record: a blob Put against a container (or, for the
/// reorganizer, an MG blob deletion). The store appends one of these
/// (encoded) to its WAL before the heap/index write, so a crash after Sync
/// can be replayed blob-by-blob into a fresh store.
struct WalRecord {
  enum class Kind : uint8_t {
    kRts = 1,
    kIrts = 2,
    kMg = 3,
    /// The reorganizer removed an MG blob (it was converted to RTS/IRTS).
    /// On replay this cancels one earlier kMg record with the same
    /// (schema_type, group, begin, end, n); rids are not stable across
    /// recovery, so the match is by content key.
    kMgDelete = 4,
    /// Segment compaction episode. Begin carries the compacted segment's
    /// nominal time bounds in begin/end and its key in id_or_group; the
    /// replacement kRts/kIrts records follow contiguously, then Commit
    /// closes the episode. Recovery replays a committed episode's
    /// replacement blobs and suppresses every earlier data record of that
    /// schema type whose begin falls inside the bounds; an episode with no
    /// Commit is discarded wholesale (the old segment survives untouched).
    kSegmentCompactBegin = 5,
    kSegmentCompactCommit = 6,
    /// Retention dropped a whole segment: same bounds-in-record layout as
    /// kSegmentCompactBegin. Recovery suppresses every earlier data record
    /// of that schema type whose begin falls inside [begin, end].
    kSegmentDrop = 7,
  };

  Kind kind = Kind::kRts;
  int schema_type = 0;
  int64_t id_or_group = 0;  // SourceId for RTS/IRTS, group for MG.
  Timestamp begin = 0;
  Timestamp end = 0;
  Timestamp interval = 0;  // RTS only.
  int64_t n = 0;
  std::string blob;        // Empty for kMgDelete.
  std::string zone_map;

  void EncodeTo(std::string* dst) const;
  static bool Decode(Slice input, WalRecord* record);
};

/// Encodes a record from loose fields, sparing the caller the string copies
/// a temporary WalRecord would make (Put is the ingest hot path).
void EncodeWalPayload(WalRecord::Kind kind, int schema_type,
                      int64_t id_or_group, Timestamp begin, Timestamp end,
                      Timestamp interval, int64_t n, const Slice& blob,
                      const Slice& zone_map, std::string* dst);

/// An append-only log on a SimDisk file, written with raw page I/O (no
/// buffer pool, so no page-trailer checksum — each record carries its own
/// CRC32C instead, which is what lets recovery find the torn tail).
///
/// On-disk format: records are packed back to back from byte 0 of page 0,
/// each framed as
///
///   [u32 payload_len][u32 crc32c(payload)][payload bytes]
///
/// with no alignment — a record may straddle pages. The tail page is
/// rewritten in place as it fills. A zero-filled region (fresh pages) marks
/// the end of the log; a frame whose length overruns the file or whose CRC
/// does not match the payload is a torn tail and everything from it on is
/// discarded by ReadLog.
///
/// Append only buffers in memory; Sync makes the buffered suffix durable
/// (retrying transient faults with bounded backoff). Crash-consistency
/// contract: records appended before a Sync that returned OK survive a
/// power cut; records appended after the last successful Sync are lost.
///
/// Thread-safe with leader-based group commit: Append is a short critical
/// section on the append queue; concurrent Sync callers elect one leader
/// that drains the whole queue to disk while followers wait. A follower
/// whose records were covered by the leader's batch returns OK without
/// touching the disk; one that arrived too late (or whose leader failed)
/// retries as the next leader. This keeps PR 1's recovery contract intact
/// under multi-threaded ingestion: log order equals Append order, and a
/// successful Sync makes every record appended before it durable.
class Wal {
 public:
  /// Creates the log file (fails if the name exists).
  static Result<std::unique_ptr<Wal>> Create(storage::SimDisk* disk,
                                             const std::string& name);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frames `payload` and buffers it for the next Sync.
  void Append(const Slice& payload);

  /// Writes all buffered bytes to disk. On failure the already-durable
  /// prefix stays durable and the unwritten suffix stays buffered.
  Status Sync();

  uint64_t records_appended() const {
    return records_appended_.load(std::memory_order_relaxed);
  }
  uint64_t records_synced() const {
    return records_synced_.load(std::memory_order_relaxed);
  }
  uint64_t synced_bytes() const {
    return synced_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t pending_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.size();
  }
  /// Transparent retries of transient faults during Sync.
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }

  /// Hooks group-commit observability up: per-leader batch latency lands
  /// in `sync_hist`, each leader-written batch bumps `group_commits`, and
  /// each follower whose records were made durable by someone else's batch
  /// bumps `piggybacked`. Takes pre-resolved instruments (any may be null)
  /// rather than a registry so callers holding their own locks never
  /// acquire the registry mutex — gauges sample those same callers while
  /// the registry collects, and nesting the locks both ways deadlocks.
  void SetInstruments(common::Histogram* sync_hist,
                      common::Counter* group_commits,
                      common::Counter* piggybacked) {
    sync_hist_ = sync_hist;
    group_commits_ = group_commits;
    piggybacked_ = piggybacked;
  }

  struct ReadResult {
    std::vector<std::string> records;  // Decoded payloads, in log order.
    uint64_t valid_bytes = 0;          // Frame bytes of `records`.
    uint64_t torn_bytes_dropped = 0;   // Non-zero trailing bytes discarded.
  };

  /// Scans the log on `disk` (typically a post-crash CloneDurable()) and
  /// returns every record up to the first torn or corrupt frame. A missing
  /// file yields an empty result, not an error: a store that never synced
  /// has nothing to recover.
  static Result<ReadResult> ReadLog(storage::SimDisk* disk,
                                    const std::string& name);

  /// One chunk of the durable log, read by a replication cursor. An LSN is
  /// a byte offset into the log; LSNs handed out here are always frame
  /// boundaries, so `next_lsn` can be fed straight back into ReadDurable.
  struct TailChunk {
    std::vector<std::string> records;  // Decoded payloads, in log order.
    uint64_t next_lsn = 0;             // Resume position (frame-aligned).
    uint64_t durable_lsn = 0;          // Durable log length at read time.
  };

  /// Cursor read over the live log: decodes complete frames starting at
  /// byte offset `from_lsn` (0 or a `next_lsn` returned earlier), stopping
  /// once roughly `max_bytes` of payload have been collected or the
  /// durable watermark is reached. Only bytes below synced_bytes() are
  /// trusted — a frame still being written by a concurrent Sync straddles
  /// the watermark and is left for the next call. Thread-safe against
  /// concurrent Append/Sync: the durable prefix is immutable (the tail
  /// page is only ever extended, and page I/O is serialized by the disk).
  /// A CRC mismatch below the watermark is real corruption, not a torn
  /// tail, and fails with kDataLoss.
  Result<TailChunk> ReadDurable(uint64_t from_lsn, size_t max_bytes) const;

 private:
  Wal(storage::SimDisk* disk, storage::FileId file);

  Status WritePageRetry(storage::PageNo page, const char* buf);
  Result<storage::PageNo> AllocatePageRetry();

  storage::SimDisk* disk_;
  storage::FileId file_;
  size_t page_size_;

  /// Guards the append queue and the group-commit handshake. Disk I/O
  /// happens with mu_ released (only the elected leader touches the
  /// leader-only fields below, so they need no lock of their own).
  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  bool sync_active_ = false;            // A leader is writing.
  std::string pending_;                 // Framed, not yet durable.

  // Leader-only state (handed off leader-to-leader through mu_).
  uint64_t pages_allocated_ = 0;
  std::unique_ptr<char[]> tail_page_;   // Image of the last durable page.

  std::atomic<uint64_t> synced_bytes_{0};  // Durable log length.
  std::atomic<uint64_t> records_appended_{0};
  std::atomic<uint64_t> records_synced_{0};
  std::atomic<uint64_t> io_retries_{0};

  // Registry-backed instruments; null until SetMetrics. Bumped per sync
  // batch, never per record.
  common::Histogram* sync_hist_ = nullptr;
  common::Counter* group_commits_ = nullptr;
  common::Counter* piggybacked_ = nullptr;
};

}  // namespace odh::core

#endif  // ODH_CORE_WAL_H_
