#include "core/odh.h"

#include <algorithm>

#include "common/logging.h"

namespace odh::core {

OdhSystem::OdhSystem(OdhOptions options) : config_(options) {
  metrics_ = std::make_unique<common::MetricsRegistry>();
  relational::EngineProfile profile = relational::EngineProfile::Odh();
  profile.pool_pages = options.pool_pages;
  db_ = std::make_unique<relational::Database>(profile);
  engine_ = std::make_unique<sql::SqlEngine>(db_.get());
  // Memory governance: budgets flow into the tracker hierarchy and
  // over-budget ORDER BY sorts spill to the store's disk.
  sql::MemoryBudgets budgets;
  budgets.process_bytes = options.server_memory_budget;
  budgets.session_bytes = options.session_memory_budget;
  budgets.query_bytes = options.query_memory_budget;
  engine_->ConfigureMemory(budgets, db_->disk());
  store_ = std::make_unique<OdhStore>(db_.get(), &config_);
  writer_ = std::make_unique<OdhWriter>(store_.get(), &config_);
  router_ = std::make_unique<DataRouter>(&config_, engine_.get());
  ODH_CHECK_OK(router_->CreateMetadataTables());
  cost_model_ = std::make_unique<OdhCostModel>(&config_, store_.get());
  const int pool_threads =
      std::max(options.read_parallelism, options.query_parallelism);
  if (pool_threads > 1) {
    read_pool_ = std::make_unique<common::ThreadPool>(pool_threads);
  }
  if (options.blob_cache_bytes > 0) {
    blob_cache_ = std::make_unique<BlobCache>(options.blob_cache_bytes);
  }
  reader_ = std::make_unique<OdhReader>(&config_, store_.get(),
                                        writer_.get(), router_.get(),
                                        read_pool_.get(), blob_cache_.get());
  reorganizer_ = std::make_unique<Reorganizer>(&config_, store_.get());
  compactor_ = std::make_unique<SegmentCompactor>(&config_, store_.get(),
                                                  read_pool_.get());

  // ALTER TABLE <name>_v RETENTION <interval>: map the view name back to
  // its schema type, then set + apply the window. Runs under the SQL
  // engine's write mutex (session layer), same as the other DDL.
  engine_->set_retention_handler(
      [this](const std::string& table, int64_t retention_micros) -> Status {
        std::string name = table;
        constexpr char kSuffix[] = "_v";
        if (name.size() > 2 && name.compare(name.size() - 2, 2, kSuffix) == 0) {
          name.resize(name.size() - 2);
        }
        ODH_ASSIGN_OR_RETURN(int type_id, config_.FindSchemaType(name));
        return SetRetention(type_id, retention_micros).status();
      });

  // Observability wiring: push-style instruments into the hot components
  // (flush/sync granularity), pull-gauges over everything that already
  // counts, and the three system tables into the SQL catalog.
  if (options.enable_metrics) {
    writer_->SetMetrics(metrics_.get());
    store_->SetMetrics(metrics_.get());
    RegisterGauges();
    metrics_table_ = std::make_unique<MetricsSystemTable>(metrics_.get());
    queries_table_ = std::make_unique<QueriesSystemTable>(engine_.get());
    storage_table_ =
        std::make_unique<StorageSystemTable>(&config_, store_.get());
    ODH_CHECK_OK(engine_->catalog()->RegisterProvider(metrics_table_.get()));
    ODH_CHECK_OK(engine_->catalog()->RegisterProvider(queries_table_.get()));
    ODH_CHECK_OK(engine_->catalog()->RegisterProvider(storage_table_.get()));
  }
}

void OdhSystem::RegisterGauges() {
  common::MetricsRegistry* m = metrics_.get();
  storage::BufferPool* pool = db_->pool();
  m->RegisterGauge("odh.bufferpool.hits", [pool] {
    return static_cast<double>(pool->hit_count());
  });
  m->RegisterGauge("odh.bufferpool.misses", [pool] {
    return static_cast<double>(pool->miss_count());
  });
  m->RegisterGauge("odh.bufferpool.evictions", [pool] {
    return static_cast<double>(pool->eviction_count());
  });
  m->RegisterGauge("odh.bufferpool.io_retries", [pool] {
    return static_cast<double>(pool->io_retry_count());
  });
  m->RegisterGauge("odh.bufferpool.checksum_failures", [pool] {
    return static_cast<double>(pool->checksum_failure_count());
  });
  storage::SimDisk* disk = db_->disk();
  m->RegisterGauge("odh.disk.page_reads", [disk] {
    return static_cast<double>(disk->stats().page_reads);
  });
  m->RegisterGauge("odh.disk.page_writes", [disk] {
    return static_cast<double>(disk->stats().page_writes);
  });
  m->RegisterGauge("odh.disk.transient_faults", [disk] {
    return static_cast<double>(disk->stats().transient_faults);
  });
  OdhWriter* writer = writer_.get();
  m->RegisterGauge("odh.writer.points_ingested", [writer] {
    return static_cast<double>(writer->stats().points_ingested);
  });
  m->RegisterGauge("odh.writer.blobs_flushed", [writer] {
    const WriterStats s = writer->stats();
    return static_cast<double>(s.rts_blobs + s.irts_blobs + s.mg_blobs);
  });
  m->RegisterGauge("odh.writer.syncs", [writer] {
    return static_cast<double>(writer->stats().syncs);
  });
  m->RegisterGauge("odh.writer.sync_retries", [writer] {
    return static_cast<double>(writer->stats().sync_retries);
  });
  OdhReader* reader = reader_.get();
  m->RegisterGauge("odh.reader.blobs_decoded", [reader] {
    return static_cast<double>(reader->stats().blobs_decoded);
  });
  m->RegisterGauge("odh.reader.blobs_pruned", [reader] {
    return static_cast<double>(reader->stats().blobs_pruned);
  });
  m->RegisterGauge("odh.reader.blobs_skipped_by_summary", [reader] {
    return static_cast<double>(reader->stats().blobs_skipped_by_summary);
  });
  m->RegisterGauge("odh.reader.blob_bytes_read", [reader] {
    return static_cast<double>(reader->stats().blob_bytes_read);
  });
  m->RegisterGauge("odh.reader.records_emitted", [reader] {
    return static_cast<double>(reader->stats().records_emitted);
  });
  DataRouter* router = router_.get();
  m->RegisterGauge("odh.router.lookups", [router] {
    return static_cast<double>(router->lookups());
  });
  const OdhStore* store = store_.get();
  m->RegisterGauge("odh.store.blobs_examined", [store] {
    return static_cast<double>(store->blobs_examined());
  });
  m->RegisterGauge("odh.store.blobs_discarded", [store] {
    return static_cast<double>(store->blobs_discarded());
  });
  m->RegisterGauge("odh.store.segments_pruned", [store] {
    return static_cast<double>(store->segments_pruned());
  });
  m->RegisterGauge("odh.store.segments_compacted", [store] {
    return static_cast<double>(store->segments_compacted());
  });
  m->RegisterGauge("odh.store.segments_dropped", [store] {
    return static_cast<double>(store->segments_dropped());
  });
  m->RegisterGauge("odh.reader.segments_pruned", [reader] {
    return static_cast<double>(reader->stats().segments_pruned);
  });
  m->RegisterGauge("odh.parallel_scan.tasks", [reader] {
    return static_cast<double>(reader->stats().parallel_tasks);
  });
  m->RegisterGauge("odh.parallel_scan.merge_stalls", [reader] {
    return static_cast<double>(reader->stats().merge_stalls);
  });
  m->RegisterGauge("odh.parallel_scan.segments", [reader] {
    return static_cast<double>(reader->stats().segments_scanned_parallel);
  });
  // Null-safe: the gauges read 0 when the cache is disabled, so dashboards
  // keep a stable metric set across configurations.
  BlobCache* cache = blob_cache_.get();
  m->RegisterGauge("odh.blob_cache.hits", [cache] {
    return cache == nullptr ? 0.0 : static_cast<double>(cache->stats().hits);
  });
  m->RegisterGauge("odh.blob_cache.misses", [cache] {
    return cache == nullptr ? 0.0
                            : static_cast<double>(cache->stats().misses);
  });
  m->RegisterGauge("odh.blob_cache.evictions", [cache] {
    return cache == nullptr ? 0.0
                            : static_cast<double>(cache->stats().evictions);
  });
  m->RegisterGauge("odh.blob_cache.bytes", [cache] {
    return cache == nullptr ? 0.0
                            : static_cast<double>(cache->stats().bytes);
  });
  // Memory governance: live reserved bytes, the process high-water mark,
  // and the configured ceiling (0 = unbounded) off the tracker root.
  common::MemoryTracker* mem = engine_->memory_root();
  m->RegisterGauge("odh.mem.used_bytes", [mem] {
    return static_cast<double>(mem->used());
  });
  m->RegisterGauge("odh.mem.peak_bytes", [mem] {
    return static_cast<double>(mem->peak());
  });
  m->RegisterGauge("odh.mem.limit_bytes", [mem] {
    return static_cast<double>(mem->limit());
  });
  m->RegisterGauge("odh.wal.records_synced", [store] {
    const Wal* wal = store->wal();
    return wal == nullptr ? 0.0
                          : static_cast<double>(wal->records_synced());
  });
  m->RegisterGauge("odh.wal.synced_bytes", [store] {
    const Wal* wal = store->wal();
    return wal == nullptr ? 0.0 : static_cast<double>(wal->synced_bytes());
  });
  m->RegisterGauge("odh.wal.io_retries", [store] {
    const Wal* wal = store->wal();
    return wal == nullptr ? 0.0 : static_cast<double>(wal->io_retries());
  });
}

Result<int> OdhSystem::DefineSchemaType(const std::string& name,
                                        std::vector<std::string> tag_names,
                                        CompressionSpec compression) {
  SchemaType type;
  type.name = name;
  type.tag_names = std::move(tag_names);
  type.compression = compression;
  ODH_ASSIGN_OR_RETURN(int type_id, config_.DefineSchemaType(std::move(type)));
  ODH_RETURN_IF_ERROR(store_->CreateContainers(type_id));
  auto virtual_table = std::make_unique<OdhVirtualTable>(
      name + "_v", type_id, &config_, reader_.get(), cost_model_.get());
  ODH_RETURN_IF_ERROR(
      engine_->catalog()->RegisterProvider(virtual_table.get()));
  virtual_tables_.push_back(std::move(virtual_table));
  return type_id;
}

Status OdhSystem::RegisterSource(SourceId id, int schema_type,
                                 Timestamp sample_interval, bool regular) {
  ODH_RETURN_IF_ERROR(
      config_.RegisterSource(id, schema_type, sample_interval, regular));
  ODH_ASSIGN_OR_RETURN(const DataSourceInfo* info, config_.GetSource(id));
  return router_->AddSourceMetadata(*info);
}

Status OdhSystem::Ingest(const OperationalRecord& record) {
  return writer_->Ingest(record);
}

Status OdhSystem::FlushAll() {
  ODH_RETURN_IF_ERROR(writer_->FlushAll());
  return router_->SyncMetadata();
}

Result<std::unique_ptr<RecordCursor>> OdhSystem::HistoricalQuery(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags) {
  return reader_->OpenHistorical(schema_type, id, lo, hi, wanted_tags);
}

Result<std::unique_ptr<RecordCursor>> OdhSystem::SliceQuery(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags) {
  return reader_->OpenSlice(schema_type, lo, hi, wanted_tags);
}

Result<CompactionReport> OdhSystem::CompactSegments(int schema_type) {
  // Flush so sealed segments hold everything ingested so far; buffered
  // points routed to a sealed segment would otherwise race the rewrite
  // (the version check would abort the swap, which is correct but wasteful).
  ODH_RETURN_IF_ERROR(writer_->Flush(schema_type));
  return compactor_->CompactSealed(schema_type);
}

Result<int64_t> OdhSystem::SetRetention(int schema_type,
                                        Timestamp retention_micros) {
  ODH_RETURN_IF_ERROR(store_->SetRetention(schema_type, retention_micros));
  return store_->ApplyRetention(schema_type);
}

Result<ReorganizeReport> OdhSystem::Reorganize(int schema_type,
                                               Timestamp up_to) {
  // Reorganization works on persisted MG blobs; flush first so buffered
  // records are included.
  ODH_RETURN_IF_ERROR(writer_->Flush(schema_type));
  ODH_ASSIGN_OR_RETURN(ReorganizeReport report,
                       reorganizer_->Reorganize(schema_type, up_to));
  // Rebuild the MG container so the space of consumed blobs is reclaimed.
  if (report.mg_blobs_consumed > 0) {
    ODH_RETURN_IF_ERROR(store_->CompactMg(schema_type));
  }
  return report;
}

}  // namespace odh::core
