#include "core/odh.h"

#include "common/logging.h"

namespace odh::core {

OdhSystem::OdhSystem(OdhOptions options) : config_(options) {
  relational::EngineProfile profile = relational::EngineProfile::Odh();
  profile.pool_pages = options.pool_pages;
  db_ = std::make_unique<relational::Database>(profile);
  engine_ = std::make_unique<sql::SqlEngine>(db_.get());
  store_ = std::make_unique<OdhStore>(db_.get(), &config_);
  writer_ = std::make_unique<OdhWriter>(store_.get(), &config_);
  router_ = std::make_unique<DataRouter>(&config_, engine_.get());
  ODH_CHECK_OK(router_->CreateMetadataTables());
  cost_model_ = std::make_unique<OdhCostModel>(&config_, store_.get());
  if (options.read_parallelism > 1) {
    read_pool_ =
        std::make_unique<common::ThreadPool>(options.read_parallelism);
  }
  reader_ = std::make_unique<OdhReader>(&config_, store_.get(),
                                        writer_.get(), router_.get(),
                                        read_pool_.get());
  reorganizer_ = std::make_unique<Reorganizer>(&config_, store_.get());
}

Result<int> OdhSystem::DefineSchemaType(const std::string& name,
                                        std::vector<std::string> tag_names,
                                        CompressionSpec compression) {
  SchemaType type;
  type.name = name;
  type.tag_names = std::move(tag_names);
  type.compression = compression;
  ODH_ASSIGN_OR_RETURN(int type_id, config_.DefineSchemaType(std::move(type)));
  ODH_RETURN_IF_ERROR(store_->CreateContainers(type_id));
  auto virtual_table = std::make_unique<OdhVirtualTable>(
      name + "_v", type_id, &config_, reader_.get(), cost_model_.get());
  ODH_RETURN_IF_ERROR(
      engine_->catalog()->RegisterProvider(virtual_table.get()));
  virtual_tables_.push_back(std::move(virtual_table));
  return type_id;
}

Status OdhSystem::RegisterSource(SourceId id, int schema_type,
                                 Timestamp sample_interval, bool regular) {
  ODH_RETURN_IF_ERROR(
      config_.RegisterSource(id, schema_type, sample_interval, regular));
  ODH_ASSIGN_OR_RETURN(const DataSourceInfo* info, config_.GetSource(id));
  return router_->AddSourceMetadata(*info);
}

Status OdhSystem::Ingest(const OperationalRecord& record) {
  return writer_->Ingest(record);
}

Status OdhSystem::FlushAll() {
  ODH_RETURN_IF_ERROR(writer_->FlushAll());
  return router_->SyncMetadata();
}

Result<std::unique_ptr<RecordCursor>> OdhSystem::HistoricalQuery(
    int schema_type, SourceId id, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags) {
  return reader_->OpenHistorical(schema_type, id, lo, hi, wanted_tags);
}

Result<std::unique_ptr<RecordCursor>> OdhSystem::SliceQuery(
    int schema_type, Timestamp lo, Timestamp hi,
    const std::vector<int>& wanted_tags) {
  return reader_->OpenSlice(schema_type, lo, hi, wanted_tags);
}

Result<ReorganizeReport> OdhSystem::Reorganize(int schema_type,
                                               Timestamp up_to) {
  // Reorganization works on persisted MG blobs; flush first so buffered
  // records are included.
  ODH_RETURN_IF_ERROR(writer_->Flush(schema_type));
  ODH_ASSIGN_OR_RETURN(ReorganizeReport report,
                       reorganizer_->Reorganize(schema_type, up_to));
  // Rebuild the MG container so the space of consumed blobs is reclaimed.
  if (report.mg_blobs_consumed > 0) {
    ODH_RETURN_IF_ERROR(store_->CompactMg(schema_type));
  }
  return report;
}

}  // namespace odh::core
