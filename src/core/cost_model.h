#ifndef ODH_CORE_COST_MODEL_H_
#define ODH_CORE_COST_MODEL_H_

#include <algorithm>

#include "core/store.h"

namespace odh::core {

/// Cost estimate for an ODH access path, in the paper's currency: the
/// expected size in bytes of the ValueBlobs that must be read ("Because the
/// major performance blocker for queries is I/O ... we approximate the cost
/// of extracting the requested operational data as the expected size, in
/// bytes, of the ValueBlobs that need to be accessed", §3).
struct OdhCostEstimate {
  double blobs = 0;
  double bytes = 0;
  double points = 0;
};

/// Estimates blob bytes for historical and slice access paths from the
/// store's container statistics. `tag_fraction` scales the byte cost for
/// tag-oriented partial decodes (the per-tag directory means only requested
/// tag sections are read).
class OdhCostModel {
 public:
  OdhCostModel(ConfigComponent* config, OdhStore* store)
      : config_(config), store_(store) {}

  OdhCostEstimate EstimateHistorical(int schema_type, SourceId id,
                                     Timestamp lo, Timestamp hi,
                                     double tag_fraction) const;

  OdhCostEstimate EstimateSlice(int schema_type, Timestamp lo, Timestamp hi,
                                double tag_fraction) const;

 private:
  /// Fraction of a container's time extent overlapping [lo, hi].
  static double TimeFraction(const ContainerStats& stats, Timestamp lo,
                             Timestamp hi);

  ConfigComponent* config_;
  OdhStore* store_;
};

}  // namespace odh::core

#endif  // ODH_CORE_COST_MODEL_H_
