#include "core/reorganizer.h"

#include "core/zone_map.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

namespace odh::core {

Result<ReorganizeReport> Reorganizer::Reorganize(int schema_type,
                                                 Timestamp up_to) {
  ReorganizeReport report;
  ODH_ASSIGN_OR_RETURN(const SchemaType* type,
                       config_->GetSchemaType(schema_type));
  ValueBlobCodec codec(type->compression);
  const int num_tags = static_cast<int>(type->tag_names.size());

  ODH_ASSIGN_OR_RETURN(auto blobs,
                       store_->GetMg(schema_type, -1, kMinTimestamp, up_to));
  // Collect per-source series from all eligible MG blobs.
  std::map<SourceId, SeriesBatch> series;
  // Rids are only unique within one segment's table, so remember the
  // segment each consumed blob came from.
  std::vector<std::pair<int64_t, relational::Rid>> consumed;
  for (const BlobRecord& blob : blobs) {
    if (blob.end > up_to) continue;
    std::vector<OperationalRecord> records;
    ODH_RETURN_IF_ERROR(codec.DecodeMg(Slice(blob.blob), blob.begin,
                                       /*wanted_tags=*/{}, num_tags,
                                       &records));
    for (const OperationalRecord& r : records) {
      SeriesBatch& batch = series[r.id];
      if (batch.columns.empty()) {
        batch.id = r.id;
        batch.columns.resize(num_tags);
      }
      batch.timestamps.push_back(r.ts);
      for (int t = 0; t < num_tags; ++t) {
        batch.columns[t].push_back(r.tags[t]);
      }
      ++report.points_moved;
    }
    consumed.emplace_back(blob.seg, blob.rid);
    ++report.mg_blobs_consumed;
  }

  // Write per-source batches: regular-within-tolerance series become RTS.
  for (auto& [id, batch] : series) {
    // Blobs arrive in begin_ts order, but blobs sharing a begin_ts can
    // interleave a source's rounds; sort each series by timestamp (stable)
    // before encoding.
    const size_t n = batch.timestamps.size();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return batch.timestamps[a] < batch.timestamps[b];
    });
    SeriesBatch sorted;
    sorted.id = batch.id;
    sorted.timestamps.reserve(n);
    sorted.columns.resize(batch.columns.size());
    for (size_t i = 0; i < n; ++i) {
      sorted.timestamps.push_back(batch.timestamps[order[i]]);
    }
    for (size_t c = 0; c < batch.columns.size(); ++c) {
      sorted.columns[c].reserve(n);
      for (size_t i = 0; i < n; ++i) {
        sorted.columns[c].push_back(batch.columns[c][order[i]]);
      }
    }
    batch = std::move(sorted);
    auto source = config_->GetSource(id);
    Timestamp interval =
        source.ok() ? (*source)->expected_interval : Timestamp{0};
    bool regular = source.ok() && IsRegular((*source)->source_class) &&
                   n >= 2 && interval > 0;
    if (regular) {
      const Timestamp tolerance = std::max<Timestamp>(interval / 100, 1);
      for (size_t i = 0; i < n && regular; ++i) {
        Timestamp expected =
            batch.timestamps[0] + static_cast<Timestamp>(i) * interval;
        if (std::llabs(batch.timestamps[i] - expected) > tolerance) {
          regular = false;
        }
      }
    }
    std::string blob;
    std::string zone_map;
    if (config_->options().enable_zone_maps) {
      ZoneMap map = ZoneMap::FromColumns(batch.columns);
      map.Widen(type->compression.max_error);
      zone_map = map.Encode();
    }
    if (regular) {
      Timestamp begin = batch.timestamps[0];
      for (size_t i = 0; i < n; ++i) {
        batch.timestamps[i] = begin + static_cast<Timestamp>(i) * interval;
      }
      ODH_RETURN_IF_ERROR(codec.EncodeRts(batch, interval, &blob));
      ODH_RETURN_IF_ERROR(store_->PutRts(schema_type, id, begin,
                                         batch.timestamps.back(), interval,
                                         static_cast<int64_t>(n), blob,
                                         zone_map));
      ++report.rts_blobs_written;
    } else {
      ODH_RETURN_IF_ERROR(codec.EncodeIrts(batch, &blob));
      ODH_RETURN_IF_ERROR(store_->PutIrts(schema_type, id,
                                          batch.timestamps.front(),
                                          batch.timestamps.back(),
                                          static_cast<int64_t>(n), blob,
                                          zone_map));
      ++report.irts_blobs_written;
    }
  }

  for (const auto& [seg, rid] : consumed) {
    ODH_RETURN_IF_ERROR(store_->DeleteMg(schema_type, seg, rid));
  }
  ODH_RETURN_IF_ERROR(store_->Sync(schema_type));
  return report;
}

}  // namespace odh::core
