#include "benchfw/csv.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

namespace odh::benchfw {
namespace {

/// Splits one CSV line (no quoting: the format never emits commas inside
/// fields) into string_views over `line`.
std::vector<std::string_view> SplitLine(const std::string& line) {
  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.emplace_back(line.data() + start, line.size() - start);
      break;
    }
    fields.emplace_back(line.data() + start, comma - start);
    start = comma + 1;
  }
  return fields;
}

bool ReadLine(FILE* file, std::string* line) {
  line->clear();
  char buf[4096];
  while (fgets(buf, sizeof(buf), file) != nullptr) {
    size_t len = std::strlen(buf);
    line->append(buf, len);
    if (!line->empty() && line->back() == '\n') {
      line->pop_back();
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    // Continuation of a long line; keep reading.
  }
  return !line->empty();
}

}  // namespace

Status WriteCsv(RecordStream* stream, const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  const StreamInfo& info = stream->info();
  std::fputs("id,ts", file);
  for (const std::string& tag : info.tag_names) {
    std::fprintf(file, ",%s", tag.c_str());
  }
  std::fputc('\n', file);

  core::OperationalRecord record;
  while (stream->Next(&record)) {
    std::fprintf(file, "%lld,%lld", static_cast<long long>(record.id),
                 static_cast<long long>(record.ts));
    for (double v : record.tags) {
      if (std::isnan(v)) {
        std::fputc(',', file);
      } else {
        std::fprintf(file, ",%.17g", v);
      }
    }
    std::fputc('\n', file);
  }
  if (std::fclose(file) != 0) {
    return Status::IoError("close failed: " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<CsvRecordStream>> CsvRecordStream::Open(
    const std::string& path, StreamInfo info_template) {
  std::unique_ptr<CsvRecordStream> stream(
      new CsvRecordStream(path, std::move(info_template)));
  ODH_RETURN_IF_ERROR(stream->OpenFile());

  // Pre-scan: tag names from the header, record count, source set and time
  // extent for the offered-rate metadata.
  std::string line;
  if (!ReadLine(stream->file_, &line)) {
    return Status::InvalidArgument("empty CSV: " + path);
  }
  auto header = SplitLine(line);
  if (header.size() < 3 || header[0] != "id" || header[1] != "ts") {
    return Status::InvalidArgument("bad CSV header: " + path);
  }
  stream->info_.tag_names.clear();
  for (size_t i = 2; i < header.size(); ++i) {
    stream->info_.tag_names.emplace_back(header[i]);
  }
  int64_t records = 0;
  Timestamp min_ts = kMaxTimestamp, max_ts = kMinTimestamp;
  std::set<SourceId> sources;
  SourceId min_id = std::numeric_limits<SourceId>::max();
  while (ReadLine(stream->file_, &line)) {
    auto fields = SplitLine(line);
    if (fields.size() != header.size()) {
      return Status::InvalidArgument("ragged CSV row in " + path);
    }
    SourceId id = std::strtoll(std::string(fields[0]).c_str(), nullptr, 10);
    Timestamp ts = std::strtoll(std::string(fields[1]).c_str(), nullptr, 10);
    sources.insert(id);
    min_id = std::min(min_id, id);
    min_ts = std::min(min_ts, ts);
    max_ts = std::max(max_ts, ts);
    ++records;
  }
  stream->info_.expected_records = records;
  stream->info_.num_sources = static_cast<int64_t>(sources.size());
  stream->info_.first_source_id = sources.empty() ? 1 : min_id;
  double span_seconds =
      records > 1 ? static_cast<double>(max_ts - min_ts) / kMicrosPerSecond
                  : 1.0;
  if (span_seconds <= 0) span_seconds = 1.0;
  stream->info_.offered_points_per_second = records / span_seconds;
  stream->Reset();
  return stream;
}

CsvRecordStream::~CsvRecordStream() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvRecordStream::OpenFile() {
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "r");
  if (file_ == nullptr) return Status::IoError("cannot open: " + path_);
  return Status::OK();
}

void CsvRecordStream::Reset() {
  failed_ = !OpenFile().ok();
  if (!failed_) {
    // Skip the header.
    std::string line;
    if (!ReadLine(file_, &line)) failed_ = true;
  }
}

bool CsvRecordStream::Next(core::OperationalRecord* record) {
  if (failed_ || file_ == nullptr) return false;
  if (!ReadLine(file_, &line_buffer_)) return false;
  auto fields = SplitLine(line_buffer_);
  if (fields.size() != info_.tag_names.size() + 2) return false;
  record->id = std::strtoll(std::string(fields[0]).c_str(), nullptr, 10);
  record->ts = std::strtoll(std::string(fields[1]).c_str(), nullptr, 10);
  record->tags.resize(info_.tag_names.size());
  for (size_t t = 0; t < info_.tag_names.size(); ++t) {
    if (fields[2 + t].empty()) {
      record->tags[t] = std::numeric_limits<double>::quiet_NaN();
    } else {
      record->tags[t] =
          std::strtod(std::string(fields[2 + t]).c_str(), nullptr);
    }
  }
  return true;
}

}  // namespace odh::benchfw
