#include "benchfw/td_generator.h"

#include <cmath>

namespace odh::benchfw {
namespace {

const char* const kLastNames[] = {"Smith", "Chen",  "Garcia", "Mueller",
                                  "Ivanov", "Sato", "Okafor", "Silva"};
const char* const kFirstNames[] = {"Alex", "Bea", "Chris", "Dana",
                                   "Eli",  "Fay", "Gus",   "Hana"};

/// Stateless pseudo-random double in [0,1) from a hash of (a, b).
double HashUnit(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

TdGenerator::TdGenerator(TdConfig config)
    : config_(config), rng_(config.seed) {
  const double global_hz =
      static_cast<double>(config_.num_accounts) * config_.per_account_hz;
  global_interval_us_ = static_cast<double>(kMicrosPerSecond) / global_hz;
  total_records_ = static_cast<int64_t>(global_hz * config_.duration_seconds);

  info_.name = "TD";
  info_.tag_names = {"t_trade_price", "t_chrg", "t_comm", "t_tax"};
  info_.num_sources = config_.num_accounts;
  info_.first_source_id = config_.first_source_id;
  info_.sample_interval = static_cast<Timestamp>(
      kMicrosPerSecond / config_.per_account_hz);
  info_.regular = false;  // Jittered arrivals: irregular time series.
  // Every trade record carries 4 non-NULL tag values; the paper's
  // "data points per second" counts records (one measurement event), so we
  // report record rate here and let benches scale as needed.
  info_.offered_points_per_second = global_hz;
  info_.expected_records = total_records_;
}

void TdGenerator::Reset() {
  next_record_ = 0;
  rng_ = Random(config_.seed);
}

double TdGenerator::PriceOf(int64_t account, int64_t trade_index) const {
  // A deterministic mean-reverting walk around a per-account base price:
  // stateless so millions of accounts need no per-account state.
  double base = 10.0 + 90.0 * HashUnit(config_.seed, account);
  double wave =
      0.05 * base *
      std::sin(static_cast<double>(trade_index) * 0.05 +
               6.28 * HashUnit(account, 17));
  double noise = 0.02 * base * (HashUnit(account, trade_index) - 0.5);
  return base + wave + noise;
}

bool TdGenerator::Next(core::OperationalRecord* record) {
  if (next_record_ >= total_records_) return false;
  const int64_t k = next_record_++;
  // Account k % N trades at global step k: per-account interval is exactly
  // N * global_interval with a +-20% of global-interval jitter, which keeps
  // per-account timestamps monotonic but irregular.
  const int64_t account_index = k % config_.num_accounts;
  double jitter = (HashUnit(config_.seed ^ 0xABCD, k) - 0.5) * 0.4 *
                  global_interval_us_;
  double t = static_cast<double>(k) * global_interval_us_ + jitter;
  if (t < 0) t = 0;
  record->id = info_.first_source_id + account_index;
  record->ts = static_cast<Timestamp>(t);
  const int64_t trade_index = k / config_.num_accounts;
  double price = PriceOf(record->id, trade_index);
  record->tags.resize(kNumTags);
  record->tags[0] = price;
  record->tags[1] = 0.01 * price;                          // t_chrg
  record->tags[2] = 0.005 * price;                         // t_comm
  record->tags[3] = 0.002 * price * (1 + account_index % 3);  // t_tax
  return true;
}

std::vector<TdCustomer> TdGenerator::Customers() const {
  // 5 accounts per customer (paper: "an average of five accounts per
  // customer").
  int64_t num_customers = (config_.num_accounts + 4) / 5;
  std::vector<TdCustomer> customers;
  customers.reserve(num_customers);
  for (int64_t c = 0; c < num_customers; ++c) {
    TdCustomer customer;
    customer.id = c + 1;
    customer.l_name = kLastNames[c % std::size(kLastNames)];
    customer.f_name = kFirstNames[(c / 8) % std::size(kFirstNames)];
    customer.tier = 1 + c % 3;
    // DOB spread over 1940-2000.
    customer.dob = static_cast<Timestamp>(
        (-30.0 + 60.0 * HashUnit(config_.seed, c)) * 365.25 * 86400.0 *
        kMicrosPerSecond);
    customers.push_back(std::move(customer));
  }
  return customers;
}

std::vector<TdAccount> TdGenerator::Accounts() const {
  std::vector<TdAccount> accounts;
  accounts.reserve(config_.num_accounts);
  for (int64_t a = 0; a < config_.num_accounts; ++a) {
    TdAccount account;
    account.id = info_.first_source_id + a;
    account.customer_id = a / 5 + 1;
    account.name = "ACCT" + std::to_string(account.id);
    account.balance = 1000.0 + 100000.0 * HashUnit(config_.seed ^ 1, a);
    accounts.push_back(std::move(account));
  }
  return accounts;
}

}  // namespace odh::benchfw
