#include "benchfw/runner.h"

#include <atomic>
#include <mutex>
#include <thread>

namespace odh::benchfw {

Result<IngestMetrics> RunIngest(RecordStream* stream, IngestTarget* target,
                                const IngestRunOptions& options) {
  IngestMetrics metrics;
  metrics.offered_points_per_second =
      stream->info().offered_points_per_second;
  metrics.simulated_cores = options.simulated_cores;
  metrics.window_data_seconds = options.window_seconds;

  const Timestamp window_us =
      static_cast<Timestamp>(options.window_seconds * kMicrosPerSecond);
  Timestamp window_end = window_us;

  Stopwatch wall;
  CpuMeter cpu;
  double window_cpu_start = 0;

  core::OperationalRecord record;
  while (stream->Next(&record)) {
    ODH_RETURN_IF_ERROR(target->Write(record));
    ++metrics.points;
    if (record.ts >= window_end) {
      double cpu_now = cpu.ElapsedCpuSeconds();
      metrics.window_cpu_seconds.push_back(cpu_now - window_cpu_start);
      window_cpu_start = cpu_now;
      while (record.ts >= window_end) window_end += window_us;
    }
    if (options.wall_time_limit_seconds > 0 && (metrics.points & 1023) == 0 &&
        wall.ElapsedSeconds() > options.wall_time_limit_seconds) {
      break;  // The paper force-terminated runs that could not keep up.
    }
  }
  ODH_RETURN_IF_ERROR(target->Finish());
  metrics.wall_seconds = wall.ElapsedSeconds();
  metrics.cpu_seconds = cpu.ElapsedCpuSeconds();
  // Attribute the trailing partial window (and the final flush) to one
  // last window so MaxCpuLoad covers the whole run.
  if (metrics.cpu_seconds > window_cpu_start) {
    metrics.window_cpu_seconds.push_back(metrics.cpu_seconds -
                                         window_cpu_start);
  }
  metrics.bytes_written = target->BytesWritten();
  metrics.storage_bytes = target->StorageBytes();
  metrics.durability = target->Durability();
  return metrics;
}

Result<IngestMetrics> RunIngestThreads(
    const std::vector<RecordStream*>& streams, IngestTarget* target,
    const IngestRunOptions& options) {
  IngestMetrics metrics;
  metrics.simulated_cores = options.simulated_cores;
  metrics.window_data_seconds = options.window_seconds;
  for (RecordStream* stream : streams) {
    metrics.offered_points_per_second +=
        stream->info().offered_points_per_second;
  }
  if (streams.empty()) return metrics;

  Stopwatch wall;
  CpuMeter cpu;  // Process-wide: sums CPU time across all worker threads.
  std::atomic<int64_t> points{0};
  std::mutex error_mu;
  Status first_error;

  auto drive = [&](RecordStream* stream) {
    core::OperationalRecord record;
    int64_t local_points = 0;
    while (stream->Next(&record)) {
      Status written = target->Write(record);
      if (!written.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = written;
        break;
      }
      ++local_points;
      if (options.wall_time_limit_seconds > 0 &&
          (local_points & 1023) == 0 &&
          wall.ElapsedSeconds() > options.wall_time_limit_seconds) {
        break;
      }
    }
    points.fetch_add(local_points, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  threads.reserve(streams.size() - 1);
  for (size_t i = 1; i < streams.size(); ++i) {
    threads.emplace_back(drive, streams[i]);
  }
  drive(streams[0]);
  for (std::thread& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lock(error_mu);
    ODH_RETURN_IF_ERROR(first_error);
  }

  ODH_RETURN_IF_ERROR(target->Finish());
  metrics.points = points.load(std::memory_order_relaxed);
  metrics.wall_seconds = wall.ElapsedSeconds();
  metrics.cpu_seconds = cpu.ElapsedCpuSeconds();
  metrics.bytes_written = target->BytesWritten();
  metrics.storage_bytes = target->StorageBytes();
  metrics.durability = target->Durability();
  return metrics;
}

Result<QueryMetrics> RunQueryWorkload(
    sql::SqlEngine* engine, const std::vector<std::string>& queries) {
  return RunQueryWorkload(engine, static_cast<int>(queries.size()),
                          [&](int i) { return queries[i]; });
}

Result<QueryMetrics> RunQueryWorkload(
    sql::SqlEngine* engine, int count,
    const std::function<std::string(int)>& make_query) {
  QueryMetrics metrics;
  metrics.latencies_ms.reserve(static_cast<size_t>(count > 0 ? count : 0));
  Stopwatch wall;
  CpuMeter cpu;
  for (int i = 0; i < count; ++i) {
    Stopwatch query_timer;
    ODH_ASSIGN_OR_RETURN(sql::QueryResult result,
                         engine->Execute(make_query(i)));
    metrics.latencies_ms.push_back(query_timer.ElapsedSeconds() * 1000.0);
    ++metrics.queries;
    metrics.data_points += result.DataPointCount();
  }
  metrics.wall_seconds = wall.ElapsedSeconds();
  metrics.cpu_seconds = cpu.ElapsedCpuSeconds();
  return metrics;
}

}  // namespace odh::benchfw
