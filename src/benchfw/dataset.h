#ifndef ODH_BENCHFW_DATASET_H_
#define ODH_BENCHFW_DATASET_H_

#include "benchfw/ld_generator.h"
#include "benchfw/td_generator.h"
#include "relational/database.h"

namespace odh::benchfw {

/// Loads the TD relational side (CUSTOMER, ACCOUNT with the paper's
/// simplified TPC-E schema) into `db`, with indexes on the join keys.
Status LoadTdRelational(const TdGenerator& generator,
                        relational::Database* db);

/// Loads the LD relational side (LINKEDSENSOR) into `db`.
Status LoadLdRelational(const LdGenerator& generator,
                        relational::Database* db);

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_DATASET_H_
