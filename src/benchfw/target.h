#ifndef ODH_BENCHFW_TARGET_H_
#define ODH_BENCHFW_TARGET_H_

#include <memory>
#include <string>

#include "benchfw/metrics.h"
#include "benchfw/stream.h"
#include "core/odh.h"

namespace odh::benchfw {

/// A system under test for the WS1 write workloads: ODH through its writer
/// API, or a relational engine through row inserts (the JDBC substitute).
class IngestTarget {
 public:
  virtual ~IngestTarget() = default;
  virtual const std::string& name() const = 0;
  /// Creates tables / schema types and registers the stream's sources.
  virtual Status Setup(const StreamInfo& info) = 0;
  virtual Status Write(const core::OperationalRecord& record) = 0;
  /// Flushes anything buffered (end of workload).
  virtual Status Finish() = 0;

  virtual uint64_t StorageBytes() const = 0;
  virtual uint64_t BytesWritten() const = 0;

  /// Retry / checksum / WAL counters accumulated over the run. The default
  /// reports nothing; targets backed by the instrumented storage stack
  /// override it.
  virtual DurabilityCounters Durability() const { return {}; }
};

/// ODH target: OdhSystem ingestion through the writer API.
class OdhTarget : public IngestTarget {
 public:
  explicit OdhTarget(core::OdhOptions options = DefaultOptions());

  static core::OdhOptions DefaultOptions() {
    core::OdhOptions options;
    options.batch_size = 256;
    options.sql_metadata_router = true;
    return options;
  }

  const std::string& name() const override { return name_; }
  Status Setup(const StreamInfo& info) override;
  Status Write(const core::OperationalRecord& record) override {
    return odh_->Ingest(record);
  }
  Status Finish() override {
    ODH_RETURN_IF_ERROR(odh_->FlushAll());
    // Write back dirty buffer-pool pages so I/O accounting covers the run.
    return odh_->database()->pool()->FlushAll();
  }
  uint64_t StorageBytes() const override { return odh_->storage_bytes(); }
  uint64_t BytesWritten() const override {
    return odh_->io_stats().bytes_written;
  }
  DurabilityCounters Durability() const override;

  core::OdhSystem* odh() { return odh_.get(); }
  int schema_type() const { return schema_type_; }

 private:
  std::string name_ = "ODH";
  std::unique_ptr<core::OdhSystem> odh_;
  int schema_type_ = -1;
};

/// Relational target: one heap table (ts, id, tags...) with B-tree indexes
/// on ts and id (the paper's TD/LD setup), inserted row-at-a-time with a
/// commit every `batch_size` rows (executeBatch) or every row (autocommit).
class RelationalTarget : public IngestTarget {
 public:
  RelationalTarget(relational::EngineProfile profile, int batch_size = 1000);

  const std::string& name() const override { return name_; }
  Status Setup(const StreamInfo& info) override;
  Status Write(const core::OperationalRecord& record) override;
  Status Finish() override;
  uint64_t StorageBytes() const override { return db_->TotalBytesStored(); }
  uint64_t BytesWritten() const override {
    return db_->disk()->stats().bytes_written;
  }
  DurabilityCounters Durability() const override;

  relational::Database* database() { return db_.get(); }
  relational::Table* table() { return table_; }

 private:
  std::string name_;
  std::unique_ptr<relational::Database> db_;
  relational::Table* table_ = nullptr;
  int batch_size_;
  int pending_ = 0;
  Row row_buffer_;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_TARGET_H_
