#ifndef ODH_BENCHFW_TD_GENERATOR_H_
#define ODH_BENCHFW_TD_GENERATOR_H_

#include <string>
#include <vector>

#include "benchfw/stream.h"
#include "common/random.h"

namespace odh::benchfw {

/// Configuration of one IoT-D_TPC-E dataset TD(i, j) (paper Table 4):
/// i*1000 accounts trading at j*20 Hz each. This reproduction scales the
/// account unit down (see DESIGN.md); the ratios between settings are
/// preserved.
struct TdConfig {
  int64_t num_accounts = 1000;
  double per_account_hz = 20;
  double duration_seconds = 60;
  uint64_t seed = 42;
  /// First account/source id. Multi-threaded ingest benches carve one
  /// logical dataset into disjoint per-thread partitions by offsetting
  /// this (each partition is its own generator with its own id range).
  SourceId first_source_id = 1;

  /// TD(i, j) with a configurable account unit.
  static TdConfig Of(int i, int j, int64_t account_unit = 1000,
                     double duration_seconds = 60) {
    TdConfig config;
    config.num_accounts = i * account_unit;
    config.per_account_hz = j * 20.0;
    config.duration_seconds = duration_seconds;
    config.seed = static_cast<uint64_t>(1000 * i + j);
    return config;
  }
};

/// Relational side of the TD seed (simplified TPC-E: 5 accounts per
/// customer, paper §5.1).
struct TdCustomer {
  int64_t id;
  std::string l_name;
  std::string f_name;
  int64_t tier;
  Timestamp dob;
};

struct TdAccount {
  int64_t id;
  int64_t customer_id;
  std::string name;
  double balance;
};

/// EGen-substitute generator for the Trade stream. Tags (all DOUBLE):
/// t_trade_price, t_chrg, t_comm, t_tax. Trades per account arrive at
/// per_account_hz with +-20% jitter (irregular time series, as the paper
/// notes for TD); prices follow a per-account random walk.
class TdGenerator : public RecordStream {
 public:
  explicit TdGenerator(TdConfig config);

  const StreamInfo& info() const override { return info_; }
  bool Next(core::OperationalRecord* record) override;
  void Reset() override;

  /// Deterministic relational data derived from the same seed.
  std::vector<TdCustomer> Customers() const;
  std::vector<TdAccount> Accounts() const;

  static constexpr int kNumTags = 4;

 private:
  double PriceOf(int64_t account, int64_t trade_index) const;

  TdConfig config_;
  StreamInfo info_;
  Random rng_;
  int64_t next_record_ = 0;
  int64_t total_records_ = 0;
  double global_interval_us_ = 0;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_TD_GENERATOR_H_
