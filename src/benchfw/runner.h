#ifndef ODH_BENCHFW_RUNNER_H_
#define ODH_BENCHFW_RUNNER_H_

#include <functional>
#include <string>
#include <vector>

#include "benchfw/metrics.h"
#include "benchfw/target.h"
#include "sql/engine.h"

namespace odh::benchfw {

struct IngestRunOptions {
  /// Core count of the machine the paper setting simulates (normalizes the
  /// CPU-load column).
  int simulated_cores = 8;
  /// Window (in simulated data time) for max-CPU-load tracking.
  double window_seconds = 1.0;
  /// Abort the run early after this many wall seconds (the paper killed
  /// relational runs after 4 hours); <= 0 disables.
  double wall_time_limit_seconds = 0;
};

/// WS1: drives a stream into a target as fast as possible and reports the
/// paper's write metrics. The stream is consumed from its current position.
Result<IngestMetrics> RunIngest(RecordStream* stream, IngestTarget* target,
                                const IngestRunOptions& options = {});

/// Multi-threaded WS1: one thread per stream, all writing into the same
/// target concurrently (the target's Write must be thread-safe — the ODH
/// writer is, with its sharded ingestion path). Streams must cover
/// disjoint source-id ranges, since per-source timestamp order is only
/// guaranteed within one stream. Reports aggregate points over the whole
/// run; per-window CPU tracking is disabled (windows interleave across
/// threads), so MaxCpuLoad falls back to the average.
Result<IngestMetrics> RunIngestThreads(
    const std::vector<RecordStream*>& streams, IngestTarget* target,
    const IngestRunOptions& options = {});

/// WS2: runs a list of SQL queries and reports throughput in returned data
/// points per second (the paper's Table 8 metric).
Result<QueryMetrics> RunQueryWorkload(sql::SqlEngine* engine,
                                      const std::vector<std::string>& queries);

/// Runs `count` queries produced by `make_query(i)`.
Result<QueryMetrics> RunQueryWorkload(
    sql::SqlEngine* engine, int count,
    const std::function<std::string(int)>& make_query);

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_RUNNER_H_
