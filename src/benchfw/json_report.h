#ifndef ODH_BENCHFW_JSON_REPORT_H_
#define ODH_BENCHFW_JSON_REPORT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace odh::benchfw {

/// Minimal JSON emitter for machine-readable bench reports (BENCH_*.json).
/// Handles the comma bookkeeping; the caller is responsible for balanced
/// Begin/End calls. Keys and string values must not need escaping beyond
/// quotes/backslashes (bench labels are plain ASCII identifiers).
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(const std::string& name) {
    Comma();
    out_ += '"';
    Escape(name);
    out_ += "\": ";
    just_keyed_ = true;
  }

  void Value(const std::string& v) {
    Comma();
    out_ += '"';
    Escape(v);
    out_ += '"';
  }
  void Value(const char* v) { Value(std::string(v)); }
  void Value(double v) {
    Comma();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out_ += buf;
  }
  void Value(int64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Value(uint64_t v) {
    Comma();
    out_ += std::to_string(v);
  }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
  }

  template <typename T>
  void KeyValue(const std::string& name, const T& v) {
    Key(name);
    Value(v);
  }

  const std::string& str() const { return out_; }

  /// Writes the document (plus a trailing newline) to `path`; returns
  /// false when the file cannot be created.
  bool WriteFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fwrite(out_.data(), 1, out_.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    return true;
  }

 private:
  void Comma() {
    if (just_keyed_) {
      just_keyed_ = false;
      return;
    }
    if (!out_.empty() && out_.back() != '{' && out_.back() != '[') {
      out_ += ", ";
    }
  }
  void Open(char c) {
    Comma();
    out_ += c;
  }
  void Close(char c) {
    out_ += c;
    just_keyed_ = false;
  }
  void Escape(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
  }

  std::string out_;
  bool just_keyed_ = false;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_JSON_REPORT_H_
