#ifndef ODH_BENCHFW_METRICS_H_
#define ODH_BENCHFW_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/stopwatch.h"

namespace odh::benchfw {

/// Durability-path counters collected from a target after an ingest run:
/// how often the storage layer retried transient I/O, how many pages were
/// checksummed, and how much redo log the run produced. All zero for
/// targets (or runs) with the durability machinery idle.
struct DurabilityCounters {
  uint64_t io_retries = 0;         // Page I/Os re-issued after a transient fault.
  uint64_t writer_sync_retries = 0;  // Store syncs re-issued by OdhWriter.
  uint64_t checksum_stamps = 0;    // Pages CRC-stamped on write-back.
  uint64_t checksum_verifies = 0;  // Pages CRC-verified on fetch from disk.
  uint64_t checksum_failures = 0;  // Verifications that found corruption.
  uint64_t checksum_bytes = 0;     // Bytes run through CRC32C (stamp+verify).
  uint64_t wal_records = 0;        // Redo records made durable.
  uint64_t wal_bytes = 0;          // Synced WAL bytes (framing included).
};

/// What one ingest workload reports (the columns of the paper's Figures 5/6
/// and Tables 2/3).
struct IngestMetrics {
  int64_t points = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  /// Offered load of the simulated sources (the red dashed line).
  double offered_points_per_second = 0;
  /// Simulated core count used to normalize CPU load (paper reports CPU%
  /// of 8/16/32-core machines).
  int simulated_cores = 1;
  uint64_t bytes_written = 0;
  uint64_t storage_bytes = 0;
  /// Per-window CPU seconds (for max-load reporting).
  std::vector<double> window_cpu_seconds;
  double window_data_seconds = 1.0;
  /// Retry / checksum / WAL counters (see DurabilityCounters).
  DurabilityCounters durability;

  /// Achieved throughput in data points per second of processing time.
  double Throughput() const {
    return wall_seconds > 0 ? static_cast<double>(points) / wall_seconds : 0;
  }

  /// The paper's CPU load metric: CPU-seconds consumed per second of
  /// offered data, spread over the simulated cores. (A system keeping up
  /// in real time on N cores shows load = cpu_per_data_second / N.)
  double AvgCpuLoad() const {
    if (points <= 0 || offered_points_per_second <= 0) return 0;
    double data_seconds =
        static_cast<double>(points) / offered_points_per_second;
    if (data_seconds <= 0) return 0;
    return cpu_seconds / data_seconds / simulated_cores;
  }

  double MaxCpuLoad() const {
    double max_window = 0;
    for (double w : window_cpu_seconds) {
      if (w > max_window) max_window = w;
    }
    if (max_window == 0) return AvgCpuLoad();
    return max_window / window_data_seconds / simulated_cores;
  }

  /// True when the system can keep up with the offered load in real time.
  /// Ingestion in this reproduction is single-threaded, so the comparison
  /// is against one core's throughput (the paper's red dashed line).
  bool RealTimeFeasible() const {
    return Throughput() >= offered_points_per_second;
  }

  /// Estimated CPU-seconds spent in CRC32C given a calibrated checksum
  /// rate (bytes/second; see bench::CalibrateCrc32cBytesPerSecond). The
  /// paper's ingest numbers predate the durability layer, so benches report
  /// this as the "durability tax" on the CPU column.
  double ChecksumOverheadSeconds(double crc_bytes_per_second) const {
    if (crc_bytes_per_second <= 0) return 0;
    return static_cast<double>(durability.checksum_bytes) /
           crc_bytes_per_second;
  }

  /// The same overhead as a fraction of the run's total CPU time.
  double ChecksumOverheadFraction(double crc_bytes_per_second) const {
    if (cpu_seconds <= 0) return 0;
    return ChecksumOverheadSeconds(crc_bytes_per_second) / cpu_seconds;
  }

  double IoBytesPerSecond() const {
    if (points <= 0 || offered_points_per_second <= 0) return 0;
    double data_seconds =
        static_cast<double>(points) / offered_points_per_second;
    return data_seconds > 0 ? static_cast<double>(bytes_written) /
                                  data_seconds
                            : 0;
  }
};

/// What one query workload reports (paper Table 8).
struct QueryMetrics {
  int64_t queries = 0;
  int64_t data_points = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;
  /// Per-query wall latency, in arrival order (the runner fills this; it
  /// is what the percentile accessors sort a copy of).
  std::vector<double> latencies_ms;

  double DataPointsPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(data_points) / wall_seconds
                            : 0;
  }
  double QueriesPerSecond() const {
    return wall_seconds > 0 ? static_cast<double>(queries) / wall_seconds
                            : 0;
  }
  double AvgLatencyMs() const {
    return queries > 0 ? wall_seconds * 1000.0 / static_cast<double>(queries)
                       : 0;
  }

  /// Latency percentile (nearest-rank on a sorted copy); p in [0, 100].
  double LatencyPercentileMs(double p) const {
    if (latencies_ms.empty()) return 0;
    std::vector<double> sorted = latencies_ms;
    std::sort(sorted.begin(), sorted.end());
    double rank = p / 100.0 * static_cast<double>(sorted.size());
    size_t index = rank <= 1 ? 0 : static_cast<size_t>(rank + 0.5) - 1;
    if (index >= sorted.size()) index = sorted.size() - 1;
    return sorted[index];
  }
  double P50LatencyMs() const { return LatencyPercentileMs(50); }
  double P95LatencyMs() const { return LatencyPercentileMs(95); }
  double P99LatencyMs() const { return LatencyPercentileMs(99); }
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_METRICS_H_
