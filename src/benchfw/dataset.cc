#include "benchfw/dataset.h"

namespace odh::benchfw {

Status LoadTdRelational(const TdGenerator& generator,
                        relational::Database* db) {
  ODH_ASSIGN_OR_RETURN(
      relational::Table * customer,
      db->CreateTable("customer",
                      relational::Schema({{"c_id", DataType::kInt64},
                                          {"c_l_name", DataType::kString},
                                          {"c_f_name", DataType::kString},
                                          {"c_tier", DataType::kInt64},
                                          {"c_dob", DataType::kTimestamp}})));
  ODH_RETURN_IF_ERROR(customer->AddIndex({"by_id", {0}}));
  for (const TdCustomer& c : generator.Customers()) {
    ODH_RETURN_IF_ERROR(customer
                            ->Insert({Datum::Int64(c.id),
                                      Datum::String(c.l_name),
                                      Datum::String(c.f_name),
                                      Datum::Int64(c.tier),
                                      Datum::Time(c.dob)})
                            .status());
  }
  ODH_RETURN_IF_ERROR(customer->Commit());

  ODH_ASSIGN_OR_RETURN(
      relational::Table * account,
      db->CreateTable("account",
                      relational::Schema({{"ca_id", DataType::kInt64},
                                          {"ca_c_id", DataType::kInt64},
                                          {"ca_name", DataType::kString},
                                          {"ca_bal", DataType::kDouble}})));
  ODH_RETURN_IF_ERROR(account->AddIndex({"by_id", {0}}));
  ODH_RETURN_IF_ERROR(account->AddIndex({"by_cid", {1}}));
  ODH_RETURN_IF_ERROR(account->AddIndex({"by_name", {2}}));
  for (const TdAccount& a : generator.Accounts()) {
    ODH_RETURN_IF_ERROR(account
                            ->Insert({Datum::Int64(a.id),
                                      Datum::Int64(a.customer_id),
                                      Datum::String(a.name),
                                      Datum::Double(a.balance)})
                            .status());
  }
  return account->Commit();
}

Status LoadLdRelational(const LdGenerator& generator,
                        relational::Database* db) {
  ODH_ASSIGN_OR_RETURN(
      relational::Table * sensors,
      db->CreateTable(
          "linkedsensor",
          relational::Schema({{"sensorid", DataType::kInt64},
                              {"sensorname", DataType::kString},
                              {"latitude", DataType::kDouble},
                              {"longitude", DataType::kDouble}})));
  ODH_RETURN_IF_ERROR(sensors->AddIndex({"by_id", {0}}));
  ODH_RETURN_IF_ERROR(sensors->AddIndex({"by_name", {1}}));
  for (const LdSensor& s : generator.Sensors()) {
    ODH_RETURN_IF_ERROR(sensors
                            ->Insert({Datum::Int64(s.id),
                                      Datum::String(s.name),
                                      Datum::Double(s.latitude),
                                      Datum::Double(s.longitude)})
                            .status());
  }
  return sensors->Commit();
}

}  // namespace odh::benchfw
