#ifndef ODH_BENCHFW_LD_GENERATOR_H_
#define ODH_BENCHFW_LD_GENERATOR_H_

#include <string>
#include <vector>

#include "benchfw/stream.h"
#include "common/random.h"

namespace odh::benchfw {

/// Configuration of one IoT-D_LSD dataset LD(i) (paper Table 4): i*1,000,000
/// weather sensors with a ~23-minute mean sampling interval, sped up 60x.
/// This reproduction scales the sensor unit down; the spirit (many sparse
/// low-frequency sources) is preserved.
struct LdConfig {
  int64_t num_sensors = 1000000;
  /// Mean sampling interval after the paper's 60x speed-up.
  Timestamp mean_interval = 23 * kMicrosPerSecond;
  double duration_seconds = 120;
  /// Number of observation attributes (paper: 17; Figure 7 varies 1..15).
  int num_tags = 17;
  /// When true every sensor reports every attribute (used by the Figure 7
  /// tag sweep, where record width is the variable under study).
  bool dense = false;
  /// First sensor id (lets several streams share one ODH instance).
  SourceId first_id = 1;
  uint64_t seed = 7;

  static LdConfig Of(int i, int64_t sensor_unit = 1000000,
                     double duration_seconds = 120) {
    LdConfig config;
    config.num_sensors = i * sensor_unit;
    config.seed = static_cast<uint64_t>(9000 + i);
    config.duration_seconds = duration_seconds;
    return config;
  }
};

/// Relational side: the LinkedSensor table.
struct LdSensor {
  int64_t id;
  std::string name;
  double latitude;
  double longitude;
};

/// Linked-Sensor-Dataset substitute: sparse weather observations. Each
/// sensor reports a per-sensor subset of the attributes (paper: "the
/// sensor named A07 only measures WindDirection, AirTemperature, WindSpeed
/// and WindGust. All the other attributes are always NULL"); values are
/// smooth, weather-like signals so the paper's linear compression applies.
class LdGenerator : public RecordStream {
 public:
  explicit LdGenerator(LdConfig config);

  const StreamInfo& info() const override { return info_; }
  bool Next(core::OperationalRecord* record) override;
  void Reset() override;

  std::vector<LdSensor> Sensors() const;

  /// The full 17-attribute observation schema (truncated to num_tags).
  static std::vector<std::string> TagNames(int num_tags);

  /// Which attributes sensor `id` reports.
  bool SensorMeasures(SourceId id, int tag) const;

 private:
  double ValueOf(SourceId id, int tag, Timestamp ts) const;

  LdConfig config_;
  StreamInfo info_;
  int64_t next_record_ = 0;
  int64_t total_records_ = 0;
  double global_interval_us_ = 0;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_LD_GENERATOR_H_
