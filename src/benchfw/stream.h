#ifndef ODH_BENCHFW_STREAM_H_
#define ODH_BENCHFW_STREAM_H_

#include <string>
#include <vector>

#include "core/value_blob.h"

namespace odh::benchfw {

/// Static description of an operational record stream (one IoT-X dataset).
struct StreamInfo {
  std::string name;
  std::vector<std::string> tag_names;
  int64_t num_sources = 0;
  SourceId first_source_id = 0;
  /// Expected per-source sampling interval (micros) and regularity.
  Timestamp sample_interval = 0;
  bool regular = false;
  /// Offered load: data points per second of simulated time. One record
  /// carries `tag_names.size()` potential points but the paper counts a
  /// record's non-NULL values; generators report their actual rate.
  double offered_points_per_second = 0;
  int64_t expected_records = 0;
};

/// A time-ordered stream of operational records (per-source timestamps are
/// non-decreasing). Generators are deterministic given their seed.
class RecordStream {
 public:
  virtual ~RecordStream() = default;
  virtual const StreamInfo& info() const = 0;
  /// Produces the next record; false at end of stream.
  virtual bool Next(core::OperationalRecord* record) = 0;
  /// Restarts the stream from the beginning.
  virtual void Reset() = 0;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_STREAM_H_
