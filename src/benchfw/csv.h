#ifndef ODH_BENCHFW_CSV_H_
#define ODH_BENCHFW_CSV_H_

#include <cstdio>
#include <memory>
#include <string>

#include "benchfw/stream.h"
#include "common/result.h"

namespace odh::benchfw {

/// CSV interchange for operational record streams. The paper's WS1 data
/// simulator "read[s] data from standard CSV files and simulate[s]
/// real-time data insertion"; its LD side used "a data adapter ... to
/// convert the RDF data into comma-separated value (CSV) files". These
/// helpers give the reproduction the same file-based pipeline.
///
/// Format: header `id,ts,<tag names...>`, then one record per line with
/// microsecond timestamps and empty fields for missing (NaN) tags.

/// Exports a stream to `path` (consumes the stream from its position).
Status WriteCsv(RecordStream* stream, const std::string& path);

/// Streams operational records from a CSV file written by WriteCsv (or by
/// any external tool using the same header convention). The StreamInfo is
/// reconstructed from `info_template` with tag names taken from the file
/// header; offered rate and record count are computed on open by a quick
/// pre-scan.
class CsvRecordStream : public RecordStream {
 public:
  /// Opens and validates the file.
  static Result<std::unique_ptr<CsvRecordStream>> Open(
      const std::string& path, StreamInfo info_template);

  ~CsvRecordStream() override;

  const StreamInfo& info() const override { return info_; }
  bool Next(core::OperationalRecord* record) override;
  void Reset() override;

 private:
  CsvRecordStream(std::string path, StreamInfo info)
      : path_(std::move(path)), info_(std::move(info)) {}

  Status OpenFile();

  std::string path_;
  StreamInfo info_;
  FILE* file_ = nullptr;
  std::string line_buffer_;
  bool failed_ = false;
};

}  // namespace odh::benchfw

#endif  // ODH_BENCHFW_CSV_H_
