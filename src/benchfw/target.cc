#include "benchfw/target.h"

#include <cmath>

namespace odh::benchfw {

OdhTarget::OdhTarget(core::OdhOptions options) {
  odh_ = std::make_unique<core::OdhSystem>(options);
}

Status OdhTarget::Setup(const StreamInfo& info) {
  ODH_ASSIGN_OR_RETURN(schema_type_,
                       odh_->DefineSchemaType(info.name, info.tag_names));
  for (int64_t s = 0; s < info.num_sources; ++s) {
    ODH_RETURN_IF_ERROR(odh_->RegisterSource(info.first_source_id + s,
                                             schema_type_,
                                             info.sample_interval,
                                             info.regular));
  }
  return odh_->FlushAll();  // Sync registration metadata.
}

RelationalTarget::RelationalTarget(relational::EngineProfile profile,
                                   int batch_size)
    : name_(profile.name), batch_size_(batch_size) {
  db_ = std::make_unique<relational::Database>(std::move(profile));
}

Status RelationalTarget::Setup(const StreamInfo& info) {
  std::vector<relational::Column> columns;
  columns.push_back({"ts", DataType::kTimestamp});
  columns.push_back({"id", DataType::kInt64});
  for (const std::string& tag : info.tag_names) {
    columns.push_back({tag, DataType::kDouble});
  }
  ODH_ASSIGN_OR_RETURN(
      table_, db_->CreateTable(info.name, relational::Schema(columns)));
  // The paper creates B-tree indexes on the timestamp and source id.
  ODH_RETURN_IF_ERROR(table_->AddIndex({"by_ts", {0}}));
  ODH_RETURN_IF_ERROR(table_->AddIndex({"by_id", {1}}));
  row_buffer_.resize(2 + info.tag_names.size());
  return Status::OK();
}

Status RelationalTarget::Write(const core::OperationalRecord& record) {
  row_buffer_[0] = Datum::Time(record.ts);
  row_buffer_[1] = Datum::Int64(record.id);
  for (size_t t = 0; t < record.tags.size(); ++t) {
    row_buffer_[2 + t] = std::isnan(record.tags[t])
                             ? Datum::Null()
                             : Datum::Double(record.tags[t]);
  }
  ODH_RETURN_IF_ERROR(table_->Insert(row_buffer_).status());
  if (++pending_ >= batch_size_) {
    ODH_RETURN_IF_ERROR(table_->Commit());
    pending_ = 0;
  }
  return Status::OK();
}

Status RelationalTarget::Finish() {
  pending_ = 0;
  ODH_RETURN_IF_ERROR(table_->Commit());
  return db_->pool()->FlushAll();
}

namespace {

/// Counters every instrumented target shares: the buffer pool's retry and
/// CRC32C accounting. Checksums cover the usable page area (the trailer
/// itself is excluded).
DurabilityCounters PoolCounters(storage::BufferPool* pool) {
  DurabilityCounters d;
  d.io_retries = pool->io_retry_count();
  d.checksum_stamps = pool->checksum_stamp_count();
  d.checksum_verifies = pool->checksum_verify_count();
  d.checksum_failures = pool->checksum_failure_count();
  d.checksum_bytes = (d.checksum_stamps + d.checksum_verifies) *
                     static_cast<uint64_t>(pool->usable_page_size());
  return d;
}

}  // namespace

DurabilityCounters OdhTarget::Durability() const {
  DurabilityCounters d = PoolCounters(odh_->database()->pool());
  d.writer_sync_retries =
      static_cast<uint64_t>(odh_->writer()->stats().sync_retries);
  if (const core::Wal* wal = odh_->store()->wal()) {
    d.io_retries += wal->io_retries();
    d.wal_records = wal->records_synced();
    d.wal_bytes = wal->synced_bytes();
    // The WAL checksums every frame payload it writes and re-verifies
    // nothing during ingest, so its CRC bytes are the synced payload bytes.
    d.checksum_bytes += wal->synced_bytes();
  }
  return d;
}

DurabilityCounters RelationalTarget::Durability() const {
  return PoolCounters(db_->pool());
}

}  // namespace odh::benchfw
