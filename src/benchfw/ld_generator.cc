#include "benchfw/ld_generator.h"

#include <cmath>
#include <limits>

namespace odh::benchfw {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

const char* const kAttributeNames[17] = {
    "winddirection",      "airtemperature",
    "windspeed",          "windgust",
    "precipitationacc",   "precipitationsmoothed",
    "relativehumidity",   "dewpoint",
    "peakwindspeed",      "peakwinddirection",
    "visibility",         "pressure",
    "watertemperature",   "precipitation",
    "soiltemperature",    "humidityindex",
    "cloudcover"};

double HashUnit(uint64_t a, uint64_t b) {
  uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x7f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

std::vector<std::string> LdGenerator::TagNames(int num_tags) {
  std::vector<std::string> names;
  for (int t = 0; t < num_tags; ++t) {
    names.push_back(t < 17 ? kAttributeNames[t]
                           : "attr" + std::to_string(t));
  }
  return names;
}

LdGenerator::LdGenerator(LdConfig config) : config_(config) {
  const double global_hz =
      static_cast<double>(config_.num_sensors) *
      static_cast<double>(kMicrosPerSecond) /
      static_cast<double>(config_.mean_interval);
  global_interval_us_ = static_cast<double>(kMicrosPerSecond) / global_hz;
  total_records_ =
      static_cast<int64_t>(global_hz * config_.duration_seconds);

  info_.name = "LD";
  info_.tag_names = TagNames(config_.num_tags);
  info_.num_sources = config_.num_sensors;
  info_.first_source_id = config_.first_id;
  info_.sample_interval = config_.mean_interval;
  info_.regular = false;
  info_.offered_points_per_second = global_hz;
  info_.expected_records = total_records_;
}

void LdGenerator::Reset() { next_record_ = 0; }

bool LdGenerator::SensorMeasures(SourceId id, int tag) const {
  // Each sensor measures a deterministic subset: 4 core attributes plus a
  // hash-selected share of the rest (~40%), mirroring the LSD sparsity.
  if (config_.dense || tag < 4) return true;
  return HashUnit(config_.seed ^ static_cast<uint64_t>(id), tag) < 0.4;
}

double LdGenerator::ValueOf(SourceId id, int tag, Timestamp ts) const {
  // Smooth diurnal-style signal + slow drift; stateless by design so a
  // million sensors carry no generator state.
  double base = 10.0 + 20.0 * HashUnit(id, tag);
  double phase = 6.28 * HashUnit(id, tag + 100);
  double t_hours = static_cast<double>(ts) / kMicrosPerHour;
  double diurnal = 5.0 * std::sin(t_hours * 6.28 + phase);
  double drift = 0.5 * t_hours * (HashUnit(id, tag + 200) - 0.5);
  return base + diurnal + drift;
}

bool LdGenerator::Next(core::OperationalRecord* record) {
  if (next_record_ >= total_records_) return false;
  const int64_t k = next_record_++;
  const int64_t sensor_index = k % config_.num_sensors;
  double jitter = (HashUnit(config_.seed ^ 0xF00D, k) - 0.5) * 0.4 *
                  global_interval_us_;
  double t = static_cast<double>(k) * global_interval_us_ + jitter;
  if (t < 0) t = 0;
  record->id = info_.first_source_id + sensor_index;
  record->ts = static_cast<Timestamp>(t);
  record->tags.assign(config_.num_tags, kNaN);
  for (int tag = 0; tag < config_.num_tags; ++tag) {
    if (SensorMeasures(record->id, tag)) {
      record->tags[tag] = ValueOf(record->id, tag, record->ts);
    }
  }
  return true;
}

std::vector<LdSensor> LdGenerator::Sensors() const {
  std::vector<LdSensor> sensors;
  sensors.reserve(config_.num_sensors);
  for (int64_t s = 0; s < config_.num_sensors; ++s) {
    LdSensor sensor;
    sensor.id = info_.first_source_id + s;
    sensor.name = "A" + std::to_string(sensor.id);
    sensor.latitude = 25.0 + 25.0 * HashUnit(config_.seed ^ 2, s);
    sensor.longitude = -125.0 + 60.0 * HashUnit(config_.seed ^ 3, s);
    sensors.push_back(std::move(sensor));
  }
  return sensors;
}

}  // namespace odh::benchfw
