#ifndef ODH_NET_WIRE_H_
#define ODH_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/result.h"
#include "common/slice.h"

namespace odh::net {

/// Protocol version spoken by this build. A server refuses a Hello whose
/// version it does not know; bump on any incompatible frame change.
/// v2: Rejected carries a machine-readable RejectCode before the reason.
/// v3: replication frames (kReplSubscribe .. kReplHeartbeat).
inline constexpr uint32_t kProtocolVersion = 3;

/// Upper bound on one frame's payload. Anything larger on the wire is
/// treated as a corrupt/hostile stream, not a short read — large results
/// are chunked into many RowBatch frames well below this.
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

/// Frame types of the historian protocol. Every frame is
/// `[u32 payload_len LE][u8 type][payload]`; payload layouts are built and
/// consumed by the functions below.
///
/// Conversation shape (client to the left, server to the right):
///
///   Hello               ->
///                       <- Welcome | Rejected     (admission control)
///   Query | Prepare |   ->
///   Execute | CloseStmt
///                       <- Prepared               (for Prepare)
///                       <- ResultHeader RowBatch* Done   (for Query/Execute)
///                       <- Error                  (statement failed;
///                                                  session stays usable)
///   Bye                 ->                        (client hangs up)
enum class FrameType : uint8_t {
  kHello = 1,         // client: u32 protocol version
  kWelcome = 2,       // server: u32 version, u64 session id
  kRejected = 3,      // server: u32 RejectCode, string reason (then the
                      //         server hangs up)
  kQuery = 4,         // client: string sql, u32 n, n datum params
  kPrepare = 5,       // client: string sql
  kPrepared = 6,      // server: u64 stmt id, u32 param count, column names
  kExecute = 7,       // client: u64 stmt id, u32 n, n datum params
  kResultHeader = 8,  // server: column names
  kRowBatch = 9,      // server: u32 nrows, u32 ncols, row-major datums
  kDone = 10,         // server: u64 affected, u64 rows, string path,
                      //         double plan_micros, double total_micros
  kError = 11,        // server: u32 status code, string message
  kCloseStmt = 12,    // client: u64 stmt id (no reply)
  kBye = 13,          // client: empty

  // Replication (v3). A replica subscribes on a fresh connection after the
  // normal Hello/Welcome handshake; from then on the connection is a one-
  // way stream of snapshot/batch/heartbeat frames from the primary:
  //
  //   kReplSubscribe        ->
  //                         <- [kReplSnapshotBegin kReplSnapshotChunk*
  //                             kReplSnapshotEnd]        (from_lsn == 0)
  //                         <- (kReplWalBatch | kReplHeartbeat)*
  //                         <- kError                    (stream over)
  kReplSubscribe = 14,     // replica: u64 from_lsn (0 = bootstrap snapshot)
  kReplSnapshotBegin = 15, // primary: u64 base_lsn, u64 record_count
  kReplSnapshotChunk = 16, // primary: u32 n, n length-prefixed WAL payloads
  kReplSnapshotEnd = 17,   // primary: u64 base_lsn (echoed)
  kReplWalBatch = 18,      // primary: u64 start_lsn, u64 end_lsn,
                           //          u32 n, n length-prefixed WAL payloads
  kReplHeartbeat = 19,     // primary: u64 durable_lsn, i64 watermark_micros
};

/// Why a server turned a connection away, carried in the Rejected frame
/// so clients classify by code, never by matching reason text. Retryable
/// codes (kTooManySessions, kDraining) mean "the server is healthy but
/// full/leaving — back off and try again"; net::Client maps them to
/// kResourceExhausted. kIncompatibleVersion is permanent: retrying the
/// same binary can never succeed, so it maps to kFailedPrecondition.
enum class RejectCode : uint32_t {
  kUnknown = 0,              // Not retryable (pre-v2 peer or garbage).
  kTooManySessions = 1,      // Admission control: retryable after backoff.
  kIncompatibleVersion = 2,  // Version skew: never retryable.
  kDraining = 3,             // Server shutting down gracefully: retryable
                             // (against its replacement).
  kMemoryPressure = 4,       // Memory admission gate: reserved bytes at or
                             // above the server budget. Retryable — in-
                             // flight queries release as they finish.
};

/// One parsed frame: the type plus its raw payload (owned).
struct Frame {
  FrameType type = FrameType::kBye;
  std::string payload;
};

/// Appends one whole frame (header + payload) to *dst.
void AppendFrame(std::string* dst, FrameType type, const Slice& payload);

/// Tries to parse one frame from the front of `input`.
/// Returns:
///   - >0: bytes consumed; *frame is filled.
///   - 0: `input` is a valid prefix of a frame — read more bytes.
///   - error: the stream is corrupt (oversized or unknown-type frame);
///     the connection must be dropped.
Result<size_t> ParseFrame(const Slice& input, Frame* frame);

// Payload primitives ---------------------------------------------------------

/// Datum wire form: u8 DataType tag, then the value (nothing for NULL,
/// u8 bool, zigzag varint int64/timestamp, 8-byte double, length-prefixed
/// string).
void PutDatum(std::string* dst, const Datum& value);
bool GetDatum(Slice* input, Datum* value);

void PutString(std::string* dst, const std::string& s);
bool GetString(Slice* input, std::string* s);

// Whole-payload helpers (the layouts documented on FrameType) ---------------

struct DoneInfo {
  int64_t affected_rows = 0;
  int64_t rows_returned = 0;
  std::string path;  // Executed-path label ("row-scan", ...); may be empty.
  double plan_micros = 0;
  double total_micros = 0;
};

std::string EncodeHello(uint32_t version);
bool DecodeHello(const Slice& payload, uint32_t* version);

std::string EncodeWelcome(uint32_t version, uint64_t session_id);
bool DecodeWelcome(const Slice& payload, uint32_t* version,
                   uint64_t* session_id);

std::string EncodeRejected(RejectCode code, const std::string& reason);
bool DecodeRejected(const Slice& payload, RejectCode* code,
                    std::string* reason);

std::string EncodeQuery(const std::string& sql,
                        const std::vector<Datum>& params);
bool DecodeQuery(const Slice& payload, std::string* sql,
                 std::vector<Datum>* params);

std::string EncodePrepared(uint64_t stmt_id, uint32_t param_count,
                           const std::vector<std::string>& columns);
bool DecodePrepared(const Slice& payload, uint64_t* stmt_id,
                    uint32_t* param_count, std::vector<std::string>* columns);

std::string EncodeExecute(uint64_t stmt_id, const std::vector<Datum>& params);
bool DecodeExecute(const Slice& payload, uint64_t* stmt_id,
                   std::vector<Datum>* params);

std::string EncodeColumns(const std::vector<std::string>& columns);
bool DecodeColumns(const Slice& payload, std::vector<std::string>* columns);

std::string EncodeRowBatch(const std::vector<Row>& rows);
bool DecodeRowBatch(const Slice& payload, std::vector<Row>* rows);

std::string EncodeDone(const DoneInfo& info);
bool DecodeDone(const Slice& payload, DoneInfo* info);

std::string EncodeError(const Status& status);
bool DecodeError(const Slice& payload, Status* status);

std::string EncodeStmtId(uint64_t stmt_id);
bool DecodeStmtId(const Slice& payload, uint64_t* stmt_id);

// Replication frames (v3) ---------------------------------------------------

std::string EncodeReplSubscribe(uint64_t from_lsn);
bool DecodeReplSubscribe(const Slice& payload, uint64_t* from_lsn);

std::string EncodeReplSnapshotBegin(uint64_t base_lsn, uint64_t record_count);
bool DecodeReplSnapshotBegin(const Slice& payload, uint64_t* base_lsn,
                             uint64_t* record_count);

/// Chunk payloads are opaque encoded core::WalRecord bytes; the wire layer
/// neither decodes nor validates them (the applier's WalRecord::Decode
/// does), it only guards the framing against truncation and hostile counts.
std::string EncodeReplSnapshotChunk(const std::vector<std::string>& records);
bool DecodeReplSnapshotChunk(const Slice& payload,
                             std::vector<std::string>* records);

std::string EncodeReplSnapshotEnd(uint64_t base_lsn);
bool DecodeReplSnapshotEnd(const Slice& payload, uint64_t* base_lsn);

/// [start_lsn, end_lsn) is the byte range of the WAL this batch covers;
/// a replica applies the batch only when start_lsn matches its applied
/// position (end_lsn <= applied is a duplicate after reconnect, start_lsn
/// beyond applied is a gap and fatal).
std::string EncodeReplWalBatch(uint64_t start_lsn, uint64_t end_lsn,
                               const std::vector<std::string>& records);
bool DecodeReplWalBatch(const Slice& payload, uint64_t* start_lsn,
                        uint64_t* end_lsn, std::vector<std::string>* records);

std::string EncodeReplHeartbeat(uint64_t durable_lsn,
                                int64_t watermark_micros);
bool DecodeReplHeartbeat(const Slice& payload, uint64_t* durable_lsn,
                         int64_t* watermark_micros);

}  // namespace odh::net

#endif  // ODH_NET_WIRE_H_
