#ifndef ODH_NET_RETRY_POLICY_H_
#define ODH_NET_RETRY_POLICY_H_

#include <algorithm>
#include <cstdint>

namespace odh::net {

/// What a caller is willing to re-send after an ambiguous failure (the
/// connection died after the request was fully written, so the server may
/// or may not have executed it).
enum class IdempotencyClass {
  /// Retry only when the request was provably never delivered (default —
  /// matches the old `auto_retry=true, assume_idempotent=false`).
  kUnstartedOnly,
  /// Every request is safe to re-execute; retry even ambiguous failures
  /// (the old `assume_idempotent=true`).
  kIdempotent,
  /// Never retry statements; fail fast (the old `auto_retry=false`).
  kNone,
};

/// One value object holding every retry/deadline/backoff knob a network
/// caller needs, replacing the loose ints and booleans that used to live
/// on ClientOptions. The replication catch-up loop reuses this verbatim:
/// a replica's reconnect cadence is governed by the same policy type a
/// query client uses, so tuning lore transfers.
///
/// Backoff is exponential with full jitter: attempt k sleeps a uniform
/// random duration in [0, min(max_backoff_ms, initial_backoff_ms << k)].
struct RetryPolicy {
  /// Deadline for one TCP connect + protocol handshake, milliseconds.
  int connect_timeout_ms = 5000;
  /// Deadline for one statement round trip (or one replication-stream
  /// read), milliseconds. 0 means no deadline.
  int rpc_deadline_ms = 10000;
  /// Connection attempts per logical connect (>= 1).
  int max_connect_attempts = 4;
  /// Statement attempts including the first (>= 1). Ignored when
  /// `idempotency` is kNone — that class never retries statements.
  int max_statement_attempts = 3;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 1000;
  /// Seeds the jitter PRNG; fixed seeds make chaos tests reproducible.
  uint64_t backoff_seed = 0;
  IdempotencyClass idempotency = IdempotencyClass::kUnstartedOnly;

  /// Attempts the statement path should make under this policy.
  int StatementAttempts() const {
    if (idempotency == IdempotencyClass::kNone) return 1;
    return std::max(1, max_statement_attempts);
  }
  int ConnectAttempts() const { return std::max(1, max_connect_attempts); }
};

}  // namespace odh::net

#endif  // ODH_NET_RETRY_POLICY_H_
