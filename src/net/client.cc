#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace odh::net {
namespace {

// send() with MSG_NOSIGNAL: a server hang-up surfaces as an IoError
// Status, not a process-killing SIGPIPE.
Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write: " + std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

// ClientCursor ---------------------------------------------------------------

ClientCursor::~ClientCursor() {
  // Drain the wire so the connection is reusable for the next statement.
  if (!finished_ && client_ != nullptr) {
    Row discard;
    while (true) {
      Result<bool> more = Next(&discard);
      if (!more.ok() || !more.value()) break;
    }
  }
  if (client_ != nullptr && client_->active_cursor_ == this) {
    client_->active_cursor_ = nullptr;
  }
}

Result<bool> ClientCursor::Next(Row* row) {
  if (!poison_.ok()) return poison_;
  while (pending_.empty()) {
    if (finished_) return false;
    Status advanced = client_->Advance(this);
    if (!advanced.ok()) {
      poison_ = advanced;
      finished_ = true;
      return poison_;
    }
  }
  *row = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

// Client ---------------------------------------------------------------------

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ < 0) return;
  std::string out;
  AppendFrame(&out, FrameType::kBye, Slice());
  (void)WriteAll(fd_, out.data(), out.size());
  ::close(fd_);
  fd_ = -1;
  if (active_cursor_ != nullptr) {
    // Orphan the cursor: it keeps its buffered rows but can't refill.
    active_cursor_->client_ = nullptr;
    if (!active_cursor_->finished_) {
      active_cursor_->poison_ = Status::IoError("connection closed");
      active_cursor_->finished_ = true;
    }
    active_cursor_ = nullptr;
  }
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    ::close(fd);
    return Status::IoError("connect: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  ODH_RETURN_IF_ERROR(
      client->SendFrame(FrameType::kHello, EncodeHello(kProtocolVersion)));
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, client->ReadInto(&frame));
  if (!got) return Status::IoError("server closed during handshake");
  if (frame.type == FrameType::kRejected) {
    return Status::ResourceExhausted(
        "server rejected connection: " +
        std::string(frame.payload.data(), frame.payload.size()));
  }
  uint32_t version = 0;
  uint64_t session_id = 0;
  if (frame.type != FrameType::kWelcome ||
      !DecodeWelcome(Slice(frame.payload), &version, &session_id)) {
    return Status::IoError("bad handshake reply");
  }
  client->session_id_ = session_id;
  return client;
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  if (fd_ < 0) return Status::FailedPrecondition("client is closed");
  std::string out;
  AppendFrame(&out, type, Slice(payload));
  return WriteAll(fd_, out.data(), out.size());
}

Result<bool> Client::ReadInto(Frame* frame) {
  while (true) {
    ODH_ASSIGN_OR_RETURN(size_t consumed, ParseFrame(Slice(rdbuf_), frame));
    if (consumed > 0) {
      rdbuf_.erase(0, consumed);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (!rdbuf_.empty()) {
        return Status::IoError("connection closed mid-frame");
      }
      return false;
    }
    rdbuf_.append(chunk, static_cast<size_t>(n));
  }
}

Result<std::unique_ptr<ClientCursor>> Client::StartStream(
    FrameType type, std::string payload) {
  if (active_cursor_ != nullptr) {
    return Status::FailedPrecondition(
        "a result stream is still open; drain or destroy it first");
  }
  ODH_RETURN_IF_ERROR(SendFrame(type, payload));
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, ReadInto(&frame));
  if (!got) return Status::IoError("server closed mid-statement");
  if (frame.type == FrameType::kError) {
    Status remote;
    if (!DecodeError(Slice(frame.payload), &remote)) {
      return Status::IoError("bad error frame");
    }
    return remote;
  }
  if (frame.type != FrameType::kResultHeader) {
    return Status::IoError("expected result header");
  }
  std::unique_ptr<ClientCursor> cursor(new ClientCursor(this));
  if (!DecodeColumns(Slice(frame.payload), &cursor->columns_)) {
    return Status::IoError("bad result header");
  }
  active_cursor_ = cursor.get();
  return cursor;
}

Status Client::Advance(ClientCursor* cursor) {
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, ReadInto(&frame));
  if (!got) return Status::IoError("server closed mid-stream");
  switch (frame.type) {
    case FrameType::kRowBatch: {
      std::vector<Row> rows;
      if (!DecodeRowBatch(Slice(frame.payload), &rows)) {
        return Status::IoError("bad row batch");
      }
      for (Row& row : rows) cursor->pending_.push_back(std::move(row));
      return Status::OK();
    }
    case FrameType::kDone: {
      if (!DecodeDone(Slice(frame.payload), &cursor->done_)) {
        return Status::IoError("bad done frame");
      }
      cursor->finished_ = true;
      if (active_cursor_ == cursor) active_cursor_ = nullptr;
      return Status::OK();
    }
    case FrameType::kError: {
      Status remote;
      if (!DecodeError(Slice(frame.payload), &remote)) {
        return Status::IoError("bad error frame");
      }
      if (active_cursor_ == cursor) active_cursor_ = nullptr;
      return remote;
    }
    default:
      return Status::IoError("unexpected frame in result stream");
  }
}

Result<ClientResult> Client::Drain(std::unique_ptr<ClientCursor> cursor) {
  ClientResult result;
  result.columns = cursor->columns();
  Row row;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
    if (!more) break;
    result.rows.push_back(std::move(row));
  }
  result.done = cursor->done();
  return result;
}

Result<ClientResult> Client::Query(const std::string& sql,
                                   const std::vector<Datum>& params) {
  ODH_ASSIGN_OR_RETURN(std::unique_ptr<ClientCursor> cursor,
                       QueryStream(sql, params));
  return Drain(std::move(cursor));
}

Result<std::unique_ptr<ClientCursor>> Client::QueryStream(
    const std::string& sql, const std::vector<Datum>& params) {
  return StartStream(FrameType::kQuery, EncodeQuery(sql, params));
}

Result<ClientStatement> Client::Prepare(const std::string& sql) {
  if (active_cursor_ != nullptr) {
    return Status::FailedPrecondition(
        "a result stream is still open; drain or destroy it first");
  }
  std::string payload;
  PutString(&payload, sql);
  ODH_RETURN_IF_ERROR(SendFrame(FrameType::kPrepare, payload));
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, ReadInto(&frame));
  if (!got) return Status::IoError("server closed mid-prepare");
  if (frame.type == FrameType::kError) {
    Status remote;
    if (!DecodeError(Slice(frame.payload), &remote)) {
      return Status::IoError("bad error frame");
    }
    return remote;
  }
  ClientStatement stmt;
  uint32_t param_count = 0;
  if (frame.type != FrameType::kPrepared ||
      !DecodePrepared(Slice(frame.payload), &stmt.id, &param_count,
                      &stmt.columns)) {
    return Status::IoError("bad prepare reply");
  }
  stmt.param_count = static_cast<int>(param_count);
  return stmt;
}

Result<ClientResult> Client::Execute(const ClientStatement& stmt,
                                     const std::vector<Datum>& params) {
  ODH_ASSIGN_OR_RETURN(std::unique_ptr<ClientCursor> cursor,
                       ExecuteStream(stmt, params));
  return Drain(std::move(cursor));
}

Result<std::unique_ptr<ClientCursor>> Client::ExecuteStream(
    const ClientStatement& stmt, const std::vector<Datum>& params) {
  return StartStream(FrameType::kExecute, EncodeExecute(stmt.id, params));
}

Status Client::CloseStatement(const ClientStatement& stmt) {
  return SendFrame(FrameType::kCloseStmt, EncodeStmtId(stmt.id));
}

}  // namespace odh::net
