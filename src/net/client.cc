#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace odh::net {

using common::Deadline;
using common::ExponentialBackoff;

// ClientCursor ---------------------------------------------------------------

ClientCursor::~ClientCursor() {
  // Drain the wire so the connection is reusable for the next statement.
  if (!finished_ && client_ != nullptr) {
    Row discard;
    while (true) {
      Result<bool> more = Next(&discard);
      if (!more.ok() || !more.value()) break;
    }
  }
  if (client_ != nullptr && client_->active_cursor_ == this) {
    client_->active_cursor_ = nullptr;
  }
}

Result<bool> ClientCursor::Next(Row* row) {
  if (!poison_.ok()) return poison_;
  while (pending_.empty()) {
    if (finished_) return false;
    Status advanced = client_->Advance(this);
    if (!advanced.ok()) {
      // Poison, permanently: a partially consumed stream must never be
      // resumed or silently restarted — the caller re-runs the statement
      // if it wants the rows (and only it knows whether that is safe).
      poison_ = advanced;
      finished_ = true;
      return poison_;
    }
  }
  *row = std::move(pending_.front());
  pending_.pop_front();
  return true;
}

// Client ---------------------------------------------------------------------

Client::~Client() { Close(); }

bool Client::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

void Client::Abandon() {
  transport_.Close();
  if (active_cursor_ != nullptr) {
    // Orphan the cursor: it keeps its buffered rows but can't refill.
    active_cursor_->client_ = nullptr;
    if (!active_cursor_->finished_) {
      active_cursor_->poison_ = Status::IoError("connection closed");
      active_cursor_->finished_ = true;
    }
    active_cursor_ = nullptr;
  }
}

void Client::Close() {
  if (transport_.valid()) {
    std::string out;
    AppendFrame(&out, FrameType::kBye, Slice());
    (void)transport_.WriteAll(out.data(), out.size(),
                              Deadline::AfterMillis(1000));
  }
  Abandon();
}

Status Client::ConnectOnce() {
  ++stats_.connect_attempts;
  if (options_.fault_policy != nullptr) {
    NetFaultDecision fault = options_.fault_policy->OnConnect();
    if (fault.kind == NetFaultDecision::Kind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault.stall_millis));
    } else if (fault.kind != NetFaultDecision::Kind::kNone) {
      return Status::Unavailable("injected connect fault");
    }
  }
  Deadline dl = Deadline::AfterMillisOrInfinite(policy_.connect_timeout_ms);
  Result<int> fd = ConnectWithDeadline(host_, port_, dl);
  if (!fd.ok()) {
    if (fd.status().IsDeadlineExceeded()) ++stats_.deadline_timeouts;
    return fd.status();
  }
  transport_ = Transport(*fd, options_.fault_policy);

  Status hello = SendFrame(FrameType::kHello, EncodeHello(kProtocolVersion), dl);
  if (!hello.ok()) {
    transport_.Close();
    return hello;
  }
  Frame frame;
  Result<bool> got = ReadInto(&frame, dl);
  if (!got.ok() || !got.value()) {
    transport_.Close();
    return got.ok() ? Status::IoError("server closed during handshake")
                    : got.status();
  }
  if (frame.type == FrameType::kRejected) {
    RejectCode code = RejectCode::kUnknown;
    std::string reason;
    DecodeRejected(Slice(frame.payload), &code, &reason);
    transport_.Close();
    // Classify by code, never by reason text.
    switch (code) {
      case RejectCode::kTooManySessions:
      case RejectCode::kDraining:
      case RejectCode::kMemoryPressure:
        return Status::ResourceExhausted("server rejected connection: " +
                                         reason);
      case RejectCode::kIncompatibleVersion:
      case RejectCode::kUnknown:
        return Status::FailedPrecondition("server rejected connection: " +
                                          reason);
    }
    return Status::Internal("unreachable");
  }
  uint32_t version = 0;
  uint64_t session_id = 0;
  if (frame.type != FrameType::kWelcome ||
      !DecodeWelcome(Slice(frame.payload), &version, &session_id)) {
    transport_.Close();
    return Status::IoError("bad handshake reply");
  }
  session_id_ = session_id;
  if (++generation_ > 1) ++stats_.reconnects;
  return Status::OK();
}

Status Client::ConnectWithRetry() {
  ExponentialBackoff backoff(policy_.initial_backoff_ms,
                             policy_.max_backoff_ms, policy_.backoff_seed);
  const int attempts = policy_.ConnectAttempts();
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    last = ConnectOnce();
    if (last.ok()) return last;
    if (!IsRetryable(last) || attempt == attempts) return last;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.NextDelayMillis()));
  }
  return last;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                int port,
                                                const ClientOptions& options) {
  std::unique_ptr<Client> client(new Client());
  client->host_ = host;
  client->port_ = port;
  client->options_ = options;
  client->policy_ = options.EffectiveRetryPolicy();
  ODH_RETURN_IF_ERROR(client->ConnectWithRetry());
  return client;
}

Status Client::SendFrame(FrameType type, const std::string& payload,
                         const Deadline& dl) {
  if (!transport_.valid()) {
    return Status::FailedPrecondition("client is closed");
  }
  std::string out;
  AppendFrame(&out, type, Slice(payload));
  Status sent = transport_.WriteAll(out.data(), out.size(), dl);
  if (sent.IsDeadlineExceeded()) ++stats_.deadline_timeouts;
  return sent;
}

Result<bool> Client::ReadInto(Frame* frame, const Deadline& dl) {
  if (!transport_.valid()) {
    return Status::FailedPrecondition("client is closed");
  }
  Result<bool> got = transport_.ReadFrame(frame, dl);
  if (!got.ok() && got.status().IsDeadlineExceeded()) {
    ++stats_.deadline_timeouts;
  }
  return got;
}

Result<uint64_t> Client::ResolveStatement(const ClientStatement& stmt) {
  auto it = statements_.find(stmt.id);
  if (it == statements_.end()) {
    // Not one of ours (hand-crafted handle): pass the id through and let
    // the server answer — it replies NotFound for unknown ids.
    return stmt.id;
  }
  RemoteStatement& remote = it->second;
  if (remote.generation == generation_) return remote.server_id;
  // Prepared on a dead connection: the server-side handle died with it.
  // Re-prepare the retained SQL on the current connection.
  Deadline dl = Deadline::AfterMillisOrInfinite(policy_.rpc_deadline_ms);
  ODH_RETURN_IF_ERROR(
      SendFrame(FrameType::kPrepare, [&] {
        std::string payload;
        PutString(&payload, remote.sql);
        return payload;
      }(), dl));
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, ReadInto(&frame, dl));
  if (!got) return Status::IoError("server closed mid-prepare");
  if (frame.type == FrameType::kError) {
    Status remote_status;
    if (!DecodeError(Slice(frame.payload), &remote_status)) {
      return Status::IoError("bad error frame");
    }
    return remote_status;
  }
  uint64_t server_id = 0;
  uint32_t param_count = 0;
  std::vector<std::string> columns;
  if (frame.type != FrameType::kPrepared ||
      !DecodePrepared(Slice(frame.payload), &server_id, &param_count,
                      &columns)) {
    return Status::IoError("bad prepare reply");
  }
  remote.server_id = server_id;
  remote.generation = generation_;
  return server_id;
}

Result<std::unique_ptr<ClientCursor>> Client::StartStreamOnce(
    FrameType type, const std::string& payload, bool* fully_sent) {
  Deadline dl = Deadline::AfterMillisOrInfinite(policy_.rpc_deadline_ms);
  ODH_RETURN_IF_ERROR(SendFrame(type, payload, dl));
  // WriteAll is all-or-error: an OK here means the whole request frame is
  // on the wire, so the server may act on it — the retry policy's
  // "fully-unstarted" boundary.
  *fully_sent = true;
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, ReadInto(&frame, dl));
  if (!got) return Status::IoError("server closed mid-statement");
  if (frame.type == FrameType::kError) {
    Status remote;
    if (!DecodeError(Slice(frame.payload), &remote)) {
      return Status::IoError("bad error frame");
    }
    return remote;
  }
  if (frame.type != FrameType::kResultHeader) {
    return Status::IoError("expected result header");
  }
  std::unique_ptr<ClientCursor> cursor(new ClientCursor(this));
  if (!DecodeColumns(Slice(frame.payload), &cursor->columns_)) {
    return Status::IoError("bad result header");
  }
  active_cursor_ = cursor.get();
  return cursor;
}

Result<std::unique_ptr<ClientCursor>> Client::StartStream(
    FrameType type, const std::string& payload, bool idempotent) {
  // (Re)built per attempt for Execute via ExecuteStream; here the payload
  // is fixed, so wrap it.
  if (active_cursor_ != nullptr) {
    return Status::FailedPrecondition(
        "a result stream is still open; drain or destroy it first");
  }
  ExponentialBackoff backoff(policy_.initial_backoff_ms,
                             policy_.max_backoff_ms,
                             policy_.backoff_seed + 1);
  const int attempts = policy_.StatementAttempts();
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (!transport_.valid()) {
      Status connected = ConnectWithRetry();
      if (!connected.ok()) return connected;
    }
    bool fully_sent = false;
    Result<std::unique_ptr<ClientCursor>> started =
        StartStreamOnce(type, payload, &fully_sent);
    if (started.ok()) return started;
    last = started.status();
    if (!IsRetryable(last)) return last;  // SQL-level error: deterministic.
    // Connection-level failure: its stream position is unknowable, so the
    // connection is abandoned either way.
    Abandon();
    // Retry only provably-unstarted requests (never fully sent) or ones
    // the caller declared idempotent. A fully sent non-idempotent request
    // may have taken effect without its ack — surface the error instead.
    const bool safe_to_retry =
        !fully_sent || idempotent ||
        policy_.idempotency == IdempotencyClass::kIdempotent;
    if (!safe_to_retry || attempt == attempts) return last;
    ++stats_.statement_retries;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.NextDelayMillis()));
  }
  return last;
}

Status Client::Advance(ClientCursor* cursor) {
  Deadline dl = Deadline::AfterMillisOrInfinite(policy_.rpc_deadline_ms);
  Frame frame;
  Result<bool> got = ReadInto(&frame, dl);
  if (!got.ok() || !got.value()) {
    // Connection-level failure mid-stream: the socket's framing position
    // is unknowable, so drop the connection — the next statement
    // reconnects. The cursor itself poisons (Next handles that).
    if (active_cursor_ == cursor) active_cursor_ = nullptr;
    Status broken =
        got.ok() ? Status::IoError("server closed mid-stream") : got.status();
    transport_.Close();
    return broken;
  }
  switch (frame.type) {
    case FrameType::kRowBatch: {
      std::vector<Row> rows;
      if (!DecodeRowBatch(Slice(frame.payload), &rows)) {
        if (active_cursor_ == cursor) active_cursor_ = nullptr;
        transport_.Close();
        return Status::IoError("bad row batch");
      }
      for (Row& row : rows) cursor->pending_.push_back(std::move(row));
      return Status::OK();
    }
    case FrameType::kDone: {
      if (!DecodeDone(Slice(frame.payload), &cursor->done_)) {
        if (active_cursor_ == cursor) active_cursor_ = nullptr;
        transport_.Close();
        return Status::IoError("bad done frame");
      }
      cursor->finished_ = true;
      if (active_cursor_ == cursor) active_cursor_ = nullptr;
      return Status::OK();
    }
    case FrameType::kError: {
      // A server-side statement error: the stream is over but the session
      // (and connection) live on.
      Status remote;
      if (!DecodeError(Slice(frame.payload), &remote)) {
        if (active_cursor_ == cursor) active_cursor_ = nullptr;
        transport_.Close();
        return Status::IoError("bad error frame");
      }
      if (active_cursor_ == cursor) active_cursor_ = nullptr;
      return remote;
    }
    default:
      if (active_cursor_ == cursor) active_cursor_ = nullptr;
      transport_.Close();
      return Status::IoError("unexpected frame in result stream");
  }
}

Result<ClientResult> Client::DrainCursor(
    std::unique_ptr<ClientCursor> cursor) {
  ClientResult result;
  result.columns = cursor->columns();
  Row row;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, cursor->Next(&row));
    if (!more) break;
    result.rows.push_back(std::move(row));
  }
  result.done = cursor->done();
  return result;
}

Result<ClientResult> Client::Query(const std::string& sql,
                                   const std::vector<Datum>& params) {
  ODH_ASSIGN_OR_RETURN(std::unique_ptr<ClientCursor> cursor,
                       QueryStream(sql, params));
  return DrainCursor(std::move(cursor));
}

Result<std::unique_ptr<ClientCursor>> Client::QueryStream(
    const std::string& sql, const std::vector<Datum>& params) {
  return StartStream(FrameType::kQuery, EncodeQuery(sql, params),
                     /*idempotent=*/false);
}

Result<ClientStatement> Client::Prepare(const std::string& sql) {
  if (active_cursor_ != nullptr) {
    return Status::FailedPrecondition(
        "a result stream is still open; drain or destroy it first");
  }
  std::string payload;
  PutString(&payload, sql);
  ExponentialBackoff backoff(policy_.initial_backoff_ms,
                             policy_.max_backoff_ms,
                             policy_.backoff_seed + 2);
  const int attempts = policy_.StatementAttempts();
  Status last;
  ClientStatement stmt;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (!transport_.valid()) {
      Status connected = ConnectWithRetry();
      if (!connected.ok()) return connected;
    }
    Deadline dl = Deadline::AfterMillisOrInfinite(policy_.rpc_deadline_ms);
    last = SendFrame(FrameType::kPrepare, payload, dl);
    if (last.ok()) {
      Frame frame;
      Result<bool> got = ReadInto(&frame, dl);
      if (!got.ok()) {
        last = got.status();
      } else if (!got.value()) {
        last = Status::IoError("server closed mid-prepare");
      } else if (frame.type == FrameType::kError) {
        Status remote;
        if (!DecodeError(Slice(frame.payload), &remote)) {
          last = Status::IoError("bad error frame");
        } else {
          return remote;  // SQL-level: deterministic, never retried.
        }
      } else {
        uint64_t server_id = 0;
        uint32_t param_count = 0;
        if (frame.type != FrameType::kPrepared ||
            !DecodePrepared(Slice(frame.payload), &server_id, &param_count,
                            &stmt.columns)) {
          last = Status::IoError("bad prepare reply");
        } else {
          stmt.id = next_stmt_id_++;
          stmt.param_count = static_cast<int>(param_count);
          stmt.sql = sql;
          statements_[stmt.id] = RemoteStatement{sql, server_id, generation_};
          return stmt;
        }
      }
    }
    if (!IsRetryable(last)) return last;
    Abandon();  // Prepare is idempotent: always safe on a fresh connection.
    if (attempt == attempts) return last;
    ++stats_.statement_retries;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.NextDelayMillis()));
  }
  return last;
}

Result<ClientResult> Client::Execute(const ClientStatement& stmt,
                                     const std::vector<Datum>& params) {
  ODH_ASSIGN_OR_RETURN(std::unique_ptr<ClientCursor> cursor,
                       ExecuteStream(stmt, params));
  return DrainCursor(std::move(cursor));
}

Result<std::unique_ptr<ClientCursor>> Client::ExecuteStream(
    const ClientStatement& stmt, const std::vector<Datum>& params) {
  if (active_cursor_ != nullptr) {
    return Status::FailedPrecondition(
        "a result stream is still open; drain or destroy it first");
  }
  // Like StartStream, but the payload is rebuilt per attempt: after a
  // reconnect the statement has to be re-prepared, which changes its
  // server-side id.
  ExponentialBackoff backoff(policy_.initial_backoff_ms,
                             policy_.max_backoff_ms,
                             policy_.backoff_seed + 3);
  const int attempts = policy_.StatementAttempts();
  Status last;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (!transport_.valid()) {
      Status connected = ConnectWithRetry();
      if (!connected.ok()) return connected;
    }
    Result<uint64_t> server_id = ResolveStatement(stmt);
    bool fully_sent = false;
    Result<std::unique_ptr<ClientCursor>> started =
        server_id.ok()
            ? StartStreamOnce(FrameType::kExecute,
                              EncodeExecute(*server_id, params), &fully_sent)
            : Result<std::unique_ptr<ClientCursor>>(server_id.status());
    if (started.ok()) return started;
    last = started.status();
    if (!IsRetryable(last)) return last;
    Abandon();
    const bool safe_to_retry =
        !fully_sent || policy_.idempotency == IdempotencyClass::kIdempotent;
    if (!safe_to_retry || attempt == attempts) return last;
    ++stats_.statement_retries;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(backoff.NextDelayMillis()));
  }
  return last;
}

Status Client::CloseStatement(const ClientStatement& stmt) {
  auto it = statements_.find(stmt.id);
  uint64_t server_id = stmt.id;
  if (it != statements_.end()) {
    const bool live = it->second.generation == generation_;
    server_id = it->second.server_id;
    statements_.erase(it);
    // Prepared on a dead connection: the server-side handle is already
    // gone, nothing to tell anyone.
    if (!live) return Status::OK();
  }
  if (!transport_.valid()) return Status::OK();
  return SendFrame(FrameType::kCloseStmt, EncodeStmtId(server_id),
                   Deadline::AfterMillisOrInfinite(policy_.rpc_deadline_ms));
}

}  // namespace odh::net
