#ifndef ODH_NET_TRANSPORT_H_
#define ODH_NET_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "common/backoff.h"
#include "common/result.h"
#include "net/fault.h"
#include "net/wire.h"

namespace odh::net {

/// One endpoint of a historian-protocol connection: a non-blocking socket
/// plus the frame reassembly buffer, with two cross-cutting concerns both
/// sides need:
///
///  - Deadlines. Every read/write takes a common::Deadline and waits in
///    poll(2) only for the remaining budget; an exhausted budget surfaces
///    as kDeadlineExceeded without tearing the fd down (the caller decides
///    whether a timeout is fatal — the server treats it as a dead peer,
///    the client as a retryable RPC failure).
///  - Fault injection. An attached net::FaultPolicy is consulted before
///    each socket operation and can fail it transiently, fragment it,
///    stall it, corrupt one byte, or hang up mid-frame — deterministically
///    seeded, so chaos tests replay exactly. With no policy attached the
///    fast path costs one branch.
///
/// Thread model: one thread reads/writes; Shutdown() may be called from
/// any thread to unblock a poll (this is how Stop/Drain free stuck
/// sessions). The transport owns the fd and closes it on destruction.
class Transport {
 public:
  Transport() = default;
  /// Adopts `fd`; switches it to non-blocking mode.
  explicit Transport(int fd, FaultPolicy* faults = nullptr);
  ~Transport();

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  Transport(Transport&& other) noexcept;
  Transport& operator=(Transport&& other) noexcept;

  bool valid() const { return fd_.load(std::memory_order_relaxed) >= 0; }
  int fd() const { return fd_.load(std::memory_order_relaxed); }

  /// Writes the whole buffer or fails. A deadline miss (peer not draining
  /// its receive window — the slow-client case) returns kDeadlineExceeded;
  /// a peer hangup returns kIoError.
  Status WriteAll(const char* data, size_t size, const common::Deadline& dl);

  /// Appends one whole frame and writes it.
  Status SendFrame(FrameType type, const Slice& payload,
                   const common::Deadline& dl);

  /// Reads one frame, buffering partial bytes across calls. Returns false
  /// on clean EOF at a frame boundary; kDeadlineExceeded when the deadline
  /// lapses first; kIoError / kInvalidArgument on broken or corrupt
  /// streams (mid-frame EOF, oversized or unknown-type frames).
  Result<bool> ReadFrame(Frame* frame, const common::Deadline& dl);

  /// Half-closes the socket from any thread: a blocked poll wakes up and
  /// the next read sees EOF. Does not release the fd (Close/dtor do).
  void Shutdown();

  /// Shuts down and closes the fd. Idempotent.
  void Close();

 private:
  /// Reads 1..len bytes (value = count) or 0 for EOF, honoring the
  /// deadline and the fault policy.
  Result<size_t> ReadSome(char* buf, size_t len, const common::Deadline& dl);

  std::atomic<int> fd_{-1};
  std::string rdbuf_;
  FaultPolicy* faults_ = nullptr;
};

/// Non-blocking connect(2) to 127.0.0.1-style dotted-quad `host`, bounded
/// by the deadline. Returns a connected fd. kDeadlineExceeded on timeout,
/// kUnavailable on connection refusal (both retryable — refusal is what a
/// restarting server looks like), kIoError otherwise.
Result<int> ConnectWithDeadline(const std::string& host, int port,
                                const common::Deadline& dl);

}  // namespace odh::net

#endif  // ODH_NET_TRANSPORT_H_
