#ifndef ODH_NET_SERVER_H_
#define ODH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "net/fault.h"
#include "net/transport.h"
#include "sql/engine.h"

namespace odh::net {

class ReplicationSource;

/// What a server is FOR. A primary accepts writes and (when wired to a
/// ReplicationSource) streams its WAL to subscribers; a replica serves
/// read-only sessions fed by a replication stream and refuses both writes
/// and replication subscriptions.
enum class ServerRole {
  kPrimary,
  kReplica,
};

/// Explicit lifecycle states, replacing the started/stopped/draining
/// boolean tangle. Legal transitions:
///
///   kCreated --Start()--> kRunning --Drain()--> kDraining
///       |                    |                      |
///       +-------Stop()-------+--------Stop()--------+--> kStopped
///
/// Start() from anything but kCreated and Drain() from kCreated/kStopped
/// fail with kFailedPrecondition naming the offending state. Stop() is the
/// universal absorbing transition: legal from every state (including
/// kStopped — it is idempotent), so teardown paths never have to care
/// where the server currently is.
enum class ServerState {
  kCreated,
  kRunning,
  kDraining,
  kStopped,
};

const char* ToString(ServerState state);
const char* ToString(ServerRole role);

struct ServerOptions {
  /// TCP port to listen on; 0 picks a free port (see HistorianServer::port).
  int port = 0;
  /// Admission-control bound: connections beyond this many concurrently
  /// open sessions are turned away with a Rejected frame. Also sizes the
  /// session worker pool (one thread per admitted session).
  int max_sessions = 64;
  int listen_backlog = 128;
  /// Rows per RowBatch frame when streaming results.
  int rows_per_batch = 256;

  // Deadlines (milliseconds; <= 0 disables that deadline). These are the
  // slow/dead-peer protections: a session holding a slot must either talk
  // or go.
  /// Budget for a freshly accepted connection to complete the Hello
  /// handshake. Slow-loris connections are cut here, before they can
  /// squat a slot for long.
  int handshake_deadline_ms = 5000;
  /// Idle budget between requests: a session that sends nothing for this
  /// long is presumed dead and closed, freeing its slot
  /// (net.read_timeouts).
  int read_deadline_ms = 30000;
  /// Budget for writing one response frame. A client that stops draining
  /// its socket mid-result is cut off rather than pinning a worker
  /// (net.write_timeouts).
  int write_deadline_ms = 10000;

  /// Memory admission gate: new connections are turned away with
  /// RejectCode::kMemoryPressure while the engine's reserved bytes sit at
  /// or above this. 0 derives the gate from the engine's process budget
  /// (engine->memory_root()->limit()); if that is also 0 (governance
  /// unconfigured) the gate is disarmed. Admitted sessions are never cut
  /// by the gate — their queries fail individually via their budgets.
  int64_t memory_gate_bytes = 0;

  /// Test hook: fault policy consulted by every session transport
  /// (shared; must outlive the server). Production leaves this null.
  FaultPolicy* fault_policy = nullptr;

  /// What this server is for (see ServerRole). A replica marks every
  /// session read-only: any mutating statement fails with
  /// kFailedPrecondition instead of forking history from the primary.
  ServerRole role = ServerRole::kPrimary;

  /// Primary side of WAL shipping: when set (and role is kPrimary), a
  /// kReplSubscribe frame hands the connection to this source, which
  /// streams snapshot/batch/heartbeat frames until the subscriber hangs
  /// up or the server leaves kRunning. Must outlive the server. A replica
  /// (or a primary without a source) answers kReplSubscribe with kError.
  ReplicationSource* replication = nullptr;
};

/// The historian's network front door: a TCP server where each accepted
/// connection gets its own sql::Session (prepared statements and session
/// stats are per-connection) running on a bounded worker pool, with
/// results streamed back in RowBatch frames — the server never
/// materializes more than one batch of a result at a time, so a client
/// paging through years of history costs O(rows_per_batch) server memory.
///
/// Admission control: the accept loop counts open sessions; a connection
/// arriving when max_sessions are open is sent a Rejected frame carrying
/// RejectCode::kTooManySessions and closed (observable as
/// net.sessions_rejected). Since only the accept thread admits, the bound
/// is exact.
///
/// Fault tolerance: every session read/write runs under a deadline (see
/// ServerOptions), so a stalled or half-dead peer frees its slot instead
/// of pinning it forever. Shutdown comes in two flavors: Stop() force-
/// closes everything immediately; Drain(timeout) first stops accepting,
/// lets statements already in flight finish streaming, then force-closes
/// the stragglers.
///
/// Metrics (when a registry is passed): net.sessions_open gauge,
/// net.sessions_total / net.sessions_rejected / net.frames_sent /
/// net.rows_streamed / net.read_timeouts / net.write_timeouts /
/// net.drained_sessions / net.sessions_force_closed counters,
/// net.request_micros histogram. Passing the OdhSystem's registry makes
/// them visible in the odh_metrics table.
class HistorianServer {
 public:
  HistorianServer(sql::SqlEngine* engine, ServerOptions options,
                  common::MetricsRegistry* metrics = nullptr);
  ~HistorianServer();

  HistorianServer(const HistorianServer&) = delete;
  HistorianServer& operator=(const HistorianServer&) = delete;

  /// kCreated -> kRunning: binds, listens and starts the accept loop.
  /// Returns the bound port. From any other state fails with
  /// kFailedPrecondition naming the state — a server object runs at most
  /// once.
  Result<int> Start();

  /// kRunning -> kDraining (graceful shutdown): stops accepting, lets
  /// each session finish the statement it is currently executing (counted
  /// as net.drained_sessions), closes idle sessions immediately, and
  /// after `timeout_ms` force-closes whatever is still running
  /// (net.sessions_force_closed). Calling it again while kDraining runs
  /// another sweep (legal — a second, shorter budget tightens the first).
  /// From kCreated or kStopped fails with kFailedPrecondition: there is
  /// nothing to drain, and pre-state-machine code that relied on the old
  /// silent no-op should say Stop() instead. Does not join the worker
  /// pool — follow with Stop() (the destructor does).
  Status Drain(int timeout_ms);

  /// -> kStopped, from ANY state: stops accepting, shuts down every live
  /// session socket and joins all workers. Idempotent and safe at every
  /// lifecycle edge: before Start(), twice in a row, concurrently from
  /// two threads, or from the destructor while sessions are live.
  void Stop();

  /// Lock-free state/role observers (exact the instant they are read;
  /// another thread may transition right after).
  ServerState state() const { return state_.load(std::memory_order_acquire); }
  ServerRole role() const { return options_.role; }

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Sessions currently open (admitted and not yet closed).
  int sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }
  int64_t sessions_rejected() const {
    return sessions_rejected_.load(std::memory_order_relaxed);
  }
  /// Subset of sessions_rejected() turned away by the memory gate.
  int64_t mem_rejections() const {
    return mem_rejections_.load(std::memory_order_relaxed);
  }
  int64_t read_timeouts() const {
    return read_timeouts_.load(std::memory_order_relaxed);
  }
  int64_t write_timeouts() const {
    return write_timeouts_.load(std::memory_order_relaxed);
  }
  int64_t drained_sessions() const {
    return drained_sessions_.load(std::memory_order_relaxed);
  }
  int64_t sessions_force_closed() const {
    return sessions_force_closed_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-session bookkeeping the drain/stop machinery needs: the
  /// transport (for cross-thread Shutdown) and whether the handler is
  /// inside a statement right now (drain lets those finish).
  struct SessionSlot {
    explicit SessionSlot(int fd, FaultPolicy* faults)
        : transport(fd, faults) {}
    Transport transport;
    std::atomic<bool> in_statement{false};
    /// Set by Drain's force sweep so the handler wrap-up doesn't also
    /// count this session as gracefully drained.
    std::atomic<bool> forced{false};
  };

  void AcceptLoop();
  void ServeConnection(SessionSlot* slot, uint64_t session_id);
  /// Shuts down session sockets: all of them, or only those not inside a
  /// statement (the drain sweep).
  void ShutdownSessions(bool only_idle);

  sql::SqlEngine* engine_;
  ServerOptions options_;

  /// Atomic because the accept loop reads it lock-free while Stop/Drain
  /// (under lifecycle_mu_) swap it to -1 and close it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  /// Lifecycle: one explicit state machine (see ServerState). Transitions
  /// happen under lifecycle_mu_ so they serialize; reads are lock-free
  /// (the accept loop and session handlers poll it per iteration).
  std::mutex lifecycle_mu_;
  std::atomic<ServerState> state_{ServerState::kCreated};

  std::atomic<int> sessions_open_{0};
  std::atomic<int64_t> sessions_rejected_{0};
  std::atomic<int64_t> mem_rejections_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> rows_streamed_{0};
  std::atomic<int64_t> read_timeouts_{0};
  std::atomic<int64_t> write_timeouts_{0};
  std::atomic<int64_t> drained_sessions_{0};
  std::atomic<int64_t> sessions_force_closed_{0};
  std::atomic<uint64_t> next_session_id_{1};

  std::thread accept_thread_;
  /// One worker per admissible session; sized by options_.max_sessions.
  std::unique_ptr<common::ThreadPool> workers_;

  /// Live sessions, so Drain/Stop can unblock handlers mid-read.
  std::mutex conn_mu_;
  std::map<uint64_t, std::shared_ptr<SessionSlot>> sessions_;

  // Wired at construction when a registry is provided; null otherwise.
  common::Counter* sessions_total_metric_ = nullptr;
  common::Counter* sessions_rejected_metric_ = nullptr;
  common::Counter* mem_rejections_metric_ = nullptr;
  common::Counter* frames_sent_metric_ = nullptr;
  common::Counter* rows_streamed_metric_ = nullptr;
  common::Counter* read_timeouts_metric_ = nullptr;
  common::Counter* write_timeouts_metric_ = nullptr;
  common::Counter* drained_sessions_metric_ = nullptr;
  common::Counter* force_closed_metric_ = nullptr;
  common::Histogram* request_micros_metric_ = nullptr;
};

}  // namespace odh::net

#endif  // ODH_NET_SERVER_H_
