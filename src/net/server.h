#ifndef ODH_NET_SERVER_H_
#define ODH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "sql/engine.h"

namespace odh::net {

struct ServerOptions {
  /// TCP port to listen on; 0 picks a free port (see HistorianServer::port).
  int port = 0;
  /// Admission-control bound: connections beyond this many concurrently
  /// open sessions are turned away with a Rejected frame. Also sizes the
  /// session worker pool (one thread per admitted session).
  int max_sessions = 64;
  int listen_backlog = 128;
  /// Rows per RowBatch frame when streaming results.
  int rows_per_batch = 256;
};

/// The historian's network front door: a TCP server where each accepted
/// connection gets its own sql::Session (prepared statements and session
/// stats are per-connection) running on a bounded worker pool, with
/// results streamed back in RowBatch frames — the server never
/// materializes more than one batch of a result at a time, so a client
/// paging through years of history costs O(rows_per_batch) server memory.
///
/// Admission control: the accept loop counts open sessions; a connection
/// arriving when max_sessions are open is sent a Rejected frame and
/// closed (observable as net.sessions_rejected). Since only the accept
/// thread admits, the bound is exact.
///
/// Metrics (when a registry is passed): net.sessions_open gauge,
/// net.sessions_total / net.sessions_rejected / net.frames_sent /
/// net.rows_streamed counters, net.request_micros histogram. Passing the
/// OdhSystem's registry makes them visible in the odh_metrics table.
class HistorianServer {
 public:
  HistorianServer(sql::SqlEngine* engine, ServerOptions options,
                  common::MetricsRegistry* metrics = nullptr);
  ~HistorianServer();

  HistorianServer(const HistorianServer&) = delete;
  HistorianServer& operator=(const HistorianServer&) = delete;

  /// Binds, listens and starts the accept loop. Returns the bound port.
  Result<int> Start();

  /// Stops accepting, shuts down every live session socket and joins all
  /// workers. Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Sessions currently open (admitted and not yet closed).
  int sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }
  int64_t sessions_rejected() const {
    return sessions_rejected_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd, uint64_t session_id);

  sql::SqlEngine* engine_;
  ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<int> sessions_open_{0};
  std::atomic<int64_t> sessions_rejected_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> rows_streamed_{0};
  std::atomic<uint64_t> next_session_id_{1};

  std::thread accept_thread_;
  /// One worker per admissible session; sized by options_.max_sessions.
  std::unique_ptr<common::ThreadPool> workers_;

  /// Live session sockets, so Stop can unblock handlers mid-read.
  std::mutex conn_mu_;
  std::set<int> conn_fds_;

  // Wired at construction when a registry is provided; null otherwise.
  common::Counter* sessions_total_metric_ = nullptr;
  common::Counter* sessions_rejected_metric_ = nullptr;
  common::Counter* frames_sent_metric_ = nullptr;
  common::Counter* rows_streamed_metric_ = nullptr;
  common::Histogram* request_micros_metric_ = nullptr;
};

}  // namespace odh::net

#endif  // ODH_NET_SERVER_H_
