#ifndef ODH_NET_SERVER_H_
#define ODH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "net/fault.h"
#include "net/transport.h"
#include "sql/engine.h"

namespace odh::net {

struct ServerOptions {
  /// TCP port to listen on; 0 picks a free port (see HistorianServer::port).
  int port = 0;
  /// Admission-control bound: connections beyond this many concurrently
  /// open sessions are turned away with a Rejected frame. Also sizes the
  /// session worker pool (one thread per admitted session).
  int max_sessions = 64;
  int listen_backlog = 128;
  /// Rows per RowBatch frame when streaming results.
  int rows_per_batch = 256;

  // Deadlines (milliseconds; <= 0 disables that deadline). These are the
  // slow/dead-peer protections: a session holding a slot must either talk
  // or go.
  /// Budget for a freshly accepted connection to complete the Hello
  /// handshake. Slow-loris connections are cut here, before they can
  /// squat a slot for long.
  int handshake_deadline_ms = 5000;
  /// Idle budget between requests: a session that sends nothing for this
  /// long is presumed dead and closed, freeing its slot
  /// (net.read_timeouts).
  int read_deadline_ms = 30000;
  /// Budget for writing one response frame. A client that stops draining
  /// its socket mid-result is cut off rather than pinning a worker
  /// (net.write_timeouts).
  int write_deadline_ms = 10000;

  /// Memory admission gate: new connections are turned away with
  /// RejectCode::kMemoryPressure while the engine's reserved bytes sit at
  /// or above this. 0 derives the gate from the engine's process budget
  /// (engine->memory_root()->limit()); if that is also 0 (governance
  /// unconfigured) the gate is disarmed. Admitted sessions are never cut
  /// by the gate — their queries fail individually via their budgets.
  int64_t memory_gate_bytes = 0;

  /// Test hook: fault policy consulted by every session transport
  /// (shared; must outlive the server). Production leaves this null.
  FaultPolicy* fault_policy = nullptr;
};

/// The historian's network front door: a TCP server where each accepted
/// connection gets its own sql::Session (prepared statements and session
/// stats are per-connection) running on a bounded worker pool, with
/// results streamed back in RowBatch frames — the server never
/// materializes more than one batch of a result at a time, so a client
/// paging through years of history costs O(rows_per_batch) server memory.
///
/// Admission control: the accept loop counts open sessions; a connection
/// arriving when max_sessions are open is sent a Rejected frame carrying
/// RejectCode::kTooManySessions and closed (observable as
/// net.sessions_rejected). Since only the accept thread admits, the bound
/// is exact.
///
/// Fault tolerance: every session read/write runs under a deadline (see
/// ServerOptions), so a stalled or half-dead peer frees its slot instead
/// of pinning it forever. Shutdown comes in two flavors: Stop() force-
/// closes everything immediately; Drain(timeout) first stops accepting,
/// lets statements already in flight finish streaming, then force-closes
/// the stragglers.
///
/// Metrics (when a registry is passed): net.sessions_open gauge,
/// net.sessions_total / net.sessions_rejected / net.frames_sent /
/// net.rows_streamed / net.read_timeouts / net.write_timeouts /
/// net.drained_sessions / net.sessions_force_closed counters,
/// net.request_micros histogram. Passing the OdhSystem's registry makes
/// them visible in the odh_metrics table.
class HistorianServer {
 public:
  HistorianServer(sql::SqlEngine* engine, ServerOptions options,
                  common::MetricsRegistry* metrics = nullptr);
  ~HistorianServer();

  HistorianServer(const HistorianServer&) = delete;
  HistorianServer& operator=(const HistorianServer&) = delete;

  /// Binds, listens and starts the accept loop. Returns the bound port.
  /// Fails with kFailedPrecondition if already started or stopped — a
  /// server object runs at most once.
  Result<int> Start();

  /// Graceful shutdown: stops accepting, lets each session finish the
  /// statement it is currently executing (counted as
  /// net.drained_sessions), closes idle sessions immediately, and after
  /// `timeout_ms` force-closes whatever is still running
  /// (net.sessions_force_closed). Safe to call at any lifecycle point and
  /// from any thread; idempotent. Does not join the worker pool — follow
  /// with Stop() (the destructor does).
  void Drain(int timeout_ms);

  /// Stops accepting, shuts down every live session socket and joins all
  /// workers. Idempotent and safe at every lifecycle edge: before
  /// Start(), twice in a row, concurrently from two threads, or from the
  /// destructor while sessions are live.
  void Stop();

  /// The bound port (valid after Start).
  int port() const { return port_; }

  /// Sessions currently open (admitted and not yet closed).
  int sessions_open() const {
    return sessions_open_.load(std::memory_order_relaxed);
  }
  int64_t sessions_rejected() const {
    return sessions_rejected_.load(std::memory_order_relaxed);
  }
  /// Subset of sessions_rejected() turned away by the memory gate.
  int64_t mem_rejections() const {
    return mem_rejections_.load(std::memory_order_relaxed);
  }
  int64_t read_timeouts() const {
    return read_timeouts_.load(std::memory_order_relaxed);
  }
  int64_t write_timeouts() const {
    return write_timeouts_.load(std::memory_order_relaxed);
  }
  int64_t drained_sessions() const {
    return drained_sessions_.load(std::memory_order_relaxed);
  }
  int64_t sessions_force_closed() const {
    return sessions_force_closed_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-session bookkeeping the drain/stop machinery needs: the
  /// transport (for cross-thread Shutdown) and whether the handler is
  /// inside a statement right now (drain lets those finish).
  struct SessionSlot {
    explicit SessionSlot(int fd, FaultPolicy* faults)
        : transport(fd, faults) {}
    Transport transport;
    std::atomic<bool> in_statement{false};
    /// Set by Drain's force sweep so the handler wrap-up doesn't also
    /// count this session as gracefully drained.
    std::atomic<bool> forced{false};
  };

  void AcceptLoop();
  void ServeConnection(SessionSlot* slot, uint64_t session_id);
  /// Shuts down session sockets: all of them, or only those not inside a
  /// statement (the drain sweep).
  void ShutdownSessions(bool only_idle);

  sql::SqlEngine* engine_;
  ServerOptions options_;

  /// Atomic because the accept loop reads it lock-free while Stop/Drain
  /// (under lifecycle_mu_) swap it to -1 and close it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  /// Lifecycle. started_/stopped_ are one-way latches guarded by
  /// lifecycle_mu_; draining_ tells handlers to exit after the statement
  /// in flight.
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  std::atomic<int> sessions_open_{0};
  std::atomic<int64_t> sessions_rejected_{0};
  std::atomic<int64_t> mem_rejections_{0};
  std::atomic<int64_t> frames_sent_{0};
  std::atomic<int64_t> rows_streamed_{0};
  std::atomic<int64_t> read_timeouts_{0};
  std::atomic<int64_t> write_timeouts_{0};
  std::atomic<int64_t> drained_sessions_{0};
  std::atomic<int64_t> sessions_force_closed_{0};
  std::atomic<uint64_t> next_session_id_{1};

  std::thread accept_thread_;
  /// One worker per admissible session; sized by options_.max_sessions.
  std::unique_ptr<common::ThreadPool> workers_;

  /// Live sessions, so Drain/Stop can unblock handlers mid-read.
  std::mutex conn_mu_;
  std::map<uint64_t, std::shared_ptr<SessionSlot>> sessions_;

  // Wired at construction when a registry is provided; null otherwise.
  common::Counter* sessions_total_metric_ = nullptr;
  common::Counter* sessions_rejected_metric_ = nullptr;
  common::Counter* mem_rejections_metric_ = nullptr;
  common::Counter* frames_sent_metric_ = nullptr;
  common::Counter* rows_streamed_metric_ = nullptr;
  common::Counter* read_timeouts_metric_ = nullptr;
  common::Counter* write_timeouts_metric_ = nullptr;
  common::Counter* drained_sessions_metric_ = nullptr;
  common::Counter* force_closed_metric_ = nullptr;
  common::Histogram* request_micros_metric_ = nullptr;
};

}  // namespace odh::net

#endif  // ODH_NET_SERVER_H_
