#ifndef ODH_NET_CLIENT_H_
#define ODH_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/result.h"
#include "net/wire.h"

namespace odh::net {

/// A prepared statement's server-side handle.
struct ClientStatement {
  uint64_t id = 0;
  int param_count = 0;
  std::vector<std::string> columns;  // SELECT output names; empty otherwise.
};

/// A fully materialized statement result.
struct ClientResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  DoneInfo done;  // Affected rows, executed path, server-side timings.
};

class Client;

/// Pull-based view of one in-flight statement's result: rows arrive in
/// RowBatch frames and are handed out one at a time, so the client holds
/// at most one batch in memory. Follows the RowCursor poison contract:
/// after a non-OK Next every further Next returns the same error.
///
/// The owning Client allows a single outstanding stream; drain it (Next
/// to false/error) or destroy it before issuing the next statement —
/// destruction drains the wire quietly.
class ClientCursor {
 public:
  ~ClientCursor();
  ClientCursor(const ClientCursor&) = delete;
  ClientCursor& operator=(const ClientCursor&) = delete;

  Result<bool> Next(Row* row);

  const std::vector<std::string>& columns() const { return columns_; }
  /// Valid once Next has returned false (the Done frame carries it).
  const DoneInfo& done() const { return done_; }

 private:
  friend class Client;
  explicit ClientCursor(Client* client) : client_(client) {}

  Client* client_;
  std::vector<std::string> columns_;
  std::deque<Row> pending_;
  DoneInfo done_;
  bool finished_ = false;
  Status poison_;
};

/// Thin blocking client for the historian protocol. Not thread-safe: one
/// Client per thread (mirroring one Session per connection server-side).
///
/// Connect() performs the handshake; a server at its session limit
/// answers with a Rejected frame, surfaced as kResourceExhausted — the
/// admission-control backpressure signal callers should back off on.
class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<std::unique_ptr<Client>> Connect(const std::string& host,
                                                 int port);

  /// One-shot execution, materialized.
  Result<ClientResult> Query(const std::string& sql,
                             const std::vector<Datum>& params = {});
  /// One-shot execution, streaming.
  Result<std::unique_ptr<ClientCursor>> QueryStream(
      const std::string& sql, const std::vector<Datum>& params = {});

  Result<ClientStatement> Prepare(const std::string& sql);
  Result<ClientResult> Execute(const ClientStatement& stmt,
                               const std::vector<Datum>& params = {});
  Result<std::unique_ptr<ClientCursor>> ExecuteStream(
      const ClientStatement& stmt, const std::vector<Datum>& params = {});
  /// Frees the server-side handle (fire-and-forget).
  Status CloseStatement(const ClientStatement& stmt);

  uint64_t session_id() const { return session_id_; }

  /// Sends Bye and closes the socket. Idempotent; also run by the dtor.
  void Close();

 private:
  Client() = default;

  Status SendFrame(FrameType type, const std::string& payload);
  Result<bool> ReadInto(Frame* frame);
  /// Sends a statement frame and consumes its ResultHeader (or Error).
  Result<std::unique_ptr<ClientCursor>> StartStream(FrameType type,
                                                    std::string payload);
  /// Pulls the next RowBatch/Done/Error frame for `cursor`.
  Status Advance(ClientCursor* cursor);
  Result<ClientResult> Drain(std::unique_ptr<ClientCursor> cursor);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string rdbuf_;
  /// The single outstanding streaming cursor, if any.
  ClientCursor* active_cursor_ = nullptr;

  friend class ClientCursor;
};

}  // namespace odh::net

#endif  // ODH_NET_CLIENT_H_
