#ifndef ODH_NET_CLIENT_H_
#define ODH_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <optional>

#include "common/backoff.h"
#include "common/datum.h"
#include "common/result.h"
#include "net/fault.h"
#include "net/retry_policy.h"
#include "net/transport.h"
#include "net/wire.h"

namespace odh::net {

/// Knobs for the client's fault tolerance. The defaults suit an
/// interactive client on a mostly healthy network; ingest daemons on
/// flaky plant-floor links want more attempts and a larger backoff cap.
///
/// Set `retry` to configure resilience; it wins wholesale over the loose
/// legacy fields below. The retry semantics (what each deadline covers,
/// when a statement is safe to re-send, the stream poison contract) are
/// documented on RetryPolicy and IdempotencyClass.
struct ClientOptions {
  /// The one retry/deadline/backoff knob. When unset, the deprecated
  /// loose fields below are folded into an equivalent policy at Connect
  /// (see EffectiveRetryPolicy).
  std::optional<RetryPolicy> retry;

  // --- Deprecated loose fields (one release of grace) -------------------
  // Kept working for existing callers; ignored entirely when `retry` is
  // set. `auto_retry=false` maps to IdempotencyClass::kNone,
  // `assume_idempotent=true` to kIdempotent, the default pair to
  // kUnstartedOnly.
  int connect_timeout_ms = 5000;
  int rpc_deadline_ms = 10000;
  int max_connect_attempts = 4;
  int max_statement_attempts = 3;
  int initial_backoff_ms = 10;
  int max_backoff_ms = 1000;
  uint64_t backoff_seed = 0;
  bool auto_retry = true;
  bool assume_idempotent = false;
  // ----------------------------------------------------------------------

  /// Test hook: fault policy consulted on connect and by the transport
  /// (must outlive the client). Production leaves this null.
  FaultPolicy* fault_policy = nullptr;

  /// The policy the client will actually run: `retry` verbatim when set,
  /// otherwise the legacy fields translated.
  RetryPolicy EffectiveRetryPolicy() const {
    if (retry.has_value()) return *retry;
    RetryPolicy p;
    p.connect_timeout_ms = connect_timeout_ms;
    p.rpc_deadline_ms = rpc_deadline_ms;
    p.max_connect_attempts = max_connect_attempts;
    p.max_statement_attempts = max_statement_attempts;
    p.initial_backoff_ms = initial_backoff_ms;
    p.max_backoff_ms = max_backoff_ms;
    p.backoff_seed = backoff_seed;
    p.idempotency = !auto_retry ? IdempotencyClass::kNone
                    : assume_idempotent ? IdempotencyClass::kIdempotent
                                        : IdempotencyClass::kUnstartedOnly;
    return p;
  }
};

/// A prepared statement's client-side handle. The id names the statement
/// to this Client (stable across reconnects: the client re-prepares the
/// carried SQL on the new connection transparently).
struct ClientStatement {
  uint64_t id = 0;
  int param_count = 0;
  std::vector<std::string> columns;  // SELECT output names; empty otherwise.
  std::string sql;                   // Retained for re-prepare.
};

/// A fully materialized statement result.
struct ClientResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  DoneInfo done;  // Affected rows, executed path, server-side timings.
};

/// Client-side fault-tolerance counters. Lifetime semantics (uniform with
/// sql::SessionStats): counters accumulate over the OBJECT's lifetime and
/// are never reset implicitly — not by Close(), not by an automatic
/// reconnect. Call Client::ResetStats() to zero them explicitly.
struct ClientStats {
  int64_t connect_attempts = 0;   // TCP connects tried (incl. successes).
  int64_t reconnects = 0;         // Successful re-handshakes after loss.
  int64_t statement_retries = 0;  // Statements re-sent after a failure.
  int64_t deadline_timeouts = 0;  // RPCs that ran out of budget.
};

class Client;

/// Pull-based view of one in-flight statement's result: rows arrive in
/// RowBatch frames and are handed out one at a time, so the client holds
/// at most one batch in memory. Follows the RowCursor poison contract:
/// after a non-OK Next every further Next returns the same error — a
/// partially consumed stream is never resumed or silently restarted, over
/// the network exactly as over local storage.
///
/// The owning Client allows a single outstanding stream; drain it (Next
/// to false/error) or destroy it before issuing the next statement —
/// destruction drains the wire quietly.
class ClientCursor {
 public:
  ~ClientCursor();
  ClientCursor(const ClientCursor&) = delete;
  ClientCursor& operator=(const ClientCursor&) = delete;

  Result<bool> Next(Row* row);

  const std::vector<std::string>& columns() const { return columns_; }
  /// Valid once Next has returned false (the Done frame carries it).
  const DoneInfo& done() const { return done_; }

 private:
  friend class Client;
  explicit ClientCursor(Client* client) : client_(client) {}

  Client* client_;
  std::vector<std::string> columns_;
  std::deque<Row> pending_;
  DoneInfo done_;
  bool finished_ = false;
  Status poison_;
};

/// Blocking client for the historian protocol with built-in fault
/// tolerance: connect/RPC deadlines, seeded exponential backoff with full
/// jitter, automatic reconnect, and retry of idempotent work only (see
/// ClientOptions). Not thread-safe: one Client per thread (mirroring one
/// Session per connection server-side).
///
/// A server at its session limit answers the handshake with a Rejected
/// frame carrying a machine-readable RejectCode; kTooManySessions and
/// kDraining surface as kResourceExhausted (retryable — Connect backs off
/// on them automatically), kIncompatibleVersion as kFailedPrecondition
/// (permanent).
class Client {
 public:
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  static Result<std::unique_ptr<Client>> Connect(
      const std::string& host, int port, const ClientOptions& options = {});

  /// One-shot execution, materialized.
  Result<ClientResult> Query(const std::string& sql,
                             const std::vector<Datum>& params = {});
  /// One-shot execution, streaming.
  Result<std::unique_ptr<ClientCursor>> QueryStream(
      const std::string& sql, const std::vector<Datum>& params = {});

  Result<ClientStatement> Prepare(const std::string& sql);
  Result<ClientResult> Execute(const ClientStatement& stmt,
                               const std::vector<Datum>& params = {});
  Result<std::unique_ptr<ClientCursor>> ExecuteStream(
      const ClientStatement& stmt, const std::vector<Datum>& params = {});
  /// Frees the server-side handle (fire-and-forget).
  Status CloseStatement(const ClientStatement& stmt);

  uint64_t session_id() const { return session_id_; }
  const ClientStats& stats() const { return stats_; }
  /// Zeroes the counters. The ONLY way stats reset — Close() and
  /// reconnects never do (see ClientStats).
  void ResetStats() { stats_ = {}; }
  /// The resolved retry policy this client runs (legacy fields folded in).
  const RetryPolicy& retry_policy() const { return policy_; }
  bool connected() const { return transport_.valid(); }

  /// True for errors worth retrying (possibly on a new connection):
  /// transient faults, timeouts, admission-control rejections, and broken
  /// connections. SQL-level errors (bad statement, missing table) are
  /// deterministic and excluded.
  static bool IsRetryable(const Status& status);

  /// Sends Bye and closes the socket. Idempotent; also run by the dtor.
  void Close();

 private:
  /// Server-side identity of one prepared statement on the current
  /// connection; `generation` says which connection prepared it.
  struct RemoteStatement {
    std::string sql;
    uint64_t server_id = 0;
    uint64_t generation = 0;
  };

  Client() = default;

  /// One TCP connect + handshake attempt (no retries).
  Status ConnectOnce();
  /// Connect with the options' backoff/retry schedule.
  Status ConnectWithRetry();
  /// Drops the current connection (no Bye): the stream state is unknown.
  void Abandon();

  Status SendFrame(FrameType type, const std::string& payload,
                   const common::Deadline& dl);
  Result<bool> ReadInto(Frame* frame, const common::Deadline& dl);
  /// Sends a statement frame and consumes its ResultHeader (or Error),
  /// applying the retry policy. `idempotent` marks requests safe to
  /// re-send even after they fully reached the wire.
  Result<std::unique_ptr<ClientCursor>> StartStream(FrameType type,
                                                    const std::string& payload,
                                                    bool idempotent);
  /// One send-request/read-header exchange, no retries. Sets
  /// *fully_sent once the request bytes are all on the wire.
  Result<std::unique_ptr<ClientCursor>> StartStreamOnce(
      FrameType type, const std::string& payload, bool* fully_sent);
  /// Ensures `stmt` is prepared on the current connection (re-preparing
  /// after a reconnect) and returns its current server-side id.
  Result<uint64_t> ResolveStatement(const ClientStatement& stmt);
  /// Pulls the next RowBatch/Done/Error frame for `cursor`.
  Status Advance(ClientCursor* cursor);
  Result<ClientResult> DrainCursor(std::unique_ptr<ClientCursor> cursor);

  std::string host_;
  int port_ = 0;
  ClientOptions options_;
  /// Resolved once at Connect from options_ (EffectiveRetryPolicy); every
  /// deadline/backoff decision reads this, never the loose legacy fields.
  RetryPolicy policy_;
  Transport transport_;
  uint64_t session_id_ = 0;
  /// Bumped on every successful (re)connect; prepared statements from
  /// older generations are re-prepared lazily.
  uint64_t generation_ = 0;
  uint64_t next_stmt_id_ = 1;
  std::map<uint64_t, RemoteStatement> statements_;
  ClientStats stats_;
  /// The single outstanding streaming cursor, if any.
  ClientCursor* active_cursor_ = nullptr;

  friend class ClientCursor;
};

}  // namespace odh::net

#endif  // ODH_NET_CLIENT_H_
