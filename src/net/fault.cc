#include "net/fault.h"

namespace odh::net {

void FaultPolicy::set_connect_fault_rate(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  connect_rate_ = p;
}

void FaultPolicy::set_read_fault_rate(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  read_rate_ = p;
}

void FaultPolicy::set_write_fault_rate(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  write_rate_ = p;
}

void FaultPolicy::Put(Schedule* schedule, uint64_t n,
                      NetFaultDecision decision) {
  std::lock_guard<std::mutex> lock(mu_);
  (*schedule)[n] = decision;
}

NetFaultDecision FaultPolicy::Decide(Schedule* schedule, uint64_t op,
                                     double rate) {
  auto it = schedule->find(op);
  if (it != schedule->end()) {
    NetFaultDecision decision = it->second;
    schedule->erase(it);
    ++injected_;
    return decision;
  }
  if (rate > 0 && rng_.NextDouble() < rate) {
    ++injected_;
    return {NetFaultDecision::Kind::kTransient, 0, 0};
  }
  return {};
}

NetFaultDecision FaultPolicy::OnConnect() {
  std::lock_guard<std::mutex> lock(mu_);
  return Decide(&connect_faults_, ++connects_, connect_rate_);
}

NetFaultDecision FaultPolicy::OnRead() {
  std::lock_guard<std::mutex> lock(mu_);
  return Decide(&read_faults_, ++reads_, read_rate_);
}

NetFaultDecision FaultPolicy::OnWrite() {
  std::lock_guard<std::mutex> lock(mu_);
  return Decide(&write_faults_, ++writes_, write_rate_);
}

uint64_t FaultPolicy::connects_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connects_;
}

uint64_t FaultPolicy::reads_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reads_;
}

uint64_t FaultPolicy::writes_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

uint64_t FaultPolicy::faults_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

}  // namespace odh::net
