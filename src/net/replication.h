#ifndef ODH_NET_REPLICATION_H_
#define ODH_NET_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/result.h"
#include "core/replica.h"
#include "core/store.h"
#include "net/fault.h"
#include "net/retry_policy.h"
#include "net/transport.h"

namespace odh::sql {
class SqlEngine;
}  // namespace odh::sql

namespace odh::net {

struct ReplicationSourceOptions {
  /// Payload-byte budget per kReplWalBatch / kReplSnapshotChunk frame.
  size_t max_batch_bytes = 256 * 1024;
  /// Heartbeat cadence while the subscriber is caught up.
  int heartbeat_interval_ms = 50;
  /// Sleep between WAL polls when there is nothing new to ship.
  int poll_interval_ms = 2;
  /// Deadline for writing one frame to a subscriber; a replica that stops
  /// draining its socket is cut, never allowed to pin the source.
  int write_deadline_ms = 10000;
};

/// Primary side of WAL shipping: serves one subscriber per call, on the
/// caller's thread (HistorianServer hands replication connections here
/// from their session workers, so subscriber count is bounded by the
/// server's admission control like any other session).
///
/// Stream contract: subscribe at LSN 0 gets a snapshot (Begin/Chunk*/End,
/// a consistent image of the store with the End frame's base_lsn naming
/// the WAL position it reflects), then an endless sequence of WAL batches
/// — each tagged [start_lsn, end_lsn) so the subscriber can detect
/// duplicates and gaps — interleaved with heartbeats carrying the durable
/// LSN and data watermark whenever there is nothing to ship. Subscribing
/// at a non-zero LSN skips the snapshot and resumes batches from there
/// (the reconnect path).
class ReplicationSource {
 public:
  ReplicationSource(core::OdhStore* store,
                    ReplicationSourceOptions options = {},
                    common::MetricsRegistry* metrics = nullptr);

  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Streams to one subscriber until its socket breaks or `cancel`
  /// returns true. Returns OK on a cancelled/closed stream, an error for
  /// anything that poisons the stream (WAL corruption, bad subscribe
  /// position).
  Status Serve(Transport* transport, uint64_t from_lsn,
               const std::function<bool()>& cancel);

  int64_t snapshots_served() const {
    return snapshots_served_.load(std::memory_order_relaxed);
  }
  int64_t batches_shipped() const {
    return batches_shipped_.load(std::memory_order_relaxed);
  }
  int64_t records_shipped() const {
    return records_shipped_.load(std::memory_order_relaxed);
  }

 private:
  Status SendSnapshot(Transport* transport, uint64_t* resume_lsn);

  core::OdhStore* store_;
  ReplicationSourceOptions options_;

  std::atomic<int64_t> snapshots_served_{0};
  std::atomic<int64_t> batches_shipped_{0};
  std::atomic<int64_t> records_shipped_{0};

  common::Counter* snapshots_metric_ = nullptr;
  common::Counter* batches_metric_ = nullptr;
  common::Counter* records_metric_ = nullptr;
};

struct ReplicationClientOptions {
  /// Reconnect/deadline/backoff policy — the SAME value object net::Client
  /// uses, reused verbatim (rpc_deadline_ms bounds each stream read;
  /// heartbeats make that a liveness check on the primary).
  RetryPolicy retry;
  /// Batches applied between local WAL flushes; 1 = flush every batch
  /// (maximum durability, the chaos-test setting).
  int flush_every_batches = 1;
  /// Test hook: fault policy for the subscriber transport.
  FaultPolicy* fault_policy = nullptr;
};

/// Replica side: a background tail loop that subscribes to a primary,
/// feeds the stream into a core::ReplicaApplier, and reconnects with the
/// RetryPolicy's backoff whenever the connection drops — resuming from
/// the applier's LSN, which survives both reconnects and replica crashes
/// (it is re-derived from the replica's own recovered WAL).
///
/// Promotion is just Stop(): the tail loop ends, the applier's store
/// stops receiving the stream, and a read-write server can be started
/// over the same engine.
class ReplicationClient {
 public:
  ReplicationClient(std::string host, int port, core::ReplicaApplier* applier,
                    ReplicationClientOptions options = {});
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Spawns the tail loop. One Start per client.
  Status Start();
  /// Ends the tail loop and joins it. Idempotent.
  void Stop();

  /// Registers odh.repl.* gauges (applied/durable LSN, lag bytes,
  /// staleness, records applied, reconnects) so replica lag shows up in
  /// the odh_metrics table next to everything else.
  void RegisterGauges(common::MetricsRegistry* metrics);

  /// Forwards to the applier — the primary-kill chaos test acks a write
  /// only once this returns true for the write's durable LSN.
  bool WaitForLsn(uint64_t lsn, int timeout_ms) {
    return applier_->WaitForLsn(lsn, timeout_ms);
  }

  int64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// A fatal stream error (kDataLoss gap, corrupt record) that reconnects
  /// cannot fix; the loop parks after recording it.
  Status fatal_error() const;

  core::ReplicaApplier* applier() const { return applier_; }

 private:
  void TailLoop();
  /// One connect/subscribe/apply cycle; returns when the stream breaks.
  Status RunOnce();

  std::string host_;
  int port_;
  core::ReplicaApplier* applier_;
  ReplicationClientOptions options_;

  std::thread tail_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> reconnects_{0};
  /// Successful subscribes (tail thread writes, TailLoop reads to decide
  /// when to restart the backoff schedule).
  std::atomic<int64_t> subscribes_{0};
  /// Tail-thread-only: whether any subscribe ever succeeded.
  bool ever_connected_ = false;

  mutable std::mutex fatal_mu_;
  Status fatal_error_;
};

/// Installs `applier` as `engine`'s replication-info provider, so every
/// session's query profile (and EXPLAIN PROFILE) carries the replica's
/// lag watermark. `applier` must outlive the engine's sessions.
void ExposeReplicationLag(core::ReplicaApplier* applier,
                          sql::SqlEngine* engine);

}  // namespace odh::net

#endif  // ODH_NET_REPLICATION_H_
