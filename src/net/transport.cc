#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace odh::net {
namespace {

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " +
                         std::strerror(errno));
}

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Waits until `fd` is ready for `events` or the deadline lapses.
/// OK = ready; kDeadlineExceeded = budget exhausted.
Status WaitReady(int fd, short events, const common::Deadline& dl) {
  while (true) {
    if (dl.expired()) return Status::DeadlineExceeded("socket wait");
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    int64_t remaining = dl.remaining_millis();  // -1 = block forever.
    int timeout = remaining < 0
                      ? -1
                      : static_cast<int>(std::min<int64_t>(remaining, 60000));
    int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();  // Ready (POLLHUP/POLLERR included:
                                      // the read/write will report it).
    if (rc < 0 && errno != EINTR) return Errno("poll");
    // rc == 0: poll timed out — loop re-checks the deadline (a capped
    // timeout under an infinite deadline just waits again).
  }
}

}  // namespace

Transport::Transport(int fd, FaultPolicy* faults) : faults_(faults) {
  fd_.store(fd, std::memory_order_relaxed);
  if (fd >= 0) SetNonBlocking(fd);
}

Transport::~Transport() { Close(); }

Transport::Transport(Transport&& other) noexcept {
  fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
            std::memory_order_relaxed);
  rdbuf_ = std::move(other.rdbuf_);
  faults_ = other.faults_;
  other.faults_ = nullptr;
}

Transport& Transport::operator=(Transport&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed),
              std::memory_order_relaxed);
    rdbuf_ = std::move(other.rdbuf_);
    faults_ = other.faults_;
    other.faults_ = nullptr;
  }
  return *this;
}

void Transport::Shutdown() {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Transport::Close() {
  int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
  rdbuf_.clear();
}

Result<size_t> Transport::ReadSome(char* buf, size_t len,
                                   const common::Deadline& dl) {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return Status::FailedPrecondition("transport is closed");

  bool corrupt = false;
  if (faults_ != nullptr) {
    NetFaultDecision fault = faults_->OnRead();
    switch (fault.kind) {
      case NetFaultDecision::Kind::kNone:
        break;
      case NetFaultDecision::Kind::kTransient:
        return Status::Unavailable("injected transient read fault");
      case NetFaultDecision::Kind::kShort:
        len = std::min(len, std::max<size_t>(1, fault.cap_bytes));
        break;
      case NetFaultDecision::Kind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_millis));
        break;
      case NetFaultDecision::Kind::kDisconnect:
        Shutdown();
        return Status::IoError("injected disconnect (read)");
      case NetFaultDecision::Kind::kCorrupt:
        corrupt = true;
        break;
    }
  }

  while (true) {
    ODH_RETURN_IF_ERROR(WaitReady(fd, POLLIN, dl));
    ssize_t n = ::read(fd, buf, len);
    if (n > 0) {
      if (corrupt) buf[0] ^= 0x40;
      return static_cast<size_t>(n);
    }
    if (n == 0) return static_cast<size_t>(0);  // EOF.
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Errno("read");
  }
}

Status Transport::WriteAll(const char* data, size_t size,
                           const common::Deadline& dl) {
  int fd = fd_.load(std::memory_order_relaxed);
  if (fd < 0) return Status::FailedPrecondition("transport is closed");

  size_t chunk_cap = size;       // Bytes per send() call.
  size_t disconnect_after = 0;   // 0 = never.
  std::string corrupted;
  if (faults_ != nullptr) {
    NetFaultDecision fault = faults_->OnWrite();
    switch (fault.kind) {
      case NetFaultDecision::Kind::kNone:
        break;
      case NetFaultDecision::Kind::kTransient:
        // Fails before any byte reaches the wire: provably safe to retry.
        return Status::Unavailable("injected transient write fault");
      case NetFaultDecision::Kind::kShort:
        chunk_cap = std::max<size_t>(1, fault.cap_bytes);
        break;
      case NetFaultDecision::Kind::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(fault.stall_millis));
        break;
      case NetFaultDecision::Kind::kDisconnect:
        // Deliver roughly half, then hang up: the peer holds a truncated
        // frame it must treat as a broken stream, never as data.
        disconnect_after = std::max<size_t>(1, size / 2);
        break;
      case NetFaultDecision::Kind::kCorrupt: {
        corrupted.assign(data, size);
        corrupted[corrupted.size() / 2] ^= 0x40;
        data = corrupted.data();
        break;
      }
    }
  }

  size_t sent = 0;
  while (sent < size) {
    if (disconnect_after != 0 && sent >= disconnect_after) {
      Shutdown();
      return Status::IoError("injected disconnect (write)");
    }
    size_t want = std::min(size - sent, chunk_cap);
    if (disconnect_after != 0) {
      want = std::min(want, disconnect_after - sent);
    }
    ODH_RETURN_IF_ERROR(WaitReady(fd, POLLOUT, dl));
    ssize_t n = ::send(fd, data + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Transport::SendFrame(FrameType type, const Slice& payload,
                            const common::Deadline& dl) {
  std::string out;
  AppendFrame(&out, type, payload);
  return WriteAll(out.data(), out.size(), dl);
}

Result<bool> Transport::ReadFrame(Frame* frame, const common::Deadline& dl) {
  while (true) {
    ODH_ASSIGN_OR_RETURN(size_t consumed, ParseFrame(Slice(rdbuf_), frame));
    if (consumed > 0) {
      rdbuf_.erase(0, consumed);
      return true;
    }
    char chunk[4096];
    ODH_ASSIGN_OR_RETURN(size_t n, ReadSome(chunk, sizeof(chunk), dl));
    if (n == 0) {
      if (!rdbuf_.empty()) {
        return Status::IoError("connection closed mid-frame");
      }
      return false;
    }
    rdbuf_.append(chunk, n);
  }
}

Result<int> ConnectWithDeadline(const std::string& host, int port,
                                const common::Deadline& dl) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  SetNonBlocking(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = errno == ECONNREFUSED
                        ? Status::Unavailable("connect: connection refused")
                        : Errno("connect");
    ::close(fd);
    return status;
  }
  if (rc != 0) {
    Status ready = WaitReady(fd, POLLOUT, dl);
    if (!ready.ok()) {
      ::close(fd);
      return ready.IsDeadlineExceeded()
                 ? Status::DeadlineExceeded("connect timeout")
                 : ready;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      errno = err;
      if (err == ECONNREFUSED) {
        return Status::Unavailable("connect: connection refused");
      }
      return Errno("connect");
    }
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace odh::net
