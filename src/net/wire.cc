#include "net/wire.h"

#include "common/coding.h"

namespace odh::net {
namespace {

/// The dense range of known frame types, for garbage detection.
constexpr uint8_t kMinFrameType = static_cast<uint8_t>(FrameType::kHello);
constexpr uint8_t kMaxFrameType =
    static_cast<uint8_t>(FrameType::kReplHeartbeat);

/// StatusCode values cross the wire as their enum integer; anything out of
/// range decodes as kInternal rather than failing the frame.
constexpr uint32_t kMaxStatusCode =
    static_cast<uint32_t>(StatusCode::kDeadlineExceeded);

}  // namespace

void AppendFrame(std::string* dst, FrameType type, const Slice& payload) {
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  dst->push_back(static_cast<char>(type));
  dst->append(payload.data(), payload.size());
}

Result<size_t> ParseFrame(const Slice& input, Frame* frame) {
  if (input.size() < 5) return static_cast<size_t>(0);
  const uint32_t payload_len = DecodeFixed32(input.data());
  if (payload_len > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame (" +
                                   std::to_string(payload_len) + " bytes)");
  }
  const uint8_t type = static_cast<uint8_t>(input.data()[4]);
  if (type < kMinFrameType || type > kMaxFrameType) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  const size_t total = 5 + static_cast<size_t>(payload_len);
  if (input.size() < total) return static_cast<size_t>(0);
  frame->type = static_cast<FrameType>(type);
  frame->payload.assign(input.data() + 5, payload_len);
  return total;
}

void PutDatum(std::string* dst, const Datum& value) {
  dst->push_back(static_cast<char>(value.type()));
  switch (value.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      dst->push_back(value.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutVarintSigned64(dst, value.int64_value());
      break;
    case DataType::kTimestamp:
      PutVarintSigned64(dst, value.timestamp_value());
      break;
    case DataType::kDouble:
      PutDouble(dst, value.double_value());
      break;
    case DataType::kString:
      PutLengthPrefixed(dst, Slice(value.string_value()));
      break;
  }
}

bool GetDatum(Slice* input, Datum* value) {
  if (input->empty()) return false;
  const uint8_t tag = static_cast<uint8_t>(input->data()[0]);
  input->remove_prefix(1);
  if (tag > static_cast<uint8_t>(DataType::kTimestamp)) return false;
  switch (static_cast<DataType>(tag)) {
    case DataType::kNull:
      *value = Datum::Null();
      return true;
    case DataType::kBool: {
      if (input->empty()) return false;
      *value = Datum::Bool(input->data()[0] != 0);
      input->remove_prefix(1);
      return true;
    }
    case DataType::kInt64: {
      int64_t v;
      if (!GetVarintSigned64(input, &v)) return false;
      *value = Datum::Int64(v);
      return true;
    }
    case DataType::kTimestamp: {
      int64_t v;
      if (!GetVarintSigned64(input, &v)) return false;
      *value = Datum::Time(v);
      return true;
    }
    case DataType::kDouble: {
      double v;
      if (!GetDouble(input, &v)) return false;
      *value = Datum::Double(v);
      return true;
    }
    case DataType::kString: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) return false;
      *value = Datum::String(std::string(s.data(), s.size()));
      return true;
    }
  }
  return false;
}

void PutString(std::string* dst, const std::string& s) {
  PutLengthPrefixed(dst, Slice(s));
}

bool GetString(Slice* input, std::string* s) {
  Slice v;
  if (!GetLengthPrefixed(input, &v)) return false;
  s->assign(v.data(), v.size());
  return true;
}

namespace {

void PutDatums(std::string* dst, const std::vector<Datum>& values) {
  PutFixed32(dst, static_cast<uint32_t>(values.size()));
  for (const Datum& v : values) PutDatum(dst, v);
}

bool GetDatums(Slice* input, std::vector<Datum>* values) {
  uint32_t n;
  if (!GetFixed32(input, &n)) return false;
  // A count can't exceed one datum per remaining payload byte; this bounds
  // allocation against hostile counts without a second size field.
  if (n > input->size()) return false;
  values->clear();
  values->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Datum v;
    if (!GetDatum(input, &v)) return false;
    values->push_back(std::move(v));
  }
  return true;
}

void PutStrings(std::string* dst, const std::vector<std::string>& values) {
  PutFixed32(dst, static_cast<uint32_t>(values.size()));
  for (const std::string& s : values) PutString(dst, s);
}

bool GetStrings(Slice* input, std::vector<std::string>* values) {
  uint32_t n;
  if (!GetFixed32(input, &n)) return false;
  if (n > input->size()) return false;
  values->clear();
  values->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(input, &s)) return false;
    values->push_back(std::move(s));
  }
  return true;
}

}  // namespace

std::string EncodeHello(uint32_t version) {
  std::string out;
  PutFixed32(&out, version);
  return out;
}

bool DecodeHello(const Slice& payload, uint32_t* version) {
  Slice in = payload;
  return GetFixed32(&in, version) && in.empty();
}

std::string EncodeWelcome(uint32_t version, uint64_t session_id) {
  std::string out;
  PutFixed32(&out, version);
  PutFixed64(&out, session_id);
  return out;
}

bool DecodeWelcome(const Slice& payload, uint32_t* version,
                   uint64_t* session_id) {
  Slice in = payload;
  return GetFixed32(&in, version) && GetFixed64(&in, session_id) &&
         in.empty();
}

std::string EncodeRejected(RejectCode code, const std::string& reason) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(code));
  PutString(&out, reason);
  return out;
}

bool DecodeRejected(const Slice& payload, RejectCode* code,
                    std::string* reason) {
  Slice in = payload;
  uint32_t raw;
  if (!GetFixed32(&in, &raw) || !GetString(&in, reason) || !in.empty()) {
    // A pre-v2 (or corrupt) payload: surface it whole as the reason so the
    // text is not lost, but classify as kUnknown — never retry on guess.
    *code = RejectCode::kUnknown;
    reason->assign(payload.data(), payload.size());
    return false;
  }
  *code = raw > static_cast<uint32_t>(RejectCode::kMemoryPressure)
              ? RejectCode::kUnknown
              : static_cast<RejectCode>(raw);
  return true;
}

std::string EncodeQuery(const std::string& sql,
                        const std::vector<Datum>& params) {
  std::string out;
  PutString(&out, sql);
  PutDatums(&out, params);
  return out;
}

bool DecodeQuery(const Slice& payload, std::string* sql,
                 std::vector<Datum>* params) {
  Slice in = payload;
  return GetString(&in, sql) && GetDatums(&in, params) && in.empty();
}

std::string EncodePrepared(uint64_t stmt_id, uint32_t param_count,
                           const std::vector<std::string>& columns) {
  std::string out;
  PutFixed64(&out, stmt_id);
  PutFixed32(&out, param_count);
  PutStrings(&out, columns);
  return out;
}

bool DecodePrepared(const Slice& payload, uint64_t* stmt_id,
                    uint32_t* param_count,
                    std::vector<std::string>* columns) {
  Slice in = payload;
  return GetFixed64(&in, stmt_id) && GetFixed32(&in, param_count) &&
         GetStrings(&in, columns) && in.empty();
}

std::string EncodeExecute(uint64_t stmt_id,
                          const std::vector<Datum>& params) {
  std::string out;
  PutFixed64(&out, stmt_id);
  PutDatums(&out, params);
  return out;
}

bool DecodeExecute(const Slice& payload, uint64_t* stmt_id,
                   std::vector<Datum>* params) {
  Slice in = payload;
  return GetFixed64(&in, stmt_id) && GetDatums(&in, params) && in.empty();
}

std::string EncodeColumns(const std::vector<std::string>& columns) {
  std::string out;
  PutStrings(&out, columns);
  return out;
}

bool DecodeColumns(const Slice& payload, std::vector<std::string>* columns) {
  Slice in = payload;
  return GetStrings(&in, columns) && in.empty();
}

std::string EncodeRowBatch(const std::vector<Row>& rows) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(rows.size()));
  PutFixed32(&out,
             static_cast<uint32_t>(rows.empty() ? 0 : rows.front().size()));
  for (const Row& row : rows) {
    for (const Datum& v : row) PutDatum(&out, v);
  }
  return out;
}

bool DecodeRowBatch(const Slice& payload, std::vector<Row>* rows) {
  Slice in = payload;
  uint32_t nrows, ncols;
  if (!GetFixed32(&in, &nrows) || !GetFixed32(&in, &ncols)) return false;
  if (nrows > in.size() || (ncols != 0 && nrows > in.size() / ncols)) {
    return false;  // More cells than payload bytes: corrupt count.
  }
  rows->clear();
  rows->reserve(nrows);
  for (uint32_t r = 0; r < nrows; ++r) {
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      Datum v;
      if (!GetDatum(&in, &v)) return false;
      row.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
  }
  return in.empty();
}

std::string EncodeDone(const DoneInfo& info) {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(info.affected_rows));
  PutFixed64(&out, static_cast<uint64_t>(info.rows_returned));
  PutString(&out, info.path);
  PutDouble(&out, info.plan_micros);
  PutDouble(&out, info.total_micros);
  return out;
}

bool DecodeDone(const Slice& payload, DoneInfo* info) {
  Slice in = payload;
  uint64_t affected, rows;
  if (!GetFixed64(&in, &affected) || !GetFixed64(&in, &rows) ||
      !GetString(&in, &info->path) || !GetDouble(&in, &info->plan_micros) ||
      !GetDouble(&in, &info->total_micros) || !in.empty()) {
    return false;
  }
  info->affected_rows = static_cast<int64_t>(affected);
  info->rows_returned = static_cast<int64_t>(rows);
  return true;
}

std::string EncodeError(const Status& status) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(status.code()));
  PutString(&out, status.message());
  return out;
}

bool DecodeError(const Slice& payload, Status* status) {
  Slice in = payload;
  uint32_t code;
  std::string message;
  if (!GetFixed32(&in, &code) || !GetString(&in, &message) || !in.empty()) {
    return false;
  }
  if (code == 0 || code > kMaxStatusCode) {
    *status = Status::Internal("unknown remote error: " + message);
  } else {
    *status = Status(static_cast<StatusCode>(code), std::move(message));
  }
  return true;
}

std::string EncodeStmtId(uint64_t stmt_id) {
  std::string out;
  PutFixed64(&out, stmt_id);
  return out;
}

bool DecodeStmtId(const Slice& payload, uint64_t* stmt_id) {
  Slice in = payload;
  return GetFixed64(&in, stmt_id) && in.empty();
}

namespace {

// Shared by snapshot chunks and WAL batches: u32 count, then that many
// length-prefixed opaque record payloads.
void PutRecords(std::string* dst, const std::vector<std::string>& records) {
  PutFixed32(dst, static_cast<uint32_t>(records.size()));
  for (const std::string& r : records) PutLengthPrefixed(dst, Slice(r));
}

bool GetRecords(Slice* input, std::vector<std::string>* records) {
  uint32_t n;
  if (!GetFixed32(input, &n)) return false;
  // Each record costs at least its length prefix; a count above the
  // remaining bytes is hostile, not short.
  if (n > input->size()) return false;
  records->clear();
  records->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice r;
    if (!GetLengthPrefixed(input, &r)) return false;
    records->emplace_back(r.data(), r.size());
  }
  return true;
}

}  // namespace

std::string EncodeReplSubscribe(uint64_t from_lsn) {
  std::string out;
  PutFixed64(&out, from_lsn);
  return out;
}

bool DecodeReplSubscribe(const Slice& payload, uint64_t* from_lsn) {
  Slice in = payload;
  return GetFixed64(&in, from_lsn) && in.empty();
}

std::string EncodeReplSnapshotBegin(uint64_t base_lsn,
                                    uint64_t record_count) {
  std::string out;
  PutFixed64(&out, base_lsn);
  PutFixed64(&out, record_count);
  return out;
}

bool DecodeReplSnapshotBegin(const Slice& payload, uint64_t* base_lsn,
                             uint64_t* record_count) {
  Slice in = payload;
  return GetFixed64(&in, base_lsn) && GetFixed64(&in, record_count) &&
         in.empty();
}

std::string EncodeReplSnapshotChunk(const std::vector<std::string>& records) {
  std::string out;
  PutRecords(&out, records);
  return out;
}

bool DecodeReplSnapshotChunk(const Slice& payload,
                             std::vector<std::string>* records) {
  Slice in = payload;
  return GetRecords(&in, records) && in.empty();
}

std::string EncodeReplSnapshotEnd(uint64_t base_lsn) {
  std::string out;
  PutFixed64(&out, base_lsn);
  return out;
}

bool DecodeReplSnapshotEnd(const Slice& payload, uint64_t* base_lsn) {
  Slice in = payload;
  return GetFixed64(&in, base_lsn) && in.empty();
}

std::string EncodeReplWalBatch(uint64_t start_lsn, uint64_t end_lsn,
                               const std::vector<std::string>& records) {
  std::string out;
  PutFixed64(&out, start_lsn);
  PutFixed64(&out, end_lsn);
  PutRecords(&out, records);
  return out;
}

bool DecodeReplWalBatch(const Slice& payload, uint64_t* start_lsn,
                        uint64_t* end_lsn,
                        std::vector<std::string>* records) {
  Slice in = payload;
  return GetFixed64(&in, start_lsn) && GetFixed64(&in, end_lsn) &&
         *start_lsn <= *end_lsn && GetRecords(&in, records) && in.empty();
}

std::string EncodeReplHeartbeat(uint64_t durable_lsn,
                                int64_t watermark_micros) {
  std::string out;
  PutFixed64(&out, durable_lsn);
  PutFixed64(&out, static_cast<uint64_t>(watermark_micros));
  return out;
}

bool DecodeReplHeartbeat(const Slice& payload, uint64_t* durable_lsn,
                         int64_t* watermark_micros) {
  Slice in = payload;
  uint64_t raw;
  if (!GetFixed64(&in, durable_lsn) || !GetFixed64(&in, &raw) ||
      !in.empty()) {
    return false;
  }
  *watermark_micros = static_cast<int64_t>(raw);
  return true;
}

}  // namespace odh::net
