#ifndef ODH_NET_FAULT_H_
#define ODH_NET_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

#include "common/random.h"

namespace odh::net {

/// What the network fault injector decides for one socket operation.
struct NetFaultDecision {
  enum class Kind {
    kNone,        // Proceed normally.
    kTransient,   // Fail with Unavailable before touching the socket; the
                  // same operation succeeds on retry.
    kShort,       // Deliver/accept at most `cap_bytes` per syscall: the
                  // peer sees fragmented frames and must reassemble.
    kStall,       // Sleep `stall_millis` before the operation — a frozen
                  // peer, visible to the other side as a missed deadline.
    kDisconnect,  // Shut the socket down mid-operation (for writes, after
                  // roughly half the bytes: a mid-frame hangup).
    kCorrupt,     // Flip one byte of the transferred data: the peer's
                  // frame parser must reject the stream, not trust it.
  };
  Kind kind = Kind::kNone;
  size_t cap_bytes = 0;
  int stall_millis = 0;
};

/// A seeded, deterministic fault schedule for the wire — the network twin
/// of storage::FaultPolicy (SimDisk). Two mechanisms compose:
///
///  - Scheduled faults target the Nth operation of a class (1-based over
///    the lifetime of the policy): DisconnectAtNthRead(3) kills the
///    connection on the third transport read. Deterministic by
///    construction; the chaos suite's schedules are built from these.
///  - Rate faults fail each operation independently with probability p
///    from a seeded xoshiro PRNG: identical seeds give identical fault
///    sequences. These model flaky links and exercise retry under load.
///
/// Attach to a net::Transport (per connection) or via ServerOptions /
/// ClientOptions. The policy is consulted before each socket operation.
/// Thread-safe: one policy may be shared by every session of a server.
/// The policy outlives the transports that consult it; they do not own it.
class FaultPolicy {
 public:
  explicit FaultPolicy(uint64_t seed = 0) : rng_(seed) {}

  // Scheduled faults. `n` is 1-based and counts operations of that class
  // since the policy was created. Ops: connect (client only), read, write.
  void FailNthConnect(uint64_t n) { Put(&connect_faults_, n, {NetFaultDecision::Kind::kTransient, 0, 0}); }
  void FailNthRead(uint64_t n) { Put(&read_faults_, n, {NetFaultDecision::Kind::kTransient, 0, 0}); }
  void FailNthWrite(uint64_t n) { Put(&write_faults_, n, {NetFaultDecision::Kind::kTransient, 0, 0}); }
  void ShortNthRead(uint64_t n, size_t cap) { Put(&read_faults_, n, {NetFaultDecision::Kind::kShort, cap, 0}); }
  void ShortNthWrite(uint64_t n, size_t cap) { Put(&write_faults_, n, {NetFaultDecision::Kind::kShort, cap, 0}); }
  void StallNthRead(uint64_t n, int millis) { Put(&read_faults_, n, {NetFaultDecision::Kind::kStall, 0, millis}); }
  void StallNthWrite(uint64_t n, int millis) { Put(&write_faults_, n, {NetFaultDecision::Kind::kStall, 0, millis}); }
  void DisconnectAtNthRead(uint64_t n) { Put(&read_faults_, n, {NetFaultDecision::Kind::kDisconnect, 0, 0}); }
  void DisconnectAtNthWrite(uint64_t n) { Put(&write_faults_, n, {NetFaultDecision::Kind::kDisconnect, 0, 0}); }
  void CorruptNthRead(uint64_t n) { Put(&read_faults_, n, {NetFaultDecision::Kind::kCorrupt, 0, 0}); }
  void CorruptNthWrite(uint64_t n) { Put(&write_faults_, n, {NetFaultDecision::Kind::kCorrupt, 0, 0}); }

  // Rate faults (all transient: fail-before-syscall, safe to retry).
  void set_connect_fault_rate(double p);
  void set_read_fault_rate(double p);
  void set_write_fault_rate(double p);

  // Consulted by Transport / Client::Connect. Each call advances the
  // per-class op counter.
  NetFaultDecision OnConnect();
  NetFaultDecision OnRead();
  NetFaultDecision OnWrite();

  uint64_t connects_seen() const;
  uint64_t reads_seen() const;
  uint64_t writes_seen() const;
  /// Total faults injected (any kind, any class).
  uint64_t faults_injected() const;

 private:
  using Schedule = std::map<uint64_t, NetFaultDecision>;

  void Put(Schedule* schedule, uint64_t n, NetFaultDecision decision);
  NetFaultDecision Decide(Schedule* schedule, uint64_t op, double rate);

  mutable std::mutex mu_;
  Random rng_;
  Schedule connect_faults_;
  Schedule read_faults_;
  Schedule write_faults_;
  double connect_rate_ = 0;
  double read_rate_ = 0;
  double write_rate_ = 0;
  uint64_t connects_ = 0;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t injected_ = 0;
};

}  // namespace odh::net

#endif  // ODH_NET_FAULT_H_
