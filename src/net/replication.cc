#include "net/replication.h"

#include "sql/engine.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/backoff.h"
#include "net/wire.h"

namespace odh::net {

using common::Deadline;
using common::ExponentialBackoff;

namespace {

/// Same transient/permanent split net::Client applies: only errors that a
/// fresh connection could cure are worth a reconnect.
bool RetryableStreamError(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kIoError:
      return true;
    default:
      return false;
  }
}

}  // namespace

// ReplicationSource ----------------------------------------------------------

ReplicationSource::ReplicationSource(core::OdhStore* store,
                                     ReplicationSourceOptions options,
                                     common::MetricsRegistry* metrics)
    : store_(store), options_(options) {
  if (options_.max_batch_bytes == 0) options_.max_batch_bytes = 64 * 1024;
  if (metrics != nullptr) {
    snapshots_metric_ = metrics->GetCounter("repl.snapshots_served");
    batches_metric_ = metrics->GetCounter("repl.batches_shipped");
    records_metric_ = metrics->GetCounter("repl.records_shipped");
  }
}

Status ReplicationSource::SendSnapshot(Transport* transport,
                                       uint64_t* resume_lsn) {
  ODH_ASSIGN_OR_RETURN(core::OdhStore::ReplicationSnapshot snap,
                       store_->SnapshotForReplication());
  const Deadline dl = Deadline::AfterMillisOrInfinite(options_.write_deadline_ms);
  ODH_RETURN_IF_ERROR(transport->SendFrame(
      FrameType::kReplSnapshotBegin,
      Slice(EncodeReplSnapshotBegin(snap.base_lsn, snap.records.size())),
      dl));
  std::vector<std::string> chunk;
  size_t chunk_bytes = 0;
  auto flush_chunk = [&]() -> Status {
    if (chunk.empty()) return Status::OK();
    Status sent = transport->SendFrame(
        FrameType::kReplSnapshotChunk, Slice(EncodeReplSnapshotChunk(chunk)),
        Deadline::AfterMillisOrInfinite(options_.write_deadline_ms));
    records_shipped_.fetch_add(static_cast<int64_t>(chunk.size()),
                               std::memory_order_relaxed);
    if (records_metric_ != nullptr) {
      records_metric_->Add(static_cast<int64_t>(chunk.size()));
    }
    chunk.clear();
    chunk_bytes = 0;
    return sent;
  };
  for (std::string& record : snap.records) {
    chunk_bytes += record.size();
    chunk.push_back(std::move(record));
    if (chunk_bytes >= options_.max_batch_bytes) {
      ODH_RETURN_IF_ERROR(flush_chunk());
    }
  }
  ODH_RETURN_IF_ERROR(flush_chunk());
  ODH_RETURN_IF_ERROR(transport->SendFrame(
      FrameType::kReplSnapshotEnd, Slice(EncodeReplSnapshotEnd(snap.base_lsn)),
      Deadline::AfterMillisOrInfinite(options_.write_deadline_ms)));
  snapshots_served_.fetch_add(1, std::memory_order_relaxed);
  if (snapshots_metric_ != nullptr) snapshots_metric_->Add(1);
  *resume_lsn = snap.base_lsn;
  return Status::OK();
}

Status ReplicationSource::Serve(Transport* transport, uint64_t from_lsn,
                                const std::function<bool()>& cancel) {
  uint64_t pos = from_lsn;
  if (pos == 0) {
    Status snapped = SendSnapshot(transport, &pos);
    // A subscriber hanging up mid-snapshot is a normal end of stream;
    // anything else (store iteration failure) poisons the serve.
    if (!snapped.ok()) {
      return RetryableStreamError(snapped) ? Status::OK() : snapped;
    }
  } else if (pos > store_->durable_lsn()) {
    return Status::OutOfRange(
        "subscribe lsn " + std::to_string(pos) +
        " is beyond this primary's durable log — stale or wrong primary");
  }

  auto last_heartbeat = std::chrono::steady_clock::now() -
                        std::chrono::milliseconds(options_.heartbeat_interval_ms);
  while (!cancel() && transport->valid()) {
    Result<core::Wal::TailChunk> chunk =
        store_->ReadWal(pos, options_.max_batch_bytes);
    ODH_RETURN_IF_ERROR(chunk.status());
    if (!chunk->records.empty()) {
      Status sent = transport->SendFrame(
          FrameType::kReplWalBatch,
          Slice(EncodeReplWalBatch(pos, chunk->next_lsn, chunk->records)),
          Deadline::AfterMillisOrInfinite(options_.write_deadline_ms));
      if (!sent.ok()) {
        return RetryableStreamError(sent) ? Status::OK() : sent;
      }
      batches_shipped_.fetch_add(1, std::memory_order_relaxed);
      records_shipped_.fetch_add(static_cast<int64_t>(chunk->records.size()),
                                 std::memory_order_relaxed);
      if (batches_metric_ != nullptr) batches_metric_->Add(1);
      if (records_metric_ != nullptr) {
        records_metric_->Add(static_cast<int64_t>(chunk->records.size()));
      }
      pos = chunk->next_lsn;
      continue;  // More may be waiting: keep shipping back to back.
    }
    // Caught up. Heartbeat on cadence so the replica can bound staleness
    // (and notice a dead primary by the heartbeats stopping).
    const auto now = std::chrono::steady_clock::now();
    if (now - last_heartbeat >=
        std::chrono::milliseconds(options_.heartbeat_interval_ms)) {
      last_heartbeat = now;
      Status sent = transport->SendFrame(
          FrameType::kReplHeartbeat,
          Slice(EncodeReplHeartbeat(store_->durable_lsn(),
                                    store_->MaxIngestedTimestamp())),
          Deadline::AfterMillisOrInfinite(options_.write_deadline_ms));
      if (!sent.ok()) {
        return RetryableStreamError(sent) ? Status::OK() : sent;
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.poll_interval_ms));
  }
  return Status::OK();
}

// ReplicationClient ----------------------------------------------------------

ReplicationClient::ReplicationClient(std::string host, int port,
                                     core::ReplicaApplier* applier,
                                     ReplicationClientOptions options)
    : host_(std::move(host)),
      port_(port),
      applier_(applier),
      options_(std::move(options)) {
  if (options_.flush_every_batches < 1) options_.flush_every_batches = 1;
}

ReplicationClient::~ReplicationClient() { Stop(); }

Status ReplicationClient::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("replication client already started");
  }
  tail_thread_ = std::thread([this] { TailLoop(); });
  return Status::OK();
}

void ReplicationClient::Stop() {
  stopping_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
}

Status ReplicationClient::fatal_error() const {
  std::lock_guard<std::mutex> lock(fatal_mu_);
  return fatal_error_;
}

void ReplicationClient::RegisterGauges(common::MetricsRegistry* metrics) {
  metrics->RegisterGauge("odh.repl.applied_lsn", [this] {
    return static_cast<double>(applier_->applied_lsn());
  });
  metrics->RegisterGauge("odh.repl.primary_durable_lsn", [this] {
    return static_cast<double>(applier_->primary_durable_lsn());
  });
  metrics->RegisterGauge("odh.repl.lag_bytes", [this] {
    return static_cast<double>(applier_->lag_bytes());
  });
  metrics->RegisterGauge("odh.repl.staleness_micros", [this] {
    return static_cast<double>(applier_->staleness_micros());
  });
  metrics->RegisterGauge("odh.repl.records_applied", [this] {
    return static_cast<double>(applier_->records_applied());
  });
  metrics->RegisterGauge("odh.repl.reconnects", [this] {
    return static_cast<double>(reconnects());
  });
}

Status ReplicationClient::RunOnce() {
  const RetryPolicy& retry = options_.retry;
  if (options_.fault_policy != nullptr) {
    NetFaultDecision fault = options_.fault_policy->OnConnect();
    if (fault.kind == NetFaultDecision::Kind::kStall) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault.stall_millis));
    } else if (fault.kind != NetFaultDecision::Kind::kNone) {
      return Status::Unavailable("injected connect fault");
    }
  }
  Deadline connect_dl =
      Deadline::AfterMillisOrInfinite(retry.connect_timeout_ms);
  ODH_ASSIGN_OR_RETURN(int fd, ConnectWithDeadline(host_, port_, connect_dl));
  Transport transport(fd, options_.fault_policy);

  ODH_RETURN_IF_ERROR(transport.SendFrame(
      FrameType::kHello, Slice(EncodeHello(kProtocolVersion)), connect_dl));
  Frame frame;
  ODH_ASSIGN_OR_RETURN(bool got, transport.ReadFrame(&frame, connect_dl));
  if (!got) return Status::IoError("primary closed during handshake");
  if (frame.type == FrameType::kRejected) {
    RejectCode code = RejectCode::kUnknown;
    std::string reason;
    DecodeRejected(Slice(frame.payload), &code, &reason);
    switch (code) {
      case RejectCode::kTooManySessions:
      case RejectCode::kDraining:
      case RejectCode::kMemoryPressure:
        return Status::ResourceExhausted("primary rejected subscriber: " +
                                         reason);
      default:
        return Status::FailedPrecondition("primary rejected subscriber: " +
                                          reason);
    }
  }
  uint32_t version = 0;
  uint64_t session_id = 0;
  if (frame.type != FrameType::kWelcome ||
      !DecodeWelcome(Slice(frame.payload), &version, &session_id)) {
    return Status::IoError("bad handshake reply from primary");
  }

  const uint64_t from_lsn = applier_->applied_lsn();
  ODH_RETURN_IF_ERROR(transport.SendFrame(
      FrameType::kReplSubscribe, Slice(EncodeReplSubscribe(from_lsn)),
      Deadline::AfterMillisOrInfinite(retry.rpc_deadline_ms)));
  if (ever_connected_) {
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
  ever_connected_ = true;
  subscribes_.fetch_add(1, std::memory_order_relaxed);

  uint64_t snapshot_base = 0;
  bool in_snapshot = false;
  int batches_since_flush = 0;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Heartbeats arrive every heartbeat_interval_ms, so the rpc deadline
    // doubles as a primary-liveness bound: a silent primary times the
    // read out and the tail loop reconnects.
    Result<bool> more = transport.ReadFrame(
        &frame, Deadline::AfterMillisOrInfinite(retry.rpc_deadline_ms));
    ODH_RETURN_IF_ERROR(more.status());
    if (!more.value()) return Status::IoError("primary closed the stream");
    switch (frame.type) {
      case FrameType::kReplSnapshotBegin: {
        uint64_t record_count = 0;
        if (!DecodeReplSnapshotBegin(Slice(frame.payload), &snapshot_base,
                                     &record_count)) {
          return Status::Corruption("bad snapshot-begin frame");
        }
        if (from_lsn != 0) {
          return Status::Corruption("unsolicited snapshot on a resume");
        }
        in_snapshot = true;
        break;
      }
      case FrameType::kReplSnapshotChunk: {
        std::vector<std::string> records;
        if (!in_snapshot ||
            !DecodeReplSnapshotChunk(Slice(frame.payload), &records)) {
          return Status::Corruption("bad snapshot chunk");
        }
        ODH_RETURN_IF_ERROR(applier_->ApplySnapshotRecords(records));
        break;
      }
      case FrameType::kReplSnapshotEnd: {
        uint64_t base = 0;
        if (!in_snapshot ||
            !DecodeReplSnapshotEnd(Slice(frame.payload), &base) ||
            base != snapshot_base) {
          return Status::Corruption("bad snapshot end");
        }
        in_snapshot = false;
        ODH_RETURN_IF_ERROR(applier_->FinishSnapshot(base));
        break;
      }
      case FrameType::kReplWalBatch: {
        uint64_t start_lsn = 0, end_lsn = 0;
        std::vector<std::string> records;
        if (in_snapshot || !DecodeReplWalBatch(Slice(frame.payload),
                                               &start_lsn, &end_lsn,
                                               &records)) {
          return Status::Corruption("bad wal batch frame");
        }
        ODH_RETURN_IF_ERROR(
            applier_->ApplyWalBatch(start_lsn, end_lsn, records));
        if (++batches_since_flush >= options_.flush_every_batches) {
          ODH_RETURN_IF_ERROR(applier_->Flush());
          batches_since_flush = 0;
        }
        break;
      }
      case FrameType::kReplHeartbeat: {
        uint64_t durable = 0;
        int64_t watermark = 0;
        if (!DecodeReplHeartbeat(Slice(frame.payload), &durable,
                                 &watermark)) {
          return Status::Corruption("bad heartbeat frame");
        }
        applier_->ObserveHeartbeat(durable, watermark);
        // Idle moment: make the applied prefix durable (no-op when
        // nothing new arrived since the last flush).
        ODH_RETURN_IF_ERROR(applier_->Flush());
        batches_since_flush = 0;
        break;
      }
      case FrameType::kError: {
        Status remote;
        if (!DecodeError(Slice(frame.payload), &remote)) {
          return Status::IoError("bad error frame from primary");
        }
        return remote;
      }
      default:
        return Status::Corruption("unexpected frame in replication stream");
    }
  }
  return Status::OK();  // Stop() requested.
}

void ReplicationClient::TailLoop() {
  ExponentialBackoff backoff(options_.retry.initial_backoff_ms,
                             options_.retry.max_backoff_ms,
                             options_.retry.backoff_seed);
  while (!stopping_.load(std::memory_order_acquire)) {
    const int64_t subscribes_before =
        subscribes_.load(std::memory_order_relaxed);
    Status status = RunOnce();
    if (stopping_.load(std::memory_order_acquire)) break;
    if (status.ok()) continue;
    if (!RetryableStreamError(status)) {
      // A gap, corruption, or rejection reconnecting cannot cure: park the
      // loop and surface the error through fatal_error(). (Resuming needs
      // operator action — typically wiping the replica and
      // re-bootstrapping from LSN 0.)
      std::lock_guard<std::mutex> lock(fatal_mu_);
      fatal_error_ = status;
      return;
    }
    // A successful subscribe happened this cycle: the link was healthy
    // for a while, so start the next backoff schedule fresh.
    if (subscribes_.load(std::memory_order_relaxed) != subscribes_before) {
      backoff = ExponentialBackoff(options_.retry.initial_backoff_ms,
                                   options_.retry.max_backoff_ms,
                                   options_.retry.backoff_seed);
    }
    // Sleep the backoff in small slices so Stop() stays responsive.
    int64_t remaining_ms = backoff.NextDelayMillis();
    while (remaining_ms > 0 && !stopping_.load(std::memory_order_acquire)) {
      const int64_t slice = remaining_ms < 5 ? remaining_ms : 5;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining_ms -= slice;
    }
  }
}

void ExposeReplicationLag(core::ReplicaApplier* applier,
                          sql::SqlEngine* engine) {
  engine->set_replication_info_provider([applier] {
    sql::SqlEngine::ReplicationInfo info;
    info.is_replica = true;
    info.applied_lsn = applier->applied_lsn();
    info.primary_durable_lsn = applier->primary_durable_lsn();
    info.lag_bytes = applier->lag_bytes();
    info.watermark_micros = applier->applied_watermark();
    info.staleness_micros = applier->staleness_micros();
    return info;
  });
}

}  // namespace odh::net
