#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "common/stopwatch.h"
#include "net/wire.h"
#include "sql/session.h"

#include "net/replication.h"

namespace odh::net {

using common::Deadline;

const char* ToString(ServerState state) {
  switch (state) {
    case ServerState::kCreated:
      return "created";
    case ServerState::kRunning:
      return "running";
    case ServerState::kDraining:
      return "draining";
    case ServerState::kStopped:
      return "stopped";
  }
  return "unknown";
}

const char* ToString(ServerRole role) {
  switch (role) {
    case ServerRole::kPrimary:
      return "primary";
    case ServerRole::kReplica:
      return "replica";
  }
  return "unknown";
}

HistorianServer::HistorianServer(sql::SqlEngine* engine,
                                 ServerOptions options,
                                 common::MetricsRegistry* metrics)
    : engine_(engine), options_(std::move(options)) {
  if (options_.max_sessions < 1) options_.max_sessions = 1;
  if (options_.rows_per_batch < 1) options_.rows_per_batch = 1;
  if (metrics != nullptr) {
    sessions_total_metric_ = metrics->GetCounter("net.sessions_total");
    sessions_rejected_metric_ = metrics->GetCounter("net.sessions_rejected");
    mem_rejections_metric_ = metrics->GetCounter("net.mem_rejections");
    frames_sent_metric_ = metrics->GetCounter("net.frames_sent");
    rows_streamed_metric_ = metrics->GetCounter("net.rows_streamed");
    read_timeouts_metric_ = metrics->GetCounter("net.read_timeouts");
    write_timeouts_metric_ = metrics->GetCounter("net.write_timeouts");
    drained_sessions_metric_ = metrics->GetCounter("net.drained_sessions");
    force_closed_metric_ = metrics->GetCounter("net.sessions_force_closed");
    request_micros_metric_ = metrics->GetHistogram("net.request_micros");
    metrics->RegisterGauge("net.sessions_open", [this] {
      return static_cast<double>(
          sessions_open_.load(std::memory_order_relaxed));
    });
  }
}

HistorianServer::~HistorianServer() { Stop(); }

Result<int> HistorianServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (state() != ServerState::kCreated) {
    return Status::FailedPrecondition(
        std::string("cannot Start a ") + ToString(state()) +
        " server (only created -> running is legal)");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::IoError("bind: " + std::string(std::strerror(errno)));
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    ::close(fd);
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));
  listen_fd_.store(fd, std::memory_order_release);

  workers_ = std::make_unique<common::ThreadPool>(options_.max_sessions);
  // Publish kRunning before the accept thread exists: AcceptLoop's first
  // state() check must not be able to observe kCreated and exit, leaving
  // a listener whose backlog accepts connections nobody ever serves.
  state_.store(ServerState::kRunning, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HistorianServer::ShutdownSessions(bool only_idle) {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (auto& [id, slot] : sessions_) {
    if (only_idle && slot->in_statement.load(std::memory_order_acquire)) {
      continue;
    }
    slot->transport.Shutdown();
  }
}

Status HistorianServer::Drain(int timeout_ms) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (state() != ServerState::kRunning && state() != ServerState::kDraining) {
    return Status::FailedPrecondition(
        std::string("cannot Drain a ") + ToString(state()) +
        " server (legal from running or draining)");
  }
  state_.store(ServerState::kDraining, std::memory_order_release);
  // Stop accepting: closing the listener bounces new connections at the
  // TCP layer and ends the accept loop.
  int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  // Idle sessions (waiting for their next request) hold no in-flight work:
  // cut them now so only genuinely busy sessions spend the drain budget.
  ShutdownSessions(/*only_idle=*/true);
  // Let in-flight statements run to completion. Handlers notice draining_
  // after finishing a statement and exit on their own.
  Deadline budget = Deadline::AfterMillisOrInfinite(timeout_ms);
  while (sessions_open_.load(std::memory_order_relaxed) > 0 &&
         !budget.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Budget spent: whatever is still running gets the axe.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [id, slot] : sessions_) {
      slot->forced.store(true, std::memory_order_release);
      sessions_force_closed_.fetch_add(1, std::memory_order_relaxed);
      if (force_closed_metric_ != nullptr) force_closed_metric_->Add(1);
      slot->transport.Shutdown();
    }
  }
  return Status::OK();
}

void HistorianServer::Stop() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (state() == ServerState::kStopped) return;
  state_.store(ServerState::kStopped, std::memory_order_release);
  int lfd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (lfd >= 0) {
    ::shutdown(lfd, SHUT_RDWR);
    ::close(lfd);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock handlers stuck in poll/read; each closes its own transport.
  ShutdownSessions(/*only_idle=*/false);
  // ThreadPool teardown joins the workers, i.e. waits for every admitted
  // session handler to return.
  workers_.reset();
}

void HistorianServer::AcceptLoop() {
  while (state() == ServerState::kRunning) {
    int lfd = listen_fd_.load(std::memory_order_acquire);
    if (lfd < 0) return;  // Stop/Drain already closed the listener.
    int fd = ::accept(lfd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed (Stop/Drain) or fatal accept error.
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const Deadline reject_dl =
        Deadline::AfterMillisOrInfinite(options_.write_deadline_ms);
    // A connection that raced the start of a drain is turned away with a
    // retryable code: its natural next stop is this server's replacement.
    if (state() == ServerState::kDraining) {
      Transport t(fd);
      (void)t.SendFrame(
          FrameType::kRejected,
          Slice(EncodeRejected(RejectCode::kDraining, "server draining")),
          reject_dl);
      continue;  // Transport dtor closes fd.
    }
    // Admission control. Only this thread admits, so the check-and-admit
    // below cannot overshoot max_sessions.
    if (sessions_open_.load(std::memory_order_relaxed) >=
        options_.max_sessions) {
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (sessions_rejected_metric_ != nullptr) {
        sessions_rejected_metric_->Add(1);
      }
      Transport t(fd);
      (void)t.SendFrame(FrameType::kRejected,
                        Slice(EncodeRejected(RejectCode::kTooManySessions,
                                             "server at max_sessions")),
                        reject_dl);
      continue;
    }
    // Memory admission gate: while reserved bytes sit at or above the
    // gate, new sessions would only deepen the pressure — turn them away
    // retryably and let in-flight queries release as they finish.
    const int64_t gate = options_.memory_gate_bytes > 0
                             ? options_.memory_gate_bytes
                             : engine_->memory_root()->limit();
    if (gate > 0 && engine_->memory_root()->used() >= gate) {
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      mem_rejections_.fetch_add(1, std::memory_order_relaxed);
      if (sessions_rejected_metric_ != nullptr) {
        sessions_rejected_metric_->Add(1);
      }
      if (mem_rejections_metric_ != nullptr) mem_rejections_metric_->Add(1);
      Transport t(fd);
      (void)t.SendFrame(FrameType::kRejected,
                        Slice(EncodeRejected(RejectCode::kMemoryPressure,
                                             "server memory budget full")),
                        reject_dl);
      continue;
    }
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
    if (sessions_total_metric_ != nullptr) sessions_total_metric_->Add(1);
    const uint64_t session_id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    auto slot = std::make_shared<SessionSlot>(fd, options_.fault_policy);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      sessions_[session_id] = slot;
    }
    workers_->Submit([this, slot, session_id] {
      ServeConnection(slot.get(), session_id);
      const bool graceful_drain =
          state() == ServerState::kDraining &&
          !slot->forced.load(std::memory_order_acquire);
      slot->transport.Close();
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        sessions_.erase(session_id);
      }
      if (graceful_drain) {
        drained_sessions_.fetch_add(1, std::memory_order_relaxed);
        if (drained_sessions_metric_ != nullptr) {
          drained_sessions_metric_->Add(1);
        }
      }
      sessions_open_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void HistorianServer::ServeConnection(SessionSlot* slot,
                                      uint64_t session_id) {
  Transport& transport = slot->transport;
  Frame frame;

  auto write_deadline = [this] {
    return Deadline::AfterMillisOrInfinite(options_.write_deadline_ms);
  };
  auto send = [&](FrameType type, const std::string& payload) -> bool {
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (frames_sent_metric_ != nullptr) frames_sent_metric_->Add(1);
    Status sent =
        transport.SendFrame(type, Slice(payload), write_deadline());
    if (sent.IsDeadlineExceeded()) {
      write_timeouts_.fetch_add(1, std::memory_order_relaxed);
      if (write_timeouts_metric_ != nullptr) write_timeouts_metric_->Add(1);
    }
    return sent.ok();
  };
  // Reads the next request frame under `dl`. False = this session is over
  // (EOF, error, timeout — timeouts counted as slow-client protection).
  auto read_request = [&](const Deadline& dl) -> bool {
    Result<bool> got = transport.ReadFrame(&frame, dl);
    if (got.ok()) return got.value();
    if (got.status().IsDeadlineExceeded()) {
      read_timeouts_.fetch_add(1, std::memory_order_relaxed);
      if (read_timeouts_metric_ != nullptr) read_timeouts_metric_->Add(1);
    }
    return false;
  };

  // Handshake: the first frame must be a version-compatible Hello, inside
  // the handshake budget.
  {
    if (!read_request(
            Deadline::AfterMillisOrInfinite(options_.handshake_deadline_ms)) ||
        frame.type != FrameType::kHello) {
      return;
    }
    uint32_t version = 0;
    if (!DecodeHello(Slice(frame.payload), &version) ||
        version != kProtocolVersion) {
      send(FrameType::kRejected,
           EncodeRejected(RejectCode::kIncompatibleVersion,
                          "unsupported protocol version"));
      return;
    }
    if (!send(FrameType::kWelcome,
              EncodeWelcome(kProtocolVersion, session_id))) {
      return;
    }
  }

  sql::Session session(engine_);
  if (options_.role == ServerRole::kReplica) session.set_read_only(true);
  std::map<uint64_t, std::shared_ptr<const sql::PreparedStatement>> stmts;
  uint64_t next_stmt_id = 1;

  // Streams the result of one statement back as Header RowBatch* Done.
  // Returns false when the socket broke (caller hangs up).
  auto stream_result = [&](sql::QueryStream* stream) -> bool {
    if (!send(FrameType::kResultHeader, EncodeColumns(stream->columns()))) {
      return false;
    }
    std::vector<Row> batch;
    batch.reserve(static_cast<size_t>(options_.rows_per_batch));
    while (true) {
      Row row;
      Result<bool> more = stream->Next(&row);
      if (!more.ok()) {
        // Mid-stream failure: the rows already sent stand; the error frame
        // tells the client the stream is poisoned, the session lives on.
        return send(FrameType::kError, EncodeError(more.status()));
      }
      if (more.value()) {
        batch.push_back(std::move(row));
        if (batch.size() < static_cast<size_t>(options_.rows_per_batch)) {
          continue;
        }
      }
      if (!batch.empty()) {
        rows_streamed_.fetch_add(static_cast<int64_t>(batch.size()),
                                 std::memory_order_relaxed);
        if (rows_streamed_metric_ != nullptr) {
          rows_streamed_metric_->Add(static_cast<int64_t>(batch.size()));
        }
        if (!send(FrameType::kRowBatch, EncodeRowBatch(batch))) return false;
        batch.clear();
      }
      if (!more.value()) break;
    }
    DoneInfo done;
    done.affected_rows = stream->affected_rows();
    done.rows_returned = stream->profile().rows_returned;
    done.path = stream->profile().path;
    done.plan_micros = stream->profile().plan_micros;
    done.total_micros = stream->profile().total_micros;
    return send(FrameType::kDone, EncodeDone(done));
  };

  while (true) {
    // Waiting for the next request is the idle state: drain cuts sessions
    // here immediately, and the idle deadline reclaims dead peers.
    if (!read_request(
            Deadline::AfterMillisOrInfinite(options_.read_deadline_ms))) {
      return;
    }
    slot->in_statement.store(true, std::memory_order_release);
    Stopwatch request_timer;
    bool session_over = false;
    switch (frame.type) {
      case FrameType::kQuery: {
        std::string sql;
        std::vector<Datum> params;
        if (!DecodeQuery(Slice(frame.payload), &sql, &params)) {
          session_over = true;
          break;
        }
        auto stream = session.ExecuteStreaming(sql, params);
        if (!stream.ok()) {
          session_over = !send(FrameType::kError, EncodeError(stream.status()));
          break;
        }
        session_over = !stream_result(stream.value().get());
        break;
      }
      case FrameType::kPrepare: {
        Slice in(frame.payload);
        std::string sql;
        if (!GetString(&in, &sql) || !in.empty()) {
          session_over = true;
          break;
        }
        auto prepared = session.Prepare(sql);
        if (!prepared.ok()) {
          session_over =
              !send(FrameType::kError, EncodeError(prepared.status()));
          break;
        }
        const uint64_t id = next_stmt_id++;
        stmts[id] = prepared.value();
        session_over = !send(
            FrameType::kPrepared,
            EncodePrepared(
                id, static_cast<uint32_t>(prepared.value()->param_count()),
                prepared.value()->columns()));
        break;
      }
      case FrameType::kExecute: {
        uint64_t id = 0;
        std::vector<Datum> params;
        if (!DecodeExecute(Slice(frame.payload), &id, &params)) {
          session_over = true;
          break;
        }
        auto it = stmts.find(id);
        if (it == stmts.end()) {
          session_over = !send(
              FrameType::kError,
              EncodeError(Status::NotFound("no such prepared statement")));
          break;
        }
        auto stream = session.ExecuteStreamingPrepared(it->second, params);
        if (!stream.ok()) {
          session_over = !send(FrameType::kError, EncodeError(stream.status()));
          break;
        }
        session_over = !stream_result(stream.value().get());
        break;
      }
      case FrameType::kCloseStmt: {
        uint64_t id = 0;
        if (!DecodeStmtId(Slice(frame.payload), &id)) {
          session_over = true;
          break;
        }
        stmts.erase(id);
        break;
      }
      case FrameType::kReplSubscribe: {
        uint64_t from_lsn = 0;
        if (!DecodeReplSubscribe(Slice(frame.payload), &from_lsn)) {
          session_over = true;
          break;
        }
        if (options_.role != ServerRole::kPrimary ||
            options_.replication == nullptr) {
          send(FrameType::kError,
               EncodeError(Status::FailedPrecondition(
                   options_.role != ServerRole::kPrimary
                       ? "replication subscribe on a replica"
                       : "server has no replication source")));
          session_over = true;
          break;
        }
        // The stream is idle-by-design between batches: clear
        // in_statement so a drain's idle sweep cuts the subscriber
        // instead of waiting a full drain budget on it.
        slot->in_statement.store(false, std::memory_order_release);
        Status served = options_.replication->Serve(
            &transport, from_lsn,
            [this] { return state() != ServerState::kRunning; });
        if (!served.ok() && transport.valid()) {
          send(FrameType::kError, EncodeError(served));
        }
        session_over = true;
        break;
      }
      case FrameType::kBye:
        session_over = true;
        break;
      default:
        session_over = true;  // Client sent a server-only frame.
        break;
    }
    slot->in_statement.store(false, std::memory_order_release);
    if (request_micros_metric_ != nullptr) {
      request_micros_metric_->Observe(request_timer.ElapsedMicros());
    }
    if (session_over) return;
    // Graceful drain (or stop): this statement was allowed to finish.
    if (state() != ServerState::kRunning) return;
  }
}

}  // namespace odh::net
