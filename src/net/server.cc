#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "net/wire.h"
#include "sql/session.h"

namespace odh::net {
namespace {

/// send() until everything is out (or a hard error). EINTR-robust;
/// MSG_NOSIGNAL turns a peer hang-up into EPIPE instead of SIGPIPE.
Status WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("write: " + std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads one frame off the socket into *frame, buffering through *buffer
/// (carry-over bytes between calls). False value = clean EOF at a frame
/// boundary; error = I/O failure or corrupt stream.
Result<bool> ReadFrame(int fd, std::string* buffer, Frame* frame) {
  while (true) {
    ODH_ASSIGN_OR_RETURN(size_t consumed, ParseFrame(Slice(*buffer), frame));
    if (consumed > 0) {
      buffer->erase(0, consumed);
      return true;
    }
    char chunk[4096];
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read: " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      if (!buffer->empty()) {
        return Status::IoError("connection closed mid-frame");
      }
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace

HistorianServer::HistorianServer(sql::SqlEngine* engine,
                                 ServerOptions options,
                                 common::MetricsRegistry* metrics)
    : engine_(engine), options_(std::move(options)) {
  if (options_.max_sessions < 1) options_.max_sessions = 1;
  if (options_.rows_per_batch < 1) options_.rows_per_batch = 1;
  if (metrics != nullptr) {
    sessions_total_metric_ = metrics->GetCounter("net.sessions_total");
    sessions_rejected_metric_ = metrics->GetCounter("net.sessions_rejected");
    frames_sent_metric_ = metrics->GetCounter("net.frames_sent");
    rows_streamed_metric_ = metrics->GetCounter("net.rows_streamed");
    request_micros_metric_ = metrics->GetHistogram("net.request_micros");
    metrics->RegisterGauge("net.sessions_open", [this] {
      return static_cast<double>(
          sessions_open_.load(std::memory_order_relaxed));
    });
  }
}

HistorianServer::~HistorianServer() { Stop(); }

Result<int> HistorianServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError("socket: " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind: " + std::string(std::strerror(errno)));
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = static_cast<int>(ntohs(addr.sin_port));

  workers_ = std::make_unique<common::ThreadPool>(options_.max_sessions);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void HistorianServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // Unblock handlers stuck in read(); they close their own fds.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  // ThreadPool teardown joins the workers, i.e. waits for every admitted
  // session handler to return.
  workers_.reset();
}

void HistorianServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // Listener closed (Stop) or fatal accept error.
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Admission control. Only this thread admits, so the check-and-admit
    // below cannot overshoot max_sessions.
    if (sessions_open_.load(std::memory_order_relaxed) >=
        options_.max_sessions) {
      sessions_rejected_.fetch_add(1, std::memory_order_relaxed);
      if (sessions_rejected_metric_ != nullptr) {
        sessions_rejected_metric_->Add(1);
      }
      std::string out;
      AppendFrame(&out, FrameType::kRejected,
                  Slice("server at max_sessions, retry later"));
      (void)WriteAll(fd, out.data(), out.size());  // Best effort.
      ::close(fd);
      continue;
    }
    sessions_open_.fetch_add(1, std::memory_order_relaxed);
    if (sessions_total_metric_ != nullptr) sessions_total_metric_->Add(1);
    const uint64_t session_id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(fd);
    }
    workers_->Submit([this, fd, session_id] {
      ServeConnection(fd, session_id);
      {
        std::lock_guard<std::mutex> lock(conn_mu_);
        conn_fds_.erase(fd);
      }
      ::close(fd);
      sessions_open_.fetch_sub(1, std::memory_order_relaxed);
    });
  }
}

void HistorianServer::ServeConnection(int fd, uint64_t session_id) {
  std::string rdbuf;
  Frame frame;

  auto send = [&](FrameType type, const std::string& payload) -> bool {
    std::string out;
    AppendFrame(&out, type, Slice(payload));
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    if (frames_sent_metric_ != nullptr) frames_sent_metric_->Add(1);
    return WriteAll(fd, out.data(), out.size()).ok();
  };

  // Handshake: the first frame must be a version-compatible Hello.
  {
    Result<bool> got = ReadFrame(fd, &rdbuf, &frame);
    if (!got.ok() || !got.value() || frame.type != FrameType::kHello) return;
    uint32_t version = 0;
    if (!DecodeHello(Slice(frame.payload), &version) ||
        version != kProtocolVersion) {
      send(FrameType::kRejected, "unsupported protocol version");
      return;
    }
    if (!send(FrameType::kWelcome,
              EncodeWelcome(kProtocolVersion, session_id))) {
      return;
    }
  }

  sql::Session session(engine_);
  std::map<uint64_t, std::shared_ptr<const sql::PreparedStatement>> stmts;
  uint64_t next_stmt_id = 1;

  // Streams the result of one statement back as Header RowBatch* Done.
  // Returns false when the socket broke (caller hangs up).
  auto stream_result = [&](sql::QueryStream* stream) -> bool {
    if (!send(FrameType::kResultHeader, EncodeColumns(stream->columns()))) {
      return false;
    }
    std::vector<Row> batch;
    batch.reserve(static_cast<size_t>(options_.rows_per_batch));
    while (true) {
      Row row;
      Result<bool> more = stream->Next(&row);
      if (!more.ok()) {
        // Mid-stream failure: the rows already sent stand; the error frame
        // tells the client the stream is poisoned, the session lives on.
        return send(FrameType::kError, EncodeError(more.status()));
      }
      if (more.value()) {
        batch.push_back(std::move(row));
        if (batch.size() < static_cast<size_t>(options_.rows_per_batch)) {
          continue;
        }
      }
      if (!batch.empty()) {
        rows_streamed_.fetch_add(static_cast<int64_t>(batch.size()),
                                 std::memory_order_relaxed);
        if (rows_streamed_metric_ != nullptr) {
          rows_streamed_metric_->Add(static_cast<int64_t>(batch.size()));
        }
        if (!send(FrameType::kRowBatch, EncodeRowBatch(batch))) return false;
        batch.clear();
      }
      if (!more.value()) break;
    }
    DoneInfo done;
    done.affected_rows = stream->affected_rows();
    done.rows_returned = stream->profile().rows_returned;
    done.path = stream->profile().path;
    done.plan_micros = stream->profile().plan_micros;
    done.total_micros = stream->profile().total_micros;
    return send(FrameType::kDone, EncodeDone(done));
  };

  while (true) {
    Result<bool> got = ReadFrame(fd, &rdbuf, &frame);
    if (!got.ok() || !got.value()) return;  // EOF, I/O error or garbage.
    Stopwatch request_timer;
    switch (frame.type) {
      case FrameType::kQuery: {
        std::string sql;
        std::vector<Datum> params;
        if (!DecodeQuery(Slice(frame.payload), &sql, &params)) return;
        auto stream = session.ExecuteStreaming(sql, params);
        if (!stream.ok()) {
          if (!send(FrameType::kError, EncodeError(stream.status()))) return;
          break;
        }
        if (!stream_result(stream.value().get())) return;
        break;
      }
      case FrameType::kPrepare: {
        Slice in(frame.payload);
        std::string sql;
        if (!GetString(&in, &sql) || !in.empty()) return;
        auto prepared = session.Prepare(sql);
        if (!prepared.ok()) {
          if (!send(FrameType::kError, EncodeError(prepared.status()))) {
            return;
          }
          break;
        }
        const uint64_t id = next_stmt_id++;
        stmts[id] = prepared.value();
        if (!send(FrameType::kPrepared,
                  EncodePrepared(
                      id,
                      static_cast<uint32_t>(prepared.value()->param_count()),
                      prepared.value()->columns()))) {
          return;
        }
        break;
      }
      case FrameType::kExecute: {
        uint64_t id = 0;
        std::vector<Datum> params;
        if (!DecodeExecute(Slice(frame.payload), &id, &params)) return;
        auto it = stmts.find(id);
        if (it == stmts.end()) {
          if (!send(FrameType::kError,
                    EncodeError(Status::NotFound(
                        "no such prepared statement")))) {
            return;
          }
          break;
        }
        auto stream = session.ExecuteStreamingPrepared(it->second, params);
        if (!stream.ok()) {
          if (!send(FrameType::kError, EncodeError(stream.status()))) return;
          break;
        }
        if (!stream_result(stream.value().get())) return;
        break;
      }
      case FrameType::kCloseStmt: {
        uint64_t id = 0;
        if (!DecodeStmtId(Slice(frame.payload), &id)) return;
        stmts.erase(id);
        break;
      }
      case FrameType::kBye:
        return;
      default:
        return;  // Client sent a server-only frame: protocol violation.
    }
    if (request_micros_metric_ != nullptr) {
      request_micros_metric_->Observe(request_timer.ElapsedMicros());
    }
  }
}

}  // namespace odh::net
