#ifndef ODH_RELATIONAL_TABLE_H_
#define ODH_RELATIONAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "index/btree.h"
#include "relational/heap_file.h"
#include "relational/row_codec.h"
#include "relational/schema.h"

namespace odh::relational {

/// Tuning knobs that differentiate the benchmark's relational baselines
/// (see DESIGN.md: one engine, two profiles).
struct TableOptions {
  /// Reserved bytes per stored row (models row headers / txn metadata).
  uint32_t row_header_bytes = 16;
  /// When false, inserts skip the WAL entirely (ODH's transaction-free
  /// ingestion path); Commit() becomes a no-op.
  bool enable_wal = true;
  /// Bytes of write-ahead log written per committed row batch, in addition
  /// to the encoded rows (models commit records / fsync padding).
  uint32_t wal_commit_overhead_bytes = 64;
};

/// Definition of a secondary index on a table.
struct IndexDef {
  std::string name;
  std::vector<int> columns;  // Column positions forming the key prefix.
};

/// A heap table with any number of secondary B+tree indexes.
///
/// Every Insert updates all indexes record-at-a-time — deliberately the
/// classic relational write path whose B-tree maintenance cost the paper
/// identifies as the baseline bottleneck ("relational databases require a
/// B-Tree update for each record insert").
///
/// Durability is modeled with a write-ahead log: inserted rows accumulate
/// in a WAL buffer that Commit() writes to a log file in page units. Calling
/// Commit() per row models JDBC autocommit; calling it per 1000 rows models
/// the paper's executeBatch configuration.
class Table {
 public:
  static Result<std::unique_ptr<Table>> Create(storage::BufferPool* pool,
                                               const std::string& name,
                                               Schema schema,
                                               TableOptions options = {});

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const RowCodec& codec() const { return codec_; }
  int64_t row_count() const { return heap_->record_count(); }

  /// Adds a secondary index over `def.columns` (must be valid positions).
  /// Existing rows are indexed retroactively.
  Status AddIndex(const IndexDef& def);

  int num_indexes() const { return static_cast<int>(indexes_.size()); }
  const IndexDef& index_def(int i) const { return indexes_[i].def; }

  /// Returns the position of the index whose key prefix starts with
  /// `column`, or -1.
  int FindIndexOnColumn(int column) const;

  /// Inserts a row (buffered in the WAL until Commit).
  Result<Rid> Insert(const Row& row);

  /// Flushes the WAL buffer (the per-transaction durability cost).
  Status Commit();

  /// Fetches the row stored at `rid`.
  Result<Row> Get(const Rid& rid);

  /// Fetches only `columns` (ascending positions) of the row at `rid`.
  Result<Row> GetColumns(const Rid& rid, const std::vector<int>& columns);

  /// Deletes the row at `rid`, maintaining indexes.
  Status Delete(const Rid& rid);

  /// Sequential scan of all rows.
  class Iterator {
   public:
    Status SeekToFirst() { return it_.SeekToFirst(); }
    /// Resumes a chunked scan after `rid` (physical order).
    Status SeekAfter(const Rid& rid) { return it_.SeekAfter(rid); }
    bool Valid() const { return it_.Valid(); }
    Status Next() { return it_.Next(); }
    Result<Row> row() const;
    Rid rid() const { return it_.rid(); }

   private:
    friend class Table;
    Iterator(Table* table, HeapFile::Iterator it)
        : table_(table), it_(std::move(it)) {}

    Table* table_;
    HeapFile::Iterator it_;
  };

  Iterator NewIterator() { return Iterator(this, heap_->NewIterator()); }

  /// Range scan over index `index_no`: yields Rids of rows whose index key
  /// is in [lower, upper] (encoded key prefixes; empty lower = from start,
  /// empty upper = to end).
  class IndexIterator {
   public:
    bool Valid() const { return valid_; }
    Status Next();
    Rid rid() const { return rid_; }
    /// The full index key (prefix + rid suffix).
    Slice key() const { return it_->key(); }

   private:
    friend class Table;
    IndexIterator(std::unique_ptr<index::BTree::Iterator> it,
                  std::string upper)
        : it_(std::move(it)), upper_(std::move(upper)) {}

    void CheckBounds();

    std::unique_ptr<index::BTree::Iterator> it_;
    std::string upper_;
    bool valid_ = false;
    Rid rid_;
  };

  Result<IndexIterator> IndexScan(int index_no, const std::string& lower_key,
                                  const std::string& upper_key);

  /// Builds the (uniquified) index key for `row` on index `index_no`.
  std::string IndexKeyFor(int index_no, const Row& row,
                          const Rid& rid) const;

  /// Bytes of WAL written so far (for I/O accounting in benches).
  uint64_t wal_bytes_written() const { return wal_bytes_written_; }

  /// Approximate heap size in bytes (allocated pages x page size). Used by
  /// the SQL planner's cost model.
  uint64_t ApproxHeapBytes() const;

  /// Releases all storage (heap, WAL and index files) of this table. The
  /// table must not be used afterwards; used by Database::DropTable.
  Status DestroyStorage();

 private:
  struct IndexEntry {
    IndexDef def;
    std::unique_ptr<index::BTree> tree;
  };

  Table(storage::BufferPool* pool, std::string name, Schema schema,
        TableOptions options)
      : pool_(pool),
        name_(std::move(name)),
        schema_(std::move(schema)),
        options_(options),
        codec_(&schema_, options.row_header_bytes) {}

  storage::BufferPool* pool_;
  std::string name_;
  Schema schema_;
  TableOptions options_;
  RowCodec codec_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<IndexEntry> indexes_;

  storage::FileId wal_file_ = 0;
  std::string wal_buffer_;
  uint64_t wal_bytes_written_ = 0;
};

}  // namespace odh::relational

#endif  // ODH_RELATIONAL_TABLE_H_
