#ifndef ODH_RELATIONAL_HEAP_FILE_H_
#define ODH_RELATIONAL_HEAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"

namespace odh::relational {

/// Record id: the physical address of a heap record.
struct Rid {
  storage::PageNo page = 0;
  uint32_t slot = 0;

  bool operator==(const Rid&) const = default;

  /// 8-byte fixed encoding used as B-tree index values / key suffixes.
  std::string Encode() const;
  static bool Decode(Slice input, Rid* rid);
};

/// Unordered record storage in slotted pages. Records larger than a page
/// are stored in overflow page chains (needed for ODH ValueBlobs, which can
/// exceed a page at large batch sizes).
///
/// Deletion marks slots dead; space is not compacted (the paper's workloads
/// are append-heavy; only the MG reorganizer deletes).
class HeapFile {
 public:
  static Result<std::unique_ptr<HeapFile>> Create(storage::BufferPool* pool,
                                                  const std::string& name);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record, returning its Rid.
  Result<Rid> Insert(const Slice& record);

  /// Fetches a record by Rid. NotFound for deleted/invalid Rids.
  Result<std::string> Get(const Rid& rid);

  /// Marks a record deleted. Overflow chains release their pages' content
  /// logically (pages remain allocated; see class comment).
  Status Delete(const Rid& rid);

  int64_t record_count() const { return record_count_; }
  storage::FileId file() const { return file_; }

  /// Sequential scan over live records in physical order.
  class Iterator {
   public:
    /// Positions on the first record; check Valid() afterwards.
    Status SeekToFirst();
    /// Positions on the first live record physically after `rid` (the
    /// resume point of a chunked scan; physical order is stable for
    /// insert-only tables). Check Valid() afterwards.
    Status SeekAfter(const Rid& rid);
    bool Valid() const { return valid_; }
    Status Next();
    const std::string& record() const { return record_; }
    Rid rid() const { return rid_; }

   private:
    friend class HeapFile;
    explicit Iterator(HeapFile* file) : file_(file) {}

    /// Advances from the current position to the next live record.
    Status FindNext();

    HeapFile* file_;
    bool valid_ = false;
    storage::PageNo page_ = 0;
    uint32_t slot_ = 0;
    std::string record_;
    Rid rid_;
  };

  Iterator NewIterator() { return Iterator(this); }

 private:
  HeapFile(storage::BufferPool* pool, storage::FileId file)
      : pool_(pool), file_(file) {}

  Result<Rid> InsertOverflow(const Slice& record);

  storage::BufferPool* pool_;
  storage::FileId file_;
  // Page the next small insert should try first; -1 when none yet.
  int64_t current_page_ = -1;
  int64_t record_count_ = 0;
  uint32_t page_count_ = 0;
};

}  // namespace odh::relational

#endif  // ODH_RELATIONAL_HEAP_FILE_H_
