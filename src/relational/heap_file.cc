#include "relational/heap_file.h"

#include <cstring>

#include "common/coding.h"
#include "common/logging.h"

namespace odh::relational {
namespace {

constexpr char kSlottedPage = 1;
constexpr char kOverflowFirst = 2;
constexpr char kOverflowCont = 3;

constexpr size_t kSlottedHeader = 8;   // type(1) pad(1) slot_count(2) end(2) pad(2)
constexpr size_t kSlotBytes = 4;       // offset(2) len(2)
constexpr size_t kOverflowFirstHeader = 8;  // type(1) pad(3) total_len(4)
constexpr size_t kOverflowContHeader = 4;   // type(1) pad(3)
constexpr uint32_t kOverflowSlot = 0xFFFFFFFF;
// Slot offset marking a deleted record (never a valid data offset).
constexpr uint16_t kDeletedOffset = 0xFFFF;

uint16_t ReadU16(const char* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
void WriteU16(char* p, uint16_t v) { std::memcpy(p, &v, 2); }

}  // namespace

std::string Rid::Encode() const {
  // Big-endian so the 8-byte encoding is memcmp-ordered: index keys use it
  // as a uniquifying suffix, and equal-prefix entries must iterate in
  // insertion (allocation) order.
  std::string out(8, '\0');
  uint32_t p = page, s = slot;
  for (int i = 3; i >= 0; --i) {
    out[i] = static_cast<char>(p & 0xff);
    p >>= 8;
    out[4 + i] = static_cast<char>(s & 0xff);
    s >>= 8;
  }
  return out;
}

bool Rid::Decode(Slice input, Rid* rid) {
  if (input.size() < 8) return false;
  rid->page = 0;
  rid->slot = 0;
  for (int i = 0; i < 4; ++i) {
    rid->page = (rid->page << 8) | static_cast<unsigned char>(input[i]);
    rid->slot = (rid->slot << 8) | static_cast<unsigned char>(input[4 + i]);
  }
  return true;
}

Result<std::unique_ptr<HeapFile>> HeapFile::Create(
    storage::BufferPool* pool, const std::string& name) {
  ODH_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->CreateFile(name));
  return std::unique_ptr<HeapFile>(new HeapFile(pool, file));
}

Result<Rid> HeapFile::Insert(const Slice& record) {
  // Client-usable bytes; the pool reserves a checksum trailer past this.
  const size_t page_size = pool_->usable_page_size();
  const size_t max_inline = page_size - kSlottedHeader - kSlotBytes;
  if (record.size() > max_inline) return InsertOverflow(record);

  // Try the current append page, else start a new one.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (current_page_ < 0) {
      storage::PageNo page_no;
      ODH_ASSIGN_OR_RETURN(storage::PageRef page,
                           pool_->NewPage(file_, &page_no));
      char* p = page.data();
      p[0] = kSlottedPage;
      WriteU16(p + 2, 0);
      WriteU16(p + 4, static_cast<uint16_t>(kSlottedHeader));
      page.MarkDirty();
      current_page_ = page_no;
      ++page_count_;
    }
    ODH_ASSIGN_OR_RETURN(
        storage::PageRef page,
        pool_->FetchPage(file_, static_cast<storage::PageNo>(current_page_)));
    char* p = page.data();
    uint16_t slot_count = ReadU16(p + 2);
    uint16_t data_end = ReadU16(p + 4);
    size_t slots_begin = page_size - kSlotBytes * (slot_count + 1);
    if (data_end + record.size() <= slots_begin) {
      std::memcpy(p + data_end, record.data(), record.size());
      char* slot = p + page_size - kSlotBytes * (slot_count + 1);
      WriteU16(slot, data_end);
      WriteU16(slot + 2, static_cast<uint16_t>(record.size()));
      WriteU16(p + 2, static_cast<uint16_t>(slot_count + 1));
      WriteU16(p + 4, static_cast<uint16_t>(data_end + record.size()));
      page.MarkDirty();
      ++record_count_;
      return Rid{static_cast<storage::PageNo>(current_page_), slot_count};
    }
    current_page_ = -1;  // Full: retry on a fresh page.
  }
  return Status::Internal("heap insert failed twice");
}

Result<Rid> HeapFile::InsertOverflow(const Slice& record) {
  const size_t page_size = pool_->usable_page_size();
  storage::PageNo first_page;
  {
    ODH_ASSIGN_OR_RETURN(storage::PageRef page,
                         pool_->NewPage(file_, &first_page));
    char* p = page.data();
    p[0] = kOverflowFirst;
    EncodeFixed32(p + 4, static_cast<uint32_t>(record.size()));
    size_t chunk = std::min(record.size(), page_size - kOverflowFirstHeader);
    std::memcpy(p + kOverflowFirstHeader, record.data(), chunk);
    page.MarkDirty();
    ++page_count_;
    size_t written = chunk;
    while (written < record.size()) {
      storage::PageNo cont_page;
      ODH_ASSIGN_OR_RETURN(storage::PageRef cont,
                           pool_->NewPage(file_, &cont_page));
      char* cp = cont.data();
      cp[0] = kOverflowCont;
      size_t n = std::min(record.size() - written,
                          page_size - kOverflowContHeader);
      std::memcpy(cp + kOverflowContHeader, record.data() + written, n);
      cont.MarkDirty();
      written += n;
      ++page_count_;
    }
  }
  ++record_count_;
  return Rid{first_page, kOverflowSlot};
}

Result<std::string> HeapFile::Get(const Rid& rid) {
  const size_t page_size = pool_->usable_page_size();
  ODH_ASSIGN_OR_RETURN(storage::PageRef page,
                       pool_->FetchPage(file_, rid.page));
  const char* p = page.data();
  if (rid.slot == kOverflowSlot) {
    if (p[0] != kOverflowFirst) return Status::NotFound("not overflow head");
    uint32_t total = DecodeFixed32(p + 4);
    if (total == 0) return Status::NotFound("deleted overflow record");
    std::string out;
    out.reserve(total);
    size_t chunk = std::min<size_t>(total, page_size - kOverflowFirstHeader);
    out.append(p + kOverflowFirstHeader, chunk);
    storage::PageNo next = rid.page + 1;
    while (out.size() < total) {
      ODH_ASSIGN_OR_RETURN(storage::PageRef cont,
                           pool_->FetchPage(file_, next));
      const char* cp = cont.data();
      if (cp[0] != kOverflowCont) {
        return Status::Corruption("broken overflow chain");
      }
      size_t n = std::min<size_t>(total - out.size(),
                                  page_size - kOverflowContHeader);
      out.append(cp + kOverflowContHeader, n);
      ++next;
    }
    return out;
  }
  if (p[0] != kSlottedPage) return Status::NotFound("not a slotted page");
  uint16_t slot_count = ReadU16(p + 2);
  if (rid.slot >= slot_count) return Status::NotFound("bad slot");
  const char* slot = p + page_size - kSlotBytes * (rid.slot + 1);
  uint16_t offset = ReadU16(slot);
  uint16_t len = ReadU16(slot + 2);
  if (offset == kDeletedOffset) return Status::NotFound("deleted record");
  return std::string(p + offset, len);
}

Status HeapFile::Delete(const Rid& rid) {
  const size_t page_size = pool_->usable_page_size();
  ODH_ASSIGN_OR_RETURN(storage::PageRef page,
                       pool_->FetchPage(file_, rid.page));
  char* p = page.data();
  if (rid.slot == kOverflowSlot) {
    if (p[0] != kOverflowFirst) return Status::NotFound("not overflow head");
    if (DecodeFixed32(p + 4) == 0) return Status::NotFound("already deleted");
    EncodeFixed32(p + 4, 0);
    page.MarkDirty();
    --record_count_;
    return Status::OK();
  }
  if (p[0] != kSlottedPage) return Status::NotFound("not a slotted page");
  uint16_t slot_count = ReadU16(p + 2);
  if (rid.slot >= slot_count) return Status::NotFound("bad slot");
  char* slot = p + page_size - kSlotBytes * (rid.slot + 1);
  if (ReadU16(slot) == kDeletedOffset) {
    return Status::NotFound("already deleted");
  }
  WriteU16(slot, kDeletedOffset);
  page.MarkDirty();
  --record_count_;
  return Status::OK();
}

Status HeapFile::Iterator::SeekToFirst() {
  page_ = 0;
  slot_ = 0;
  valid_ = false;
  return FindNext();
}

Status HeapFile::Iterator::SeekAfter(const Rid& rid) {
  page_ = rid.page;
  // An overflow head is the only record on its page chain; resuming with
  // slot 1 makes FindNext skip it and move past the chain. Slotted pages
  // resume at the next slot.
  slot_ = rid.slot == kOverflowSlot ? 1 : rid.slot + 1;
  valid_ = false;
  return FindNext();
}

Status HeapFile::Iterator::Next() {
  if (!valid_) return Status::FailedPrecondition("iterator not valid");
  ++slot_;
  valid_ = false;
  return FindNext();
}

Status HeapFile::Iterator::FindNext() {
  storage::SimDisk* disk = file_->pool_->disk();
  const size_t page_size = file_->pool_->usable_page_size();
  ODH_ASSIGN_OR_RETURN(uint32_t total_pages, disk->PageCount(file_->file_));
  while (page_ < total_pages) {
    ODH_ASSIGN_OR_RETURN(storage::PageRef page,
                         file_->pool_->FetchPage(file_->file_, page_));
    const char* p = page.data();
    if (p[0] == kSlottedPage) {
      uint16_t slot_count = ReadU16(p + 2);
      while (slot_ < slot_count) {
        const char* slot = p + page_size - kSlotBytes * (slot_ + 1);
        uint16_t offset = ReadU16(slot);
        uint16_t len = ReadU16(slot + 2);
        if (offset != kDeletedOffset) {
          record_.assign(p + offset, len);
          rid_ = Rid{page_, slot_};
          valid_ = true;
          return Status::OK();
        }
        ++slot_;
      }
    } else if (p[0] == kOverflowFirst && slot_ == 0) {
      uint32_t total = DecodeFixed32(p + 4);
      if (total != 0) {
        Rid rid{page_, kOverflowSlot};
        page.Release();
        ODH_ASSIGN_OR_RETURN(record_, file_->Get(rid));
        rid_ = rid;
        valid_ = true;
        // Arrange to resume after this overflow chain.
        slot_ = 1;
        return Status::OK();
      }
    }
    // Move to the next page (overflow continuation pages are skipped by
    // their type byte; an overflow head we already yielded resumes here).
    ++page_;
    slot_ = 0;
  }
  return Status::OK();
}

}  // namespace odh::relational
