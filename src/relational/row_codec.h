#ifndef ODH_RELATIONAL_ROW_CODEC_H_
#define ODH_RELATIONAL_ROW_CODEC_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"
#include "relational/schema.h"

namespace odh::relational {

/// Serializes rows for heap storage.
///
/// Layout: `header_bytes` of reserved space (models per-row engine metadata
/// such as transaction ids — the knob that differentiates the RDB and MySQL
/// baseline profiles), a null bitmap, then the non-NULL values in column
/// order: bool = 1 byte, int64/timestamp = signed varint, double = 8 bytes,
/// string = length-prefixed.
class RowCodec {
 public:
  RowCodec(const Schema* schema, uint32_t header_bytes)
      : schema_(schema), header_bytes_(header_bytes) {}

  /// Appends the encoded row to *out. The row must match the schema.
  Status Encode(const Row& row, std::string* out) const;

  /// Decodes a full row.
  Status Decode(Slice input, Row* row) const;

  /// Decodes only the columns listed in `wanted` (sorted ascending); other
  /// positions of *row are set to NULL. Cheaper than Decode for wide rows.
  Status DecodeColumns(Slice input, const std::vector<int>& wanted,
                       Row* row) const;

  const Schema& schema() const { return *schema_; }
  uint32_t header_bytes() const { return header_bytes_; }

 private:
  const Schema* schema_;
  uint32_t header_bytes_;
};

}  // namespace odh::relational

#endif  // ODH_RELATIONAL_ROW_CODEC_H_
