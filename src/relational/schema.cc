#include "relational/schema.h"

#include <cctype>

namespace odh::relational {

bool NameEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (NameEquals(columns_[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) continue;
    DataType want = columns_[i].type;
    DataType got = row[i].type();
    if (got == want) continue;
    // Int64 is acceptable where a double is expected (SQL numeric widening).
    if (want == DataType::kDouble && got == DataType::kInt64) continue;
    return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name + " " + DataTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace odh::relational
