#include "relational/database.h"

#include <cctype>

namespace odh::relational {
namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

Database::Database(EngineProfile profile) : profile_(std::move(profile)) {
  disk_ = std::make_unique<storage::SimDisk>(profile_.page_size);
  pool_ = std::make_unique<storage::BufferPool>(disk_.get(),
                                                profile_.pool_pages);
}

Result<Table*> Database::CreateTable(const std::string& name, Schema schema) {
  std::string key = Lower(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  ODH_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      Table::Create(pool_.get(), key, std::move(schema),
                    profile_.table_options));
  Table* raw = table.get();
  tables_[key] = std::move(table);
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(Lower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Status Database::DropTable(const std::string& name) {
  auto it = tables_.find(Lower(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  ODH_RETURN_IF_ERROR(it->second->DestroyStorage());
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace odh::relational
