#ifndef ODH_RELATIONAL_SCHEMA_H_
#define ODH_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/datum.h"

namespace odh::relational {

/// One column of a relational (or virtual) table.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Case-insensitive lookup; -1 if absent.
  int FindColumn(const std::string& name) const;

  /// True when `row` has the right arity and each non-NULL datum matches
  /// the column type.
  bool RowMatches(const Row& row) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Case-insensitive ASCII string equality (SQL identifier semantics).
bool NameEquals(const std::string& a, const std::string& b);

}  // namespace odh::relational

#endif  // ODH_RELATIONAL_SCHEMA_H_
