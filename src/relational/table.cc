#include "relational/table.h"

#include <cstring>

#include "common/key_codec.h"
#include "common/logging.h"

namespace odh::relational {

Result<std::unique_ptr<Table>> Table::Create(storage::BufferPool* pool,
                                             const std::string& name,
                                             Schema schema,
                                             TableOptions options) {
  std::unique_ptr<Table> table(
      new Table(pool, name, std::move(schema), options));
  ODH_ASSIGN_OR_RETURN(table->heap_,
                       HeapFile::Create(pool, name + ".heap"));
  ODH_ASSIGN_OR_RETURN(table->wal_file_,
                       pool->disk()->CreateFile(name + ".wal"));
  return table;
}

Status Table::AddIndex(const IndexDef& def) {
  for (int col : def.columns) {
    if (col < 0 || col >= static_cast<int>(schema_.num_columns())) {
      return Status::InvalidArgument("index column out of range");
    }
  }
  for (const IndexEntry& e : indexes_) {
    if (NameEquals(e.def.name, def.name)) {
      return Status::AlreadyExists("index exists: " + def.name);
    }
  }
  IndexEntry entry;
  entry.def = def;
  ODH_ASSIGN_OR_RETURN(
      entry.tree,
      index::BTree::Create(pool_, name_ + ".idx." + def.name));
  // Index pre-existing rows.
  auto it = heap_->NewIterator();
  ODH_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    Row row;
    ODH_RETURN_IF_ERROR(codec_.Decode(Slice(it.record()), &row));
    std::string key;
    KeyEncoder enc(&key);
    for (int col : def.columns) enc.AddDatum(row[col]);
    key += it.rid().Encode();
    ODH_RETURN_IF_ERROR(entry.tree->Insert(key, it.rid().Encode()));
    ODH_RETURN_IF_ERROR(it.Next());
  }
  indexes_.push_back(std::move(entry));
  return Status::OK();
}

int Table::FindIndexOnColumn(int column) const {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    if (!indexes_[i].def.columns.empty() &&
        indexes_[i].def.columns[0] == column) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::string Table::IndexKeyFor(int index_no, const Row& row,
                               const Rid& rid) const {
  std::string key;
  KeyEncoder enc(&key);
  for (int col : indexes_[index_no].def.columns) enc.AddDatum(row[col]);
  key += rid.Encode();
  return key;
}

Result<Rid> Table::Insert(const Row& row) {
  std::string encoded;
  ODH_RETURN_IF_ERROR(codec_.Encode(row, &encoded));
  ODH_ASSIGN_OR_RETURN(Rid rid, heap_->Insert(Slice(encoded)));
  for (size_t i = 0; i < indexes_.size(); ++i) {
    std::string key = IndexKeyFor(static_cast<int>(i), row, rid);
    ODH_RETURN_IF_ERROR(indexes_[i].tree->Insert(key, rid.Encode()));
  }
  if (options_.enable_wal) wal_buffer_ += encoded;
  return rid;
}

Status Table::Commit() {
  if (wal_buffer_.empty()) return Status::OK();
  wal_buffer_.append(options_.wal_commit_overhead_bytes, '\0');
  const size_t page_size = pool_->disk()->page_size();
  storage::SimDisk* disk = pool_->disk();
  size_t written = 0;
  while (written < wal_buffer_.size()) {
    ODH_ASSIGN_OR_RETURN(storage::PageNo page, disk->AllocatePage(wal_file_));
    char buf[65536];
    ODH_CHECK(page_size <= sizeof(buf));
    size_t n = std::min(page_size, wal_buffer_.size() - written);
    std::memcpy(buf, wal_buffer_.data() + written, n);
    std::memset(buf + n, 0, page_size - n);
    ODH_RETURN_IF_ERROR(disk->WritePage(wal_file_, page, buf));
    written += n;
  }
  wal_bytes_written_ += wal_buffer_.size();
  wal_buffer_.clear();
  return Status::OK();
}

Status Table::DestroyStorage() {
  storage::SimDisk* disk = pool_->disk();
  ODH_RETURN_IF_ERROR(pool_->InvalidateFile(heap_->file()));
  ODH_RETURN_IF_ERROR(disk->DeleteFile(name_ + ".heap"));
  ODH_RETURN_IF_ERROR(pool_->InvalidateFile(wal_file_));
  ODH_RETURN_IF_ERROR(disk->DeleteFile(name_ + ".wal"));
  for (const IndexEntry& entry : indexes_) {
    ODH_RETURN_IF_ERROR(pool_->InvalidateFile(entry.tree->file()));
    ODH_RETURN_IF_ERROR(disk->DeleteFile(name_ + ".idx." + entry.def.name));
  }
  indexes_.clear();
  heap_.reset();
  return Status::OK();
}

uint64_t Table::ApproxHeapBytes() const {
  auto bytes = pool_->disk()->FileBytes(heap_->file());
  return bytes.ok() ? bytes.value() : 0;
}

Result<Row> Table::Get(const Rid& rid) {
  ODH_ASSIGN_OR_RETURN(std::string record, heap_->Get(rid));
  Row row;
  ODH_RETURN_IF_ERROR(codec_.Decode(Slice(record), &row));
  return row;
}

Result<Row> Table::GetColumns(const Rid& rid,
                              const std::vector<int>& columns) {
  ODH_ASSIGN_OR_RETURN(std::string record, heap_->Get(rid));
  Row row;
  ODH_RETURN_IF_ERROR(codec_.DecodeColumns(Slice(record), columns, &row));
  return row;
}

Status Table::Delete(const Rid& rid) {
  ODH_ASSIGN_OR_RETURN(Row row, Get(rid));
  for (size_t i = 0; i < indexes_.size(); ++i) {
    std::string key = IndexKeyFor(static_cast<int>(i), row, rid);
    ODH_RETURN_IF_ERROR(indexes_[i].tree->Delete(key));
  }
  return heap_->Delete(rid);
}

Result<Row> Table::Iterator::row() const {
  Row row;
  ODH_RETURN_IF_ERROR(
      table_->codec_.Decode(Slice(it_.record()), &row));
  return row;
}

Result<Table::IndexIterator> Table::IndexScan(int index_no,
                                              const std::string& lower_key,
                                              const std::string& upper_key) {
  if (index_no < 0 || index_no >= static_cast<int>(indexes_.size())) {
    return Status::InvalidArgument("bad index number");
  }
  auto it = std::make_unique<index::BTree::Iterator>(
      indexes_[index_no].tree->NewIterator());
  if (lower_key.empty()) {
    ODH_RETURN_IF_ERROR(it->SeekToFirst());
  } else {
    ODH_RETURN_IF_ERROR(it->Seek(Slice(lower_key)));
  }
  IndexIterator iter(std::move(it), upper_key);
  iter.CheckBounds();
  return iter;
}

void Table::IndexIterator::CheckBounds() {
  valid_ = false;
  if (!it_->Valid()) return;
  if (!upper_.empty()) {
    // Keys contain an 8-byte rid suffix; a key belongs to the range as long
    // as its prefix is <= upper_. Compare only the prefix length.
    Slice key = it_->key();
    size_t prefix_len = std::min(key.size(), upper_.size());
    int c = std::memcmp(key.data(), upper_.data(), prefix_len);
    if (c > 0) return;
  }
  if (!Rid::Decode(it_->value(), &rid_)) return;
  valid_ = true;
}

Status Table::IndexIterator::Next() {
  if (!valid_) return Status::FailedPrecondition("iterator not valid");
  ODH_RETURN_IF_ERROR(it_->Next());
  CheckBounds();
  return Status::OK();
}

}  // namespace odh::relational
