#ifndef ODH_RELATIONAL_DATABASE_H_
#define ODH_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/table.h"

namespace odh::relational {

/// Per-engine tuning. The IoT-X benchmark instantiates one Database per
/// candidate: the "RDB" profile (commercial relational database) and the
/// "MySQL" profile differ in per-row overheads; ODH embeds its batch
/// containers in a Database with the Odh profile (its internal tables have
/// no per-row transaction metadata, matching the paper's no-transaction
/// ingestion design).
struct EngineProfile {
  std::string name;
  size_t page_size = 4096;
  size_t pool_pages = 4096;  // 16 MB at the default page size.
  TableOptions table_options;

  static EngineProfile Rdb() {
    EngineProfile p;
    p.name = "RDB";
    p.table_options.row_header_bytes = 16;
    p.table_options.wal_commit_overhead_bytes = 64;
    return p;
  }

  static EngineProfile MySql() {
    EngineProfile p;
    p.name = "MySQL";
    p.table_options.row_header_bytes = 21;  // InnoDB-ish: 13B header + 8B PK.
    p.table_options.wal_commit_overhead_bytes = 96;
    return p;
  }

  static EngineProfile Odh() {
    EngineProfile p;
    p.name = "ODH";
    p.table_options.row_header_bytes = 4;
    p.table_options.wal_commit_overhead_bytes = 0;
    p.table_options.enable_wal = false;
    return p;
  }
};

/// A single-node database instance: one simulated disk, one buffer pool and
/// a catalog of tables. This is the stand-in for the Informix data server
/// (see DESIGN.md).
class Database {
 public:
  explicit Database(EngineProfile profile = EngineProfile::Rdb());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const EngineProfile& profile() const { return profile_; }

  Result<Table*> CreateTable(const std::string& name, Schema schema);
  Result<Table*> GetTable(const std::string& name) const;

  /// Drops a table and releases its storage. Any outstanding Table* or
  /// iterators become invalid.
  Status DropTable(const std::string& name);
  std::vector<std::string> ListTables() const;

  storage::SimDisk* disk() { return disk_.get(); }
  storage::BufferPool* pool() { return pool_.get(); }

  /// Current storage footprint in bytes (heap + index + WAL pages).
  uint64_t TotalBytesStored() const { return disk_->TotalBytesStored(); }

 private:
  EngineProfile profile_;
  std::unique_ptr<storage::SimDisk> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace odh::relational

#endif  // ODH_RELATIONAL_DATABASE_H_
