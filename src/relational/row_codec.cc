#include "relational/row_codec.h"

#include "common/coding.h"

namespace odh::relational {

Status RowCodec::Encode(const Row& row, std::string* out) const {
  if (!schema_->RowMatches(row)) {
    return Status::InvalidArgument("row does not match schema " +
                                   schema_->ToString());
  }
  out->append(header_bytes_, '\0');
  const size_t n = row.size();
  // Null bitmap.
  const size_t bitmap_bytes = (n + 7) / 8;
  size_t bitmap_pos = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < n; ++i) {
    if (row[i].is_null()) {
      (*out)[bitmap_pos + i / 8] |= static_cast<char>(1 << (i % 8));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const Datum& d = row[i];
    if (d.is_null()) continue;
    switch (schema_->column(i).type) {
      case DataType::kBool:
        out->push_back(d.bool_value() ? 1 : 0);
        break;
      case DataType::kInt64:
        PutVarintSigned64(out, d.int64_value());
        break;
      case DataType::kTimestamp:
        PutVarintSigned64(out, d.timestamp_value());
        break;
      case DataType::kDouble:
        PutDouble(out, d.AsDouble());
        break;
      case DataType::kString:
        PutLengthPrefixed(out, d.string_value());
        break;
      case DataType::kNull:
        return Status::InvalidArgument("column typed NULL");
    }
  }
  return Status::OK();
}

Status RowCodec::Decode(Slice input, Row* row) const {
  std::vector<int> all(schema_->num_columns());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return DecodeColumns(input, all, row);
}

Status RowCodec::DecodeColumns(Slice input, const std::vector<int>& wanted,
                               Row* row) const {
  const size_t n = schema_->num_columns();
  row->assign(n, Datum::Null());
  const size_t bitmap_bytes = (n + 7) / 8;
  if (input.size() < header_bytes_ + bitmap_bytes) {
    return Status::Corruption("row too short");
  }
  input.remove_prefix(header_bytes_);
  const char* bitmap = input.data();
  input.remove_prefix(bitmap_bytes);

  size_t want_pos = 0;
  int max_wanted = wanted.empty() ? -1 : wanted.back();
  for (size_t i = 0; i < n && static_cast<int>(i) <= max_wanted; ++i) {
    const bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    const bool want = want_pos < wanted.size() &&
                      wanted[want_pos] == static_cast<int>(i);
    if (is_null) {
      if (want) ++want_pos;
      continue;
    }
    switch (schema_->column(i).type) {
      case DataType::kBool: {
        if (input.empty()) return Status::Corruption("row bool");
        char v = input[0];
        input.remove_prefix(1);
        if (want) (*row)[i] = Datum::Bool(v != 0);
        break;
      }
      case DataType::kInt64: {
        int64_t v;
        if (!GetVarintSigned64(&input, &v)) {
          return Status::Corruption("row int64");
        }
        if (want) (*row)[i] = Datum::Int64(v);
        break;
      }
      case DataType::kTimestamp: {
        int64_t v;
        if (!GetVarintSigned64(&input, &v)) {
          return Status::Corruption("row timestamp");
        }
        if (want) (*row)[i] = Datum::Time(v);
        break;
      }
      case DataType::kDouble: {
        double v;
        if (!GetDouble(&input, &v)) return Status::Corruption("row double");
        if (want) (*row)[i] = Datum::Double(v);
        break;
      }
      case DataType::kString: {
        Slice s;
        if (!GetLengthPrefixed(&input, &s)) {
          return Status::Corruption("row string");
        }
        if (want) (*row)[i] = Datum::String(s.ToString());
        break;
      }
      case DataType::kNull:
        return Status::Corruption("column typed NULL");
    }
    if (want) ++want_pos;
  }
  return Status::OK();
}

}  // namespace odh::relational
