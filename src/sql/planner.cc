#include "sql/planner.h"

#include <algorithm>
#include <set>

#include "common/types.h"

namespace odh::sql {
namespace {

struct JoinEdge {
  int table_a, column_a;
  int table_b, column_b;
};

/// Collects WHERE conjuncts (flattening AND).
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr->kind() == ExprKind::kBinary) {
    const auto* bin = static_cast<const BinaryExpr*>(expr);
    if (bin->op == BinaryOp::kAnd) {
      SplitConjuncts(bin->left.get(), out);
      SplitConjuncts(bin->right.get(), out);
      return;
    }
  }
  out->push_back(expr);
}

const ColumnRefExpr* AsColumnRef(const Expr* expr) {
  return expr->kind() == ExprKind::kColumnRef
             ? static_cast<const ColumnRefExpr*>(expr)
             : nullptr;
}

/// Resolves `expr` to an execution-time constant — a literal, or a `?`
/// parameter whose value the evaluator holds — coerced toward the
/// comparison column's type so `ts > ?` prunes partitions exactly like a
/// literal bound. False means "not a usable constant" and the conjunct
/// stays residual (which also gives NULL params their SQL semantics: the
/// row filter evaluates `col = NULL` to NULL, i.e. no rows).
bool ResolveComparand(const ExprEvaluator* eval, const Expr* expr,
                      const ColumnRefExpr* ref, Datum* out) {
  const Datum* v = eval == nullptr ? nullptr : eval->ResolveConstant(expr);
  if (v == nullptr || v->is_null()) return false;
  if (ref->type == DataType::kTimestamp && !v->is_timestamp()) {
    if (v->is_int64()) {
      *out = Datum::Time(v->int64_value());
      return true;
    }
    if (v->is_string()) {
      Timestamp ts;
      if (!ParseTimestamp(v->string_value(), &ts)) return false;
      *out = Datum::Time(ts);
      return true;
    }
    return false;  // e.g. double vs timestamp: keep it residual.
  }
  *out = *v;
  return true;
}

/// Tries to turn a conjunct into a pushable single-table constraint.
bool ExtractConstraint(const Expr* expr, const ExprEvaluator* eval,
                       int* table_no, ColumnConstraint* constraint) {
  if (expr->kind() == ExprKind::kBetween) {
    const auto* between = static_cast<const BetweenExpr*>(expr);
    const ColumnRefExpr* ref = AsColumnRef(between->value.get());
    if (ref == nullptr) return false;
    Datum lo, hi;
    if (!ResolveComparand(eval, between->lower.get(), ref, &lo) ||
        !ResolveComparand(eval, between->upper.get(), ref, &hi)) {
      return false;
    }
    *table_no = ref->table_no;
    constraint->column = ref->column_no;
    constraint->lower = Bound{std::move(lo), true};
    constraint->upper = Bound{std::move(hi), true};
    return true;
  }
  if (expr->kind() != ExprKind::kBinary) return false;
  const auto* bin = static_cast<const BinaryExpr*>(expr);
  const ColumnRefExpr* ref = AsColumnRef(bin->left.get());
  const Expr* other = bin->right.get();
  BinaryOp op = bin->op;
  if (ref == nullptr) {
    // Try the mirrored orientation (constant OP column).
    ref = AsColumnRef(bin->right.get());
    other = bin->left.get();
    if (ref == nullptr) return false;
    switch (op) {  // Mirror the operator.
      case BinaryOp::kLt:
        op = BinaryOp::kGt;
        break;
      case BinaryOp::kLe:
        op = BinaryOp::kGe;
        break;
      case BinaryOp::kGt:
        op = BinaryOp::kLt;
        break;
      case BinaryOp::kGe:
        op = BinaryOp::kLe;
        break;
      default:
        break;
    }
  }
  Datum value;
  if (!ResolveComparand(eval, other, ref, &value)) return false;
  *table_no = ref->table_no;
  constraint->column = ref->column_no;
  switch (op) {
    case BinaryOp::kEq:
      constraint->equals = std::move(value);
      return true;
    case BinaryOp::kLt:
      constraint->upper = Bound{std::move(value), false};
      return true;
    case BinaryOp::kLe:
      constraint->upper = Bound{std::move(value), true};
      return true;
    case BinaryOp::kGt:
      constraint->lower = Bound{std::move(value), false};
      return true;
    case BinaryOp::kGe:
      constraint->lower = Bound{std::move(value), true};
      return true;
    default:
      return false;
  }
}

bool ExtractJoinEdge(const Expr* expr, JoinEdge* edge) {
  if (expr->kind() != ExprKind::kBinary) return false;
  const auto* bin = static_cast<const BinaryExpr*>(expr);
  if (bin->op != BinaryOp::kEq) return false;
  const ColumnRefExpr* a = AsColumnRef(bin->left.get());
  const ColumnRefExpr* b = AsColumnRef(bin->right.get());
  if (a == nullptr || b == nullptr || a->table_no == b->table_no) {
    return false;
  }
  edge->table_a = a->table_no;
  edge->column_a = a->column_no;
  edge->table_b = b->table_no;
  edge->column_b = b->column_no;
  return true;
}

/// Collects which columns of each table the query touches (projection
/// pushdown — the lever behind ODH's tag-oriented decode savings).
void CollectColumns(const Expr* expr, std::vector<std::set<int>>* cols) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr);
      (*cols)[ref->table_no].insert(ref->column_no);
      return;
    }
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      CollectColumns(bin->left.get(), cols);
      CollectColumns(bin->right.get(), cols);
      return;
    }
    case ExprKind::kBetween: {
      const auto* between = static_cast<const BetweenExpr*>(expr);
      CollectColumns(between->value.get(), cols);
      CollectColumns(between->lower.get(), cols);
      CollectColumns(between->upper.get(), cols);
      return;
    }
    case ExprKind::kNot:
      CollectColumns(static_cast<const NotExpr*>(expr)->operand.get(), cols);
      return;
    case ExprKind::kIsNull:
      CollectColumns(static_cast<const IsNullExpr*>(expr)->operand.get(),
                     cols);
      return;
    case ExprKind::kAggregate: {
      const auto* agg = static_cast<const AggregateExpr*>(expr);
      if (agg->arg != nullptr) CollectColumns(agg->arg.get(), cols);
      return;
    }
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return;
  }
}

/// True when `expr` touches columns only through aggregate functions —
/// the condition under which an ungrouped aggregate query's outputs can
/// be finalized without a representative row (aggregate pushdown).
bool ColumnsOnlyInsideAggregates(const Expr* expr) {
  switch (expr->kind()) {
    case ExprKind::kColumnRef:
      return false;
    case ExprKind::kAggregate:
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return true;
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      return ColumnsOnlyInsideAggregates(bin->left.get()) &&
             ColumnsOnlyInsideAggregates(bin->right.get());
    }
    case ExprKind::kBetween: {
      const auto* between = static_cast<const BetweenExpr*>(expr);
      return ColumnsOnlyInsideAggregates(between->value.get()) &&
             ColumnsOnlyInsideAggregates(between->lower.get()) &&
             ColumnsOnlyInsideAggregates(between->upper.get());
    }
    case ExprKind::kNot:
      return ColumnsOnlyInsideAggregates(
          static_cast<const NotExpr*>(expr)->operand.get());
    case ExprKind::kIsNull:
      return ColumnsOnlyInsideAggregates(
          static_cast<const IsNullExpr*>(expr)->operand.get());
  }
  return false;
}

void CollectAggregates(const Expr* expr,
                       std::vector<const AggregateExpr*>* out) {
  switch (expr->kind()) {
    case ExprKind::kAggregate:
      out->push_back(static_cast<const AggregateExpr*>(expr));
      return;
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      CollectAggregates(bin->left.get(), out);
      CollectAggregates(bin->right.get(), out);
      return;
    }
    case ExprKind::kNot:
      CollectAggregates(static_cast<const NotExpr*>(expr)->operand.get(),
                        out);
      return;
    default:
      return;
  }
}

/// Maps one AggregateExpr to a provider request. Only plain column (or *)
/// arguments are pushable; computed arguments like SUM(a+b) are not.
bool MapAggregate(const AggregateExpr* agg, AggregateRequest* req) {
  if (agg->star) {
    req->op = AggregateOp::kCountStar;
    return true;
  }
  const ColumnRefExpr* ref = AsColumnRef(agg->arg.get());
  if (ref == nullptr) return false;
  req->column = ref->column_no;
  switch (agg->func) {
    case AggregateFunc::kCount:
      req->op = AggregateOp::kCount;
      return true;
    case AggregateFunc::kSum:
      req->op = AggregateOp::kSum;
      return true;
    case AggregateFunc::kAvg:
      req->op = AggregateOp::kAvg;
      return true;
    case AggregateFunc::kMin:
      req->op = AggregateOp::kMin;
      return true;
    case AggregateFunc::kMax:
      req->op = AggregateOp::kMax;
      return true;
  }
  return false;
}

}  // namespace

Result<PhysicalPlan> PlanSelect(const BoundSelect& bound,
                                const ExprEvaluator* eval,
                                common::ScanCounters* counters) {
  const int num_tables = static_cast<int>(bound.tables.size());

  // 1. Classify WHERE conjuncts.
  std::vector<const Expr*> conjuncts;
  if (bound.where != nullptr) SplitConjuncts(bound.where.get(), &conjuncts);

  std::vector<ScanSpec> specs(num_tables);
  for (ScanSpec& spec : specs) spec.counters = counters;
  std::vector<JoinEdge> edges;
  std::vector<const Expr*> residual;
  for (const Expr* conjunct : conjuncts) {
    int table_no;
    ColumnConstraint constraint;
    JoinEdge edge;
    if (ExtractConstraint(conjunct, eval, &table_no, &constraint)) {
      // Merge with an existing constraint on the same column so
      // `lat > a AND lat < b` becomes one range (tighter selectivity and a
      // single index range for the provider).
      ColumnConstraint* existing = nullptr;
      for (ColumnConstraint& c : specs[table_no].constraints) {
        if (c.column == constraint.column) {
          existing = &c;
          break;
        }
      }
      if (existing == nullptr) {
        specs[table_no].constraints.push_back(std::move(constraint));
      } else {
        if (constraint.equals.has_value()) existing->equals = constraint.equals;
        if (constraint.lower.has_value()) {
          int cmp;
          bool null_cmp;
          // On equal values an exclusive bound is strictly tighter than an
          // inclusive one, so it must win the merge in either order.
          if (!existing->lower.has_value() ||
              (constraint.lower->value.Compare(existing->lower->value, &cmp,
                                               &null_cmp) &&
               !null_cmp &&
               (cmp > 0 || (cmp == 0 && (existing->lower->inclusive ||
                                         !constraint.lower->inclusive))))) {
            existing->lower = constraint.lower;
          }
        }
        if (constraint.upper.has_value()) {
          int cmp;
          bool null_cmp;
          if (!existing->upper.has_value() ||
              (constraint.upper->value.Compare(existing->upper->value, &cmp,
                                               &null_cmp) &&
               !null_cmp &&
               (cmp < 0 || (cmp == 0 && (existing->upper->inclusive ||
                                         !constraint.upper->inclusive))))) {
            existing->upper = constraint.upper;
          }
        }
      }
    } else if (ExtractJoinEdge(conjunct, &edge)) {
      edges.push_back(edge);
    } else {
      residual.push_back(conjunct);
    }
  }

  // 2. Projection pushdown: a table only needs the columns the query
  // references (anywhere).
  std::vector<std::set<int>> used(num_tables);
  for (const ExprPtr& e : bound.output) CollectColumns(e.get(), &used);
  if (bound.where != nullptr) CollectColumns(bound.where.get(), &used);
  for (const ExprPtr& e : bound.group_by) CollectColumns(e.get(), &used);
  for (const auto& item : bound.order_by) {
    if (item.expr != nullptr) CollectColumns(item.expr.get(), &used);
  }
  for (int t = 0; t < num_tables; ++t) {
    specs[t].projection.assign(used[t].begin(), used[t].end());
  }

  std::string explain;

  // 3. Join order: greedy smallest-estimate first, preferring connected
  // tables.
  std::vector<ScanEstimate> local_est(num_tables);
  for (int t = 0; t < num_tables; ++t) {
    local_est[t] = bound.tables[t].provider->Estimate(specs[t]);
  }
  std::vector<bool> placed(num_tables, false);
  auto connected = [&](int t) {
    for (const JoinEdge& e : edges) {
      if ((e.table_a == t && placed[e.table_b]) ||
          (e.table_b == t && placed[e.table_a])) {
        return true;
      }
    }
    return false;
  };

  int first = 0;
  for (int t = 1; t < num_tables; ++t) {
    if (local_est[t].rows < local_est[first].rows) first = t;
  }
  placed[first] = true;
  PlanNodePtr root = std::make_unique<ScanNode>(
      bound.tables[first].provider, bound.tables[first].alias, specs[first],
      bound.tables[first].slot_offset, bound.total_slots);
  double running_rows = std::max(local_est[first].rows, 1.0);

  for (int step = 1; step < num_tables; ++step) {
    // Pick the next table: smallest estimate among connected ones, falling
    // back to smallest overall (cross join).
    int next = -1;
    bool next_connected = false;
    for (int t = 0; t < num_tables; ++t) {
      if (placed[t]) continue;
      bool conn = connected(t);
      if (next < 0 || (conn && !next_connected) ||
          (conn == next_connected &&
           local_est[t].rows < local_est[next].rows)) {
        next = t;
        next_connected = conn;
      }
    }

    // Join keys between `next` and placed tables.
    std::vector<JoinKey> keys;
    for (const JoinEdge& e : edges) {
      int other = -1, other_col = -1, next_col = -1;
      if (e.table_a == next && placed[e.table_b]) {
        other = e.table_b;
        other_col = e.column_b;
        next_col = e.column_a;
      } else if (e.table_b == next && placed[e.table_a]) {
        other = e.table_a;
        other_col = e.column_a;
        next_col = e.column_b;
      } else {
        continue;
      }
      JoinKey key;
      key.outer_slot = bound.tables[other].slot_offset + other_col;
      key.inner_column = next_col;
      keys.push_back(key);
    }

    TableProvider* inner = bound.tables[next].provider;
    // Cost: index-nested-loop = outer_rows * per-probe bytes; hash join =
    // one full (constrained) scan of the inner side.
    double inlj_cost = -1;
    if (!keys.empty() && inner->SupportsPointLookup(keys[0].inner_column)) {
      ScanSpec probe_spec = specs[next];
      for (const JoinKey& k : keys) {
        ColumnConstraint c;
        c.column = k.inner_column;
        c.equals = Datum::Int64(0);  // Placeholder; estimate ignores value.
        probe_spec.constraints.push_back(std::move(c));
      }
      ScanEstimate probe = inner->Estimate(probe_spec);
      inlj_cost = running_rows * std::max(probe.bytes, 1.0);
    }
    double hash_cost = std::max(local_est[next].bytes, 1.0) +
                       running_rows * 8.0;

    char cost_line[160];
    if (inlj_cost >= 0 && inlj_cost <= hash_cost) {
      snprintf(cost_line, sizeof(cost_line),
               "join %s: INDEX-NESTED-LOOP (inlj=%.0fB <= hash=%.0fB)\n",
               bound.tables[next].alias.c_str(), inlj_cost, hash_cost);
      explain += cost_line;
      root = std::make_unique<IndexJoinNode>(
          std::move(root), inner, bound.tables[next].alias, specs[next],
          bound.tables[next].slot_offset, keys);
      // Each probe yields roughly probe-estimate rows.
      ScanSpec probe_spec = specs[next];
      for (const JoinKey& k : keys) {
        ColumnConstraint c;
        c.column = k.inner_column;
        c.equals = Datum::Int64(0);
        probe_spec.constraints.push_back(std::move(c));
      }
      running_rows *= std::max(inner->Estimate(probe_spec).rows, 1.0);
    } else {
      snprintf(cost_line, sizeof(cost_line),
               "join %s: HASH-JOIN (hash=%.0fB < inlj=%s)\n",
               bound.tables[next].alias.c_str(), hash_cost,
               inlj_cost < 0 ? "n/a" : std::to_string(inlj_cost).c_str());
      explain += cost_line;
      root = std::make_unique<HashJoinNode>(
          std::move(root), inner, bound.tables[next].alias, specs[next],
          bound.tables[next].slot_offset, keys, /*left_outer=*/false);
      double fanout =
          keys.empty() ? std::max(local_est[next].rows, 1.0) : 1.0;
      running_rows *= fanout;
    }
    placed[next] = true;
  }

  if (!residual.empty()) {
    root = std::make_unique<FilterNode>(std::move(root), residual, eval);
  }

  PhysicalPlan plan;

  // 4. Aggregate pushdown candidate: a single-table, ungrouped aggregate
  // whose WHERE went entirely into the scan spec and whose outputs touch
  // columns only through aggregates can skip row materialization — the
  // provider may answer from per-blob summaries, or the engine from
  // vectorized batch accumulation. The row plan under `root` stays the
  // fallback.
  if (num_tables == 1 && residual.empty() && bound.has_aggregates &&
      bound.group_by.empty()) {
    bool eligible = true;
    for (const ExprPtr& e : bound.output) {
      if (!ColumnsOnlyInsideAggregates(e.get())) eligible = false;
    }
    for (const auto& item : bound.order_by) {
      if (item.expr != nullptr &&
          !ColumnsOnlyInsideAggregates(item.expr.get())) {
        eligible = false;
      }
    }
    // Mirror the engine's collection order so requests align with states.
    std::vector<const AggregateExpr*> agg_exprs;
    for (const ExprPtr& e : bound.output) {
      CollectAggregates(e.get(), &agg_exprs);
    }
    for (const auto& item : bound.order_by) {
      if (item.expr != nullptr) CollectAggregates(item.expr.get(), &agg_exprs);
    }
    std::vector<AggregateRequest> requests(agg_exprs.size());
    for (size_t i = 0; i < agg_exprs.size() && eligible; ++i) {
      if (!MapAggregate(agg_exprs[i], &requests[i])) eligible = false;
    }
    if (eligible && !agg_exprs.empty()) {
      plan.agg_provider = bound.tables[0].provider;
      plan.agg_spec = specs[0];
      plan.agg_requests = std::move(requests);
      plan.agg_exprs = std::move(agg_exprs);
      explain += "aggregate pushdown: candidate (" +
                 std::to_string(plan.agg_requests.size()) + " aggregates)\n";
    }
  }

  std::string tree;
  root->Describe(0, &tree);
  plan.explain = explain + tree;
  plan.root = std::move(root);
  return plan;
}

}  // namespace odh::sql
