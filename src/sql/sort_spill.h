#ifndef ODH_SQL_SORT_SPILL_H_
#define ODH_SQL_SORT_SPILL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/memory.h"
#include "common/result.h"
#include "storage/spill_file.h"

namespace odh::sql {

/// Three-way Datum comparison for ORDER BY (NULLs sort first; NaN sorts
/// after every non-NaN number and ties with other NaNs; incomparable
/// cross-type pairs compare equal, preserving input order). The single
/// definition every sort path — in-memory, top-N, spilled merge — uses,
/// so spilling can never change result order.
int CompareDatumsForSort(const Datum& a, const Datum& b);

/// Budget-governed stable sorter behind every ORDER BY:
///
///  - With a LIMIT, a bounded top-N heap holds at most `limit` rows
///    (O(limit) memory), provably emitting the same prefix as a full
///    stable sort (ties keep the earlier row).
///  - Without one, rows accumulate in memory; when the query's
///    MemoryTracker refuses the next row, the accumulated rows are
///    sorted and written to a spill run on the store's SimDisk, memory
///    is released, and accumulation continues. Emission k-way-merges the
///    runs, reading one page per run.
///  - A top-N whose kept set itself exceeds the budget degrades to the
///    spill path (every row it had discarded was provably outside the
///    top N, so correctness is unaffected).
///  - With no spill disk (or a budget too small for even the merge
///    buffers) the sorter fails fast with ResourceExhausted.
///
/// Stability: every row carries its insertion sequence; all comparisons
/// order ties by sequence, which makes the merge reproduce exactly what
/// std::stable_sort over the whole input would have produced.
class ExternalSorter {
 public:
  struct Options {
    /// Per-key sort direction (size fixes the key arity).
    std::vector<bool> ascending;
    /// Emission cap; -1 = unlimited. >= 0 enables the top-N path.
    int64_t limit = -1;
    /// Budget to charge; nullptr = unbounded (never spills, never fails).
    common::MemoryTracker* memory = nullptr;
    /// Arena for spill I/O buffers (required when spill_disk is set).
    common::Arena* arena = nullptr;
    /// Spill target; nullptr = fail fast instead of spilling.
    storage::SimDisk* spill_disk = nullptr;
    /// Unique per query, e.g. "odh$spill$q42$"; run files append "r<n>".
    std::string spill_name_prefix;
  };

  explicit ExternalSorter(Options options);
  ~ExternalSorter();

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Feeds one row; `keys` must match options.ascending in arity.
  Status Add(std::vector<Datum> keys, Row row);

  /// Seals input and prepares emission (sorts, spills the tail when runs
  /// exist, opens the merge).
  Status Finish();

  /// Emission, after Finish. Rows release their memory as they leave.
  Result<bool> Next(Row* row);

  /// Drops all state eagerly: buffered rows, merge buffers, spill files.
  /// Idempotent; also run by the destructor. Spill-run files are deleted
  /// here — on normal completion, on abandonment, and on error alike.
  void ReleaseAll();

  int64_t spill_runs() const { return static_cast<int64_t>(runs_.size()); }
  int64_t spill_bytes() const { return spill_bytes_; }

 private:
  struct Entry {
    std::vector<Datum> keys;
    Row row;
    int64_t seq = 0;
    int64_t bytes = 0;  // As charged to the tracker.
  };
  /// One run being merged: its reader and the decoded head entry.
  struct MergeSource {
    std::unique_ptr<storage::SpillFileReader> reader;
    Entry head;
    bool exhausted = false;
  };

  /// Total order: keys per ascending flags, then insertion sequence.
  bool EntryLess(const Entry& a, const Entry& b) const;
  int64_t EntryBytes(const Entry& e) const;

  Status ReserveEntry(Entry* e);
  /// Sorts rows_ and writes it out as the next run, releasing its memory.
  Status SpillRun();
  /// Top-N overflow: the kept set becomes run 0 and the sorter continues
  /// in full (spillable) mode.
  Status ConvertTopNToExternal();
  Status AdvanceSource(MergeSource* src);

  Options options_;
  bool top_n_;  // Current mode; may flip to false on conversion.
  int64_t next_seq_ = 0;
  std::vector<Entry> rows_;  // Heap-ordered in top-N mode.
  std::vector<std::string> runs_;
  int64_t spill_bytes_ = 0;
  common::ScopedReservation reserved_;

  bool finished_ = false;
  size_t emit_pos_ = 0;  // In-memory emission cursor.
  int64_t emitted_ = 0;
  std::vector<MergeSource> sources_;
  bool released_ = false;
};

}  // namespace odh::sql

#endif  // ODH_SQL_SORT_SPILL_H_
