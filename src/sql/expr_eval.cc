#include "sql/expr_eval.h"

namespace odh::sql {
namespace {

/// Three-valued boolean: kFalse/kTrue/kNull encoded as Datum Bool/Null.
Datum Bool3(bool v) { return Datum::Bool(v); }

}  // namespace

Result<Datum> ExprEvaluator::EvalBinary(
    const BinaryExpr* expr, const Row& row,
    const std::map<const Expr*, Datum>* aggs) const {
  // AND/OR use Kleene logic and can short-circuit.
  if (expr->op == BinaryOp::kAnd || expr->op == BinaryOp::kOr) {
    ODH_ASSIGN_OR_RETURN(Datum left, Eval(expr->left.get(), row, aggs));
    const bool is_and = expr->op == BinaryOp::kAnd;
    if (!left.is_null() && left.is_bool() &&
        left.bool_value() != is_and) {
      return Bool3(!is_and);  // false AND x = false; true OR x = true.
    }
    ODH_ASSIGN_OR_RETURN(Datum right, Eval(expr->right.get(), row, aggs));
    if (!right.is_null() && right.is_bool() &&
        right.bool_value() != is_and) {
      return Bool3(!is_and);
    }
    if (left.is_null() || right.is_null()) return Datum::Null();
    if (!left.is_bool() || !right.is_bool()) {
      return Status::InvalidArgument("AND/OR on non-boolean operands");
    }
    return Bool3(is_and ? (left.bool_value() && right.bool_value())
                        : (left.bool_value() || right.bool_value()));
  }

  ODH_ASSIGN_OR_RETURN(Datum left, Eval(expr->left.get(), row, aggs));
  ODH_ASSIGN_OR_RETURN(Datum right, Eval(expr->right.get(), row, aggs));
  switch (expr->op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      int cmp;
      bool null_result;
      if (!left.Compare(right, &cmp, &null_result)) {
        return Status::InvalidArgument("type mismatch in comparison: " +
                                       expr->ToString());
      }
      if (null_result) return Datum::Null();
      switch (expr->op) {
        case BinaryOp::kEq:
          return Bool3(cmp == 0);
        case BinaryOp::kNe:
          return Bool3(cmp != 0);
        case BinaryOp::kLt:
          return Bool3(cmp < 0);
        case BinaryOp::kLe:
          return Bool3(cmp <= 0);
        case BinaryOp::kGt:
          return Bool3(cmp > 0);
        default:
          return Bool3(cmp >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (left.is_null() || right.is_null()) return Datum::Null();
      if (!left.is_numeric() || !right.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric operands");
      }
      // Integer arithmetic stays integral except for division.
      if (left.is_int64() && right.is_int64() &&
          expr->op != BinaryOp::kDiv) {
        int64_t a = left.int64_value(), b = right.int64_value();
        switch (expr->op) {
          case BinaryOp::kAdd:
            return Datum::Int64(a + b);
          case BinaryOp::kSub:
            return Datum::Int64(a - b);
          default:
            return Datum::Int64(a * b);
        }
      }
      double a = left.AsDouble(), b = right.AsDouble();
      switch (expr->op) {
        case BinaryOp::kAdd:
          return Datum::Double(a + b);
        case BinaryOp::kSub:
          return Datum::Double(a - b);
        case BinaryOp::kMul:
          return Datum::Double(a * b);
        default:
          if (b == 0) return Datum::Null();  // SQL: division by zero -> NULL.
          return Datum::Double(a / b);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Datum> ExprEvaluator::Eval(
    const Expr* expr, const Row& row,
    const std::map<const Expr*, Datum>* aggs) const {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(expr)->value;
    case ExprKind::kParameter: {
      const auto* param = static_cast<const ParameterExpr*>(expr);
      if (params_ == nullptr ||
          param->index >= static_cast<int>(params_->size())) {
        return Status::InvalidArgument("parameter " + expr->ToString() +
                                       " has no bound value");
      }
      return (*params_)[param->index];
    }
    case ExprKind::kColumnRef: {
      const auto* ref = static_cast<const ColumnRefExpr*>(expr);
      int slot = bound_->SlotOf(*ref);
      if (slot < 0 || slot >= static_cast<int>(row.size())) {
        return Status::Internal("column slot out of range");
      }
      return row[slot];
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr*>(expr), row, aggs);
    case ExprKind::kBetween: {
      const auto* between = static_cast<const BetweenExpr*>(expr);
      ODH_ASSIGN_OR_RETURN(Datum v, Eval(between->value.get(), row, aggs));
      ODH_ASSIGN_OR_RETURN(Datum lo, Eval(between->lower.get(), row, aggs));
      ODH_ASSIGN_OR_RETURN(Datum hi, Eval(between->upper.get(), row, aggs));
      int cmp_lo, cmp_hi;
      bool null_lo, null_hi;
      if (!v.Compare(lo, &cmp_lo, &null_lo) ||
          !v.Compare(hi, &cmp_hi, &null_hi)) {
        return Status::InvalidArgument("type mismatch in BETWEEN");
      }
      if (null_lo || null_hi) return Datum::Null();
      return Bool3(cmp_lo >= 0 && cmp_hi <= 0);
    }
    case ExprKind::kNot: {
      const auto* not_expr = static_cast<const NotExpr*>(expr);
      ODH_ASSIGN_OR_RETURN(Datum v, Eval(not_expr->operand.get(), row, aggs));
      if (v.is_null()) return Datum::Null();
      if (!v.is_bool()) {
        return Status::InvalidArgument("NOT on non-boolean operand");
      }
      return Bool3(!v.bool_value());
    }
    case ExprKind::kIsNull: {
      const auto* is_null = static_cast<const IsNullExpr*>(expr);
      ODH_ASSIGN_OR_RETURN(Datum v, Eval(is_null->operand.get(), row, aggs));
      return Bool3(is_null->negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kAggregate: {
      if (aggs != nullptr) {
        auto it = aggs->find(expr);
        if (it != aggs->end()) return it->second;
      }
      return Status::Internal("aggregate evaluated outside aggregation");
    }
  }
  return Status::Internal("unhandled expr kind");
}

Result<bool> ExprEvaluator::EvalPredicate(const Expr* expr,
                                          const Row& row) const {
  ODH_ASSIGN_OR_RETURN(Datum v, Eval(expr, row));
  return !v.is_null() && v.is_bool() && v.bool_value();
}

const Datum* ExprEvaluator::ResolveConstant(const Expr* expr) const {
  if (expr->kind() == ExprKind::kLiteral) {
    return &static_cast<const LiteralExpr*>(expr)->value;
  }
  if (expr->kind() == ExprKind::kParameter) {
    const auto* param = static_cast<const ParameterExpr*>(expr);
    if (params_ != nullptr &&
        param->index < static_cast<int>(params_->size())) {
      return &(*params_)[param->index];
    }
  }
  return nullptr;
}

}  // namespace odh::sql
