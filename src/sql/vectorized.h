#ifndef ODH_SQL_VECTORIZED_H_
#define ODH_SQL_VECTORIZED_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "sql/table_provider.h"

namespace odh::sql {

/// Vectorized range-filter kernel: intersects *batch's selection vector
/// with the rows whose `column` value lies within [min, max] (strict on a
/// side when the matching exclusive flag is set). NaN values — and every
/// row, when `column` is empty (unprojected, reads as all-NULL) — never
/// match, mirroring SQL comparison semantics.
void FilterByRange(const std::vector<double>& column, double min, double max,
                   bool min_exclusive, bool max_exclusive,
                   ColumnBatch* batch);

/// True when BatchAggregator can accumulate every request: COUNT(*) and
/// COUNT(col) over any column, value aggregates (SUM/AVG/MIN/MAX) only
/// over DOUBLE tag columns (>= 2 in the batch layout).
bool VectorizedAggregatable(const std::vector<AggregateRequest>& requests);

/// Vectorized COUNT/SUM/AVG/MIN/MAX accumulation over ColumnBatches — the
/// engine's per-row Datum aggregation loop collapsed into array sweeps.
/// Finalize follows the engine's SQL conventions: COUNT of nothing is 0;
/// SUM/AVG/MIN/MAX of nothing are NULL.
class BatchAggregator {
 public:
  explicit BatchAggregator(std::vector<AggregateRequest> requests)
      : requests_(std::move(requests)), states_(requests_.size()) {}

  void Accumulate(const ColumnBatch& batch);

  /// One result Datum per request, in request order.
  Row Finalize() const;

 private:
  struct State {
    int64_t count = 0;
    double sum = 0;
    bool has_value = false;
    double min = 0;
    double max = 0;
  };
  std::vector<AggregateRequest> requests_;
  std::vector<State> states_;
};

/// Adapts a BatchCursor to the row-at-a-time contract: assembles
/// [id BIGINT, ts TIMESTAMP, <tags> DOUBLE...] rows from each batch's
/// selection vector. NaN tag values and unprojected (empty) columns
/// surface as SQL NULL. This keeps row-oriented plan nodes (joins,
/// ORDER BY, expression filters) working on top of batch-only scans.
std::unique_ptr<RowCursor> MakeBatchRowAdapter(
    std::unique_ptr<BatchCursor> batches);

}  // namespace odh::sql

#endif  // ODH_SQL_VECTORIZED_H_
