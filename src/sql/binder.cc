#include "sql/binder.h"

#include "common/types.h"

namespace odh::sql {
namespace {

class Binder {
 public:
  Binder(Catalog* catalog, BoundSelect* out) : catalog_(catalog), out_(out) {}

  Status Run(SelectStmt stmt);

 private:
  Status BindTables(const std::vector<TableRef>& refs);
  Status BindExpr(Expr* expr, bool allow_aggregates);
  Status BindColumnRef(ColumnRefExpr* ref);

  /// If `expr` compares a timestamp-typed operand against a string literal,
  /// parses the literal in place ("YYYY-MM-DD HH:MM:SS" -> Timestamp).
  Status CoerceTimestampPair(Expr* a, Expr* b);
  static DataType StaticType(const Expr* expr);

  bool ContainsAggregate(const Expr* expr) const;

  Catalog* catalog_;
  BoundSelect* out_;
};

DataType Binder::StaticType(const Expr* expr) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr*>(expr)->value.type();
    case ExprKind::kColumnRef:
      return static_cast<const ColumnRefExpr*>(expr)->type;
    default:
      return DataType::kNull;  // Unknown / computed.
  }
}

Status Binder::CoerceTimestampPair(Expr* a, Expr* b) {
  auto try_coerce = [](Expr* ts_side, Expr* lit_side) -> Status {
    if (StaticType(ts_side) != DataType::kTimestamp) return Status::OK();
    if (lit_side->kind() != ExprKind::kLiteral) return Status::OK();
    auto* lit = static_cast<LiteralExpr*>(lit_side);
    if (!lit->value.is_string()) return Status::OK();
    Timestamp ts;
    if (!ParseTimestamp(lit->value.string_value(), &ts)) {
      return Status::InvalidArgument("cannot parse timestamp literal: '" +
                                     lit->value.string_value() + "'");
    }
    lit->value = Datum::Time(ts);
    return Status::OK();
  };
  ODH_RETURN_IF_ERROR(try_coerce(a, b));
  return try_coerce(b, a);
}

Status Binder::BindTables(const std::vector<TableRef>& refs) {
  if (refs.empty()) return Status::InvalidArgument("FROM list is empty");
  int offset = 0;
  for (const TableRef& ref : refs) {
    ODH_ASSIGN_OR_RETURN(TableProvider* provider,
                         catalog_->Resolve(ref.name));
    for (const BoundTable& existing : out_->tables) {
      if (relational::NameEquals(existing.alias, ref.alias)) {
        return Status::InvalidArgument("duplicate table alias: " + ref.alias);
      }
    }
    BoundTable bound;
    bound.provider = provider;
    bound.alias = ref.alias;
    bound.slot_offset = offset;
    offset += static_cast<int>(provider->schema().num_columns());
    out_->tables.push_back(std::move(bound));
  }
  out_->total_slots = offset;
  return Status::OK();
}

Status Binder::BindColumnRef(ColumnRefExpr* ref) {
  int found_table = -1;
  int found_column = -1;
  for (size_t t = 0; t < out_->tables.size(); ++t) {
    const BoundTable& bt = out_->tables[t];
    if (!ref->table.empty() &&
        !relational::NameEquals(ref->table, bt.alias)) {
      continue;
    }
    int col = bt.provider->schema().FindColumn(ref->column);
    if (col < 0) continue;
    if (found_table >= 0) {
      return Status::InvalidArgument("ambiguous column: " + ref->ToString());
    }
    found_table = static_cast<int>(t);
    found_column = col;
  }
  if (found_table < 0) {
    return Status::InvalidArgument("unknown column: " + ref->ToString());
  }
  ref->table_no = found_table;
  ref->column_no = found_column;
  ref->type =
      out_->tables[found_table].provider->schema().column(found_column).type;
  return Status::OK();
}

Status Binder::BindExpr(Expr* expr, bool allow_aggregates) {
  switch (expr->kind()) {
    case ExprKind::kLiteral:
      return Status::OK();
    case ExprKind::kParameter:
      // Value arrives at execution time; nothing to resolve here. Type
      // coercion against timestamp columns happens in the planner / the
      // evaluator's numeric widening once the value is known.
      return Status::OK();
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<ColumnRefExpr*>(expr));
    case ExprKind::kBinary: {
      auto* bin = static_cast<BinaryExpr*>(expr);
      ODH_RETURN_IF_ERROR(BindExpr(bin->left.get(), allow_aggregates));
      ODH_RETURN_IF_ERROR(BindExpr(bin->right.get(), allow_aggregates));
      return CoerceTimestampPair(bin->left.get(), bin->right.get());
    }
    case ExprKind::kBetween: {
      auto* between = static_cast<BetweenExpr*>(expr);
      ODH_RETURN_IF_ERROR(BindExpr(between->value.get(), allow_aggregates));
      ODH_RETURN_IF_ERROR(BindExpr(between->lower.get(), allow_aggregates));
      ODH_RETURN_IF_ERROR(BindExpr(between->upper.get(), allow_aggregates));
      ODH_RETURN_IF_ERROR(
          CoerceTimestampPair(between->value.get(), between->lower.get()));
      return CoerceTimestampPair(between->value.get(), between->upper.get());
    }
    case ExprKind::kNot:
      return BindExpr(static_cast<NotExpr*>(expr)->operand.get(),
                      allow_aggregates);
    case ExprKind::kIsNull:
      return BindExpr(static_cast<IsNullExpr*>(expr)->operand.get(),
                      allow_aggregates);
    case ExprKind::kAggregate: {
      if (!allow_aggregates) {
        return Status::InvalidArgument(
            "aggregate not allowed here: " + expr->ToString());
      }
      auto* agg = static_cast<AggregateExpr*>(expr);
      out_->has_aggregates = true;
      if (agg->arg != nullptr) {
        // No nested aggregates.
        return BindExpr(agg->arg.get(), /*allow_aggregates=*/false);
      }
      return Status::OK();
    }
  }
  return Status::Internal("unhandled expr kind");
}

bool Binder::ContainsAggregate(const Expr* expr) const {
  switch (expr->kind()) {
    case ExprKind::kAggregate:
      return true;
    case ExprKind::kBinary: {
      auto* bin = static_cast<const BinaryExpr*>(expr);
      return ContainsAggregate(bin->left.get()) ||
             ContainsAggregate(bin->right.get());
    }
    case ExprKind::kNot:
      return ContainsAggregate(
          static_cast<const NotExpr*>(expr)->operand.get());
    default:
      return false;
  }
}

Status Binder::Run(SelectStmt stmt) {
  ODH_RETURN_IF_ERROR(BindTables(stmt.tables));

  // Expand the select list.
  for (SelectItem& item : stmt.items) {
    if (item.star) {
      bool matched = false;
      for (size_t t = 0; t < out_->tables.size(); ++t) {
        const BoundTable& bt = out_->tables[t];
        if (!item.star_table.empty() &&
            !relational::NameEquals(item.star_table, bt.alias)) {
          continue;
        }
        matched = true;
        const relational::Schema& schema = bt.provider->schema();
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          auto ref = std::make_unique<ColumnRefExpr>(bt.alias,
                                                     schema.column(c).name);
          ref->table_no = static_cast<int>(t);
          ref->column_no = static_cast<int>(c);
          ref->type = schema.column(c).type;
          out_->output_names.push_back(schema.column(c).name);
          out_->output.push_back(std::move(ref));
        }
      }
      if (!matched) {
        return Status::InvalidArgument("unknown table in star: " +
                                       item.star_table);
      }
      continue;
    }
    ODH_RETURN_IF_ERROR(BindExpr(item.expr.get(), /*allow_aggregates=*/true));
    std::string name = item.alias.empty() ? item.expr->ToString()
                                          : item.alias;
    if (item.alias.empty() &&
        item.expr->kind() == ExprKind::kColumnRef) {
      name = static_cast<ColumnRefExpr*>(item.expr.get())->column;
    }
    out_->output_names.push_back(std::move(name));
    out_->output.push_back(std::move(item.expr));
  }

  if (stmt.where != nullptr) {
    ODH_RETURN_IF_ERROR(BindExpr(stmt.where.get(),
                                 /*allow_aggregates=*/false));
    out_->where = std::move(stmt.where);
  }
  for (ExprPtr& e : stmt.group_by) {
    ODH_RETURN_IF_ERROR(BindExpr(e.get(), /*allow_aggregates=*/false));
    if (e->kind() != ExprKind::kColumnRef) {
      return Status::InvalidArgument("GROUP BY supports column refs only");
    }
    out_->group_by.push_back(std::move(e));
  }
  for (OrderByItem& item : stmt.order_by) {
    BoundSelect::BoundOrderBy bound_item;
    bound_item.ascending = item.ascending;
    // An unqualified name may refer to an output alias; also support the
    // ordinal form (ORDER BY 2).
    bool resolved = false;
    if (item.expr->kind() == ExprKind::kColumnRef) {
      const auto* ref = static_cast<const ColumnRefExpr*>(item.expr.get());
      if (ref->table.empty()) {
        for (size_t i = 0; i < out_->output_names.size(); ++i) {
          if (relational::NameEquals(out_->output_names[i], ref->column)) {
            bound_item.output_ordinal = static_cast<int>(i);
            resolved = true;
            break;
          }
        }
      }
    } else if (item.expr->kind() == ExprKind::kLiteral) {
      const auto* lit = static_cast<const LiteralExpr*>(item.expr.get());
      if (lit->value.is_int64()) {
        int64_t ordinal = lit->value.int64_value();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(out_->output.size())) {
          return Status::InvalidArgument("ORDER BY ordinal out of range");
        }
        bound_item.output_ordinal = static_cast<int>(ordinal - 1);
        resolved = true;
      }
    }
    if (!resolved) {
      ODH_RETURN_IF_ERROR(BindExpr(item.expr.get(),
                                   /*allow_aggregates=*/true));
      bound_item.expr = std::move(item.expr);
    }
    out_->order_by.push_back(std::move(bound_item));
  }
  out_->limit = stmt.limit;
  out_->param_count = stmt.param_count;

  // Validate aggregate queries: non-aggregate output columns must appear in
  // GROUP BY.
  if (out_->has_aggregates || !out_->group_by.empty()) {
    out_->has_aggregates = true;
    for (const ExprPtr& e : out_->output) {
      if (ContainsAggregate(e.get())) continue;
      if (e->kind() != ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "non-aggregate select item must be a grouped column: " +
            e->ToString());
      }
      const auto* ref = static_cast<const ColumnRefExpr*>(e.get());
      bool grouped = false;
      for (const ExprPtr& g : out_->group_by) {
        const auto* gref = static_cast<const ColumnRefExpr*>(g.get());
        if (gref->table_no == ref->table_no &&
            gref->column_no == ref->column_no) {
          grouped = true;
          break;
        }
      }
      if (!grouped) {
        return Status::InvalidArgument("column not in GROUP BY: " +
                                       ref->ToString());
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<BoundSelect> Bind(Catalog* catalog, SelectStmt stmt) {
  BoundSelect bound;
  Binder binder(catalog, &bound);
  ODH_RETURN_IF_ERROR(binder.Run(std::move(stmt)));
  return bound;
}

}  // namespace odh::sql
