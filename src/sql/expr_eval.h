#ifndef ODH_SQL_EXPR_EVAL_H_
#define ODH_SQL_EXPR_EVAL_H_

#include <map>

#include "common/result.h"
#include "sql/binder.h"

namespace odh::sql {

/// Tree-walking evaluator over combined rows (see BoundSelect::SlotOf).
/// SQL three-valued logic: comparisons involving NULL yield NULL; filters
/// treat NULL as false.
///
/// `params` supplies values for `?` placeholders of a prepared statement;
/// the pointed-to vector must outlive the evaluator (the execution-state
/// structs in session.cc own both). Evaluating a ParameterExpr with no
/// params bound is an error.
class ExprEvaluator {
 public:
  explicit ExprEvaluator(const BoundSelect* bound,
                         const std::vector<Datum>* params = nullptr)
      : bound_(bound), params_(params) {}

  /// Evaluates an expression. AggregateExpr nodes are looked up in
  /// `agg_values` (supplied by the aggregation operator); evaluating one
  /// without a binding is an error.
  Result<Datum> Eval(const Expr* expr, const Row& row,
                     const std::map<const Expr*, Datum>* agg_values =
                         nullptr) const;

  /// Evaluates a predicate: non-true (false or NULL) yields false.
  Result<bool> EvalPredicate(const Expr* expr, const Row& row) const;

  /// Resolves an expression that is constant for the whole execution — a
  /// literal, or a `?` parameter with params bound. Returns nullptr for
  /// anything else (including an unbound parameter, e.g. during EXPLAIN),
  /// which callers treat as "not pushable". Used by the planner so
  /// prepared statements keep constraint pushdown and partition pruning.
  const Datum* ResolveConstant(const Expr* expr) const;

 private:
  Result<Datum> EvalBinary(const BinaryExpr* expr, const Row& row,
                           const std::map<const Expr*, Datum>* aggs) const;

  const BoundSelect* bound_;
  const std::vector<Datum>* params_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_EXPR_EVAL_H_
