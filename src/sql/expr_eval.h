#ifndef ODH_SQL_EXPR_EVAL_H_
#define ODH_SQL_EXPR_EVAL_H_

#include <map>

#include "common/result.h"
#include "sql/binder.h"

namespace odh::sql {

/// Tree-walking evaluator over combined rows (see BoundSelect::SlotOf).
/// SQL three-valued logic: comparisons involving NULL yield NULL; filters
/// treat NULL as false.
class ExprEvaluator {
 public:
  explicit ExprEvaluator(const BoundSelect* bound) : bound_(bound) {}

  /// Evaluates an expression. AggregateExpr nodes are looked up in
  /// `agg_values` (supplied by the aggregation operator); evaluating one
  /// without a binding is an error.
  Result<Datum> Eval(const Expr* expr, const Row& row,
                     const std::map<const Expr*, Datum>* agg_values =
                         nullptr) const;

  /// Evaluates a predicate: non-true (false or NULL) yields false.
  Result<bool> EvalPredicate(const Expr* expr, const Row& row) const;

 private:
  Result<Datum> EvalBinary(const BinaryExpr* expr, const Row& row,
                           const std::map<const Expr*, Datum>* aggs) const;

  const BoundSelect* bound_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_EXPR_EVAL_H_
