#ifndef ODH_SQL_ENGINE_H_
#define ODH_SQL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory.h"
#include "sql/catalog.h"
#include "sql/planner.h"

namespace odh::storage {
class SimDisk;
}  // namespace odh::storage

namespace odh::sql {

/// Memory-governance budgets, all in bytes; 0 = unbounded at that level.
/// The hierarchy is process -> session -> query: a reservation must fit
/// every level, so a modest query can still be refused by a full process.
struct MemoryBudgets {
  int64_t process_bytes = 0;
  int64_t session_bytes = 0;
  int64_t query_bytes = 0;
};

/// Execution profile of one SELECT: which scan path actually ran and how
/// much blob I/O it did. `path` is derived from runtime evidence after the
/// statement finishes — "summary-pushdown" when the provider answered the
/// aggregates, "vectorized-batch" when ColumnBatches flowed, "row-scan"
/// otherwise — so it can never disagree with what executed (the planner's
/// EXPLAIN text only names candidates). Retrievable inline via
/// `EXPLAIN PROFILE <stmt>` and historically via the odh_queries table.
struct QueryProfile {
  std::string statement;
  std::string path;
  /// True when the statement ran through a prepared handle: parse and bind
  /// were skipped and `plan_micros` covers planning only.
  bool prepared = false;
  int64_t rows_returned = 0;
  int64_t rows_scanned = 0;
  int64_t batches = 0;
  int64_t blobs_decoded = 0;
  int64_t blobs_pruned = 0;
  int64_t blobs_skipped_by_summary = 0;
  int64_t blob_bytes_read = 0;
  /// Whole segments eliminated by manifest time bounds before any blob of
  /// theirs was examined (disjoint from the blob counters above: a pruned
  /// segment's blobs appear in none of them).
  int64_t segments_pruned = 0;
  /// Distinct (structure, segment) groups this query's scans fanned out to
  /// parallel workers (0 = the serial path ran).
  int64_t segments_scanned_parallel = 0;
  /// Blobs served from the decoded-blob cache instead of decoding.
  int64_t blob_cache_hits = 0;
  /// High-water mark of the query's memory reservations (buffered rows,
  /// aggregation state, sort working set, spill I/O buffers).
  int64_t mem_peak_bytes = 0;
  /// Sorted runs written to disk when the sort working set exceeded the
  /// query budget (0 = the sort fit in memory).
  int64_t spill_runs = 0;
  /// Payload bytes written across those runs.
  int64_t spill_bytes = 0;
  double plan_micros = 0;
  double total_micros = 0;
  /// Replication lag at execution time, stamped on replicas only: -1 on a
  /// primary/standalone engine (EXPLAIN PROFILE omits the rows then),
  /// otherwise the bytes of primary WAL not yet applied locally and the
  /// staleness of the replica's data watermark.
  int64_t repl_lag_bytes = -1;
  int64_t repl_staleness_micros = 0;
};

/// Result of a SELECT (or row counts for DML/DDL). Move-only: result rows
/// are built in place by the execution layer and handed to the caller
/// without ever being copied (large range scans would otherwise pay a full
/// deep copy on return).
struct QueryResult {
  QueryResult() = default;
  QueryResult(const QueryResult&) = delete;
  QueryResult& operator=(const QueryResult&) = delete;
  QueryResult(QueryResult&&) = default;
  QueryResult& operator=(QueryResult&&) = default;

  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;  // For INSERT.
  std::string explain;        // Plan text (SELECT only).
  QueryProfile profile;       // Filled for every SELECT.

  /// The paper's throughput unit: number of non-NULL values returned.
  int64_t DataPointCount() const {
    int64_t n = 0;
    for (const Row& row : rows) {
      for (const Datum& d : row) {
        if (!d.is_null()) ++n;
      }
    }
    return n;
  }
};

/// The SQL back end shared by every session: catalog, recent-statement
/// ring, and the write lock that serializes mutating statements. One
/// engine serves one Database plus any registered virtual tables; this is
/// the unified access interface the paper's "operational and relational
/// data fusion" feature describes.
///
/// Statement execution lives in sql::Session (session.h) — per-connection
/// state, prepared statements, and streaming results. The engine keeps a
/// one-shot Execute for internal and test use; it simply runs a throwaway
/// Session, so application code should hold a real Session instead.
class SqlEngine {
 public:
  explicit SqlEngine(relational::Database* db) : catalog_(db) {}

  SqlEngine(const SqlEngine&) = delete;
  SqlEngine& operator=(const SqlEngine&) = delete;

  Catalog* catalog() { return &catalog_; }

  /// One-shot convenience wrapper (internal/test use): runs `sql` on a
  /// temporary Session and materializes the result. Thread-safe; SELECTs
  /// from concurrent callers run in parallel.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT and returns the plan text without running it.
  Result<std::string> Explain(const std::string& sql);

  /// Profiles of the most recently executed SELECTs, oldest first
  /// (bounded ring; thread-safe snapshot).
  std::vector<QueryProfile> RecentQueries() const;

  /// Appends one finished statement's profile to the ring. Called by the
  /// session layer when a statement (or its stream) completes.
  void LogQuery(QueryProfile profile);

  /// Wires memory governance: per-level budgets and the disk ORDER BY
  /// sorts spill to when a query exceeds its budget. Call once at system
  /// construction, before any Session exists; sessions created on an
  /// unconfigured engine run unbounded (and never spill). `spill_disk`
  /// may be null — budgets are then enforced fail-fast only.
  void ConfigureMemory(const MemoryBudgets& budgets,
                       storage::SimDisk* spill_disk) {
    memory_budgets_ = budgets;
    memory_root_.set_limit(budgets.process_bytes);
    spill_disk_ = spill_disk;
  }

  /// Root of the tracker hierarchy; every session tracker is its child.
  /// HistorianServer's admission gate reads used() off this.
  common::MemoryTracker* memory_root() { return &memory_root_; }
  const MemoryBudgets& memory_budgets() const { return memory_budgets_; }
  storage::SimDisk* spill_disk() { return spill_disk_; }
  /// Monotonic id stamped into spill file names so concurrent queries
  /// never collide.
  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Serializes mutating statements (INSERT / CREATE) across sessions.
  /// SELECTs never take it: the storage layer is safe for concurrent
  /// reads, and readers running against a committed snapshot is the
  /// historian's normal operating mode.
  std::mutex* write_mutex() { return &write_mu_; }

  /// Handler for ALTER TABLE ... RETENTION: (table name as written in the
  /// statement, interval in microseconds). The historian registers one
  /// that maps its "<type>_v" views to schema types; without a handler the
  /// statement fails as unsupported. Called under the write mutex.
  using RetentionHandler =
      std::function<Status(const std::string&, int64_t)>;
  void set_retention_handler(RetentionHandler handler) {
    retention_handler_ = std::move(handler);
  }
  const RetentionHandler& retention_handler() const {
    return retention_handler_;
  }

  /// Replication-lag snapshot a replica's wiring exposes to sessions (so
  /// lag lands in per-query profiles and EXPLAIN PROFILE). is_replica
  /// stays false on primaries/standalone engines.
  struct ReplicationInfo {
    bool is_replica = false;
    uint64_t applied_lsn = 0;
    uint64_t primary_durable_lsn = 0;
    int64_t lag_bytes = 0;
    int64_t watermark_micros = 0;
    int64_t staleness_micros = 0;
  };
  using ReplicationInfoProvider = std::function<ReplicationInfo()>;
  /// Installed once by replica wiring (before sessions run queries); the
  /// provider must be callable from any session thread.
  void set_replication_info_provider(ReplicationInfoProvider provider) {
    replication_info_provider_ = std::move(provider);
  }
  /// Current lag snapshot; a default (is_replica=false) when no provider
  /// is installed.
  ReplicationInfo replication_info() const {
    return replication_info_provider_ ? replication_info_provider_()
                                      : ReplicationInfo{};
  }

 private:
  static constexpr size_t kRecentQueryCapacity = 128;

  Catalog catalog_;
  common::MemoryTracker memory_root_{"process"};
  MemoryBudgets memory_budgets_;
  storage::SimDisk* spill_disk_ = nullptr;
  std::atomic<uint64_t> next_query_id_{1};
  RetentionHandler retention_handler_;
  ReplicationInfoProvider replication_info_provider_;
  std::mutex write_mu_;
  mutable std::mutex queries_mu_;
  std::deque<QueryProfile> recent_queries_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_ENGINE_H_
