#ifndef ODH_SQL_ENGINE_H_
#define ODH_SQL_ENGINE_H_

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/planner.h"

namespace odh::sql {

/// Execution profile of one SELECT: which scan path actually ran and how
/// much blob I/O it did. `path` is derived from runtime evidence after the
/// statement finishes — "summary-pushdown" when the provider answered the
/// aggregates, "vectorized-batch" when ColumnBatches flowed, "row-scan"
/// otherwise — so it can never disagree with what executed (the planner's
/// EXPLAIN text only names candidates). Retrievable inline via
/// `EXPLAIN PROFILE <stmt>` and historically via the odh_queries table.
struct QueryProfile {
  std::string statement;
  std::string path;
  int64_t rows_returned = 0;
  int64_t rows_scanned = 0;
  int64_t batches = 0;
  int64_t blobs_decoded = 0;
  int64_t blobs_pruned = 0;
  int64_t blobs_skipped_by_summary = 0;
  int64_t blob_bytes_read = 0;
  double plan_micros = 0;
  double total_micros = 0;
};

/// Result of a SELECT (or row counts for DML/DDL).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;  // For INSERT.
  std::string explain;        // Plan text (SELECT only).
  QueryProfile profile;       // Filled for every SELECT.

  /// The paper's throughput unit: number of non-NULL values returned.
  int64_t DataPointCount() const {
    int64_t n = 0;
    for (const Row& row : rows) {
      for (const Datum& d : row) {
        if (!d.is_null()) ++n;
      }
    }
    return n;
  }
};

/// The SQL front door: parse -> bind -> plan -> execute. One engine serves
/// one Database plus any registered virtual tables; this is the unified
/// access interface the paper's "operational and relational data fusion"
/// feature describes.
class SqlEngine {
 public:
  explicit SqlEngine(relational::Database* db) : catalog_(db) {}

  SqlEngine(const SqlEngine&) = delete;
  SqlEngine& operator=(const SqlEngine&) = delete;

  Catalog* catalog() { return &catalog_; }

  /// Runs one statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT and returns the plan text without running it.
  Result<std::string> Explain(const std::string& sql);

  /// Profiles of the most recently executed SELECTs, oldest first
  /// (bounded ring; thread-safe snapshot).
  std::vector<QueryProfile> RecentQueries() const;

 private:
  Result<QueryResult> ExecuteSelect(SelectStmt stmt,
                                    const std::string& sql_text);
  Result<QueryResult> RunSelect(SelectStmt stmt,
                                common::ScanCounters* counters,
                                QueryProfile* profile);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  void LogQuery(QueryProfile profile);

  static constexpr size_t kRecentQueryCapacity = 128;

  Catalog catalog_;
  mutable std::mutex queries_mu_;
  std::deque<QueryProfile> recent_queries_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_ENGINE_H_
