#ifndef ODH_SQL_ENGINE_H_
#define ODH_SQL_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/catalog.h"
#include "sql/planner.h"

namespace odh::sql {

/// Result of a SELECT (or row counts for DML/DDL).
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t affected_rows = 0;  // For INSERT.
  std::string explain;        // Plan text (SELECT only).

  /// The paper's throughput unit: number of non-NULL values returned.
  int64_t DataPointCount() const {
    int64_t n = 0;
    for (const Row& row : rows) {
      for (const Datum& d : row) {
        if (!d.is_null()) ++n;
      }
    }
    return n;
  }
};

/// The SQL front door: parse -> bind -> plan -> execute. One engine serves
/// one Database plus any registered virtual tables; this is the unified
/// access interface the paper's "operational and relational data fusion"
/// feature describes.
class SqlEngine {
 public:
  explicit SqlEngine(relational::Database* db) : catalog_(db) {}

  SqlEngine(const SqlEngine&) = delete;
  SqlEngine& operator=(const SqlEngine&) = delete;

  Catalog* catalog() { return &catalog_; }

  /// Runs one statement.
  Result<QueryResult> Execute(const std::string& sql);

  /// Plans a SELECT and returns the plan text without running it.
  Result<std::string> Explain(const std::string& sql);

 private:
  Result<QueryResult> ExecuteSelect(SelectStmt stmt);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt);
  Result<QueryResult> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const CreateIndexStmt& stmt);

  Catalog catalog_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_ENGINE_H_
