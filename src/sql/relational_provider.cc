#include "sql/relational_provider.h"

#include <algorithm>
#include <set>

#include "common/key_codec.h"

namespace odh::sql {
namespace {

/// True when `value` passes a single column constraint (NULLs never match,
/// as in SQL).
bool DatumSatisfies(const Datum& value, const ColumnConstraint& c) {
  if (value.is_null()) return false;
  int cmp;
  bool null_result;
  if (c.equals.has_value()) {
    if (!value.Compare(*c.equals, &cmp, &null_result) || null_result) {
      return false;
    }
    return cmp == 0;
  }
  if (c.lower.has_value()) {
    if (!value.Compare(c.lower->value, &cmp, &null_result) || null_result) {
      return false;
    }
    if (cmp < 0 || (cmp == 0 && !c.lower->inclusive)) return false;
  }
  if (c.upper.has_value()) {
    if (!value.Compare(c.upper->value, &cmp, &null_result) || null_result) {
      return false;
    }
    if (cmp > 0 || (cmp == 0 && !c.upper->inclusive)) return false;
  }
  return true;
}

/// Index-range cursor: walks rids from a B-tree range, fetches rows and
/// re-checks all constraints.
class IndexScanCursor : public RowCursor {
 public:
  IndexScanCursor(relational::Table* table,
                  relational::Table::IndexIterator it, ScanSpec spec)
      : table_(table), it_(std::move(it)), spec_(std::move(spec)) {}

  Result<bool> Next(Row* row) override {
    if (!poison_.ok()) return poison_;
    Result<bool> more = NextImpl(row);
    if (!more.ok()) poison_ = more.status();
    return more;
  }

  /// Columns that must be decoded: the projection plus constraint columns.
  void InitFetchColumns() {
    std::set<int> cols(spec_.projection.begin(), spec_.projection.end());
    for (const auto& c : spec_.constraints) cols.insert(c.column);
    fetch_columns_.assign(cols.begin(), cols.end());
  }

 private:
  Result<bool> NextImpl(Row* row) {
    while (it_.Valid()) {
      relational::Rid rid = it_.rid();
      ODH_RETURN_IF_ERROR(it_.Next());
      Row candidate;
      if (spec_.projection.empty()) {
        ODH_ASSIGN_OR_RETURN(candidate, table_->Get(rid));
      } else {
        ODH_ASSIGN_OR_RETURN(candidate,
                             table_->GetColumns(rid, fetch_columns_));
      }
      if (!RowSatisfies(candidate, spec_.constraints)) continue;
      *row = std::move(candidate);
      return true;
    }
    return false;
  }

  relational::Table* table_;
  relational::Table::IndexIterator it_;
  ScanSpec spec_;
  std::vector<int> fetch_columns_;
  Status poison_;  // First error seen; repeated by every later Next.
};

/// Filtered sequential scan.
class FullScanCursor : public RowCursor {
 public:
  FullScanCursor(relational::Table* table, ScanSpec spec)
      : it_(table->NewIterator()), spec_(std::move(spec)) {}

  Status Init() { return it_.SeekToFirst(); }

  Result<bool> Next(Row* row) override {
    if (!poison_.ok()) return poison_;
    Result<bool> more = NextImpl(row);
    if (!more.ok()) poison_ = more.status();
    return more;
  }

 private:
  Result<bool> NextImpl(Row* row) {
    while (it_.Valid()) {
      ODH_ASSIGN_OR_RETURN(Row candidate, it_.row());
      ODH_RETURN_IF_ERROR(it_.Next());
      if (!RowSatisfies(candidate, spec_.constraints)) continue;
      *row = std::move(candidate);
      return true;
    }
    return false;
  }

  relational::Table::Iterator it_;
  ScanSpec spec_;
  Status poison_;  // First error seen; repeated by every later Next.
};

}  // namespace

bool RowSatisfies(const Row& row,
                  const std::vector<ColumnConstraint>& constraints) {
  for (const auto& c : constraints) {
    if (c.column < 0 || c.column >= static_cast<int>(row.size())) {
      return false;
    }
    if (!DatumSatisfies(row[c.column], c)) return false;
  }
  return true;
}

Result<std::unique_ptr<RowCursor>> RelationalTableProvider::Scan(
    const ScanSpec& spec) {
  // Access path: prefer an equality constraint on an indexed leading
  // column, then a range constraint on one.
  int best_index = -1;
  const ColumnConstraint* best_constraint = nullptr;
  bool best_is_eq = false;
  for (const auto& c : spec.constraints) {
    int index_no = table_->FindIndexOnColumn(c.column);
    if (index_no < 0) continue;
    bool is_eq = c.equals.has_value();
    bool is_range = c.lower.has_value() || c.upper.has_value();
    if (!is_eq && !is_range) continue;
    if (best_index < 0 || (is_eq && !best_is_eq)) {
      best_index = index_no;
      best_constraint = &c;
      best_is_eq = is_eq;
    }
  }
  if (best_index >= 0) {
    std::string lower_key, upper_key;
    if (best_constraint->equals.has_value()) {
      lower_key = EncodeKey({*best_constraint->equals});
      upper_key = lower_key;
    } else {
      if (best_constraint->lower.has_value()) {
        lower_key = EncodeKey({best_constraint->lower->value});
        // Exclusive bounds are widened here and re-filtered per row.
      }
      if (best_constraint->upper.has_value()) {
        upper_key = EncodeKey({best_constraint->upper->value});
      }
    }
    ODH_ASSIGN_OR_RETURN(relational::Table::IndexIterator it,
                         table_->IndexScan(best_index, lower_key, upper_key));
    auto cursor = std::make_unique<IndexScanCursor>(table_, std::move(it),
                                                    spec);
    cursor->InitFetchColumns();
    return std::unique_ptr<RowCursor>(std::move(cursor));
  }
  auto cursor = std::make_unique<FullScanCursor>(table_, spec);
  ODH_RETURN_IF_ERROR(cursor->Init());
  return std::unique_ptr<RowCursor>(std::move(cursor));
}

Status RelationalTableProvider::Analyze() {
  const size_t n = table_->schema().num_columns();
  stats_ = TableStats();
  stats_.columns.resize(n);
  std::vector<std::set<std::string>> distinct(n);
  std::vector<int64_t> nulls(n, 0);
  auto it = table_->NewIterator();
  ODH_RETURN_IF_ERROR(it.SeekToFirst());
  while (it.Valid()) {
    ODH_ASSIGN_OR_RETURN(Row row, it.row());
    ++stats_.row_count;
    for (size_t i = 0; i < n; ++i) {
      if (row[i].is_null()) {
        ++nulls[i];
        continue;
      }
      ColumnStats& cs = stats_.columns[i];
      if (row[i].is_numeric() || row[i].is_timestamp()) {
        double v = row[i].AsDouble();
        if (!cs.valid || v < cs.min) cs.min = v;
        if (!cs.valid || v > cs.max) cs.max = v;
        cs.valid = true;
      } else {
        cs.valid = true;
      }
      // Cap the distinct tracker; beyond the cap we extrapolate.
      if (distinct[i].size() < 10000) {
        distinct[i].insert(row[i].ToString());
      }
    }
    ODH_RETURN_IF_ERROR(it.Next());
  }
  for (size_t i = 0; i < n; ++i) {
    stats_.columns[i].distinct = static_cast<int64_t>(distinct[i].size());
    stats_.columns[i].null_fraction =
        stats_.row_count > 0
            ? static_cast<double>(nulls[i]) / stats_.row_count
            : 0;
  }
  stats_.valid = true;
  return Status::OK();
}

double RelationalTableProvider::Selectivity(
    const ColumnConstraint& c) const {
  const ColumnStats* cs = nullptr;
  if (stats_.valid && c.column >= 0 &&
      c.column < static_cast<int>(stats_.columns.size()) &&
      stats_.columns[c.column].valid) {
    cs = &stats_.columns[c.column];
  }
  if (c.equals.has_value()) {
    if (cs != nullptr && cs->distinct > 0) return 1.0 / cs->distinct;
    return 0.01;
  }
  if (c.lower.has_value() || c.upper.has_value()) {
    if (cs != nullptr && cs->max > cs->min) {
      double lo = c.lower.has_value() && c.lower->value.is_numeric()
                      ? c.lower->value.AsDouble()
                      : (c.lower.has_value() && c.lower->value.is_timestamp()
                             ? c.lower->value.AsDouble()
                             : cs->min);
      double hi = c.upper.has_value() && c.upper->value.is_numeric()
                      ? c.upper->value.AsDouble()
                      : (c.upper.has_value() && c.upper->value.is_timestamp()
                             ? c.upper->value.AsDouble()
                             : cs->max);
      lo = std::max(lo, cs->min);
      hi = std::min(hi, cs->max);
      if (hi <= lo) return 1.0 / std::max<int64_t>(stats_.row_count, 1);
      return (hi - lo) / (cs->max - cs->min);
    }
    return 0.1;
  }
  return 1.0;
}

ScanEstimate RelationalTableProvider::Estimate(const ScanSpec& spec) const {
  ScanEstimate est;
  double rows = stats_.valid ? static_cast<double>(stats_.row_count)
                             : static_cast<double>(table_->row_count());
  double total_bytes = static_cast<double>(table_->ApproxHeapBytes());
  double avg_row_bytes =
      table_->row_count() > 0 ? total_bytes / table_->row_count() : 64.0;
  double selectivity = 1.0;
  bool indexed_path = false;
  for (const auto& c : spec.constraints) {
    double s = Selectivity(c);
    selectivity *= s;
    if (table_->FindIndexOnColumn(c.column) >= 0 &&
        (c.equals.has_value() || c.lower.has_value() ||
         c.upper.has_value())) {
      indexed_path = true;
    }
  }
  est.rows = rows * selectivity;
  est.bytes = indexed_path
                  ? est.rows * avg_row_bytes + 64.0  // Probe + matching rows.
                  : std::max(total_bytes, rows * avg_row_bytes);
  return est;
}

}  // namespace odh::sql
