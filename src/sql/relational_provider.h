#ifndef ODH_SQL_RELATIONAL_PROVIDER_H_
#define ODH_SQL_RELATIONAL_PROVIDER_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/table.h"
#include "sql/table_provider.h"

namespace odh::sql {

/// Per-column statistics used for selectivity estimation (collected by
/// Analyze(), an ANALYZE-style full scan).
struct ColumnStats {
  bool valid = false;
  double min = 0;
  double max = 0;
  int64_t distinct = 0;     // Approximate.
  double null_fraction = 0;
};

struct TableStats {
  bool valid = false;
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;
};

/// TableProvider over a heap table with secondary indexes. Access path
/// selection: an equality or range constraint on the leading column of an
/// index becomes an index range scan; anything else is a filtered full scan.
class RelationalTableProvider : public TableProvider {
 public:
  explicit RelationalTableProvider(relational::Table* table)
      : table_(table) {}

  const std::string& name() const override { return table_->name(); }
  const relational::Schema& schema() const override {
    return table_->schema();
  }

  Result<std::unique_ptr<RowCursor>> Scan(const ScanSpec& spec) override;
  ScanEstimate Estimate(const ScanSpec& spec) const override;
  bool SupportsPointLookup(int column) const override {
    return table_->FindIndexOnColumn(column) >= 0;
  }
  RelationalTableProvider* AsRelational() override { return this; }

  /// Scans the table once to collect per-column min/max/distinct stats.
  Status Analyze();
  const TableStats& stats() const { return stats_; }

  relational::Table* table() const { return table_; }

 private:
  /// Selectivity of one pushed-down constraint under the current stats.
  double Selectivity(const ColumnConstraint& constraint) const;

  relational::Table* table_;
  TableStats stats_;
};

/// Evaluates pushed-down constraints against a row (shared by providers).
bool RowSatisfies(const Row& row,
                  const std::vector<ColumnConstraint>& constraints);

}  // namespace odh::sql

#endif  // ODH_SQL_RELATIONAL_PROVIDER_H_
