#ifndef ODH_SQL_AST_H_
#define ODH_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "relational/schema.h"

namespace odh::sql {

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParameter,
  kBinary,
  kBetween,
  kNot,
  kIsNull,
  kAggregate,
};

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAnd,
  kOr,
};

std::string BinaryOpName(BinaryOp op);

enum class AggregateFunc { kCount, kSum, kAvg, kMin, kMax };

std::string AggregateFuncName(AggregateFunc func);

/// Base expression node. Concrete kinds below; RTTI-free dispatch on kind().
class Expr {
 public:
  explicit Expr(ExprKind kind) : kind_(kind) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }
  virtual std::string ToString() const = 0;

 private:
  ExprKind kind_;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Datum value)
      : Expr(ExprKind::kLiteral), value(std::move(value)) {}
  std::string ToString() const override {
    if (!value.is_string()) return value.ToString();
    // append() rather than operator+ sidesteps a GCC 12 -Wrestrict false
    // positive (PR105329); same workaround as bench_table8_queries.
    std::string s = "'";
    s.append(value.ToString());
    s.push_back('\'');
    return s;
  }

  Datum value;
};

/// A `?` placeholder in a prepared statement. Parameters are numbered
/// left to right in statement-text order; the value arrives at execution
/// time (Session::ExecutePrepared), never at bind time, which is what lets
/// one bound statement serve many executions.
class ParameterExpr : public Expr {
 public:
  explicit ParameterExpr(int index)
      : Expr(ExprKind::kParameter), index(index) {}
  std::string ToString() const override {
    return "?" + std::to_string(index + 1);
  }

  int index;  // 0-based position among the statement's parameters.
};

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(std::string table, std::string column)
      : Expr(ExprKind::kColumnRef),
        table(std::move(table)),
        column(std::move(column)) {}
  std::string ToString() const override {
    return table.empty() ? column : table + "." + column;
  }

  std::string table;   // Qualifier as written (may be an alias); may be "".
  std::string column;

  // Filled by the binder: which FROM-table and which of its columns.
  int table_no = -1;
  int column_no = -1;
  DataType type = DataType::kNull;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op(op),
        left(std::move(left)),
        right(std::move(right)) {}
  std::string ToString() const override {
    return "(" + left->ToString() + " " + BinaryOpName(op) + " " +
           right->ToString() + ")";
  }

  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

class BetweenExpr : public Expr {
 public:
  BetweenExpr(ExprPtr value, ExprPtr lower, ExprPtr upper)
      : Expr(ExprKind::kBetween),
        value(std::move(value)),
        lower(std::move(lower)),
        upper(std::move(upper)) {}
  std::string ToString() const override {
    // append() rather than operator+: GCC 12 -Wrestrict (PR105329).
    std::string s = "(";
    s.append(value->ToString());
    s.append(" BETWEEN ");
    s.append(lower->ToString());
    s.append(" AND ");
    s.append(upper->ToString());
    s.push_back(')');
    return s;
  }

  ExprPtr value;
  ExprPtr lower;
  ExprPtr upper;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr operand)
      : Expr(ExprKind::kNot), operand(std::move(operand)) {}
  std::string ToString() const override {
    return "(NOT " + operand->ToString() + ")";
  }

  ExprPtr operand;
};

class IsNullExpr : public Expr {
 public:
  IsNullExpr(ExprPtr operand, bool negated)
      : Expr(ExprKind::kIsNull), operand(std::move(operand)),
        negated(negated) {}
  std::string ToString() const override {
    return "(" + operand->ToString() + (negated ? " IS NOT NULL" : " IS NULL") +
           ")";
  }

  ExprPtr operand;
  bool negated;
};

class AggregateExpr : public Expr {
 public:
  AggregateExpr(AggregateFunc func, ExprPtr arg, bool star)
      : Expr(ExprKind::kAggregate),
        func(func),
        arg(std::move(arg)),
        star(star) {}
  std::string ToString() const override {
    return AggregateFuncName(func) + "(" + (star ? "*" : arg->ToString()) +
           ")";
  }

  AggregateFunc func;
  ExprPtr arg;  // Null iff star.
  bool star;
};

// Statements -----------------------------------------------------------------

struct SelectItem {
  ExprPtr expr;        // Null iff star.
  std::string alias;   // Output name; derived from expr when empty.
  bool star = false;
  std::string star_table;  // "t.*" qualifier; empty for bare "*".
};

struct TableRef {
  std::string name;
  std::string alias;  // Same as name when no alias given.
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> tables;
  ExprPtr where;  // May be null.
  std::vector<ExprPtr> group_by;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // -1 = no limit.
  int param_count = 0;  // Number of `?` placeholders in the statement.
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // Empty = positional.
  std::vector<std::vector<ExprPtr>> rows;  // Literal or ? expressions.
};

struct CreateTableStmt {
  std::string table;
  std::vector<relational::Column> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
};

/// ALTER TABLE <name> RETENTION <interval>: sets (or with 0 clears) the
/// table's retention window. The interval is normalized to microseconds by
/// the parser; enforcement is a registered handler (the historian maps the
/// view name to its schema type and drops expired segments).
struct AlterRetentionStmt {
  std::string table;
  int64_t retention_micros = 0;
};

struct Statement {
  enum class Kind {
    kSelect,
    kInsert,
    kCreateTable,
    kCreateIndex,
    kAlterRetention,
  };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<AlterRetentionStmt> alter_retention;
  int param_count = 0;  // Number of `?` placeholders in the statement.
};

}  // namespace odh::sql

#endif  // ODH_SQL_AST_H_
