#ifndef ODH_SQL_BINDER_H_
#define ODH_SQL_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/catalog.h"

namespace odh::sql {

/// A FROM-clause table after name resolution. `slot_offset` is where this
/// table's columns live in the combined row layout used during execution
/// (tables are laid out in FROM order regardless of join order).
struct BoundTable {
  TableProvider* provider = nullptr;
  std::string alias;
  int slot_offset = 0;
};

/// A SELECT statement after binding: stars expanded, every ColumnRefExpr
/// annotated with (table_no, column_no, type), timestamp string literals
/// coerced.
struct BoundSelect {
  std::vector<BoundTable> tables;
  std::vector<ExprPtr> output;
  std::vector<std::string> output_names;
  ExprPtr where;  // May be null.
  std::vector<ExprPtr> group_by;
  /// ORDER BY entry: either an expression over the combined row, or a
  /// reference to an output column by position (alias / ordinal form).
  struct BoundOrderBy {
    ExprPtr expr;            // Null when output_ordinal >= 0.
    int output_ordinal = -1;
    bool ascending = true;
  };
  std::vector<BoundOrderBy> order_by;
  int64_t limit = -1;
  bool has_aggregates = false;
  int param_count = 0;  // `?` placeholders the statement expects.

  int total_slots = 0;  // Combined row width.

  int SlotOf(const ColumnRefExpr& ref) const {
    return tables[ref.table_no].slot_offset + ref.column_no;
  }
};

/// Resolves names in `stmt` against `catalog`, consuming the statement.
Result<BoundSelect> Bind(Catalog* catalog, SelectStmt stmt);

}  // namespace odh::sql

#endif  // ODH_SQL_BINDER_H_
