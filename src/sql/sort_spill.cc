#include "sql/sort_spill.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/coding.h"
#include "common/slice.h"

namespace odh::sql {
namespace {

/// Self-describing Datum codec for spill records (type tag + payload).
/// Unlike the order-preserving key codec this round-trips every value —
/// including NaN doubles — byte-exactly.
void EncodeDatum(std::string* out, const Datum& d) {
  out->push_back(static_cast<char>(d.type()));
  switch (d.type()) {
    case DataType::kNull:
      break;
    case DataType::kBool:
      out->push_back(d.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      PutVarintSigned64(out, d.int64_value());
      break;
    case DataType::kTimestamp:
      PutVarintSigned64(out, d.timestamp_value());
      break;
    case DataType::kDouble:
      PutDouble(out, d.double_value());
      break;
    case DataType::kString:
      PutLengthPrefixed(out, Slice(d.string_value()));
      break;
  }
}

bool DecodeDatum(Slice* in, Datum* d) {
  if (in->empty()) return false;
  const auto type = static_cast<DataType>((*in)[0]);
  in->remove_prefix(1);
  switch (type) {
    case DataType::kNull:
      *d = Datum::Null();
      return true;
    case DataType::kBool: {
      if (in->empty()) return false;
      *d = Datum::Bool((*in)[0] != 0);
      in->remove_prefix(1);
      return true;
    }
    case DataType::kInt64: {
      int64_t v;
      if (!GetVarintSigned64(in, &v)) return false;
      *d = Datum::Int64(v);
      return true;
    }
    case DataType::kTimestamp: {
      int64_t v;
      if (!GetVarintSigned64(in, &v)) return false;
      *d = Datum::Time(v);
      return true;
    }
    case DataType::kDouble: {
      double v;
      if (!GetDouble(in, &v)) return false;
      *d = Datum::Double(v);
      return true;
    }
    case DataType::kString: {
      Slice s;
      if (!GetLengthPrefixed(in, &s)) return false;
      *d = Datum::String(std::string(s.data(), s.size()));
      return true;
    }
  }
  return false;
}

bool DecodeDatumVector(Slice* in, std::vector<Datum>* out) {
  uint32_t n;
  if (!GetVarint32(in, &n)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Datum d;
    if (!DecodeDatum(in, &d)) return false;
    out->push_back(std::move(d));
  }
  return true;
}

}  // namespace

int CompareDatumsForSort(const Datum& a, const Datum& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  // NaN sorts after every non-NaN number and equal to other NaNs. IEEE
  // comparison (NaN "equal" to everything) is not a strict weak ordering
  // — sorting with it is undefined behavior the moment a NaN meets two
  // distinct numbers — so NaN gets a definite position instead.
  const bool a_nan = a.is_double() && std::isnan(a.double_value());
  const bool b_nan = b.is_double() && std::isnan(b.double_value());
  if (a_nan || b_nan) {
    if (a_nan && b_nan) return 0;
    return a_nan ? 1 : -1;
  }
  int cmp;
  bool null_result;
  if (!a.Compare(b, &cmp, &null_result) || null_result) return 0;
  return cmp;
}

ExternalSorter::ExternalSorter(Options options)
    : options_(std::move(options)),
      top_n_(options_.limit >= 0),
      reserved_(options_.memory) {}

ExternalSorter::~ExternalSorter() { ReleaseAll(); }

bool ExternalSorter::EntryLess(const Entry& a, const Entry& b) const {
  for (size_t i = 0; i < options_.ascending.size(); ++i) {
    const int cmp = CompareDatumsForSort(a.keys[i], b.keys[i]);
    if (cmp != 0) return options_.ascending[i] ? cmp < 0 : cmp > 0;
  }
  return a.seq < b.seq;
}

int64_t ExternalSorter::EntryBytes(const Entry& e) const {
  int64_t n = static_cast<int64_t>(sizeof(Entry)) +
              common::ApproxRowBytes(e.row);
  for (const Datum& k : e.keys) n += common::ApproxDatumBytes(k);
  return n;
}

Status ExternalSorter::Add(std::vector<Datum> keys, Row row) {
  if (finished_) return Status::FailedPrecondition("sorter already finished");
  Entry e;
  e.keys = std::move(keys);
  e.row = std::move(row);
  e.seq = next_seq_++;
  e.bytes = EntryBytes(e);

  auto heap_less = [this](const Entry& a, const Entry& b) {
    return EntryLess(a, b);
  };

  if (top_n_) {
    if (options_.limit == 0) return Status::OK();  // Everything is beyond n.
    if (static_cast<int64_t>(rows_.size()) < options_.limit) {
      Status st = reserved_.Reserve(e.bytes);
      if (st.ok()) {
        rows_.push_back(std::move(e));
        std::push_heap(rows_.begin(), rows_.end(), heap_less);
        return Status::OK();
      }
      if (!st.IsResourceExhausted() || options_.spill_disk == nullptr) {
        return st;
      }
      ODH_RETURN_IF_ERROR(ConvertTopNToExternal());
    } else {
      // rows_.front() is the worst kept row. A candidate that does not
      // beat it — ties included (later row loses) — can never be in the
      // top n and is discarded without accounting.
      if (!EntryLess(e, rows_.front())) return Status::OK();
      Status st = reserved_.Reserve(e.bytes);
      if (st.ok()) {
        std::pop_heap(rows_.begin(), rows_.end(), heap_less);
        reserved_.Release(rows_.back().bytes);
        rows_.back() = std::move(e);
        std::push_heap(rows_.begin(), rows_.end(), heap_less);
        return Status::OK();
      }
      if (!st.IsResourceExhausted() || options_.spill_disk == nullptr) {
        return st;
      }
      ODH_RETURN_IF_ERROR(ConvertTopNToExternal());
    }
  }

  // Full (spillable) accumulation.
  Status st = reserved_.Reserve(e.bytes);
  if (!st.ok()) {
    if (!st.IsResourceExhausted() || options_.spill_disk == nullptr ||
        rows_.empty()) {
      return st;
    }
    ODH_RETURN_IF_ERROR(SpillRun());
    // A single row larger than the whole budget still fails here.
    ODH_RETURN_IF_ERROR(reserved_.Reserve(e.bytes));
  }
  rows_.push_back(std::move(e));
  return Status::OK();
}

Status ExternalSorter::ConvertTopNToExternal() {
  // The kept set becomes the first run; every row discarded so far was
  // provably worse than all of them, so keeping everything from here on
  // preserves the exact top-N result.
  top_n_ = false;
  return SpillRun();
}

Status ExternalSorter::SpillRun() {
  std::sort(rows_.begin(), rows_.end(),
            [this](const Entry& a, const Entry& b) { return EntryLess(a, b); });
  const std::string name =
      options_.spill_name_prefix + "r" + std::to_string(runs_.size());
  // The rows being spilled fund the spill I/O: a spill triggers exactly
  // when the budget is exhausted, so the writer's arena page buffer may
  // not fit until reservations of outgoing rows are returned. Release in
  // page-sized gulps and retry (arena refusal has no side effects); the
  // gap between tracked and resident bytes stays bounded by one arena
  // block plus the rows already streamed to disk.
  size_t funded = 0;  // rows_[0..funded) have released their reservation.
  Result<std::unique_ptr<storage::SpillFileWriter>> writer =
      storage::SpillFileWriter::Create(options_.spill_disk, name,
                                       options_.arena);
  while (!writer.ok() && writer.status().IsResourceExhausted() &&
         funded < rows_.size()) {
    const int64_t want =
        2 * static_cast<int64_t>(options_.spill_disk->page_size());
    int64_t freed = 0;
    while (funded < rows_.size() && freed < want) {
      freed += rows_[funded].bytes;
      reserved_.Release(rows_[funded].bytes);
      ++funded;
    }
    writer = storage::SpillFileWriter::Create(options_.spill_disk, name,
                                              options_.arena);
  }
  ODH_RETURN_IF_ERROR(writer.status());
  // Track the file before writing so an error mid-run still gets the file
  // deleted by ReleaseAll.
  runs_.push_back(name);
  std::string record;
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Entry& e = rows_[i];
    if (i >= funded) reserved_.Release(e.bytes);
    record.clear();
    PutVarint32(&record, static_cast<uint32_t>(e.keys.size()));
    for (const Datum& k : e.keys) EncodeDatum(&record, k);
    PutVarint32(&record, static_cast<uint32_t>(e.row.size()));
    for (const Datum& d : e.row) EncodeDatum(&record, d);
    PutVarint64(&record, static_cast<uint64_t>(e.seq));
    ODH_RETURN_IF_ERROR((*writer)->Append(Slice(record)));
  }
  ODH_RETURN_IF_ERROR((*writer)->Finish());
  spill_bytes_ += (*writer)->data_bytes();
  rows_.clear();
  rows_.shrink_to_fit();
  return Status::OK();
}

Status ExternalSorter::AdvanceSource(MergeSource* src) {
  if (src->head.bytes > 0) {
    reserved_.Release(src->head.bytes);
    src->head = Entry{};
  }
  std::string record;
  ODH_ASSIGN_OR_RETURN(bool more, src->reader->Next(&record));
  if (!more) {
    src->exhausted = true;
    return Status::OK();
  }
  Slice in(record);
  Entry e;
  uint64_t seq = 0;
  if (!DecodeDatumVector(&in, &e.keys) || !DecodeDatumVector(&in, &e.row) ||
      !GetVarint64(&in, &seq) || !in.empty()) {
    return Status::Corruption("bad spill record");
  }
  e.seq = static_cast<int64_t>(seq);
  e.bytes = EntryBytes(e);
  // Merge heads are accounted too: K runs hold K rows plus K page
  // buffers. A budget below that floor fails the query rather than
  // silently exceeding it.
  ODH_RETURN_IF_ERROR(reserved_.Reserve(e.bytes));
  src->head = std::move(e);
  return Status::OK();
}

Status ExternalSorter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  if (runs_.empty()) {
    std::sort(rows_.begin(), rows_.end(),
              [this](const Entry& a, const Entry& b) {
                return EntryLess(a, b);
              });
    return Status::OK();
  }
  // Spill the in-memory tail so emission merges uniformly from disk.
  if (!rows_.empty()) ODH_RETURN_IF_ERROR(SpillRun());
  sources_.reserve(runs_.size());
  for (const std::string& name : runs_) {
    ODH_ASSIGN_OR_RETURN(
        auto reader, storage::SpillFileReader::Open(options_.spill_disk, name,
                                                    options_.arena));
    MergeSource src;
    src.reader = std::move(reader);
    sources_.push_back(std::move(src));
    ODH_RETURN_IF_ERROR(AdvanceSource(&sources_.back()));
  }
  return Status::OK();
}

Result<bool> ExternalSorter::Next(Row* row) {
  if (!finished_) return Status::FailedPrecondition("sorter not finished");
  if (options_.limit >= 0 && emitted_ >= options_.limit) return false;
  if (sources_.empty()) {
    if (emit_pos_ >= rows_.size()) return false;
    Entry& e = rows_[emit_pos_++];
    reserved_.Release(e.bytes);
    *row = std::move(e.row);
    e = Entry{};  // Free the keys now, matching the released accounting.
    ++emitted_;
    return true;
  }
  MergeSource* best = nullptr;
  for (MergeSource& src : sources_) {
    if (src.exhausted) continue;
    if (best == nullptr || EntryLess(src.head, best->head)) best = &src;
  }
  if (best == nullptr) return false;
  reserved_.Release(best->head.bytes);
  best->head.bytes = 0;
  *row = std::move(best->head.row);
  ODH_RETURN_IF_ERROR(AdvanceSource(best));
  ++emitted_;
  return true;
}

void ExternalSorter::ReleaseAll() {
  if (released_) return;
  released_ = true;
  rows_.clear();
  sources_.clear();
  reserved_.ReleaseAll();
  if (options_.spill_disk != nullptr) {
    for (const std::string& name : runs_) {
      (void)options_.spill_disk->DeleteFile(name);
    }
  }
}

}  // namespace odh::sql
