#include "sql/executor.h"

#include "common/key_codec.h"
#include "sql/vectorized.h"

namespace odh::sql {
namespace {

void Indent(int n, std::string* out) { out->append(n * 2, ' '); }

std::string DescribeSpec(const ScanSpec& spec) {
  if (spec.constraints.empty()) return "full scan";
  std::string out = "constraints on cols [";
  for (size_t i = 0; i < spec.constraints.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(spec.constraints[i].column);
    out += spec.constraints[i].equals.has_value() ? "=" : "~";
  }
  out += "]";
  return out;
}

}  // namespace

// ScanNode -------------------------------------------------------------------

Status ScanNode::Open() {
  // Prefer the columnar path: the provider streams tag-major batches with
  // vectorized filtering, and the adapter re-materializes rows only for
  // the rows that survived (no Datum boxing for filtered-out rows).
  if (provider_->SupportsBatchScan(spec_)) {
    ODH_ASSIGN_OR_RETURN(auto batches, provider_->ScanBatches(spec_));
    cursor_ = MakeBatchRowAdapter(std::move(batches));
    return Status::OK();
  }
  ODH_ASSIGN_OR_RETURN(cursor_, provider_->Scan(spec_));
  return Status::OK();
}

Result<bool> ScanNode::Next(Row* row) {
  Row narrow;
  ODH_ASSIGN_OR_RETURN(bool more, cursor_->Next(&narrow));
  if (!more) return false;
  row->assign(total_slots_, Datum::Null());
  for (size_t i = 0; i < narrow.size(); ++i) {
    (*row)[slot_offset_ + i] = std::move(narrow[i]);
  }
  return true;
}

void ScanNode::Describe(int indent, std::string* out) const {
  Indent(indent, out);
  *out += "Scan(" + provider_->name();
  if (alias_ != provider_->name()) *out += " AS " + alias_;
  *out += ", " + DescribeSpec(spec_);
  if (provider_->SupportsBatchScan(spec_)) *out += ", batch";
  *out += ")\n";
}

// FilterNode -----------------------------------------------------------------

Result<bool> FilterNode::Next(Row* row) {
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, child_->Next(row));
    if (!more) return false;
    bool pass = true;
    for (const Expr* pred : predicates_) {
      ODH_ASSIGN_OR_RETURN(bool ok, eval_->EvalPredicate(pred, *row));
      if (!ok) {
        pass = false;
        break;
      }
    }
    if (pass) return true;
  }
}

void FilterNode::Describe(int indent, std::string* out) const {
  Indent(indent, out);
  *out += "Filter(";
  for (size_t i = 0; i < predicates_.size(); ++i) {
    if (i > 0) *out += " AND ";
    *out += predicates_[i]->ToString();
  }
  *out += ")\n";
  child_->Describe(indent + 1, out);
}

// HashJoinNode ---------------------------------------------------------------

std::string HashJoinNode::KeyOfInner(const Row& inner_row) const {
  std::string key;
  KeyEncoder enc(&key);
  for (const JoinKey& k : keys_) enc.AddDatum(inner_row[k.inner_column]);
  return key;
}

std::string HashJoinNode::KeyOfOuter(const Row& combined) const {
  std::string key;
  KeyEncoder enc(&key);
  for (const JoinKey& k : keys_) enc.AddDatum(combined[k.outer_slot]);
  return key;
}

Status HashJoinNode::Open() {
  ODH_RETURN_IF_ERROR(outer_->Open());
  ODH_ASSIGN_OR_RETURN(std::unique_ptr<RowCursor> cursor,
                       inner_->Scan(inner_spec_));
  hash_.clear();
  Row inner_row;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, cursor->Next(&inner_row));
    if (!more) break;
    bool has_null_key = false;
    for (const JoinKey& k : keys_) {
      if (inner_row[k.inner_column].is_null()) {
        has_null_key = true;
        break;
      }
    }
    if (has_null_key) continue;  // NULL keys never join.
    hash_.emplace(KeyOfInner(inner_row), inner_row);
  }
  return Status::OK();
}

Result<bool> HashJoinNode::Next(Row* row) {
  while (true) {
    if (match_pos_ < matches_.size()) {
      *row = pending_outer_;
      const Row& inner_row = *matches_[match_pos_++];
      for (size_t i = 0; i < inner_row.size(); ++i) {
        (*row)[inner_slot_offset_ + i] = inner_row[i];
      }
      return true;
    }
    if (outer_done_) return false;
    ODH_ASSIGN_OR_RETURN(bool more, outer_->Next(&pending_outer_));
    if (!more) {
      outer_done_ = true;
      return false;
    }
    matches_.clear();
    match_pos_ = 0;
    bool has_null_key = false;
    for (const JoinKey& k : keys_) {
      if (pending_outer_[k.outer_slot].is_null()) {
        has_null_key = true;
        break;
      }
    }
    if (!has_null_key) {
      auto [begin, end] = hash_.equal_range(KeyOfOuter(pending_outer_));
      for (auto it = begin; it != end; ++it) matches_.push_back(&it->second);
    }
    if (matches_.empty() && left_outer_) {
      // Emit the outer row with the inner side NULL.
      *row = pending_outer_;
      return true;
    }
  }
}

void HashJoinNode::Describe(int indent, std::string* out) const {
  Indent(indent, out);
  *out += std::string(left_outer_ ? "HashLeftJoin" : "HashJoin") +
          "(build=" + inner_->name() + ", " + DescribeSpec(inner_spec_) +
          ")\n";
  outer_->Describe(indent + 1, out);
}

// IndexJoinNode --------------------------------------------------------------

Status IndexJoinNode::Open() {
  ODH_RETURN_IF_ERROR(outer_->Open());
  have_outer_ = false;
  inner_cursor_.reset();
  return Status::OK();
}

Result<bool> IndexJoinNode::Next(Row* row) {
  while (true) {
    if (have_outer_ && inner_cursor_ != nullptr) {
      Row inner_row;
      ODH_ASSIGN_OR_RETURN(bool more, inner_cursor_->Next(&inner_row));
      if (more) {
        *row = current_outer_;
        for (size_t i = 0; i < inner_row.size(); ++i) {
          (*row)[inner_slot_offset_ + i] = std::move(inner_row[i]);
        }
        return true;
      }
      inner_cursor_.reset();
    }
    ODH_ASSIGN_OR_RETURN(bool more, outer_->Next(&current_outer_));
    if (!more) return false;
    have_outer_ = true;
    // Probe the inner side with equality constraints from this outer row.
    bool has_null_key = false;
    ScanSpec spec = inner_spec_;
    for (const JoinKey& k : keys_) {
      const Datum& v = current_outer_[k.outer_slot];
      if (v.is_null()) {
        has_null_key = true;
        break;
      }
      ColumnConstraint c;
      c.column = k.inner_column;
      c.equals = v;
      spec.constraints.push_back(std::move(c));
    }
    if (has_null_key) continue;
    ODH_ASSIGN_OR_RETURN(inner_cursor_, inner_->Scan(spec));
  }
}

void IndexJoinNode::Describe(int indent, std::string* out) const {
  Indent(indent, out);
  *out += "IndexNestedLoopJoin(probe=" + inner_->name() + " on cols [";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) *out += ",";
    *out += std::to_string(keys_[i].inner_column);
  }
  *out += "], " + DescribeSpec(inner_spec_) + ")\n";
  outer_->Describe(indent + 1, out);
}

}  // namespace odh::sql
