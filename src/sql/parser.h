#ifndef ODH_SQL_PARSER_H_
#define ODH_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace odh::sql {

/// Parses one SQL statement (SELECT / INSERT / CREATE TABLE / CREATE INDEX).
/// The dialect covers the paper's IoT-X templates: comma joins, AND/OR
/// conjunctions, comparison operators, BETWEEN, IS NULL, aggregates with
/// GROUP BY, ORDER BY and LIMIT.
Result<Statement> Parse(const std::string& sql);

}  // namespace odh::sql

#endif  // ODH_SQL_PARSER_H_
