#ifndef ODH_SQL_EXECUTOR_H_
#define ODH_SQL_EXECUTOR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sql/expr_eval.h"
#include "sql/table_provider.h"

namespace odh::sql {

/// Volcano-style physical operator producing *combined* rows: one slot per
/// column of every FROM table (see BoundSelect). Columns of tables not yet
/// joined are NULL.
class PlanNode {
 public:
  virtual ~PlanNode() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* row) = 0;
  /// One-line description; children indented (EXPLAIN output).
  virtual void Describe(int indent, std::string* out) const = 0;
};

using PlanNodePtr = std::unique_ptr<PlanNode>;

/// Leaf scan: reads a provider with pushed-down constraints and widens its
/// rows into the combined layout.
class ScanNode : public PlanNode {
 public:
  ScanNode(TableProvider* provider, std::string display_alias,
           ScanSpec spec, int slot_offset, int total_slots)
      : provider_(provider),
        alias_(std::move(display_alias)),
        spec_(std::move(spec)),
        slot_offset_(slot_offset),
        total_slots_(total_slots) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Describe(int indent, std::string* out) const override;

 private:
  TableProvider* provider_;
  std::string alias_;
  ScanSpec spec_;
  int slot_offset_;
  int total_slots_;
  std::unique_ptr<RowCursor> cursor_;
};

/// Residual predicate filter.
class FilterNode : public PlanNode {
 public:
  FilterNode(PlanNodePtr child, std::vector<const Expr*> predicates,
             const ExprEvaluator* eval)
      : child_(std::move(child)),
        predicates_(std::move(predicates)),
        eval_(eval) {}

  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* row) override;
  void Describe(int indent, std::string* out) const override;

 private:
  PlanNodePtr child_;
  std::vector<const Expr*> predicates_;
  const ExprEvaluator* eval_;
};

/// One equi-join key: a slot in the outer combined row joined against a
/// column of the inner table.
struct JoinKey {
  int outer_slot = -1;
  int inner_column = -1;
};

/// Hash join: materializes the inner table's scan into a hash table, then
/// streams the outer child. With `left_outer` true, unmatched outer rows
/// are emitted with the inner columns NULL (the paper's "left join the
/// sensor info to the scanned observations" plan).
class HashJoinNode : public PlanNode {
 public:
  HashJoinNode(PlanNodePtr outer, TableProvider* inner,
               std::string inner_alias, ScanSpec inner_spec,
               int inner_slot_offset, std::vector<JoinKey> keys,
               bool left_outer)
      : outer_(std::move(outer)),
        inner_(inner),
        inner_alias_(std::move(inner_alias)),
        inner_spec_(std::move(inner_spec)),
        inner_slot_offset_(inner_slot_offset),
        keys_(std::move(keys)),
        left_outer_(left_outer) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Describe(int indent, std::string* out) const override;

 private:
  std::string KeyOfInner(const Row& inner_row) const;
  std::string KeyOfOuter(const Row& combined) const;

  PlanNodePtr outer_;
  TableProvider* inner_;
  std::string inner_alias_;
  ScanSpec inner_spec_;
  int inner_slot_offset_;
  std::vector<JoinKey> keys_;
  bool left_outer_;

  std::multimap<std::string, Row> hash_;
  Row pending_outer_;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
  bool outer_done_ = false;
};

/// Index nested-loop join: for each outer row, scans the inner provider
/// with equality constraints derived from the outer row's join keys (plus
/// the inner table's own pushed-down constraints).
class IndexJoinNode : public PlanNode {
 public:
  IndexJoinNode(PlanNodePtr outer, TableProvider* inner,
                std::string inner_alias, ScanSpec inner_spec,
                int inner_slot_offset, std::vector<JoinKey> keys)
      : outer_(std::move(outer)),
        inner_(inner),
        inner_alias_(std::move(inner_alias)),
        inner_spec_(std::move(inner_spec)),
        inner_slot_offset_(inner_slot_offset),
        keys_(std::move(keys)) {}

  Status Open() override;
  Result<bool> Next(Row* row) override;
  void Describe(int indent, std::string* out) const override;

 private:
  PlanNodePtr outer_;
  TableProvider* inner_;
  std::string inner_alias_;
  ScanSpec inner_spec_;
  int inner_slot_offset_;
  std::vector<JoinKey> keys_;

  Row current_outer_;
  bool have_outer_ = false;
  std::unique_ptr<RowCursor> inner_cursor_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_EXECUTOR_H_
