#ifndef ODH_SQL_SESSION_H_
#define ODH_SQL_SESSION_H_

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/memory.h"
#include "common/stopwatch.h"
#include "sql/engine.h"
#include "sql/expr_eval.h"
#include "sql/sort_spill.h"

namespace odh::sql {

class Session;
class QueryStream;

/// A parsed (and, for SELECT, bound) statement owned through a Session's
/// prepared-statement cache. Immutable after Prepare, so one handle backs
/// any number of executions: re-executing binds only the `?` parameter
/// values and re-plans (planning needs the values for constraint pushdown
/// and partition pruning), skipping parse and name resolution entirely —
/// the hot path for dashboards issuing the same shaped query per tag.
class PreparedStatement {
 public:
  const std::string& sql() const { return sql_; }
  int param_count() const { return param_count_; }
  bool is_select() const { return kind_ == Statement::Kind::kSelect; }
  /// Output column names (SELECT only; empty for other statements).
  const std::vector<std::string>& columns() const;

 private:
  friend class Session;
  friend class QueryStream;
  PreparedStatement() = default;

  std::string sql_;
  Statement::Kind kind_ = Statement::Kind::kSelect;
  int param_count_ = 0;
  /// SELECT: the bound form, planning input for every execution.
  std::unique_ptr<BoundSelect> bound_;
  /// Non-SELECT statements re-execute from the parsed AST.
  std::unique_ptr<InsertStmt> insert_;
  std::unique_ptr<CreateTableStmt> create_table_;
  std::unique_ptr<CreateIndexStmt> create_index_;
  std::unique_ptr<AlterRetentionStmt> alter_retention_;
};

/// Per-session counters (single-threaded, plain ints). Lifetime semantics
/// (uniform with net::ClientStats): counters accumulate over the OBJECT's
/// lifetime and are never reset implicitly — not by errors, not by cache
/// eviction. Call Session::ResetStats() to zero them explicitly.
struct SessionStats {
  int64_t statements_executed = 0;
  int64_t prepares = 0;           // Explicit Prepare() calls.
  int64_t prepare_cache_hits = 0; // Prepare() served from the cache.
  int64_t rows_streamed = 0;      // Rows emitted through QueryStreams.
};

/// A pull-based result stream — the streaming half of the session API and
/// an ordinary RowCursor (poison contract included). SELECTs without
/// aggregation or ORDER BY stream straight off the scan: each row is
/// projected on demand and the full result is never materialized, so a
/// range scan over years of history holds one row of state. Aggregating
/// or ordering statements buffer internally (they are blocking by
/// nature); non-SELECT statements execute at stream creation and emit
/// zero rows (affected_rows() carries the count).
///
/// profile() is complete once Next has reported end of stream; at that
/// point (or on early destruction) the profile is logged to the engine's
/// recent-statement ring. A stream must not outlive its Session.
class QueryStream : public RowCursor {
 public:
  ~QueryStream() override;
  QueryStream(const QueryStream&) = delete;
  QueryStream& operator=(const QueryStream&) = delete;

  Result<bool> Next(Row* row) override;

  const std::vector<std::string>& columns() const { return columns_; }
  /// Plan text; the executed-path line is appended when the stream ends.
  const std::string& explain() const { return explain_; }
  const QueryProfile& profile() const { return profile_; }
  int64_t affected_rows() const { return affected_rows_; }
  /// This query's memory tracker (child of the session's); null for
  /// wrapped pre-materialized results. Tests assert eager release on it.
  common::MemoryTracker* memory() { return mem_.get(); }

 private:
  friend class Session;

  enum class State { kStreaming, kBuffered, kDone, kError };

  QueryStream(SqlEngine* engine,
              std::shared_ptr<const PreparedStatement> stmt,
              const std::vector<Datum>& params, SessionStats* stats);

  /// Plans and starts execution. `prior_micros` is parse+bind time to
  /// account into plan_micros (zero on prepared re-execution); `prepared`
  /// stamps the profile.
  Status Init(double prior_micros, bool prepared);
  /// Runs the blocking paths (aggregation / ORDER BY) into buffered_ (or
  /// the spill-capable sorter_ for ORDER BY).
  Status RunBuffered();
  Result<bool> NextStreaming(Row* row);
  Status Poison(Status status);
  /// Harvests counters into profile_ and logs it (once).
  void Finish();
  /// Charges one row entering buffered_ to the query budget.
  Status ReserveBufferedRow(const Row& row);
  /// Eager release of everything a buffered stream still holds: buffered
  /// rows, the sorter's working set, spill files. Runs on poison, on
  /// end-of-stream, and on abandonment — never waits for the destructor.
  void ReleaseBufferedState();

  SqlEngine* engine_;
  std::shared_ptr<const PreparedStatement> stmt_;
  std::vector<Datum> params_;
  ExprEvaluator eval_;
  common::ScanCounters counters_;
  Stopwatch timer_;
  PhysicalPlan plan_;
  QueryProfile profile_;
  std::vector<std::string> columns_;
  std::string explain_;
  int64_t affected_rows_ = 0;
  SessionStats* stats_;

  State state_ = State::kDone;
  std::deque<Row> buffered_;
  int64_t emitted_ = 0;
  Status poison_;
  bool finished_ = false;

  /// Query-level tracker (child of the session's) charging buffered rows,
  /// aggregation state and the sort working set; null when the engine has
  /// no governance configured or for wrapped pre-materialized results.
  std::unique_ptr<common::MemoryTracker> mem_;
  /// Query-lifetime bump allocator; spill I/O page buffers live here.
  std::unique_ptr<common::Arena> arena_;
  /// Spill-capable ORDER BY state; buffered_ stays empty while it is set.
  std::unique_ptr<ExternalSorter> sorter_;
  int64_t buffered_bytes_ = 0;  // Bytes reserved for buffered_ rows.
  int64_t spill_runs_ = 0;
  int64_t spill_bytes_ = 0;
};

/// Per-connection SQL state — the front door that replaces direct
/// SqlEngine::Execute use. One Session per connection (or per thread): the
/// object itself is deliberately not thread-safe, while any number of
/// Sessions share one SqlEngine safely (concurrent SELECTs run in
/// parallel; mutating statements serialize on the engine's write mutex).
///
/// Prepared statements are cached by statement text: preparing the same
/// text twice returns the cached handle (stats().prepare_cache_hits) and
/// the second execution skips parse and bind.
class Session {
 public:
  explicit Session(SqlEngine* engine)
      : engine_(engine),
        mem_(std::make_unique<common::MemoryTracker>(
            "session", engine->memory_budgets().session_bytes,
            engine->memory_root())) {}

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// One-shot execution, materialized. Parses, binds, plans and runs in
  /// one call; `params` bind `?` placeholders positionally. Supports the
  /// `EXPLAIN PROFILE <select>` prefix.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::vector<Datum>& params = {});

  /// Parses and binds once; caches by statement text (bounded LRU-ish
  /// cache — in-flight handles stay valid through the shared_ptr even if
  /// evicted). EXPLAIN prefixes cannot be prepared.
  Result<std::shared_ptr<const PreparedStatement>> Prepare(
      const std::string& sql);

  /// Executes a prepared statement, materialized. Skips parse/bind.
  Result<QueryResult> ExecutePrepared(
      const std::shared_ptr<const PreparedStatement>& stmt,
      const std::vector<Datum>& params = {});

  /// Streaming execution: rows are produced on demand through the
  /// returned cursor; large range scans never materialize. Non-SELECT
  /// statements and EXPLAIN PROFILE yield a pre-computed (buffered)
  /// stream so callers can treat every statement uniformly.
  Result<std::unique_ptr<QueryStream>> ExecuteStreaming(
      const std::string& sql, const std::vector<Datum>& params = {});
  Result<std::unique_ptr<QueryStream>> ExecuteStreamingPrepared(
      const std::shared_ptr<const PreparedStatement>& stmt,
      const std::vector<Datum>& params = {});

  const SessionStats& stats() const { return stats_; }
  /// Zeroes the counters. The ONLY way stats reset (see SessionStats).
  void ResetStats() { stats_ = {}; }

  /// Read-only sessions reject every mutating statement (INSERT / CREATE /
  /// ALTER / retention changes) with kFailedPrecondition. HistorianServer
  /// sets this for sessions served by a replica; queries still run and
  /// their profiles report the replication-lag watermark.
  void set_read_only(bool read_only) { read_only_ = read_only; }
  bool read_only() const { return read_only_; }

  SqlEngine* engine() { return engine_; }
  /// The session-level tracker; parent of every query tracker this session
  /// starts, child of the engine's process root.
  common::MemoryTracker* memory() { return mem_.get(); }

 private:
  Result<std::shared_ptr<const PreparedStatement>> PrepareInternal(
      const std::string& sql);
  Result<std::unique_ptr<QueryStream>> StartStream(
      std::shared_ptr<const PreparedStatement> stmt,
      const std::vector<Datum>& params, double prior_micros, bool prepared);
  /// Wraps an already-materialized result as a drained-from-buffer stream.
  std::unique_ptr<QueryStream> StreamFromResult(QueryResult result);
  Result<QueryResult> ExecuteNonSelect(const PreparedStatement& stmt,
                                       const std::vector<Datum>& params);
  Result<QueryResult> ExecuteInsert(const InsertStmt& stmt,
                                    const std::vector<Datum>& params);
  Result<QueryResult> Materialize(std::unique_ptr<QueryStream> stream);

  static constexpr size_t kPreparedCacheCapacity = 64;

  /// A cached handle plus its position in the recency list, so promotion
  /// on re-use is an O(1) splice.
  struct CacheEntry {
    std::shared_ptr<const PreparedStatement> stmt;
    std::list<std::string>::iterator order_pos;
  };
  /// Moves an entry to most-recently-used position.
  void TouchCacheEntry(CacheEntry* entry);

  SqlEngine* engine_;
  std::unique_ptr<common::MemoryTracker> mem_;
  std::map<std::string, CacheEntry> cache_;
  std::list<std::string> cache_order_;  // LRU order: front = least recent.
  SessionStats stats_;
  bool read_only_ = false;
};

}  // namespace odh::sql

#endif  // ODH_SQL_SESSION_H_
