#ifndef ODH_SQL_PLANNER_H_
#define ODH_SQL_PLANNER_H_

#include <memory>
#include <string>

#include "sql/binder.h"
#include "sql/executor.h"

namespace odh::sql {

/// A compiled SELECT: the operator tree plus the planner's decision log
/// (the EXPLAIN text used by the paper's query-optimizer experiment).
///
/// For single-table, ungrouped aggregate queries whose WHERE is fully
/// pushed into the scan, the planner additionally emits an aggregate
/// pushdown candidate: `agg_requests` (aligned 1:1 with `agg_exprs`, the
/// AggregateExpr nodes in plan order) that the engine first offers to
/// `agg_provider` via AggregateScan, then to the vectorized batch
/// aggregator, before falling back to the row-at-a-time loop under
/// `root`. `agg_provider` is nullptr when the query is not a candidate.
struct PhysicalPlan {
  PlanNodePtr root;
  std::string explain;
  TableProvider* agg_provider = nullptr;
  ScanSpec agg_spec;
  std::vector<AggregateRequest> agg_requests;
  std::vector<const class AggregateExpr*> agg_exprs;
};

/// Builds a physical plan for a bound SELECT.
///
/// Planning mirrors the paper's §3 design: single-table predicates are
/// pushed into provider scans (partition elimination happens inside the ODH
/// provider), join order is chosen greedily by estimated cardinality, and
/// each join picks index-nested-loop vs hash join by comparing estimated
/// bytes accessed — the ValueBlob-byte cost model when the inner side is an
/// ODH virtual table.
///
/// The returned plan borrows `bound` and `eval`; both must outlive it.
/// `counters`, when non-null, is planted into every table's ScanSpec so
/// providers report per-query scan work (EXPLAIN PROFILE); it must outlive
/// plan execution.
Result<PhysicalPlan> PlanSelect(const BoundSelect& bound,
                                const ExprEvaluator* eval,
                                common::ScanCounters* counters = nullptr);

}  // namespace odh::sql

#endif  // ODH_SQL_PLANNER_H_
