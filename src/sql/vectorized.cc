#include "sql/vectorized.h"

#include <cmath>

namespace odh::sql {
namespace {

inline bool InRange(double v, double min, double max, bool min_exclusive,
                    bool max_exclusive) {
  // NaN fails every comparison, so missing values drop out for free.
  if (min_exclusive ? !(v > min) : !(v >= min)) return false;
  if (max_exclusive ? !(v < max) : !(v <= max)) return false;
  return true;
}

}  // namespace

void FilterByRange(const std::vector<double>& column, double min, double max,
                   bool min_exclusive, bool max_exclusive,
                   ColumnBatch* batch) {
  const size_t n = batch->rows();
  if (column.size() < n) {
    // Unprojected column: every value reads as NULL, nothing matches.
    batch->sel.clear();
    batch->sel_all = false;
    return;
  }
  std::vector<int32_t> out;
  if (batch->sel_all) {
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (InRange(column[i], min, max, min_exclusive, max_exclusive)) {
        out.push_back(static_cast<int32_t>(i));
      }
    }
    if (out.size() == n) return;  // Everything passed; stay sel_all.
  } else {
    out.reserve(batch->sel.size());
    for (int32_t i : batch->sel) {
      if (InRange(column[i], min, max, min_exclusive, max_exclusive)) {
        out.push_back(i);
      }
    }
  }
  batch->sel = std::move(out);
  batch->sel_all = false;
}

bool VectorizedAggregatable(const std::vector<AggregateRequest>& requests) {
  for (const AggregateRequest& req : requests) {
    switch (req.op) {
      case AggregateOp::kCountStar:
        break;
      case AggregateOp::kCount:
        if (req.column < 0) return false;
        break;
      default:
        // Value aggregates only over DOUBLE tag columns.
        if (req.column < 2) return false;
        break;
    }
  }
  return true;
}

void BatchAggregator::Accumulate(const ColumnBatch& batch) {
  const size_t selected = batch.selected();
  if (selected == 0) return;
  for (size_t r = 0; r < requests_.size(); ++r) {
    const AggregateRequest& req = requests_[r];
    State& st = states_[r];
    // id/timestamp are never NULL, so COUNT over them (and COUNT(*)) is
    // just the selected row count.
    if (req.op == AggregateOp::kCountStar || req.column < 2) {
      st.count += static_cast<int64_t>(selected);
      continue;
    }
    const size_t tag = static_cast<size_t>(req.column - 2);
    if (tag >= batch.tags.size() || batch.tags[tag].size() < batch.rows()) {
      continue;  // Unprojected column: all NULL, contributes nothing.
    }
    const std::vector<double>& col = batch.tags[tag];
    auto add = [&st](double v) {
      if (std::isnan(v)) return;
      ++st.count;
      st.sum += v;
      if (!st.has_value || v < st.min) st.min = v;
      if (!st.has_value || v > st.max) st.max = v;
      st.has_value = true;
    };
    if (batch.sel_all) {
      for (size_t i = 0; i < batch.rows(); ++i) add(col[i]);
    } else {
      for (int32_t i : batch.sel) add(col[static_cast<size_t>(i)]);
    }
  }
}

Row BatchAggregator::Finalize() const {
  Row row;
  row.reserve(requests_.size());
  for (size_t r = 0; r < requests_.size(); ++r) {
    const State& st = states_[r];
    switch (requests_[r].op) {
      case AggregateOp::kCountStar:
      case AggregateOp::kCount:
        row.push_back(Datum::Int64(st.count));
        break;
      case AggregateOp::kSum:
        row.push_back(st.count > 0 ? Datum::Double(st.sum) : Datum::Null());
        break;
      case AggregateOp::kAvg:
        row.push_back(st.count > 0
                          ? Datum::Double(st.sum / static_cast<double>(st.count))
                          : Datum::Null());
        break;
      case AggregateOp::kMin:
        row.push_back(st.has_value ? Datum::Double(st.min) : Datum::Null());
        break;
      case AggregateOp::kMax:
        row.push_back(st.has_value ? Datum::Double(st.max) : Datum::Null());
        break;
    }
  }
  return row;
}

namespace {

/// Row-at-a-time view over a batch stream (see MakeBatchRowAdapter).
class BatchRowAdapter : public RowCursor {
 public:
  explicit BatchRowAdapter(std::unique_ptr<BatchCursor> batches)
      : batches_(std::move(batches)) {}

  Result<bool> Next(Row* row) override {
    if (!poison_.ok()) return poison_;
    while (true) {
      if (pos_ < batch_.selected()) {
        const size_t i = batch_.sel_all
                             ? pos_
                             : static_cast<size_t>(batch_.sel[pos_]);
        ++pos_;
        row->clear();
        row->reserve(2 + batch_.tags.size());
        row->push_back(Datum::Int64(batch_.id_at(i)));
        row->push_back(Datum::Time(batch_.timestamps[i]));
        for (const auto& col : batch_.tags) {
          if (col.size() <= i || std::isnan(col[i])) {
            row->push_back(Datum::Null());
          } else {
            row->push_back(Datum::Double(col[i]));
          }
        }
        return true;
      }
      // Batches may come back empty (fully filtered); keep pulling.
      pos_ = 0;
      Result<bool> more = batches_->Next(&batch_);
      if (!more.ok()) return poison_ = more.status();
      if (!more.value()) return false;
    }
  }

 private:
  std::unique_ptr<BatchCursor> batches_;
  ColumnBatch batch_;
  size_t pos_ = 0;
  Status poison_;  // First error seen; repeated by every later Next.
};

}  // namespace

std::unique_ptr<RowCursor> MakeBatchRowAdapter(
    std::unique_ptr<BatchCursor> batches) {
  return std::make_unique<BatchRowAdapter>(std::move(batches));
}

}  // namespace odh::sql
