#include "sql/engine.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>

#include "common/key_codec.h"
#include "common/stopwatch.h"
#include "common/types.h"
#include "sql/parser.h"
#include "sql/vectorized.h"

namespace odh::sql {
namespace {

/// Running state of one aggregate function instance within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_integral = true;
  int64_t isum = 0;
  Datum min;
  Datum max;
};

void AccumulateAgg(const AggregateExpr* agg, const Datum& value,
                   AggState* state) {
  if (agg->star) {  // COUNT(*)
    ++state->count;
    return;
  }
  if (value.is_null()) return;
  ++state->count;
  switch (agg->func) {
    case AggregateFunc::kCount:
      break;
    case AggregateFunc::kSum:
    case AggregateFunc::kAvg:
      if (value.is_int64()) {
        state->isum += value.int64_value();
      } else {
        state->sum_is_integral = false;
      }
      state->sum += value.AsDouble();
      break;
    case AggregateFunc::kMin:
    case AggregateFunc::kMax: {
      int cmp;
      bool null_result;
      Datum& slot = agg->func == AggregateFunc::kMin ? state->min
                                                     : state->max;
      if (slot.is_null()) {
        slot = value;
      } else if (value.Compare(slot, &cmp, &null_result) && !null_result) {
        bool better = agg->func == AggregateFunc::kMin ? cmp < 0 : cmp > 0;
        if (better) slot = value;
      }
      break;
    }
  }
}

Datum FinalizeAgg(const AggregateExpr* agg, const AggState& state) {
  switch (agg->func) {
    case AggregateFunc::kCount:
      return Datum::Int64(state.count);
    case AggregateFunc::kSum:
      if (state.count == 0) return Datum::Null();
      return state.sum_is_integral ? Datum::Int64(state.isum)
                                   : Datum::Double(state.sum);
    case AggregateFunc::kAvg:
      if (state.count == 0) return Datum::Null();
      return Datum::Double(state.sum / static_cast<double>(state.count));
    case AggregateFunc::kMin:
      return state.min;
    case AggregateFunc::kMax:
      return state.max;
  }
  return Datum::Null();
}

void CollectAggregates(const Expr* expr,
                       std::vector<const AggregateExpr*>* out) {
  switch (expr->kind()) {
    case ExprKind::kAggregate:
      out->push_back(static_cast<const AggregateExpr*>(expr));
      return;
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      CollectAggregates(bin->left.get(), out);
      CollectAggregates(bin->right.get(), out);
      return;
    }
    case ExprKind::kNot:
      CollectAggregates(static_cast<const NotExpr*>(expr)->operand.get(),
                        out);
      return;
    default:
      return;
  }
}

/// Coerces a literal toward a column type during INSERT binding.
Result<Datum> CoerceForColumn(const Datum& value, DataType type) {
  if (value.is_null()) return value;
  switch (type) {
    case DataType::kTimestamp:
      if (value.is_timestamp()) return value;
      if (value.is_int64()) return Datum::Time(value.int64_value());
      if (value.is_string()) {
        Timestamp ts;
        if (ParseTimestamp(value.string_value(), &ts)) return Datum::Time(ts);
        return Status::InvalidArgument("bad timestamp literal: " +
                                       value.string_value());
      }
      break;
    case DataType::kDouble:
      if (value.is_double()) return value;
      if (value.is_int64()) return Datum::Double(value.AsDouble());
      break;
    case DataType::kInt64:
      if (value.is_int64()) return value;
      break;
    case DataType::kBool:
      if (value.is_bool()) return value;
      break;
    case DataType::kString:
      if (value.is_string()) return value;
      break;
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("cannot coerce " + value.ToString() +
                                 " to " + DataTypeName(type));
}

/// Three-way Datum comparison for ORDER BY (NULLs sort first).
int CompareForSort(const Datum& a, const Datum& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  int cmp;
  bool null_result;
  if (!a.Compare(b, &cmp, &null_result) || null_result) return 0;
  return cmp;
}

/// Case-insensitively consumes one leading keyword (plus the whitespace
/// around it) from *sv; false leaves *sv untouched. EXPLAIN/PROFILE are
/// engine-level prefixes, not grammar keywords, so they are peeled off
/// before the parser sees the statement.
bool ConsumeKeyword(std::string_view* sv, std::string_view keyword) {
  size_t i = 0;
  while (i < sv->size() &&
         std::isspace(static_cast<unsigned char>((*sv)[i]))) {
    ++i;
  }
  if (sv->size() - i < keyword.size()) return false;
  for (size_t j = 0; j < keyword.size(); ++j) {
    if (std::toupper(static_cast<unsigned char>((*sv)[i + j])) !=
        keyword[j]) {
      return false;
    }
  }
  const size_t end = i + keyword.size();
  if (end < sv->size() &&
      !std::isspace(static_cast<unsigned char>((*sv)[end]))) {
    return false;
  }
  *sv = sv->substr(end);
  return true;
}

/// Renders a finished statement's profile as metric/value rows — the
/// result shape of `EXPLAIN PROFILE <stmt>`.
QueryResult ProfileToResult(const QueryResult& inner) {
  const QueryProfile& p = inner.profile;
  QueryResult out;
  out.columns = {"metric", "value"};
  auto add = [&out](const char* name, Datum v) {
    out.rows.push_back({Datum::String(name), std::move(v)});
  };
  add("path", Datum::String(p.path));
  add("rows_returned", Datum::Int64(p.rows_returned));
  add("rows_scanned", Datum::Int64(p.rows_scanned));
  add("batches", Datum::Int64(p.batches));
  add("blobs_decoded", Datum::Int64(p.blobs_decoded));
  add("blobs_pruned", Datum::Int64(p.blobs_pruned));
  add("blobs_skipped_by_summary", Datum::Int64(p.blobs_skipped_by_summary));
  add("blob_bytes_read", Datum::Int64(p.blob_bytes_read));
  add("plan_micros", Datum::Double(p.plan_micros));
  add("total_micros", Datum::Double(p.total_micros));
  out.explain = inner.explain;
  out.profile = inner.profile;
  return out;
}

}  // namespace

Result<QueryResult> SqlEngine::Execute(const std::string& sql) {
  std::string_view body(sql);
  if (ConsumeKeyword(&body, "EXPLAIN") && ConsumeKeyword(&body, "PROFILE")) {
    const std::string inner_sql(body);
    ODH_ASSIGN_OR_RETURN(Statement stmt, Parse(inner_sql));
    if (stmt.kind != Statement::Kind::kSelect) {
      return Status::InvalidArgument("EXPLAIN PROFILE supports SELECT only");
    }
    ODH_ASSIGN_OR_RETURN(QueryResult inner,
                         ExecuteSelect(std::move(*stmt.select), inner_sql));
    return ProfileToResult(inner);
  }
  ODH_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  switch (stmt.kind) {
    case Statement::Kind::kSelect:
      return ExecuteSelect(std::move(*stmt.select), sql);
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert);
    case Statement::Kind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case Statement::Kind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
  }
  return Status::Internal("unhandled statement kind");
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  ODH_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  ODH_ASSIGN_OR_RETURN(BoundSelect bound,
                       Bind(&catalog_, std::move(*stmt.select)));
  ExprEvaluator eval(&bound);
  ODH_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSelect(bound, &eval));
  return plan.explain;
}

Result<QueryResult> SqlEngine::ExecuteSelect(SelectStmt stmt,
                                             const std::string& sql_text) {
  common::ScanCounters counters;
  QueryProfile profile;
  profile.statement = sql_text;
  Stopwatch timer;
  ODH_ASSIGN_OR_RETURN(QueryResult result,
                       RunSelect(std::move(stmt), &counters, &profile));
  profile.total_micros = static_cast<double>(timer.ElapsedMicros());
  profile.rows_returned = static_cast<int64_t>(result.rows.size());
  profile.rows_scanned =
      counters.rows_scanned.load(std::memory_order_relaxed);
  profile.batches = counters.batches.load(std::memory_order_relaxed);
  profile.blobs_decoded =
      counters.blobs_decoded.load(std::memory_order_relaxed);
  profile.blobs_pruned =
      counters.blobs_pruned.load(std::memory_order_relaxed);
  profile.blobs_skipped_by_summary =
      counters.blobs_skipped_by_summary.load(std::memory_order_relaxed);
  profile.blob_bytes_read =
      counters.blob_bytes_read.load(std::memory_order_relaxed);
  // The executed-path label comes from runtime evidence, not the plan:
  // RunSelect stamps the aggregate fast paths; otherwise batches flowing
  // through the scan prove the vectorized path ran.
  if (profile.path.empty()) {
    profile.path = profile.batches > 0 ? "vectorized-batch" : "row-scan";
  }
  result.explain += "path: " + profile.path + "\n";
  result.profile = profile;
  LogQuery(std::move(profile));
  return result;
}

std::vector<QueryProfile> SqlEngine::RecentQueries() const {
  std::lock_guard<std::mutex> lock(queries_mu_);
  return std::vector<QueryProfile>(recent_queries_.begin(),
                                   recent_queries_.end());
}

void SqlEngine::LogQuery(QueryProfile profile) {
  std::lock_guard<std::mutex> lock(queries_mu_);
  recent_queries_.push_back(std::move(profile));
  while (recent_queries_.size() > kRecentQueryCapacity) {
    recent_queries_.pop_front();
  }
}

Result<QueryResult> SqlEngine::RunSelect(SelectStmt stmt,
                                         common::ScanCounters* counters,
                                         QueryProfile* profile) {
  Stopwatch plan_timer;
  ODH_ASSIGN_OR_RETURN(BoundSelect bound,
                       Bind(&catalog_, std::move(stmt)));
  ExprEvaluator eval(&bound);
  ODH_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSelect(bound, &eval, counters));
  profile->plan_micros = static_cast<double>(plan_timer.ElapsedMicros());

  QueryResult result;
  result.columns = bound.output_names;
  result.explain = plan.explain;

  // Aggregate pushdown / vectorized accumulation: try the fast paths the
  // planner flagged before opening the row plan (opening a scan already
  // fetches and decodes blobs). First offer the whole aggregate to the
  // provider — it may answer from per-blob summaries without touching the
  // data — then accumulate over ColumnBatches; the row loop below stays
  // the fallback and the single source of truth for semantics.
  if (plan.agg_provider != nullptr) {
    std::optional<Row> agg_row;
    ODH_ASSIGN_OR_RETURN(
        agg_row, plan.agg_provider->AggregateScan(plan.agg_spec,
                                                  plan.agg_requests));
    if (agg_row.has_value()) profile->path = "summary-pushdown";
    if (!agg_row.has_value() &&
        VectorizedAggregatable(plan.agg_requests) &&
        plan.agg_provider->SupportsBatchScan(plan.agg_spec)) {
      ODH_ASSIGN_OR_RETURN(auto batches,
                           plan.agg_provider->ScanBatches(plan.agg_spec));
      BatchAggregator aggregator(plan.agg_requests);
      ColumnBatch batch;
      while (true) {
        ODH_ASSIGN_OR_RETURN(bool more, batches->Next(&batch));
        if (!more) break;
        aggregator.Accumulate(batch);
      }
      agg_row = aggregator.Finalize();
      if (agg_row.has_value()) profile->path = "vectorized-batch";
    }
    if (agg_row.has_value()) {
      std::map<const Expr*, Datum> agg_values;
      for (size_t i = 0; i < plan.agg_exprs.size(); ++i) {
        agg_values[plan.agg_exprs[i]] = (*agg_row)[i];
      }
      Row representative(bound.total_slots, Datum::Null());
      Row out_row;
      for (const ExprPtr& e : bound.output) {
        ODH_ASSIGN_OR_RETURN(Datum v,
                             eval.Eval(e.get(), representative, &agg_values));
        out_row.push_back(std::move(v));
      }
      result.rows.push_back(std::move(out_row));
      if (bound.limit >= 0 &&
          static_cast<int64_t>(result.rows.size()) > bound.limit) {
        result.rows.resize(bound.limit);
      }
      return result;
    }
  }

  ODH_RETURN_IF_ERROR(plan.root->Open());

  if (!bound.has_aggregates) {
    // Streaming path: project each combined row; collect sort keys if any.
    std::vector<std::pair<std::vector<Datum>, Row>> sortable;
    Row combined;
    while (true) {
      ODH_ASSIGN_OR_RETURN(bool more, plan.root->Next(&combined));
      if (!more) break;
      Row out_row;
      out_row.reserve(bound.output.size());
      for (const ExprPtr& e : bound.output) {
        ODH_ASSIGN_OR_RETURN(Datum v, eval.Eval(e.get(), combined));
        out_row.push_back(std::move(v));
      }
      if (bound.order_by.empty()) {
        result.rows.push_back(std::move(out_row));
        if (bound.limit >= 0 &&
            static_cast<int64_t>(result.rows.size()) >= bound.limit) {
          break;
        }
      } else {
        std::vector<Datum> keys;
        for (const auto& item : bound.order_by) {
          if (item.output_ordinal >= 0) {
            keys.push_back(out_row[item.output_ordinal]);
          } else {
            ODH_ASSIGN_OR_RETURN(Datum k, eval.Eval(item.expr.get(),
                                                    combined));
            keys.push_back(std::move(k));
          }
        }
        sortable.emplace_back(std::move(keys), std::move(out_row));
      }
    }
    if (!bound.order_by.empty()) {
      std::stable_sort(sortable.begin(), sortable.end(),
                       [&](const auto& a, const auto& b) {
                         for (size_t i = 0; i < bound.order_by.size(); ++i) {
                           int cmp = CompareForSort(a.first[i], b.first[i]);
                           if (cmp != 0) {
                             return bound.order_by[i].ascending ? cmp < 0
                                                                : cmp > 0;
                           }
                         }
                         return false;
                       });
      for (auto& [keys, row] : sortable) {
        result.rows.push_back(std::move(row));
        if (bound.limit >= 0 &&
            static_cast<int64_t>(result.rows.size()) >= bound.limit) {
          break;
        }
      }
    }
    return result;
  }

  // Aggregation path.
  std::vector<const AggregateExpr*> agg_exprs;
  for (const ExprPtr& e : bound.output) CollectAggregates(e.get(), &agg_exprs);
  for (const auto& item : bound.order_by) {
    if (item.expr != nullptr) CollectAggregates(item.expr.get(), &agg_exprs);
  }

  struct Group {
    Row representative;  // First combined row of the group.
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;

  Row combined;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, plan.root->Next(&combined));
    if (!more) break;
    std::vector<Datum> group_key;
    for (const ExprPtr& g : bound.group_by) {
      ODH_ASSIGN_OR_RETURN(Datum v, eval.Eval(g.get(), combined));
      group_key.push_back(std::move(v));
    }
    std::string key = EncodeKey(group_key);
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.representative = combined;
      group.states.resize(agg_exprs.size());
    }
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      Datum arg;
      if (!agg_exprs[i]->star) {
        ODH_ASSIGN_OR_RETURN(arg,
                             eval.Eval(agg_exprs[i]->arg.get(), combined));
      }
      AccumulateAgg(agg_exprs[i], arg, &group.states[i]);
    }
  }
  // A global aggregate over zero rows still yields one group.
  if (groups.empty() && bound.group_by.empty()) {
    Group& group = groups[""];
    group.representative.assign(bound.total_slots, Datum::Null());
    group.states.resize(agg_exprs.size());
  }

  std::vector<std::pair<std::vector<Datum>, Row>> sortable;
  for (auto& [key, group] : groups) {
    std::map<const Expr*, Datum> agg_values;
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      agg_values[agg_exprs[i]] = FinalizeAgg(agg_exprs[i], group.states[i]);
    }
    Row out_row;
    for (const ExprPtr& e : bound.output) {
      ODH_ASSIGN_OR_RETURN(
          Datum v, eval.Eval(e.get(), group.representative, &agg_values));
      out_row.push_back(std::move(v));
    }
    if (bound.order_by.empty()) {
      result.rows.push_back(std::move(out_row));
    } else {
      std::vector<Datum> keys;
      for (const auto& item : bound.order_by) {
        if (item.output_ordinal >= 0) {
          keys.push_back(out_row[item.output_ordinal]);
        } else {
          ODH_ASSIGN_OR_RETURN(
              Datum k, eval.Eval(item.expr.get(), group.representative,
                                 &agg_values));
          keys.push_back(std::move(k));
        }
      }
      sortable.emplace_back(std::move(keys), std::move(out_row));
    }
  }
  if (!bound.order_by.empty()) {
    std::stable_sort(sortable.begin(), sortable.end(),
                     [&](const auto& a, const auto& b) {
                       for (size_t i = 0; i < bound.order_by.size(); ++i) {
                         int cmp = CompareForSort(a.first[i], b.first[i]);
                         if (cmp != 0) {
                           return bound.order_by[i].ascending ? cmp < 0
                                                              : cmp > 0;
                         }
                       }
                       return false;
                     });
    for (auto& [keys, row] : sortable) result.rows.push_back(std::move(row));
  }
  if (bound.limit >= 0 &&
      static_cast<int64_t>(result.rows.size()) > bound.limit) {
    result.rows.resize(bound.limit);
  }
  return result;
}

Result<QueryResult> SqlEngine::ExecuteInsert(const InsertStmt& stmt) {
  ODH_ASSIGN_OR_RETURN(relational::Table* table,
                       catalog_.database()->GetTable(stmt.table));
  const relational::Schema& schema = table->schema();
  // Map statement columns to schema positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int pos = schema.FindColumn(name);
      if (pos < 0) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      positions.push_back(pos);
    }
  }
  QueryResult result;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Datum::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      if (exprs[i]->kind() != ExprKind::kLiteral) {
        return Status::InvalidArgument(
            "INSERT values must be literals: " + exprs[i]->ToString());
      }
      const Datum& raw = static_cast<LiteralExpr*>(exprs[i].get())->value;
      ODH_ASSIGN_OR_RETURN(
          row[positions[i]],
          CoerceForColumn(raw, schema.column(positions[i]).type));
    }
    ODH_RETURN_IF_ERROR(table->Insert(row).status());
    ++result.affected_rows;
  }
  ODH_RETURN_IF_ERROR(table->Commit());
  return result;
}

Result<QueryResult> SqlEngine::ExecuteCreateTable(
    const CreateTableStmt& stmt) {
  ODH_RETURN_IF_ERROR(
      catalog_.database()
          ->CreateTable(stmt.table, relational::Schema(stmt.columns))
          .status());
  return QueryResult{};
}

Result<QueryResult> SqlEngine::ExecuteCreateIndex(
    const CreateIndexStmt& stmt) {
  ODH_ASSIGN_OR_RETURN(relational::Table* table,
                       catalog_.database()->GetTable(stmt.table));
  relational::IndexDef def;
  def.name = stmt.index;
  for (const std::string& name : stmt.columns) {
    int pos = table->schema().FindColumn(name);
    if (pos < 0) return Status::InvalidArgument("unknown column: " + name);
    def.columns.push_back(pos);
  }
  ODH_RETURN_IF_ERROR(table->AddIndex(def));
  return QueryResult{};
}

}  // namespace odh::sql
