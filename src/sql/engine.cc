#include "sql/engine.h"

#include <utility>

#include "sql/parser.h"
#include "sql/session.h"

namespace odh::sql {

Result<QueryResult> SqlEngine::Execute(const std::string& sql) {
  // A throwaway Session per call keeps this wrapper thread-safe: sessions
  // are single-threaded, but any number of them share one engine.
  Session session(this);
  return session.Execute(sql);
}

Result<std::string> SqlEngine::Explain(const std::string& sql) {
  ODH_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("EXPLAIN supports SELECT only");
  }
  ODH_ASSIGN_OR_RETURN(BoundSelect bound,
                       Bind(&catalog_, std::move(*stmt.select)));
  ExprEvaluator eval(&bound);
  ODH_ASSIGN_OR_RETURN(PhysicalPlan plan, PlanSelect(bound, &eval));
  return plan.explain;
}

std::vector<QueryProfile> SqlEngine::RecentQueries() const {
  std::lock_guard<std::mutex> lock(queries_mu_);
  return std::vector<QueryProfile>(recent_queries_.begin(),
                                   recent_queries_.end());
}

void SqlEngine::LogQuery(QueryProfile profile) {
  std::lock_guard<std::mutex> lock(queries_mu_);
  recent_queries_.push_back(std::move(profile));
  while (recent_queries_.size() > kRecentQueryCapacity) {
    recent_queries_.pop_front();
  }
}

}  // namespace odh::sql
