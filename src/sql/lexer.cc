#include "sql/lexer.h"

#include <cctype>

namespace odh::sql {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

// '$' appears in ODH-internal container/metadata table names.
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {  // Line comment.
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tok.upper = Upper(tok.text);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      tok.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      tok.text = sql.substr(start, i - start);
    } else if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // Escaped quote.
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(tok.pos));
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
    } else {
      // Two-character symbols first.
      if (i + 1 < n) {
        std::string two = sql.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          tok.type = TokenType::kSymbol;
          tok.text = two == "!=" ? "<>" : two;
          tokens.push_back(tok);
          i += 2;
          continue;
        }
      }
      static const std::string kSymbols = "(),.;*=<>+-/?";
      if (kSymbols.find(c) == std::string::npos) {
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "' at " + std::to_string(i));
      }
      tok.type = TokenType::kSymbol;
      tok.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(tok));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.pos = n;
  tokens.push_back(eof);
  return tokens;
}

}  // namespace odh::sql
