#include "sql/ast.h"

namespace odh::sql {

std::string BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string AggregateFuncName(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kCount:
      return "COUNT";
    case AggregateFunc::kSum:
      return "SUM";
    case AggregateFunc::kAvg:
      return "AVG";
    case AggregateFunc::kMin:
      return "MIN";
    case AggregateFunc::kMax:
      return "MAX";
  }
  return "?";
}

}  // namespace odh::sql
