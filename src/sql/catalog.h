#ifndef ODH_SQL_CATALOG_H_
#define ODH_SQL_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "relational/database.h"
#include "sql/relational_provider.h"
#include "sql/table_provider.h"

namespace odh::sql {

/// Name resolution for the SQL engine: relational tables of a Database plus
/// externally registered virtual tables (ODH registers one per schema type,
/// mirroring the paper's VTI registration). Thread-safe: concurrent
/// sessions resolve names against one shared catalog.
class Catalog {
 public:
  explicit Catalog(relational::Database* db) : db_(db) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Resolves a table name to a provider. Relational tables get a (cached)
  /// RelationalTableProvider wrapper on first use.
  Result<TableProvider*> Resolve(const std::string& name);

  /// Registers an external (virtual) table. Fails on name clash with a
  /// relational table or another provider.
  Status RegisterProvider(TableProvider* provider);

  /// Collects statistics for a relational table so the planner can make
  /// selectivity-aware choices (ANALYZE <table>).
  Status Analyze(const std::string& name);

  relational::Database* database() { return db_; }

 private:
  relational::Database* db_;
  // Guards the maps below (lazy wrapper creation races otherwise).
  mutable std::mutex mu_;
  // Wrappers for relational tables, created lazily.
  std::map<std::string, std::unique_ptr<RelationalTableProvider>> wrappers_;
  // Externally owned virtual tables.
  std::map<std::string, TableProvider*> external_;
};

}  // namespace odh::sql

#endif  // ODH_SQL_CATALOG_H_
