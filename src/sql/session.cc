#include "sql/session.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>
#include <utility>

#include "common/key_codec.h"
#include "common/memory.h"
#include "common/types.h"
#include "sql/parser.h"
#include "sql/vectorized.h"
#include "storage/spill_file.h"

namespace odh::sql {
namespace {

/// Running state of one aggregate function instance within one group.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_integral = true;
  int64_t isum = 0;
  Datum min;
  Datum max;
};

void AccumulateAgg(const AggregateExpr* agg, const Datum& value,
                   AggState* state) {
  if (agg->star) {  // COUNT(*)
    ++state->count;
    return;
  }
  if (value.is_null()) return;
  ++state->count;
  switch (agg->func) {
    case AggregateFunc::kCount:
      break;
    case AggregateFunc::kSum:
    case AggregateFunc::kAvg:
      if (value.is_int64()) {
        state->isum += value.int64_value();
      } else {
        state->sum_is_integral = false;
      }
      state->sum += value.AsDouble();
      break;
    case AggregateFunc::kMin:
    case AggregateFunc::kMax: {
      int cmp;
      bool null_result;
      Datum& slot = agg->func == AggregateFunc::kMin ? state->min
                                                     : state->max;
      if (slot.is_null()) {
        slot = value;
      } else if (value.Compare(slot, &cmp, &null_result) && !null_result) {
        bool better = agg->func == AggregateFunc::kMin ? cmp < 0 : cmp > 0;
        if (better) slot = value;
      }
      break;
    }
  }
}

Datum FinalizeAgg(const AggregateExpr* agg, const AggState& state) {
  switch (agg->func) {
    case AggregateFunc::kCount:
      return Datum::Int64(state.count);
    case AggregateFunc::kSum:
      if (state.count == 0) return Datum::Null();
      return state.sum_is_integral ? Datum::Int64(state.isum)
                                   : Datum::Double(state.sum);
    case AggregateFunc::kAvg:
      if (state.count == 0) return Datum::Null();
      return Datum::Double(state.sum / static_cast<double>(state.count));
    case AggregateFunc::kMin:
      return state.min;
    case AggregateFunc::kMax:
      return state.max;
  }
  return Datum::Null();
}

void CollectAggregates(const Expr* expr,
                       std::vector<const AggregateExpr*>* out) {
  switch (expr->kind()) {
    case ExprKind::kAggregate:
      out->push_back(static_cast<const AggregateExpr*>(expr));
      return;
    case ExprKind::kBinary: {
      const auto* bin = static_cast<const BinaryExpr*>(expr);
      CollectAggregates(bin->left.get(), out);
      CollectAggregates(bin->right.get(), out);
      return;
    }
    case ExprKind::kNot:
      CollectAggregates(static_cast<const NotExpr*>(expr)->operand.get(),
                        out);
      return;
    default:
      return;
  }
}

/// Coerces a literal/parameter value toward a column type during INSERT.
Result<Datum> CoerceForColumn(const Datum& value, DataType type) {
  if (value.is_null()) return value;
  switch (type) {
    case DataType::kTimestamp:
      if (value.is_timestamp()) return value;
      if (value.is_int64()) return Datum::Time(value.int64_value());
      if (value.is_string()) {
        Timestamp ts;
        if (ParseTimestamp(value.string_value(), &ts)) return Datum::Time(ts);
        return Status::InvalidArgument("bad timestamp literal: " +
                                       value.string_value());
      }
      break;
    case DataType::kDouble:
      if (value.is_double()) return value;
      if (value.is_int64()) return Datum::Double(value.AsDouble());
      break;
    case DataType::kInt64:
      if (value.is_int64()) return value;
      break;
    case DataType::kBool:
      if (value.is_bool()) return value;
      break;
    case DataType::kString:
      if (value.is_string()) return value;
      break;
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument("cannot coerce " + value.ToString() +
                                 " to " + DataTypeName(type));
}

/// Accounting estimate for one ColumnBatch's working set.
int64_t ApproxBatchBytes(const ColumnBatch& batch) {
  int64_t n = static_cast<int64_t>(sizeof(ColumnBatch));
  n += static_cast<int64_t>(batch.ids.capacity() * sizeof(SourceId));
  n += static_cast<int64_t>(batch.timestamps.capacity() * sizeof(Timestamp));
  for (const auto& tag : batch.tags) {
    n += static_cast<int64_t>(sizeof(tag) + tag.capacity() * sizeof(double));
  }
  n += static_cast<int64_t>(batch.sel.capacity() * sizeof(int32_t));
  return n;
}

/// Builds the budget-governed sorter every ORDER BY runs through. The
/// spill prefix embeds a process-unique query id so concurrent queries
/// never collide on run-file names.
std::unique_ptr<ExternalSorter> MakeSorter(SqlEngine* engine,
                                           const BoundSelect& bound,
                                           common::MemoryTracker* mem,
                                           common::Arena* arena) {
  ExternalSorter::Options opts;
  opts.ascending.reserve(bound.order_by.size());
  for (const auto& item : bound.order_by) {
    opts.ascending.push_back(item.ascending);
  }
  opts.limit = bound.limit;
  opts.memory = mem;
  opts.arena = arena;
  opts.spill_disk = engine->spill_disk();
  opts.spill_name_prefix = std::string(storage::kSpillFilePrefix) + "q" +
                           std::to_string(engine->NextQueryId()) + "$";
  return std::make_unique<ExternalSorter>(std::move(opts));
}

/// Case-insensitively consumes one leading keyword (plus the whitespace
/// around it) from *sv; false leaves *sv untouched. EXPLAIN/PROFILE are
/// session-level prefixes, not grammar keywords, so they are peeled off
/// before the parser sees the statement.
bool ConsumeKeyword(std::string_view* sv, std::string_view keyword) {
  size_t i = 0;
  while (i < sv->size() &&
         std::isspace(static_cast<unsigned char>((*sv)[i]))) {
    ++i;
  }
  if (sv->size() - i < keyword.size()) return false;
  for (size_t j = 0; j < keyword.size(); ++j) {
    if (std::toupper(static_cast<unsigned char>((*sv)[i + j])) !=
        keyword[j]) {
      return false;
    }
  }
  const size_t end = i + keyword.size();
  if (end < sv->size() &&
      !std::isspace(static_cast<unsigned char>((*sv)[end]))) {
    return false;
  }
  *sv = sv->substr(end);
  return true;
}

/// Renders a finished statement's profile as metric/value rows — the
/// result shape of `EXPLAIN PROFILE <stmt>`.
QueryResult ProfileToResult(QueryResult inner) {
  const QueryProfile& p = inner.profile;
  QueryResult out;
  out.columns = {"metric", "value"};
  auto add = [&out](const char* name, Datum v) {
    out.rows.push_back({Datum::String(name), std::move(v)});
  };
  add("path", Datum::String(p.path));
  add("rows_returned", Datum::Int64(p.rows_returned));
  add("rows_scanned", Datum::Int64(p.rows_scanned));
  add("batches", Datum::Int64(p.batches));
  add("blobs_decoded", Datum::Int64(p.blobs_decoded));
  add("blobs_pruned", Datum::Int64(p.blobs_pruned));
  add("blobs_skipped_by_summary", Datum::Int64(p.blobs_skipped_by_summary));
  add("blob_bytes_read", Datum::Int64(p.blob_bytes_read));
  add("segments_pruned", Datum::Int64(p.segments_pruned));
  add("segments_scanned_parallel", Datum::Int64(p.segments_scanned_parallel));
  add("blob_cache_hits", Datum::Int64(p.blob_cache_hits));
  add("mem_peak_bytes", Datum::Int64(p.mem_peak_bytes));
  add("spill_runs", Datum::Int64(p.spill_runs));
  add("spill_bytes", Datum::Int64(p.spill_bytes));
  add("plan_micros", Datum::Double(p.plan_micros));
  add("total_micros", Datum::Double(p.total_micros));
  // Replica-only rows: a primary's profile carries the -1 sentinel and
  // keeps the historical 16-row shape.
  if (p.repl_lag_bytes >= 0) {
    add("repl_lag_bytes", Datum::Int64(p.repl_lag_bytes));
    add("repl_staleness_micros", Datum::Int64(p.repl_staleness_micros));
  }
  out.explain = std::move(inner.explain);
  out.profile = std::move(inner.profile);
  return out;
}

Status CheckParamCount(const PreparedStatement& stmt,
                       const std::vector<Datum>& params) {
  if (static_cast<int>(params.size()) != stmt.param_count()) {
    return Status::InvalidArgument(
        "statement expects " + std::to_string(stmt.param_count()) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  return Status::OK();
}

}  // namespace

// PreparedStatement ----------------------------------------------------------

const std::vector<std::string>& PreparedStatement::columns() const {
  static const std::vector<std::string> kNoColumns;
  return bound_ != nullptr ? bound_->output_names : kNoColumns;
}

// QueryStream ----------------------------------------------------------------

QueryStream::QueryStream(SqlEngine* engine,
                         std::shared_ptr<const PreparedStatement> stmt,
                         const std::vector<Datum>& params,
                         SessionStats* stats)
    : engine_(engine),
      stmt_(std::move(stmt)),
      params_(params),
      eval_(stmt_ != nullptr && stmt_->bound_ != nullptr
                ? stmt_->bound_.get()
                : nullptr,
            &params_),
      stats_(stats) {}

QueryStream::~QueryStream() {
  // An abandoned stream still logs what it did (rows emitted so far);
  // errors were already accounted by Poison.
  if (state_ == State::kStreaming || state_ == State::kBuffered) Finish();
  // Init failures leave state_ == kDone with partial state; idempotent.
  ReleaseBufferedState();
}

Status QueryStream::Poison(Status status) {
  state_ = State::kError;
  finished_ = true;  // Errors are not logged, matching one-shot behavior.
  ReleaseBufferedState();  // A poisoned cursor holds no memory or spill files.
  poison_ = std::move(status);
  return poison_;
}

Status QueryStream::ReserveBufferedRow(const Row& row) {
  if (mem_ == nullptr) return Status::OK();
  const int64_t bytes = common::ApproxRowBytes(row);
  ODH_RETURN_IF_ERROR(mem_->TryReserve(bytes));
  buffered_bytes_ += bytes;
  return Status::OK();
}

void QueryStream::ReleaseBufferedState() {
  if (sorter_ != nullptr) {
    spill_runs_ = sorter_->spill_runs();
    spill_bytes_ = sorter_->spill_bytes();
    sorter_.reset();  // Releases its working set and deletes spill files.
  }
  buffered_.clear();
  if (mem_ != nullptr && buffered_bytes_ > 0) mem_->Release(buffered_bytes_);
  buffered_bytes_ = 0;
  // Spill I/O buffers go after the sorter whose readers pointed into them.
  if (arena_ != nullptr) arena_->Reset();
}

Status QueryStream::Init(double prior_micros, bool prepared) {
  const BoundSelect& bound = *stmt_->bound_;
  profile_.statement = stmt_->sql();
  profile_.prepared = prepared;
  columns_ = bound.output_names;

  Stopwatch plan_timer;
  ODH_ASSIGN_OR_RETURN(plan_, PlanSelect(bound, &eval_, &counters_));
  profile_.plan_micros =
      prior_micros + static_cast<double>(plan_timer.ElapsedMicros());
  explain_ = plan_.explain;

  // Aggregate pushdown / vectorized accumulation: try the fast paths the
  // planner flagged before opening the row plan (opening a scan already
  // fetches and decodes blobs). First offer the whole aggregate to the
  // provider — it may answer from per-blob summaries without touching the
  // data — then accumulate over ColumnBatches; the row loop in
  // RunBuffered stays the fallback and the single source of truth for
  // semantics.
  if (plan_.agg_provider != nullptr) {
    std::optional<Row> agg_row;
    ODH_ASSIGN_OR_RETURN(
        agg_row, plan_.agg_provider->AggregateScan(plan_.agg_spec,
                                                   plan_.agg_requests));
    if (agg_row.has_value()) profile_.path = "summary-pushdown";
    if (!agg_row.has_value() &&
        VectorizedAggregatable(plan_.agg_requests) &&
        plan_.agg_provider->SupportsBatchScan(plan_.agg_spec)) {
      ODH_ASSIGN_OR_RETURN(auto batches,
                           plan_.agg_provider->ScanBatches(plan_.agg_spec));
      BatchAggregator aggregator(plan_.agg_requests);
      // The vectorized working set — aggregator state plus the reusable
      // batch at its high-water capacity — is charged to the query budget.
      common::ScopedReservation batch_reserved(mem_.get());
      ODH_RETURN_IF_ERROR(batch_reserved.Reserve(
          static_cast<int64_t>(sizeof(BatchAggregator)) +
          static_cast<int64_t>(plan_.agg_requests.size()) * 64));
      int64_t batch_high_water = 0;
      ColumnBatch batch;
      while (true) {
        ODH_ASSIGN_OR_RETURN(bool more, batches->Next(&batch));
        if (!more) break;
        const int64_t batch_bytes = ApproxBatchBytes(batch);
        if (batch_bytes > batch_high_water) {
          ODH_RETURN_IF_ERROR(
              batch_reserved.Reserve(batch_bytes - batch_high_water));
          batch_high_water = batch_bytes;
        }
        aggregator.Accumulate(batch);
      }
      agg_row = aggregator.Finalize();
      if (agg_row.has_value()) profile_.path = "vectorized-batch";
    }
    if (agg_row.has_value()) {
      std::map<const Expr*, Datum> agg_values;
      for (size_t i = 0; i < plan_.agg_exprs.size(); ++i) {
        agg_values[plan_.agg_exprs[i]] = (*agg_row)[i];
      }
      Row representative(bound.total_slots, Datum::Null());
      Row out_row;
      for (const ExprPtr& e : bound.output) {
        ODH_ASSIGN_OR_RETURN(
            Datum v, eval_.Eval(e.get(), representative, &agg_values));
        out_row.push_back(std::move(v));
      }
      if (bound.limit != 0) {
        ODH_RETURN_IF_ERROR(ReserveBufferedRow(out_row));
        buffered_.push_back(std::move(out_row));
      }
      state_ = State::kBuffered;
      return Status::OK();
    }
  }

  ODH_RETURN_IF_ERROR(plan_.root->Open());

  if (!bound.has_aggregates && bound.order_by.empty()) {
    // Pure streaming: rows are projected one at a time in Next and never
    // collected — this is the path that keeps large range scans flat.
    state_ = State::kStreaming;
    return Status::OK();
  }
  ODH_RETURN_IF_ERROR(RunBuffered());
  state_ = State::kBuffered;
  return Status::OK();
}

Status QueryStream::RunBuffered() {
  const BoundSelect& bound = *stmt_->bound_;

  if (!bound.has_aggregates) {
    // ORDER BY (without aggregation): drain into the budget-governed
    // sorter — a bounded top-N heap under a LIMIT, spilling sorted runs
    // to disk when the working set outgrows the query budget otherwise.
    // Emission happens lazily from the sorter in Next.
    sorter_ = MakeSorter(engine_, bound, mem_.get(), arena_.get());
    Row combined;
    while (true) {
      ODH_ASSIGN_OR_RETURN(bool more, plan_.root->Next(&combined));
      if (!more) break;
      Row out_row;
      out_row.reserve(bound.output.size());
      for (const ExprPtr& e : bound.output) {
        ODH_ASSIGN_OR_RETURN(Datum v, eval_.Eval(e.get(), combined));
        out_row.push_back(std::move(v));
      }
      std::vector<Datum> keys;
      for (const auto& item : bound.order_by) {
        if (item.output_ordinal >= 0) {
          keys.push_back(out_row[item.output_ordinal]);
        } else {
          ODH_ASSIGN_OR_RETURN(Datum k,
                               eval_.Eval(item.expr.get(), combined));
          keys.push_back(std::move(k));
        }
      }
      ODH_RETURN_IF_ERROR(sorter_->Add(std::move(keys), std::move(out_row)));
    }
    return sorter_->Finish();
  }

  // Aggregation path.
  std::vector<const AggregateExpr*> agg_exprs;
  for (const ExprPtr& e : bound.output) CollectAggregates(e.get(), &agg_exprs);
  for (const auto& item : bound.order_by) {
    if (item.expr != nullptr) CollectAggregates(item.expr.get(), &agg_exprs);
  }

  struct Group {
    Row representative;  // First combined row of the group.
    std::vector<AggState> states;
  };
  std::map<std::string, Group> groups;
  // Grouped state is charged per distinct group and released wholesale
  // when this function returns — by then the output rows carry their own
  // accounting (buffered_ or the sorter). Aggregation cannot spill, so an
  // over-budget GROUP BY fails fast here.
  common::ScopedReservation group_reserved(mem_.get());
  auto reserve_group = [&](const std::string& key, const Group& group) {
    return group_reserved.Reserve(
        static_cast<int64_t>(sizeof(Group)) +
        static_cast<int64_t>(key.capacity()) +
        common::ApproxRowBytes(group.representative) +
        static_cast<int64_t>(group.states.size() * sizeof(AggState)));
  };

  Row combined;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, plan_.root->Next(&combined));
    if (!more) break;
    std::vector<Datum> group_key;
    for (const ExprPtr& g : bound.group_by) {
      ODH_ASSIGN_OR_RETURN(Datum v, eval_.Eval(g.get(), combined));
      group_key.push_back(std::move(v));
    }
    std::string key = EncodeKey(group_key);
    auto [it, inserted] = groups.try_emplace(key);
    Group& group = it->second;
    if (inserted) {
      group.representative = combined;
      group.states.resize(agg_exprs.size());
      ODH_RETURN_IF_ERROR(reserve_group(it->first, group));
    }
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      Datum arg;
      if (!agg_exprs[i]->star) {
        ODH_ASSIGN_OR_RETURN(arg,
                             eval_.Eval(agg_exprs[i]->arg.get(), combined));
      }
      AccumulateAgg(agg_exprs[i], arg, &group.states[i]);
    }
  }
  // A global aggregate over zero rows still yields one group.
  if (groups.empty() && bound.group_by.empty()) {
    Group& group = groups[""];
    group.representative.assign(bound.total_slots, Datum::Null());
    group.states.resize(agg_exprs.size());
    ODH_RETURN_IF_ERROR(reserve_group("", group));
  }

  if (!bound.order_by.empty()) {
    sorter_ = MakeSorter(engine_, bound, mem_.get(), arena_.get());
  }
  for (auto& [key, group] : groups) {
    // Aggregate output is unordered: with no ORDER BY, a LIMIT bounds
    // materialization at the source rather than trimming afterwards.
    if (sorter_ == nullptr && bound.limit >= 0 &&
        static_cast<int64_t>(buffered_.size()) >= bound.limit) {
      break;
    }
    std::map<const Expr*, Datum> agg_values;
    for (size_t i = 0; i < agg_exprs.size(); ++i) {
      agg_values[agg_exprs[i]] = FinalizeAgg(agg_exprs[i], group.states[i]);
    }
    Row out_row;
    for (const ExprPtr& e : bound.output) {
      ODH_ASSIGN_OR_RETURN(
          Datum v, eval_.Eval(e.get(), group.representative, &agg_values));
      out_row.push_back(std::move(v));
    }
    if (sorter_ == nullptr) {
      ODH_RETURN_IF_ERROR(ReserveBufferedRow(out_row));
      buffered_.push_back(std::move(out_row));
    } else {
      std::vector<Datum> keys;
      for (const auto& item : bound.order_by) {
        if (item.output_ordinal >= 0) {
          keys.push_back(out_row[item.output_ordinal]);
        } else {
          ODH_ASSIGN_OR_RETURN(
              Datum k, eval_.Eval(item.expr.get(), group.representative,
                                  &agg_values));
          keys.push_back(std::move(k));
        }
      }
      ODH_RETURN_IF_ERROR(sorter_->Add(std::move(keys), std::move(out_row)));
    }
  }
  if (sorter_ != nullptr) ODH_RETURN_IF_ERROR(sorter_->Finish());
  return Status::OK();
}

Result<bool> QueryStream::NextStreaming(Row* row) {
  const BoundSelect& bound = *stmt_->bound_;
  if (bound.limit >= 0 && emitted_ >= bound.limit) return false;
  Row combined;
  ODH_ASSIGN_OR_RETURN(bool more, plan_.root->Next(&combined));
  if (!more) return false;
  row->clear();
  row->reserve(bound.output.size());
  for (const ExprPtr& e : bound.output) {
    ODH_ASSIGN_OR_RETURN(Datum v, eval_.Eval(e.get(), combined));
    row->push_back(std::move(v));
  }
  return true;
}

Result<bool> QueryStream::Next(Row* row) {
  switch (state_) {
    case State::kError:
      return poison_;
    case State::kDone:
      return false;
    case State::kStreaming: {
      Result<bool> more = NextStreaming(row);
      if (!more.ok()) return Poison(more.status());
      if (!more.value()) {
        state_ = State::kDone;
        Finish();
        return false;
      }
      break;
    }
    case State::kBuffered: {
      if (sorter_ != nullptr) {
        // Spilled sorts read run pages lazily, so a disk fault surfaces
        // here — mid-stream, with the cursor held — and poisons it.
        Result<bool> more = sorter_->Next(row);
        if (!more.ok()) return Poison(more.status());
        if (!more.value()) {
          state_ = State::kDone;
          Finish();
          return false;
        }
        break;
      }
      if (buffered_.empty()) {
        state_ = State::kDone;
        Finish();
        return false;
      }
      // Emitted rows release their reservation as they leave the buffer.
      if (mem_ != nullptr && buffered_bytes_ > 0) {
        int64_t bytes = common::ApproxRowBytes(buffered_.front());
        if (bytes > buffered_bytes_) bytes = buffered_bytes_;
        mem_->Release(bytes);
        buffered_bytes_ -= bytes;
      }
      *row = std::move(buffered_.front());
      buffered_.pop_front();
      break;
    }
  }
  ++emitted_;
  if (stats_ != nullptr) ++stats_->rows_streamed;
  return true;
}

void QueryStream::Finish() {
  if (finished_) return;
  finished_ = true;
  // Eager release first (harvests spill stats): a drained or abandoned
  // stream returns its memory and deletes its spill files immediately,
  // not at destruction.
  ReleaseBufferedState();
  profile_.rows_returned = emitted_;
  profile_.rows_scanned =
      counters_.rows_scanned.load(std::memory_order_relaxed);
  profile_.batches = counters_.batches.load(std::memory_order_relaxed);
  profile_.blobs_decoded =
      counters_.blobs_decoded.load(std::memory_order_relaxed);
  profile_.blobs_pruned =
      counters_.blobs_pruned.load(std::memory_order_relaxed);
  profile_.blobs_skipped_by_summary =
      counters_.blobs_skipped_by_summary.load(std::memory_order_relaxed);
  profile_.blob_bytes_read =
      counters_.blob_bytes_read.load(std::memory_order_relaxed);
  profile_.segments_pruned =
      counters_.segments_pruned.load(std::memory_order_relaxed);
  profile_.segments_scanned_parallel =
      counters_.segments_scanned_parallel.load(std::memory_order_relaxed);
  profile_.blob_cache_hits =
      counters_.blob_cache_hits.load(std::memory_order_relaxed);
  profile_.mem_peak_bytes = mem_ != nullptr ? mem_->peak() : 0;
  profile_.spill_runs = spill_runs_;
  profile_.spill_bytes = spill_bytes_;
  profile_.total_micros = static_cast<double>(timer_.ElapsedMicros());
  const SqlEngine::ReplicationInfo repl = engine_->replication_info();
  if (repl.is_replica) {
    profile_.repl_lag_bytes = repl.lag_bytes;
    profile_.repl_staleness_micros = repl.staleness_micros;
  }
  // The executed-path label comes from runtime evidence, not the plan:
  // Init stamps the aggregate fast paths; otherwise batches flowing
  // through the scan prove the vectorized path ran.
  if (profile_.path.empty()) {
    profile_.path = profile_.batches > 0 ? "vectorized-batch" : "row-scan";
  }
  explain_ += "path: " + profile_.path + "\n";
  engine_->LogQuery(profile_);
}

// Session --------------------------------------------------------------------

Result<std::shared_ptr<const PreparedStatement>> Session::PrepareInternal(
    const std::string& sql) {
  ODH_ASSIGN_OR_RETURN(Statement parsed, Parse(sql));
  auto stmt = std::shared_ptr<PreparedStatement>(new PreparedStatement());
  stmt->sql_ = sql;
  stmt->kind_ = parsed.kind;
  stmt->param_count_ = parsed.param_count;
  switch (parsed.kind) {
    case Statement::Kind::kSelect: {
      ODH_ASSIGN_OR_RETURN(BoundSelect bound,
                           Bind(engine_->catalog(), std::move(*parsed.select)));
      stmt->bound_ = std::make_unique<BoundSelect>(std::move(bound));
      break;
    }
    case Statement::Kind::kInsert:
      stmt->insert_ = std::move(parsed.insert);
      break;
    case Statement::Kind::kCreateTable:
      stmt->create_table_ = std::move(parsed.create_table);
      break;
    case Statement::Kind::kCreateIndex:
      stmt->create_index_ = std::move(parsed.create_index);
      break;
    case Statement::Kind::kAlterRetention:
      stmt->alter_retention_ = std::move(parsed.alter_retention);
      break;
  }
  return std::shared_ptr<const PreparedStatement>(std::move(stmt));
}

void Session::TouchCacheEntry(CacheEntry* entry) {
  // O(1) promotion to most-recently-used; the iterator stays valid.
  cache_order_.splice(cache_order_.end(), cache_order_, entry->order_pos);
}

Result<std::shared_ptr<const PreparedStatement>> Session::Prepare(
    const std::string& sql) {
  ++stats_.prepares;
  auto it = cache_.find(sql);
  if (it != cache_.end()) {
    ++stats_.prepare_cache_hits;
    TouchCacheEntry(&it->second);
    return it->second.stmt;
  }
  std::string_view body(sql);
  if (ConsumeKeyword(&body, "EXPLAIN")) {
    return Status::InvalidArgument(
        "EXPLAIN statements cannot be prepared; use Execute");
  }
  ODH_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStatement> stmt,
                       PrepareInternal(sql));
  auto pos = cache_order_.insert(cache_order_.end(), sql);
  cache_[sql] = CacheEntry{stmt, pos};
  while (cache_.size() > kPreparedCacheCapacity) {
    // Least recently used first; in-flight handles stay valid through
    // their shared_ptr.
    cache_.erase(cache_order_.front());
    cache_order_.pop_front();
  }
  return stmt;
}

Result<std::unique_ptr<QueryStream>> Session::StartStream(
    std::shared_ptr<const PreparedStatement> stmt,
    const std::vector<Datum>& params, double prior_micros, bool prepared) {
  ODH_RETURN_IF_ERROR(CheckParamCount(*stmt, params));
  std::unique_ptr<QueryStream> stream(
      new QueryStream(engine_, std::move(stmt), params, &stats_));
  // Every real query gets its own tracker (child of the session's) and a
  // query-lifetime arena for spill I/O buffers. A budget of 0 tracks
  // without refusing, so peak memory is observable even ungoverned.
  stream->mem_ = std::make_unique<common::MemoryTracker>(
      "query", engine_->memory_budgets().query_bytes, mem_.get());
  stream->arena_ = std::make_unique<common::Arena>(stream->mem_.get());
  // Buffered-path budget errors surface here, before any cursor exists;
  // the stream's destructor has already released everything it charged.
  ODH_RETURN_IF_ERROR(stream->Init(prior_micros, prepared));
  return stream;
}

std::unique_ptr<QueryStream> Session::StreamFromResult(QueryResult result) {
  std::unique_ptr<QueryStream> stream(
      new QueryStream(engine_, nullptr, {}, &stats_));
  stream->columns_ = std::move(result.columns);
  stream->explain_ = std::move(result.explain);
  stream->profile_ = std::move(result.profile);
  stream->affected_rows_ = result.affected_rows;
  for (Row& row : result.rows) stream->buffered_.push_back(std::move(row));
  stream->state_ = QueryStream::State::kBuffered;
  stream->finished_ = true;  // Already executed (and logged, if a SELECT).
  return stream;
}

Result<QueryResult> Session::Materialize(std::unique_ptr<QueryStream> stream) {
  QueryResult result;
  result.columns = stream->columns();
  // Rows accumulating for the caller are charged to the SESSION tracker
  // (not the query's): the query budget governs the execution working
  // set — which spilling can keep bounded — while the materialized result
  // is session state whose size the query cannot reduce. The reservation
  // is returned when the result is handed out.
  common::ScopedReservation reserved(mem_.get());
  Row row;
  while (true) {
    ODH_ASSIGN_OR_RETURN(bool more, stream->Next(&row));
    if (!more) break;
    Status st = reserved.Reserve(common::ApproxRowBytes(row));
    if (!st.ok()) return stream->Poison(std::move(st));
    result.rows.push_back(std::move(row));
  }
  result.affected_rows = stream->affected_rows();
  result.explain = stream->explain();
  result.profile = stream->profile();
  return result;
}

Result<QueryResult> Session::Execute(const std::string& sql,
                                     const std::vector<Datum>& params) {
  std::string_view body(sql);
  if (ConsumeKeyword(&body, "EXPLAIN") && ConsumeKeyword(&body, "PROFILE")) {
    const std::string inner_sql(body);
    Stopwatch prep_timer;
    ODH_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStatement> stmt,
                         PrepareInternal(inner_sql));
    if (!stmt->is_select()) {
      return Status::InvalidArgument("EXPLAIN PROFILE supports SELECT only");
    }
    const double prep_micros = static_cast<double>(prep_timer.ElapsedMicros());
    ++stats_.statements_executed;
    ODH_ASSIGN_OR_RETURN(
        std::unique_ptr<QueryStream> stream,
        StartStream(std::move(stmt), params, prep_micros, /*prepared=*/false));
    ODH_ASSIGN_OR_RETURN(QueryResult inner, Materialize(std::move(stream)));
    return ProfileToResult(std::move(inner));
  }

  Stopwatch prep_timer;
  ODH_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStatement> stmt,
                       PrepareInternal(sql));
  const double prep_micros = static_cast<double>(prep_timer.ElapsedMicros());
  ++stats_.statements_executed;
  if (!stmt->is_select()) return ExecuteNonSelect(*stmt, params);
  ODH_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryStream> stream,
      StartStream(std::move(stmt), params, prep_micros, /*prepared=*/false));
  return Materialize(std::move(stream));
}

Result<QueryResult> Session::ExecutePrepared(
    const std::shared_ptr<const PreparedStatement>& stmt,
    const std::vector<Datum>& params) {
  if (stmt == nullptr) return Status::InvalidArgument("null statement");
  ++stats_.statements_executed;
  // Re-execution is a cache touch: a handle in steady use must not be
  // the one evicted when the cache fills with one-off statements.
  auto it = cache_.find(stmt->sql());
  if (it != cache_.end() && it->second.stmt == stmt) {
    TouchCacheEntry(&it->second);
  }
  if (!stmt->is_select()) return ExecuteNonSelect(*stmt, params);
  ODH_ASSIGN_OR_RETURN(
      std::unique_ptr<QueryStream> stream,
      StartStream(stmt, params, /*prior_micros=*/0, /*prepared=*/true));
  return Materialize(std::move(stream));
}

Result<std::unique_ptr<QueryStream>> Session::ExecuteStreaming(
    const std::string& sql, const std::vector<Datum>& params) {
  std::string_view body(sql);
  if (ConsumeKeyword(&body, "EXPLAIN")) {
    // EXPLAIN PROFILE materializes by nature; wrap it for uniformity.
    ODH_ASSIGN_OR_RETURN(QueryResult result, Execute(sql, params));
    return StreamFromResult(std::move(result));
  }
  Stopwatch prep_timer;
  ODH_ASSIGN_OR_RETURN(std::shared_ptr<const PreparedStatement> stmt,
                       PrepareInternal(sql));
  const double prep_micros = static_cast<double>(prep_timer.ElapsedMicros());
  ++stats_.statements_executed;
  if (!stmt->is_select()) {
    ODH_ASSIGN_OR_RETURN(QueryResult result, ExecuteNonSelect(*stmt, params));
    return StreamFromResult(std::move(result));
  }
  return StartStream(std::move(stmt), params, prep_micros,
                     /*prepared=*/false);
}

Result<std::unique_ptr<QueryStream>> Session::ExecuteStreamingPrepared(
    const std::shared_ptr<const PreparedStatement>& stmt,
    const std::vector<Datum>& params) {
  if (stmt == nullptr) return Status::InvalidArgument("null statement");
  ++stats_.statements_executed;
  auto it = cache_.find(stmt->sql());
  if (it != cache_.end() && it->second.stmt == stmt) {
    TouchCacheEntry(&it->second);
  }
  if (!stmt->is_select()) {
    ODH_ASSIGN_OR_RETURN(QueryResult result, ExecuteNonSelect(*stmt, params));
    return StreamFromResult(std::move(result));
  }
  return StartStream(stmt, params, /*prior_micros=*/0, /*prepared=*/true);
}

Result<QueryResult> Session::ExecuteNonSelect(
    const PreparedStatement& stmt, const std::vector<Datum>& params) {
  if (read_only_) {
    return Status::FailedPrecondition(
        "statement mutates data but this session is read-only (served by a "
        "replica; send writes to the primary)");
  }
  ODH_RETURN_IF_ERROR(CheckParamCount(stmt, params));
  // Mutating statements serialize across sessions; the storage layer
  // already supports concurrent readers against committed state.
  std::lock_guard<std::mutex> lock(*engine_->write_mutex());
  switch (stmt.kind_) {
    case Statement::Kind::kInsert:
      return ExecuteInsert(*stmt.insert_, params);
    case Statement::Kind::kCreateTable: {
      ODH_RETURN_IF_ERROR(engine_->catalog()
                              ->database()
                              ->CreateTable(stmt.create_table_->table,
                                            relational::Schema(
                                                stmt.create_table_->columns))
                              .status());
      return QueryResult{};
    }
    case Statement::Kind::kCreateIndex: {
      const CreateIndexStmt& ci = *stmt.create_index_;
      ODH_ASSIGN_OR_RETURN(relational::Table* table,
                           engine_->catalog()->database()->GetTable(ci.table));
      relational::IndexDef def;
      def.name = ci.index;
      for (const std::string& name : ci.columns) {
        int pos = table->schema().FindColumn(name);
        if (pos < 0) {
          return Status::InvalidArgument("unknown column: " + name);
        }
        def.columns.push_back(pos);
      }
      ODH_RETURN_IF_ERROR(table->AddIndex(def));
      return QueryResult{};
    }
    case Statement::Kind::kAlterRetention: {
      const auto& handler = engine_->retention_handler();
      if (handler == nullptr) {
        return Status::Unimplemented(
            "no retention handler registered for ALTER TABLE ... RETENTION");
      }
      ODH_RETURN_IF_ERROR(handler(stmt.alter_retention_->table,
                                  stmt.alter_retention_->retention_micros));
      return QueryResult{};
    }
    case Statement::Kind::kSelect:
      break;
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Session::ExecuteInsert(const InsertStmt& stmt,
                                           const std::vector<Datum>& params) {
  ODH_ASSIGN_OR_RETURN(relational::Table* table,
                       engine_->catalog()->database()->GetTable(stmt.table));
  const relational::Schema& schema = table->schema();
  // Map statement columns to schema positions.
  std::vector<int> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.num_columns(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int pos = schema.FindColumn(name);
      if (pos < 0) {
        return Status::InvalidArgument("unknown column: " + name);
      }
      positions.push_back(pos);
    }
  }
  QueryResult result;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row row(schema.num_columns(), Datum::Null());
    for (size_t i = 0; i < exprs.size(); ++i) {
      const Datum* raw = nullptr;
      if (exprs[i]->kind() == ExprKind::kLiteral) {
        raw = &static_cast<const LiteralExpr*>(exprs[i].get())->value;
      } else if (exprs[i]->kind() == ExprKind::kParameter) {
        const auto* param =
            static_cast<const ParameterExpr*>(exprs[i].get());
        if (param->index >= static_cast<int>(params.size())) {
          return Status::InvalidArgument("parameter " +
                                         exprs[i]->ToString() +
                                         " has no bound value");
        }
        raw = &params[param->index];
      } else {
        return Status::InvalidArgument(
            "INSERT values must be literals or parameters: " +
            exprs[i]->ToString());
      }
      ODH_ASSIGN_OR_RETURN(
          row[positions[i]],
          CoerceForColumn(*raw, schema.column(positions[i]).type));
    }
    ODH_RETURN_IF_ERROR(table->Insert(row).status());
    ++result.affected_rows;
  }
  ODH_RETURN_IF_ERROR(table->Commit());
  return result;
}

}  // namespace odh::sql
