#include "sql/catalog.h"

#include <cctype>

namespace odh::sql {
namespace {

std::string Lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

Result<TableProvider*> Catalog::Resolve(const std::string& name) {
  std::string key = Lower(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto ext = external_.find(key);
  if (ext != external_.end()) return ext->second;
  auto cached = wrappers_.find(key);
  if (cached != wrappers_.end()) return cached->second.get();
  auto table = db_->GetTable(key);
  if (!table.ok()) return Status::NotFound("no such table: " + name);
  auto wrapper = std::make_unique<RelationalTableProvider>(table.value());
  TableProvider* raw = wrapper.get();
  wrappers_[key] = std::move(wrapper);
  return raw;
}

Status Catalog::RegisterProvider(TableProvider* provider) {
  std::string key = Lower(provider->name());
  std::lock_guard<std::mutex> lock(mu_);
  if (external_.count(key) > 0 || db_->GetTable(key).ok()) {
    return Status::AlreadyExists("table exists: " + provider->name());
  }
  external_[key] = provider;
  return Status::OK();
}

Status Catalog::Analyze(const std::string& name) {
  ODH_ASSIGN_OR_RETURN(TableProvider* provider, Resolve(name));
  RelationalTableProvider* relational = provider->AsRelational();
  if (relational == nullptr) {
    return Status::InvalidArgument(
        "ANALYZE applies to relational tables only");
  }
  return relational->Analyze();
}

}  // namespace odh::sql
