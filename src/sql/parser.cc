#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace odh::sql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool IsKeyword(const char* kw) const {
    return Peek().type == TokenType::kIdentifier && Peek().upper == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!IsKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::InvalidArgument(std::string("expected ") + kw +
                                     " near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  bool IsSymbol(const char* sym) const {
    return Peek().type == TokenType::kSymbol && Peek().text == sym;
  }
  bool AcceptSymbol(const char* sym) {
    if (!IsSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument(std::string("expected '") + sym +
                                     "' near '" + Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected identifier near '" +
                                     Peek().text + "'");
    }
    return Advance().text;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect();
  Result<std::unique_ptr<InsertStmt>> ParseInsert();
  Result<Statement> ParseCreate();
  Result<Statement> ParseAlter();
  Result<ExprPtr> ParseExpr() { return ParseOr(); }
  Result<ExprPtr> ParseOr();
  Result<ExprPtr> ParseAnd();
  Result<ExprPtr> ParseNot();
  Result<ExprPtr> ParseComparison();
  Result<ExprPtr> ParseAdditive();
  Result<ExprPtr> ParseMultiplicative();
  Result<ExprPtr> ParsePrimary();
  Result<DataType> ParseType();

  static bool IsReserved(const std::string& upper);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_ = 0;  // `?` placeholders numbered left to right.
};

bool Parser::IsReserved(const std::string& upper) {
  static const char* kReserved[] = {
      "SELECT", "FROM",  "WHERE",  "GROUP", "ORDER", "BY",      "LIMIT",
      "AND",    "OR",    "NOT",    "AS",    "ASC",   "DESC",    "BETWEEN",
      "IS",     "NULL",  "INSERT", "INTO",  "VALUES", "CREATE", "TABLE",
      "INDEX",  "ON",    "TRUE",   "FALSE", "HAVING"};
  for (const char* kw : kReserved) {
    if (upper == kw) return true;
  }
  return false;
}

Result<Statement> Parser::ParseStatement() {
  Statement stmt;
  if (IsKeyword("SELECT")) {
    ODH_ASSIGN_OR_RETURN(stmt.select, ParseSelect());
    stmt.kind = Statement::Kind::kSelect;
  } else if (IsKeyword("INSERT")) {
    ODH_ASSIGN_OR_RETURN(stmt.insert, ParseInsert());
    stmt.kind = Statement::Kind::kInsert;
  } else if (IsKeyword("CREATE")) {
    ODH_ASSIGN_OR_RETURN(stmt, ParseCreate());
  } else if (IsKeyword("ALTER")) {
    ODH_ASSIGN_OR_RETURN(stmt, ParseAlter());
  } else {
    return Status::InvalidArgument(
        "expected SELECT, INSERT, CREATE or ALTER");
  }
  AcceptSymbol(";");
  if (Peek().type != TokenType::kEof) {
    return Status::InvalidArgument("trailing input near '" + Peek().text +
                                   "'");
  }
  stmt.param_count = next_param_;
  if (stmt.select != nullptr) stmt.select->param_count = next_param_;
  return stmt;
}

Result<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  ODH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto select = std::make_unique<SelectStmt>();

  // Select list.
  do {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.star = true;
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().upper) &&
               tokens_[pos_ + 1].type == TokenType::kSymbol &&
               tokens_[pos_ + 1].text == "." &&
               tokens_[pos_ + 2].type == TokenType::kSymbol &&
               tokens_[pos_ + 2].text == "*") {
      item.star = true;
      item.star_table = Advance().text;
      Advance();  // '.'
      Advance();  // '*'
    } else {
      ODH_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("AS")) {
        ODH_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsReserved(Peek().upper)) {
        item.alias = Advance().text;
      }
    }
    select->items.push_back(std::move(item));
  } while (AcceptSymbol(","));

  ODH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  do {
    TableRef ref;
    ODH_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier());
    if (AcceptKeyword("AS")) {
      ODH_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier());
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsReserved(Peek().upper)) {
      ref.alias = Advance().text;
    } else {
      ref.alias = ref.name;
    }
    select->tables.push_back(std::move(ref));
  } while (AcceptSymbol(","));

  if (AcceptKeyword("WHERE")) {
    ODH_ASSIGN_OR_RETURN(select->where, ParseExpr());
  }
  if (AcceptKeyword("GROUP")) {
    ODH_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      ODH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      select->group_by.push_back(std::move(e));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("ORDER")) {
    ODH_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      ODH_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      select->order_by.push_back(std::move(item));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("LIMIT")) {
    if (Peek().type != TokenType::kInteger) {
      return Status::InvalidArgument("LIMIT expects an integer");
    }
    select->limit = std::strtoll(Advance().text.c_str(), nullptr, 10);
  }
  return select;
}

Result<std::unique_ptr<InsertStmt>> Parser::ParseInsert() {
  ODH_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  ODH_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto insert = std::make_unique<InsertStmt>();
  ODH_ASSIGN_OR_RETURN(insert->table, ExpectIdentifier());
  if (AcceptSymbol("(")) {
    do {
      ODH_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      insert->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  ODH_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    ODH_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> row;
    do {
      ODH_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      row.push_back(std::move(e));
    } while (AcceptSymbol(","));
    ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
    insert->rows.push_back(std::move(row));
  } while (AcceptSymbol(","));
  return insert;
}

Result<DataType> Parser::ParseType() {
  ODH_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier());
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(
      static_cast<unsigned char>(c))));
  DataType type;
  if (upper == "BIGINT" || upper == "INT" || upper == "INTEGER" ||
      upper == "SMALLINT") {
    type = DataType::kInt64;
  } else if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL" ||
             upper == "DECIMAL" || upper == "NUMERIC") {
    type = DataType::kDouble;
    AcceptKeyword("PRECISION");
  } else if (upper == "VARCHAR" || upper == "CHAR" || upper == "TEXT") {
    type = DataType::kString;
  } else if (upper == "TIMESTAMP" || upper == "DATETIME") {
    type = DataType::kTimestamp;
  } else if (upper == "BOOLEAN" || upper == "BOOL") {
    type = DataType::kBool;
  } else {
    return Status::InvalidArgument("unknown type: " + name);
  }
  // Optional length/precision suffix, e.g. VARCHAR(32) or DECIMAL(8,2).
  if (AcceptSymbol("(")) {
    while (!IsSymbol(")") && Peek().type != TokenType::kEof) Advance();
    ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  return type;
}

Result<Statement> Parser::ParseCreate() {
  ODH_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  Statement stmt;
  if (AcceptKeyword("TABLE")) {
    stmt.kind = Statement::Kind::kCreateTable;
    stmt.create_table = std::make_unique<CreateTableStmt>();
    ODH_ASSIGN_OR_RETURN(stmt.create_table->table, ExpectIdentifier());
    ODH_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      relational::Column col;
      ODH_ASSIGN_OR_RETURN(col.name, ExpectIdentifier());
      ODH_ASSIGN_OR_RETURN(col.type, ParseType());
      stmt.create_table->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }
  if (AcceptKeyword("INDEX")) {
    stmt.kind = Statement::Kind::kCreateIndex;
    stmt.create_index = std::make_unique<CreateIndexStmt>();
    ODH_ASSIGN_OR_RETURN(stmt.create_index->index, ExpectIdentifier());
    ODH_RETURN_IF_ERROR(ExpectKeyword("ON"));
    ODH_ASSIGN_OR_RETURN(stmt.create_index->table, ExpectIdentifier());
    ODH_RETURN_IF_ERROR(ExpectSymbol("("));
    do {
      ODH_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
      stmt.create_index->columns.push_back(std::move(col));
    } while (AcceptSymbol(","));
    ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
    return stmt;
  }
  return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
}

Result<Statement> Parser::ParseAlter() {
  ODH_RETURN_IF_ERROR(ExpectKeyword("ALTER"));
  ODH_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  Statement stmt;
  stmt.kind = Statement::Kind::kAlterRetention;
  stmt.alter_retention = std::make_unique<AlterRetentionStmt>();
  ODH_ASSIGN_OR_RETURN(stmt.alter_retention->table, ExpectIdentifier());
  ODH_RETURN_IF_ERROR(ExpectKeyword("RETENTION"));
  if (Peek().type != TokenType::kInteger) {
    return Status::InvalidArgument("RETENTION expects an integer interval");
  }
  int64_t amount = std::strtoll(Advance().text.c_str(), nullptr, 10);
  if (amount < 0) {
    return Status::InvalidArgument("RETENTION interval must be >= 0");
  }
  // Optional unit, normalized to microseconds (bare number = microseconds).
  int64_t scale = 1;
  if (Peek().type == TokenType::kIdentifier) {
    const std::string& unit = Peek().upper;
    if (unit == "MICROSECONDS" || unit == "MICROSECOND") {
      scale = 1;
    } else if (unit == "MILLISECONDS" || unit == "MILLISECOND") {
      scale = 1000;
    } else if (unit == "SECONDS" || unit == "SECOND") {
      scale = 1000000;
    } else if (unit == "MINUTES" || unit == "MINUTE") {
      scale = 60LL * 1000000;
    } else if (unit == "HOURS" || unit == "HOUR") {
      scale = 3600LL * 1000000;
    } else if (unit == "DAYS" || unit == "DAY") {
      scale = 86400LL * 1000000;
    } else {
      return Status::InvalidArgument("unknown RETENTION unit: " +
                                     Peek().text);
    }
    Advance();
  }
  stmt.alter_retention->retention_micros = amount * scale;
  return stmt;
}

Result<ExprPtr> Parser::ParseOr() {
  ODH_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
  while (AcceptKeyword("OR")) {
    ODH_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAnd() {
  ODH_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
  while (AcceptKeyword("AND")) {
    ODH_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseNot() {
  if (AcceptKeyword("NOT")) {
    ODH_ASSIGN_OR_RETURN(ExprPtr inner, ParseNot());
    return ExprPtr(std::make_unique<NotExpr>(std::move(inner)));
  }
  return ParseComparison();
}

Result<ExprPtr> Parser::ParseComparison() {
  ODH_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  if (IsSymbol("=") || IsSymbol("<>") || IsSymbol("<") || IsSymbol("<=") ||
      IsSymbol(">") || IsSymbol(">=")) {
    std::string sym = Advance().text;
    BinaryOp op = sym == "=" ? BinaryOp::kEq
                  : sym == "<>" ? BinaryOp::kNe
                  : sym == "<" ? BinaryOp::kLt
                  : sym == "<=" ? BinaryOp::kLe
                  : sym == ">" ? BinaryOp::kGt
                                : BinaryOp::kGe;
    ODH_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                std::move(right)));
  }
  if (AcceptKeyword("BETWEEN")) {
    ODH_ASSIGN_OR_RETURN(ExprPtr lower, ParseAdditive());
    ODH_RETURN_IF_ERROR(ExpectKeyword("AND"));
    ODH_ASSIGN_OR_RETURN(ExprPtr upper, ParseAdditive());
    return ExprPtr(std::make_unique<BetweenExpr>(
        std::move(left), std::move(lower), std::move(upper)));
  }
  if (AcceptKeyword("IS")) {
    bool negated = AcceptKeyword("NOT");
    ODH_RETURN_IF_ERROR(ExpectKeyword("NULL"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }
  return left;
}

Result<ExprPtr> Parser::ParseAdditive() {
  ODH_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (IsSymbol("+") || IsSymbol("-")) {
    BinaryOp op = Advance().text == "+" ? BinaryOp::kAdd : BinaryOp::kSub;
    ODH_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParseMultiplicative() {
  ODH_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
  while (IsSymbol("*") || IsSymbol("/")) {
    BinaryOp op = Advance().text == "*" ? BinaryOp::kMul : BinaryOp::kDiv;
    ODH_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
    left = std::make_unique<BinaryExpr>(op, std::move(left),
                                        std::move(right));
  }
  return left;
}

Result<ExprPtr> Parser::ParsePrimary() {
  const Token& tok = Peek();
  switch (tok.type) {
    case TokenType::kInteger: {
      int64_t v = std::strtoll(Advance().text.c_str(), nullptr, 10);
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Int64(v)));
    }
    case TokenType::kFloat: {
      double v = std::strtod(Advance().text.c_str(), nullptr);
      return ExprPtr(std::make_unique<LiteralExpr>(Datum::Double(v)));
    }
    case TokenType::kString: {
      return ExprPtr(
          std::make_unique<LiteralExpr>(Datum::String(Advance().text)));
    }
    case TokenType::kSymbol: {
      if (AcceptSymbol("?")) {
        return ExprPtr(std::make_unique<ParameterExpr>(next_param_++));
      }
      if (AcceptSymbol("(")) {
        ODH_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
        return inner;
      }
      if (AcceptSymbol("-")) {
        ODH_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary());
        // Fold negation of literals; otherwise 0 - expr.
        if (inner->kind() == ExprKind::kLiteral) {
          auto* lit = static_cast<LiteralExpr*>(inner.get());
          if (lit->value.is_int64()) {
            return ExprPtr(std::make_unique<LiteralExpr>(
                Datum::Int64(-lit->value.int64_value())));
          }
          if (lit->value.is_double()) {
            return ExprPtr(std::make_unique<LiteralExpr>(
                Datum::Double(-lit->value.double_value())));
          }
        }
        return ExprPtr(std::make_unique<BinaryExpr>(
            BinaryOp::kSub,
            std::make_unique<LiteralExpr>(Datum::Int64(0)),
            std::move(inner)));
      }
      break;
    }
    case TokenType::kIdentifier: {
      if (tok.upper == "NULL") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Datum::Null()));
      }
      if (tok.upper == "TRUE" || tok.upper == "FALSE") {
        bool v = tok.upper == "TRUE";
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Datum::Bool(v)));
      }
      // Aggregate functions.
      static const std::pair<const char*, AggregateFunc> kAggs[] = {
          {"COUNT", AggregateFunc::kCount},
          {"SUM", AggregateFunc::kSum},
          {"AVG", AggregateFunc::kAvg},
          {"MIN", AggregateFunc::kMin},
          {"MAX", AggregateFunc::kMax}};
      for (const auto& [name, func] : kAggs) {
        if (tok.upper == name && tokens_[pos_ + 1].type == TokenType::kSymbol
            && tokens_[pos_ + 1].text == "(") {
          Advance();  // func name
          Advance();  // (
          if (AcceptSymbol("*")) {
            ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
            if (func != AggregateFunc::kCount) {
              return Status::InvalidArgument("* only valid in COUNT(*)");
            }
            return ExprPtr(
                std::make_unique<AggregateExpr>(func, nullptr, true));
          }
          ODH_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          ODH_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprPtr(
              std::make_unique<AggregateExpr>(func, std::move(arg), false));
        }
      }
      if (IsReserved(tok.upper)) break;
      std::string first = Advance().text;
      if (AcceptSymbol(".")) {
        ODH_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier());
        return ExprPtr(std::make_unique<ColumnRefExpr>(first, col));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", first));
    }
    case TokenType::kEof:
      break;
  }
  return Status::InvalidArgument("unexpected token '" + tok.text +
                                 "' at position " + std::to_string(tok.pos));
}

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  ODH_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace odh::sql
