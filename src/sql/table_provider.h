#ifndef ODH_SQL_TABLE_PROVIDER_H_
#define ODH_SQL_TABLE_PROVIDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/schema.h"

namespace odh::sql {

/// An inclusive/exclusive endpoint for a range constraint.
struct Bound {
  Datum value;
  bool inclusive = true;
};

/// A conjunction of simple predicates on one column, pushed down to a
/// provider: `equals` wins over range bounds when set.
struct ColumnConstraint {
  int column = -1;
  std::optional<Datum> equals;
  std::optional<Bound> lower;
  std::optional<Bound> upper;
};

/// What a scan must produce. Providers must apply all constraints exactly.
/// `projection` (ascending column positions; empty = all) is advisory:
/// providers return full-width rows but may leave unprojected columns NULL,
/// which is where ODH's tag-oriented blob decoding saves work.
struct ScanSpec {
  std::vector<ColumnConstraint> constraints;
  std::vector<int> projection;

  const ColumnConstraint* FindColumn(int column) const {
    for (const auto& c : constraints) {
      if (c.column == column) return &c;
    }
    return nullptr;
  }
};

/// Pull-based row stream.
class RowCursor {
 public:
  virtual ~RowCursor() = default;
  /// Produces the next row into *row; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
};

/// Cost/cardinality estimates a provider reports for a prospective scan.
/// `bytes` approximates the I/O the paper's cost model charges (expected
/// size of the ValueBlobs / heap pages that must be accessed).
struct ScanEstimate {
  double rows = 0;
  double bytes = 0;
};

/// The reproduction's analogue of the Informix Virtual Table Interface:
/// anything that exposes a relational schema, can scan with pushed-down
/// constraints, and can estimate scan cost. Plain relational tables and
/// ODH virtual tables both implement it, which is exactly how the paper
/// fuses operational and relational data under one SQL engine.
class TableProvider {
 public:
  virtual ~TableProvider() = default;

  virtual const std::string& name() const = 0;
  virtual const relational::Schema& schema() const = 0;

  virtual Result<std::unique_ptr<RowCursor>> Scan(const ScanSpec& spec) = 0;

  virtual ScanEstimate Estimate(const ScanSpec& spec) const = 0;

  /// True if an eq-constraint on `column` can be served better than a full
  /// scan (an index exists / the column keys a batch structure). The
  /// planner uses this to consider index-nested-loop joins.
  virtual bool SupportsPointLookup(int column) const = 0;

  /// RTTI-free downcast hook; overridden by RelationalTableProvider.
  virtual class RelationalTableProvider* AsRelational() { return nullptr; }
};

}  // namespace odh::sql

#endif  // ODH_SQL_TABLE_PROVIDER_H_
