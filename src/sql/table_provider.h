#ifndef ODH_SQL_TABLE_PROVIDER_H_
#define ODH_SQL_TABLE_PROVIDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/types.h"
#include "relational/schema.h"

namespace odh::sql {

/// An inclusive/exclusive endpoint for a range constraint.
struct Bound {
  Datum value;
  bool inclusive = true;
};

/// A conjunction of simple predicates on one column, pushed down to a
/// provider: `equals` wins over range bounds when set.
struct ColumnConstraint {
  int column = -1;
  std::optional<Datum> equals;
  std::optional<Bound> lower;
  std::optional<Bound> upper;
};

/// What a scan must produce. Providers must apply all constraints exactly.
/// `projection` (ascending column positions; empty = all) is advisory:
/// providers return full-width rows but may leave unprojected columns NULL,
/// which is where ODH's tag-oriented blob decoding saves work.
struct ScanSpec {
  std::vector<ColumnConstraint> constraints;
  std::vector<int> projection;
  /// Per-query profile counters (owned by the engine, outlives the scan);
  /// nullptr when nobody is profiling. Providers that decode blobs bump it
  /// so EXPLAIN PROFILE can report per-statement I/O.
  common::ScanCounters* counters = nullptr;

  const ColumnConstraint* FindColumn(int column) const {
    for (const auto& c : constraints) {
      if (c.column == column) return &c;
    }
    return nullptr;
  }
};

/// Pull-based row stream.
///
/// Error contract: a cursor is POISONED once Next returns a non-OK Result.
/// Every subsequent Next call returns the same (or an equivalent) error —
/// it never crashes, never resumes the stream, and never reports a clean
/// end of stream. Callers may therefore retry/drain a cursor defensively
/// after a failure without risking silent data truncation; implementations
/// that wrap other cursors (executor nodes, adapters, the network layer)
/// must preserve the property.
class RowCursor {
 public:
  virtual ~RowCursor() = default;
  /// Produces the next row into *row; returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
};

/// One decoded ValueBlob in columnar (tag-major) form — the batch contract
/// of the vectorized execution path. Column 0 of the table maps to `ids`,
/// column 1 to `timestamps`, and table column `2 + t` to `tags[t]`.
///
/// Contract:
///  - `timestamps.size()` is the batch row count.
///  - `ids` is either full-size or empty; empty means every row shares
///    `uniform_id` (the common case: one blob = one source).
///  - Each `tags[t]` is either full-size (NaN = SQL NULL) or empty; empty
///    means the column was not projected and reads as all-NULL. This is
///    where the blob layout saves work: unprojected tags are never decoded.
///  - `sel` is the selection vector produced by vectorized filtering:
///    ascending row indexes that passed every pushed-down constraint. When
///    `sel_all` is true the whole batch passed and `sel` is not populated.
struct ColumnBatch {
  SourceId uniform_id = -1;
  std::vector<SourceId> ids;
  std::vector<Timestamp> timestamps;
  std::vector<std::vector<double>> tags;
  std::vector<int32_t> sel;
  bool sel_all = true;

  size_t rows() const { return timestamps.size(); }
  size_t selected() const { return sel_all ? rows() : sel.size(); }
  SourceId id_at(size_t i) const { return ids.empty() ? uniform_id : ids[i]; }
  void clear() {
    uniform_id = -1;
    ids.clear();
    timestamps.clear();
    tags.clear();
    sel.clear();
    sel_all = true;
  }
};

/// Pull-based batch stream: one decoded blob (or dirty-buffer slice) per
/// call, with constraints already applied via the selection vector.
/// Subject to the same poison contract as RowCursor: after a non-OK
/// Result, every further Next returns the same error.
class BatchCursor {
 public:
  virtual ~BatchCursor() = default;
  /// Produces the next batch into *batch; returns false at end of stream.
  /// Batches may be empty after filtering (selected() == 0); callers must
  /// keep pulling until the cursor reports end of stream.
  virtual Result<bool> Next(ColumnBatch* batch) = 0;
};

/// Aggregate functions a provider can absorb (aggregate pushdown).
enum class AggregateOp { kCountStar, kCount, kSum, kAvg, kMin, kMax };

/// One aggregate the engine asks a provider to compute over a scan.
/// `column` is ignored for kCountStar.
struct AggregateRequest {
  AggregateOp op = AggregateOp::kCountStar;
  int column = -1;
};

/// Cost/cardinality estimates a provider reports for a prospective scan.
/// `bytes` approximates the I/O the paper's cost model charges (expected
/// size of the ValueBlobs / heap pages that must be accessed).
struct ScanEstimate {
  double rows = 0;
  double bytes = 0;
};

/// The reproduction's analogue of the Informix Virtual Table Interface:
/// anything that exposes a relational schema, can scan with pushed-down
/// constraints, and can estimate scan cost. Plain relational tables and
/// ODH virtual tables both implement it, which is exactly how the paper
/// fuses operational and relational data under one SQL engine.
class TableProvider {
 public:
  virtual ~TableProvider() = default;

  virtual const std::string& name() const = 0;
  virtual const relational::Schema& schema() const = 0;

  virtual Result<std::unique_ptr<RowCursor>> Scan(const ScanSpec& spec) = 0;

  /// True if the provider can serve `spec` through ScanBatches. The default
  /// provider is row-oriented.
  virtual bool SupportsBatchScan(const ScanSpec& spec) const { return false; }

  /// Columnar scan: emits one ColumnBatch per decoded blob with `spec`'s
  /// constraints applied via the selection vector. Only valid when
  /// SupportsBatchScan(spec) is true.
  virtual Result<std::unique_ptr<BatchCursor>> ScanBatches(
      const ScanSpec& spec) {
    (void)spec;
    return Status::Unimplemented("provider has no batch scan");
  }

  /// Aggregate pushdown: computes `requests` over the rows selected by
  /// `spec` and returns one row of results (Datums aligned with
  /// `requests`). Returns nullopt when the provider cannot absorb this
  /// combination (the engine then falls back to scanning); an error only
  /// for real failures.
  virtual Result<std::optional<Row>> AggregateScan(
      const ScanSpec& spec, const std::vector<AggregateRequest>& requests) {
    (void)spec;
    (void)requests;
    return std::optional<Row>();
  }

  virtual ScanEstimate Estimate(const ScanSpec& spec) const = 0;

  /// True if an eq-constraint on `column` can be served better than a full
  /// scan (an index exists / the column keys a batch structure). The
  /// planner uses this to consider index-nested-loop joins.
  virtual bool SupportsPointLookup(int column) const = 0;

  /// RTTI-free downcast hook; overridden by RelationalTableProvider.
  virtual class RelationalTableProvider* AsRelational() { return nullptr; }
};

}  // namespace odh::sql

#endif  // ODH_SQL_TABLE_PROVIDER_H_
