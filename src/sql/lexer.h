#ifndef ODH_SQL_LEXER_H_
#define ODH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace odh::sql {

enum class TokenType {
  kEof,
  kIdentifier,   // Unquoted name or keyword (uppercased text in `upper`).
  kInteger,
  kFloat,
  kString,       // 'single quoted'
  kSymbol,       // One of ( ) , . ; * = < > <= >= <> != + - /
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // Raw text (string literals unescaped).
  std::string upper;  // Uppercased text for keyword matching.
  size_t pos = 0;     // Byte offset in the input (for error messages).
};

/// Tokenizes a SQL string. Returns InvalidArgument on malformed input
/// (unterminated string, stray characters).
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace odh::sql

#endif  // ODH_SQL_LEXER_H_
