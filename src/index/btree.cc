#include "index/btree.h"

#include <algorithm>

#include "common/coding.h"
#include "common/logging.h"

namespace odh::index {
namespace {

constexpr uint32_t kMetaMagic = 0x0D4B7EEE;
constexpr char kLeafType = 1;
constexpr char kInternalType = 2;
constexpr storage::PageNo kMetaPage = 0;

// Reserve a little slack so a serialized node always fits its page.
constexpr size_t kNodeSlack = 16;

}  // namespace

Result<std::unique_ptr<BTree>> BTree::Create(storage::BufferPool* pool,
                                             const std::string& name) {
  ODH_ASSIGN_OR_RETURN(storage::FileId file,
                       pool->disk()->CreateFile(name));
  std::unique_ptr<BTree> tree(new BTree(pool, file));
  tree->max_node_bytes_ = pool->usable_page_size() - kNodeSlack;

  storage::PageNo meta_page;
  ODH_ASSIGN_OR_RETURN(storage::PageRef meta, pool->NewPage(file, &meta_page));
  ODH_CHECK(meta_page == kMetaPage);
  meta.Release();

  Node root;
  root.leaf = true;
  ODH_ASSIGN_OR_RETURN(tree->root_, tree->AllocateNode(root));
  ODH_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<BTree>> BTree::Open(storage::BufferPool* pool,
                                           const std::string& name) {
  ODH_ASSIGN_OR_RETURN(storage::FileId file, pool->disk()->OpenFile(name));
  std::unique_ptr<BTree> tree(new BTree(pool, file));
  tree->max_node_bytes_ = pool->usable_page_size() - kNodeSlack;
  ODH_RETURN_IF_ERROR(tree->ReadMeta());
  return tree;
}

Status BTree::WriteMeta() {
  ODH_ASSIGN_OR_RETURN(storage::PageRef page, pool_->FetchPage(file_,
                                                               kMetaPage));
  char* p = page.data();
  EncodeFixed32(p, kMetaMagic);
  EncodeFixed32(p + 4, root_);
  EncodeFixed32(p + 8, static_cast<uint32_t>(height_));
  EncodeFixed64(p + 12, static_cast<uint64_t>(num_entries_));
  page.MarkDirty();
  return Status::OK();
}

Status BTree::ReadMeta() {
  ODH_ASSIGN_OR_RETURN(storage::PageRef page, pool_->FetchPage(file_,
                                                               kMetaPage));
  const char* p = page.data();
  if (DecodeFixed32(p) != kMetaMagic) {
    return Status::Corruption("btree meta page magic mismatch");
  }
  root_ = DecodeFixed32(p + 4);
  height_ = static_cast<int>(DecodeFixed32(p + 8));
  num_entries_ = static_cast<int64_t>(DecodeFixed64(p + 12));
  return Status::OK();
}

size_t BTree::SerializedSize(const Node& node) {
  size_t size = 1 + 5;  // Type byte + worst-case count varint.
  if (node.leaf) {
    for (const auto& [k, v] : node.entries) {
      size += 5 + k.size() + 5 + v.size();
    }
    size += 1 + 4;  // has_next + next_leaf.
  } else {
    for (const auto& k : node.keys) size += 5 + k.size();
    size += 4 * node.children.size();
  }
  return size;
}

Status BTree::StoreNode(storage::PageNo page_no, const Node& node) {
  std::string buf;
  buf.reserve(pool_->disk()->page_size());
  buf.push_back(node.leaf ? kLeafType : kInternalType);
  if (node.leaf) {
    PutVarint32(&buf, static_cast<uint32_t>(node.entries.size()));
    for (const auto& [k, v] : node.entries) {
      PutLengthPrefixed(&buf, k);
      PutLengthPrefixed(&buf, v);
    }
    buf.push_back(node.has_next_leaf ? 1 : 0);
    PutFixed32(&buf, node.next_leaf);
  } else {
    PutVarint32(&buf, static_cast<uint32_t>(node.keys.size()));
    for (const auto& k : node.keys) PutLengthPrefixed(&buf, k);
    for (storage::PageNo child : node.children) PutFixed32(&buf, child);
  }
  if (buf.size() > pool_->usable_page_size()) {
    return Status::Internal("btree node overflows page");
  }
  ODH_ASSIGN_OR_RETURN(storage::PageRef page, pool_->FetchPage(file_,
                                                               page_no));
  std::memcpy(page.data(), buf.data(), buf.size());
  page.MarkDirty();
  return Status::OK();
}

Status BTree::LoadNode(storage::PageNo page_no, Node* node) {
  ODH_ASSIGN_OR_RETURN(storage::PageRef page, pool_->FetchPage(file_,
                                                               page_no));
  Slice input(page.data(), pool_->usable_page_size());
  char type = input[0];
  input.remove_prefix(1);
  node->entries.clear();
  node->keys.clear();
  node->children.clear();
  if (type == kLeafType) {
    node->leaf = true;
    uint32_t n;
    if (!GetVarint32(&input, &n)) return Status::Corruption("leaf count");
    node->entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Slice k, v;
      if (!GetLengthPrefixed(&input, &k) || !GetLengthPrefixed(&input, &v)) {
        return Status::Corruption("leaf entry");
      }
      node->entries.emplace_back(k.ToString(), v.ToString());
    }
    if (input.size() < 5) return Status::Corruption("leaf trailer");
    node->has_next_leaf = input[0] != 0;
    input.remove_prefix(1);
    node->next_leaf = DecodeFixed32(input.data());
  } else if (type == kInternalType) {
    node->leaf = false;
    uint32_t n;
    if (!GetVarint32(&input, &n)) return Status::Corruption("internal count");
    node->keys.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Slice k;
      if (!GetLengthPrefixed(&input, &k)) {
        return Status::Corruption("internal key");
      }
      node->keys.push_back(k.ToString());
    }
    node->children.reserve(n + 1);
    for (uint32_t i = 0; i < n + 1; ++i) {
      uint32_t child;
      if (!GetFixed32(&input, &child)) {
        return Status::Corruption("internal child");
      }
      node->children.push_back(child);
    }
  } else {
    return Status::Corruption("bad node type");
  }
  return Status::OK();
}

Result<storage::PageNo> BTree::AllocateNode(const Node& node) {
  storage::PageNo page_no;
  ODH_ASSIGN_OR_RETURN(storage::PageRef page, pool_->NewPage(file_,
                                                             &page_no));
  page.Release();
  ODH_RETURN_IF_ERROR(StoreNode(page_no, node));
  return page_no;
}

Status BTree::InsertRec(storage::PageNo page_no, const Slice& key,
                        const Slice& value, SplitResult* split,
                        bool* inserted_new) {
  Node node;
  ODH_RETURN_IF_ERROR(LoadNode(page_no, &node));
  split->split = false;

  if (node.leaf) {
    auto it = std::lower_bound(
        node.entries.begin(), node.entries.end(), key,
        [](const auto& entry, const Slice& k) {
          return Slice(entry.first).compare(k) < 0;
        });
    if (it != node.entries.end() && Slice(it->first) == key) {
      it->second = value.ToString();
      *inserted_new = false;
    } else {
      node.entries.insert(it, {key.ToString(), value.ToString()});
      *inserted_new = true;
    }
  } else {
    auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key,
                               [](const Slice& k, const std::string& nk) {
                                 return k.compare(Slice(nk)) < 0;
                               });
    size_t idx = static_cast<size_t>(it - node.keys.begin());
    SplitResult child_split;
    ODH_RETURN_IF_ERROR(InsertRec(node.children[idx], key, value,
                                  &child_split, inserted_new));
    if (!child_split.split) return Status::OK();
    node.keys.insert(node.keys.begin() + idx, child_split.separator);
    node.children.insert(node.children.begin() + idx + 1,
                         child_split.right_page);
  }

  if (SerializedSize(node) <= max_node_bytes_) {
    return StoreNode(page_no, node);
  }

  // Split: move the upper half to a new right sibling.
  Node right;
  right.leaf = node.leaf;
  if (node.leaf) {
    size_t mid = node.entries.size() / 2;
    if (mid == 0) return Status::InvalidArgument("btree entry exceeds page");
    right.entries.assign(node.entries.begin() + mid, node.entries.end());
    node.entries.resize(mid);
    right.has_next_leaf = node.has_next_leaf;
    right.next_leaf = node.next_leaf;
    ODH_ASSIGN_OR_RETURN(storage::PageNo right_page, AllocateNode(right));
    node.has_next_leaf = true;
    node.next_leaf = right_page;
    split->split = true;
    split->separator = right.entries.front().first;
    split->right_page = right_page;
  } else {
    size_t mid = node.keys.size() / 2;
    if (mid == 0) return Status::InvalidArgument("btree key exceeds page");
    // keys[mid] moves up as the separator.
    split->separator = node.keys[mid];
    right.keys.assign(node.keys.begin() + mid + 1, node.keys.end());
    right.children.assign(node.children.begin() + mid + 1,
                          node.children.end());
    node.keys.resize(mid);
    node.children.resize(mid + 1);
    ODH_ASSIGN_OR_RETURN(storage::PageNo right_page, AllocateNode(right));
    split->split = true;
    split->right_page = right_page;
  }
  return StoreNode(page_no, node);
}

Status BTree::Insert(const Slice& key, const Slice& value) {
  if (key.size() + value.size() > max_node_bytes_ / 4) {
    return Status::InvalidArgument("btree entry too large");
  }
  SplitResult split;
  bool inserted_new = false;
  ODH_RETURN_IF_ERROR(InsertRec(root_, key, value, &split, &inserted_new));
  if (split.split) {
    Node new_root;
    new_root.leaf = false;
    new_root.keys.push_back(split.separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(split.right_page);
    ODH_ASSIGN_OR_RETURN(root_, AllocateNode(new_root));
    ++height_;
  }
  if (inserted_new) ++num_entries_;
  return WriteMeta();
}

Result<storage::PageNo> BTree::FindLeaf(const Slice& key) {
  storage::PageNo page_no = root_;
  Node node;
  while (true) {
    ODH_RETURN_IF_ERROR(LoadNode(page_no, &node));
    if (node.leaf) return page_no;
    auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key,
                               [](const Slice& k, const std::string& nk) {
                                 return k.compare(Slice(nk)) < 0;
                               });
    page_no = node.children[static_cast<size_t>(it - node.keys.begin())];
  }
}

Result<std::string> BTree::Get(const Slice& key) {
  ODH_ASSIGN_OR_RETURN(storage::PageNo leaf, FindLeaf(key));
  Node node;
  ODH_RETURN_IF_ERROR(LoadNode(leaf, &node));
  auto it = std::lower_bound(node.entries.begin(), node.entries.end(), key,
                             [](const auto& entry, const Slice& k) {
                               return Slice(entry.first).compare(k) < 0;
                             });
  if (it == node.entries.end() || Slice(it->first) != key) {
    return Status::NotFound("key not in btree");
  }
  return it->second;
}

Status BTree::Delete(const Slice& key) {
  ODH_ASSIGN_OR_RETURN(storage::PageNo leaf, FindLeaf(key));
  Node node;
  ODH_RETURN_IF_ERROR(LoadNode(leaf, &node));
  auto it = std::lower_bound(node.entries.begin(), node.entries.end(), key,
                             [](const auto& entry, const Slice& k) {
                               return Slice(entry.first).compare(k) < 0;
                             });
  if (it == node.entries.end() || Slice(it->first) != key) {
    return Status::NotFound("key not in btree");
  }
  node.entries.erase(it);
  ODH_RETURN_IF_ERROR(StoreNode(leaf, node));
  --num_entries_;
  return WriteMeta();
}

Status BTree::Iterator::LoadLeaf(storage::PageNo page) {
  Node node;
  ODH_RETURN_IF_ERROR(tree_->LoadNode(page, &node));
  ODH_CHECK(node.leaf);
  entries_ = std::move(node.entries);
  has_next_leaf_ = node.has_next_leaf;
  next_leaf_ = node.next_leaf;
  return Status::OK();
}

Status BTree::Iterator::Seek(const Slice& key) {
  valid_ = false;
  ODH_ASSIGN_OR_RETURN(storage::PageNo leaf, tree_->FindLeaf(key));
  ODH_RETURN_IF_ERROR(LoadLeaf(leaf));
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](const auto& entry, const Slice& k) {
                               return Slice(entry.first).compare(k) < 0;
                             });
  pos_ = static_cast<size_t>(it - entries_.begin());
  while (pos_ >= entries_.size()) {
    if (!has_next_leaf_) return Status::OK();  // Invalid: past the end.
    ODH_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
    pos_ = 0;
  }
  valid_ = true;
  key_ = entries_[pos_].first;
  value_ = entries_[pos_].second;
  return Status::OK();
}

Status BTree::Iterator::SeekToFirst() { return Seek(Slice("", 0)); }

Status BTree::Iterator::Next() {
  if (!valid_) return Status::FailedPrecondition("iterator not valid");
  ++pos_;
  while (pos_ >= entries_.size()) {
    if (!has_next_leaf_) {
      valid_ = false;
      return Status::OK();
    }
    ODH_RETURN_IF_ERROR(LoadLeaf(next_leaf_));
    pos_ = 0;
  }
  key_ = entries_[pos_].first;
  value_ = entries_[pos_].second;
  return Status::OK();
}

}  // namespace odh::index
