#ifndef ODH_INDEX_BTREE_H_
#define ODH_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_pool.h"

namespace odh::index {

/// A disk-backed B+tree over a BufferPool file.
///
/// Keys are arbitrary byte strings compared with memcmp (see
/// common/key_codec.h for order-preserving encodings); values are arbitrary
/// byte strings. Keys are unique — callers that need duplicates append a
/// uniquifier (e.g. the RID) to the key, which is also how the relational
/// layer builds secondary indexes.
///
/// Leaves are chained for range scans. Deletion is lazy (no rebalancing):
/// the workloads in this reproduction are append-heavy, matching the
/// paper's no-transaction ingestion model.
class BTree {
 public:
  /// Creates a fresh tree in a new file named `name` on the pool's disk.
  static Result<std::unique_ptr<BTree>> Create(storage::BufferPool* pool,
                                               const std::string& name);

  /// Reopens a tree previously created with Create().
  static Result<std::unique_ptr<BTree>> Open(storage::BufferPool* pool,
                                             const std::string& name);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts or overwrites `key`.
  Status Insert(const Slice& key, const Slice& value);

  /// Point lookup. NotFound if absent.
  Result<std::string> Get(const Slice& key);

  /// Removes `key`. NotFound if absent.
  Status Delete(const Slice& key);

  int64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  storage::FileId file() const { return file_; }

  /// Forward iterator over key order. Invalidated by writes to the tree.
  class Iterator {
   public:
    /// Positions at the first key >= `key`.
    Status Seek(const Slice& key);
    /// Positions at the first key in the tree.
    Status SeekToFirst();
    bool Valid() const { return valid_; }
    Status Next();
    Slice key() const { return Slice(key_); }
    Slice value() const { return Slice(value_); }

   private:
    friend class BTree;
    explicit Iterator(BTree* tree) : tree_(tree) {}

    Status LoadLeaf(storage::PageNo page);

    BTree* tree_;
    bool valid_ = false;
    // Decoded copy of the current leaf; simple and safe against eviction.
    std::vector<std::pair<std::string, std::string>> entries_;
    storage::PageNo next_leaf_ = 0;
    bool has_next_leaf_ = false;
    size_t pos_ = 0;
    std::string key_;
    std::string value_;
  };

  Iterator NewIterator() { return Iterator(this); }

 private:
  friend class Iterator;

  // In-memory decoded node. Nodes are (de)serialized from 4 KB pages on
  // access; this trades CPU for implementation clarity and also provides a
  // realistic per-record B-tree maintenance cost for the baselines.
  struct Node {
    bool leaf = true;
    // For leaves: entries are (key, value). For internals: children has
    // keys.size() + 1 elements; keys[i] is the smallest key in
    // children[i + 1]'s subtree.
    std::vector<std::pair<std::string, std::string>> entries;
    std::vector<std::string> keys;
    std::vector<storage::PageNo> children;
    bool has_next_leaf = false;
    storage::PageNo next_leaf = 0;
  };

  struct SplitResult {
    bool split = false;
    std::string separator;       // First key of the right node.
    storage::PageNo right_page = 0;
  };

  BTree(storage::BufferPool* pool, storage::FileId file)
      : pool_(pool), file_(file) {}

  Status LoadNode(storage::PageNo page, Node* node);
  Status StoreNode(storage::PageNo page, const Node& node);
  static size_t SerializedSize(const Node& node);
  Result<storage::PageNo> AllocateNode(const Node& node);

  Status InsertRec(storage::PageNo page, const Slice& key, const Slice& value,
                   SplitResult* split, bool* inserted_new);
  Status WriteMeta();
  Status ReadMeta();

  /// Finds the leaf page that may contain `key`.
  Result<storage::PageNo> FindLeaf(const Slice& key);

  storage::BufferPool* pool_;
  storage::FileId file_;
  storage::PageNo root_ = 0;
  int height_ = 1;
  int64_t num_entries_ = 0;
  size_t max_node_bytes_ = 0;  // Set from page size at open.
};

}  // namespace odh::index

#endif  // ODH_INDEX_BTREE_H_
