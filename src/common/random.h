#ifndef ODH_COMMON_RANDOM_H_
#define ODH_COMMON_RANDOM_H_

#include <cstdint>

namespace odh {

/// Deterministic, fast PRNG (xoshiro256**). All workload generators seed
/// one of these explicitly so every benchmark run is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed across the state.
    uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    for (int i = 0; i < 4; ++i) {
      z += 0x9e3779b97f4a7c15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(
                    static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Approximately standard normal (sum of 12 uniforms, mean-centered).
  double NextGaussian() {
    double sum = 0;
    for (int i = 0; i < 12; ++i) sum += NextDouble();
    return sum - 6.0;
  }

  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace odh

#endif  // ODH_COMMON_RANDOM_H_
