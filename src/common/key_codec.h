#ifndef ODH_COMMON_KEY_CODEC_H_
#define ODH_COMMON_KEY_CODEC_H_

#include <string>
#include <vector>

#include "common/datum.h"
#include "common/slice.h"

namespace odh {

/// Order-preserving binary key encoding: composite keys built from these
/// primitives compare with plain memcmp in the same order as the typed
/// values. Used for all B+tree keys.
///
/// Encodings:
///  - int64/timestamp: big-endian with the sign bit flipped (8 bytes).
///  - double: IEEE754 bits, sign-flipped when positive / fully inverted when
///    negative (8 bytes); total order matching numeric order (no NaN
///    support — callers must not index NaNs).
///  - string: escaped (0x00 -> 0x00 0xFF) and terminated with 0x00 0x00, so
///    prefixes order correctly.
///  - NULL: single 0x00 type tag ordering before all non-NULL values.
/// Each field is preceded by a 1-byte type tag so heterogenous values order
/// deterministically (NULL < numeric < string).
class KeyEncoder {
 public:
  explicit KeyEncoder(std::string* out) : out_(out) {}

  void AddInt64(int64_t v);
  void AddDouble(double v);
  void AddString(const Slice& s);
  void AddNull();

  /// Encodes a Datum with its natural encoding (timestamps as int64).
  void AddDatum(const Datum& d);

 private:
  std::string* out_;
};

/// Decodes keys produced by KeyEncoder. Field types must be known by the
/// caller (the index schema fixes them).
class KeyDecoder {
 public:
  explicit KeyDecoder(Slice input) : input_(input) {}

  bool ReadInt64(int64_t* v);
  bool ReadDouble(double* v);
  bool ReadString(std::string* s);
  /// Reads one field as a Datum of the requested column type. A NULL tag is
  /// accepted for any type.
  bool ReadDatum(DataType type, Datum* d);

  bool done() const { return input_.empty(); }
  Slice remaining() const { return input_; }

 private:
  bool ReadTag(uint8_t expected, bool* was_null);

  Slice input_;
};

/// Convenience: encodes `datums` as a composite key.
std::string EncodeKey(const std::vector<Datum>& datums);

}  // namespace odh

#endif  // ODH_COMMON_KEY_CODEC_H_
