#ifndef ODH_COMMON_METRICS_H_
#define ODH_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace odh::common {

/// A monotonically increasing counter. Add() is one relaxed atomic
/// fetch-add — cheap enough for flush/sync/eviction granularity, still
/// too expensive for the per-record ingest fast path (instrument at blob
/// boundaries, not per point).
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket latency histogram over int64 values (conventionally
/// microseconds). Buckets are powers of two: bucket b holds values in
/// (2^(b-1), 2^b], bucket 0 holds values <= 1. Observe() is three relaxed
/// atomic adds and entirely lock-free; quantiles interpolate linearly
/// within the winning bucket, which is plenty for p50/p95/p99 dashboards.
class Histogram {
 public:
  static constexpr int kNumBuckets = 36;  // Covers up to ~2^35 us (~9.5 h).

  void Observe(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Approximate value at quantile `q` in [0, 1]; 0 when empty.
  double Quantile(double q) const;

 private:
  std::array<std::atomic<int64_t>, kNumBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// One exported sample: histograms expand into .count/.sum/.p50/.p95/.p99.
struct MetricSample {
  std::string name;
  std::string kind;  // "counter" | "gauge" | "histogram"
  double value = 0;
};

/// Name -> instrument registry. Get-or-create takes a mutex but returns a
/// stable pointer, so components look their instruments up once at wiring
/// time and touch only atomics afterwards. Gauges are pull-style callbacks
/// (typically closing over an existing atomic counter elsewhere), sampled
/// at Collect() time; callbacks must be thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  void RegisterGauge(const std::string& name, std::function<double()> fn);

  /// Snapshot of every instrument, sorted by name.
  std::vector<MetricSample> Collect() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::function<double()>> gauges_;
};

/// Per-query scan counters for QueryProfile: the SQL engine plants one of
/// these in the scan specs of a statement and the ODH scan paths bump it
/// alongside the reader's global counters. Atomic because historical scans
/// pre-decode blobs on a thread pool. Increments happen per blob / per
/// batch / per emitted row — never per ingested record.
struct ScanCounters {
  std::atomic<int64_t> rows_scanned{0};
  std::atomic<int64_t> batches{0};
  std::atomic<int64_t> blobs_decoded{0};
  std::atomic<int64_t> blobs_pruned{0};
  std::atomic<int64_t> blobs_skipped_by_summary{0};
  std::atomic<int64_t> blob_bytes_read{0};
  std::atomic<int64_t> segments_pruned{0};
  /// Distinct (structure, segment) scan units handed to pool workers by the
  /// segment-parallel driver; 0 on a serial scan.
  std::atomic<int64_t> segments_scanned_parallel{0};
  /// Blobs served from the decoded-blob cache instead of decoding. Disjoint
  /// from blobs_decoded: every candidate blob lands in exactly one of
  /// {pruned, skipped_by_summary, cache hit, decoded}.
  std::atomic<int64_t> blob_cache_hits{0};
};

}  // namespace odh::common

#endif  // ODH_COMMON_METRICS_H_
