#include "common/key_codec.h"

#include <cstring>

namespace odh {
namespace {

// Type tags chosen so that NULL < numeric < string under memcmp.
constexpr uint8_t kNullTag = 0x00;
constexpr uint8_t kNumericTag = 0x10;
constexpr uint8_t kStringTag = 0x20;

uint64_t EncodeOrderedInt64(int64_t v) {
  // Flip the sign bit, then store big-endian.
  return static_cast<uint64_t>(v) ^ (uint64_t{1} << 63);
}

void AppendBigEndian64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 7; i >= 0; --i) {
    buf[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  out->append(buf, 8);
}

uint64_t ReadBigEndian64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t EncodeOrderedDouble(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, 8);
  if (bits & (uint64_t{1} << 63)) {
    return ~bits;  // Negative: invert all bits.
  }
  return bits | (uint64_t{1} << 63);  // Positive: flip sign bit.
}

double DecodeOrderedDouble(uint64_t enc) {
  uint64_t bits;
  if (enc & (uint64_t{1} << 63)) {
    bits = enc & ~(uint64_t{1} << 63);
  } else {
    bits = ~enc;
  }
  double d;
  std::memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

void KeyEncoder::AddInt64(int64_t v) {
  out_->push_back(static_cast<char>(kNumericTag));
  AppendBigEndian64(out_, EncodeOrderedInt64(v));
}

void KeyEncoder::AddDouble(double v) {
  out_->push_back(static_cast<char>(kNumericTag));
  AppendBigEndian64(out_, EncodeOrderedDouble(v));
}

void KeyEncoder::AddString(const Slice& s) {
  out_->push_back(static_cast<char>(kStringTag));
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\0') {
      out_->push_back('\0');
      out_->push_back('\xff');
    } else {
      out_->push_back(s[i]);
    }
  }
  out_->push_back('\0');
  out_->push_back('\0');
}

void KeyEncoder::AddNull() { out_->push_back(static_cast<char>(kNullTag)); }

void KeyEncoder::AddDatum(const Datum& d) {
  switch (d.type()) {
    case DataType::kNull:
      AddNull();
      break;
    case DataType::kBool:
      AddInt64(d.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      AddInt64(d.int64_value());
      break;
    case DataType::kTimestamp:
      AddInt64(d.timestamp_value());
      break;
    case DataType::kDouble:
      AddDouble(d.double_value());
      break;
    case DataType::kString:
      AddString(d.string_value());
      break;
  }
}

bool KeyDecoder::ReadTag(uint8_t expected, bool* was_null) {
  if (input_.empty()) return false;
  uint8_t tag = static_cast<uint8_t>(input_[0]);
  input_.remove_prefix(1);
  if (tag == kNullTag) {
    *was_null = true;
    return true;
  }
  *was_null = false;
  return tag == expected;
}

bool KeyDecoder::ReadInt64(int64_t* v) {
  bool was_null;
  if (!ReadTag(kNumericTag, &was_null) || was_null) return false;
  if (input_.size() < 8) return false;
  *v = static_cast<int64_t>(ReadBigEndian64(input_.data()) ^
                            (uint64_t{1} << 63));
  input_.remove_prefix(8);
  return true;
}

bool KeyDecoder::ReadDouble(double* v) {
  bool was_null;
  if (!ReadTag(kNumericTag, &was_null) || was_null) return false;
  if (input_.size() < 8) return false;
  *v = DecodeOrderedDouble(ReadBigEndian64(input_.data()));
  input_.remove_prefix(8);
  return true;
}

bool KeyDecoder::ReadString(std::string* s) {
  bool was_null;
  if (!ReadTag(kStringTag, &was_null) || was_null) return false;
  s->clear();
  while (input_.size() >= 2) {
    char c = input_[0];
    if (c == '\0') {
      char next = input_[1];
      input_.remove_prefix(2);
      if (next == '\0') return true;     // Terminator.
      if (next == '\xff') {
        s->push_back('\0');
        continue;
      }
      return false;  // Invalid escape.
    }
    s->push_back(c);
    input_.remove_prefix(1);
  }
  return false;  // Unterminated.
}

bool KeyDecoder::ReadDatum(DataType type, Datum* d) {
  if (!input_.empty() && static_cast<uint8_t>(input_[0]) == kNullTag) {
    input_.remove_prefix(1);
    *d = Datum::Null();
    return true;
  }
  switch (type) {
    case DataType::kBool: {
      int64_t v;
      if (!ReadInt64(&v)) return false;
      *d = Datum::Bool(v != 0);
      return true;
    }
    case DataType::kInt64: {
      int64_t v;
      if (!ReadInt64(&v)) return false;
      *d = Datum::Int64(v);
      return true;
    }
    case DataType::kTimestamp: {
      int64_t v;
      if (!ReadInt64(&v)) return false;
      *d = Datum::Time(v);
      return true;
    }
    case DataType::kDouble: {
      double v;
      if (!ReadDouble(&v)) return false;
      *d = Datum::Double(v);
      return true;
    }
    case DataType::kString: {
      std::string s;
      if (!ReadString(&s)) return false;
      *d = Datum::String(std::move(s));
      return true;
    }
    case DataType::kNull:
      return false;
  }
  return false;
}

std::string EncodeKey(const std::vector<Datum>& datums) {
  std::string out;
  KeyEncoder enc(&out);
  for (const Datum& d : datums) enc.AddDatum(d);
  return out;
}

}  // namespace odh
