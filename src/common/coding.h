#ifndef ODH_COMMON_CODING_H_
#define ODH_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace odh {

// Little-endian fixed-width encodings ---------------------------------------

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline double DecodeDouble(const char* p) {
  double v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

// Varint / zigzag ------------------------------------------------------------

void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

/// Reads a varint from `input`, advancing it. Returns false on truncation
/// or overlong encodings.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarintSigned64(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigZagEncode(v));
}
inline bool GetVarintSigned64(Slice* input, int64_t* value) {
  uint64_t u;
  if (!GetVarint64(input, &u)) return false;
  *value = ZigZagDecode(u);
  return true;
}

// Length-prefixed byte strings ----------------------------------------------

void PutLengthPrefixed(std::string* dst, const Slice& value);
bool GetLengthPrefixed(Slice* input, Slice* result);

// Fixed-width reads that advance the input ----------------------------------

inline bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

inline bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

inline bool GetDouble(Slice* input, double* value) {
  if (input->size() < 8) return false;
  *value = DecodeDouble(input->data());
  input->remove_prefix(8);
  return true;
}

}  // namespace odh

#endif  // ODH_COMMON_CODING_H_
