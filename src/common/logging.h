#ifndef ODH_COMMON_LOGGING_H_
#define ODH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace odh {

/// Invariant checks that stay on in release builds. Library code uses these
/// only for programming errors (broken invariants), never for input errors —
/// those return Status.
#define ODH_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "ODH_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define ODH_CHECK_OK(status_expr)                                         \
  do {                                                                    \
    const ::odh::Status _odh_st = (status_expr);                          \
    if (!_odh_st.ok()) {                                                  \
      std::fprintf(stderr, "ODH_CHECK_OK failed at %s:%d: %s\n",          \
                   __FILE__, __LINE__, _odh_st.ToString().c_str());       \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define ODH_DCHECK(cond) assert(cond)

}  // namespace odh

#endif  // ODH_COMMON_LOGGING_H_
