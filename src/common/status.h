#ifndef ODH_COMMON_STATUS_H_
#define ODH_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace odh {

/// Error categories used across the ODH code base. The library does not use
/// C++ exceptions; every fallible operation returns a Status (or a
/// Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kCorruption,
  kIoError,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  /// Unrecoverable loss of stored data (e.g. a page whose checksum no
  /// longer matches after a torn write). Never retriable.
  kDataLoss,
  /// A transient failure (e.g. an injected intermittent I/O fault). Safe to
  /// retry with backoff; the storage layer does so automatically.
  kUnavailable,
  /// An operation ran out of wall-clock budget (socket read/write deadline,
  /// RPC deadline). The operation may or may not have taken effect on the
  /// other end; retry only idempotent work.
  kDeadlineExceeded,
  /// An optimistic operation lost a race (e.g. a segment compaction whose
  /// snapshot a concurrent write invalidated). Nothing happened; the caller
  /// may retry from a fresh snapshot.
  kAborted,
};

/// Returns a short human-readable name, e.g. "NotFound".
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success/error value. An OK status carries no message
/// and allocates nothing.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace odh

/// Evaluates `expr` (a Status expression); on error, returns it from the
/// enclosing function.
#define ODH_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::odh::Status _odh_status = (expr);           \
    if (!_odh_status.ok()) return _odh_status;    \
  } while (0)

#endif  // ODH_COMMON_STATUS_H_
