#include "common/memory.h"

#include <algorithm>

namespace odh::common {

MemoryTracker::~MemoryTracker() {
  // Return any residual to the ancestors so a leaked reservation in one
  // query cannot permanently shrink the process budget.
  const int64_t residual = used_.load(std::memory_order_relaxed);
  if (residual > 0) {
    for (MemoryTracker* t = parent_; t != nullptr; t = t->parent_) {
      t->SubLocal(residual);
    }
  }
}

bool MemoryTracker::AddLocal(int64_t bytes) {
  const int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const int64_t lim = limit_.load(std::memory_order_relaxed);
  if (lim > 0 && now > lim) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  // Peak maintenance: monotone max via CAS; races may briefly publish a
  // smaller value but the loop converges on the true maximum.
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

void MemoryTracker::SubLocal(int64_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status MemoryTracker::TryReserve(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  MemoryTracker* t = this;
  while (t != nullptr) {
    if (!t->AddLocal(bytes)) {
      // Roll back the levels already charged (strictly below t).
      for (MemoryTracker* u = this; u != t; u = u->parent_) {
        u->SubLocal(bytes);
      }
      return Status::ResourceExhausted(
          "memory budget exceeded at '" + t->name_ + "': " +
          std::to_string(t->used()) + " bytes used + " +
          std::to_string(bytes) + " requested > limit " +
          std::to_string(t->limit()));
    }
    t = t->parent_;
  }
  return Status::OK();
}

void MemoryTracker::Release(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    t->SubLocal(bytes);
  }
}

Result<char*> Arena::Allocate(size_t bytes) {
  if (bytes == 0) bytes = 1;
  bytes = (bytes + 7) & ~size_t{7};  // 8-align every allocation.
  if (bytes > remaining_) {
    // Page-sized-and-up requests get an exact dedicated block, leaving
    // the bump cursor alone; doubling only serves small allocations.
    // Spill I/O buffers are exactly one disk page each, and doubling for
    // them would charge a small query budget ~2x the bytes actually in
    // use — starving the very spill those buffers fund.
    if (bytes >= kMinBlock) {
      if (tracker_ != nullptr) {
        ODH_RETURN_IF_ERROR(tracker_->TryReserve(static_cast<int64_t>(bytes)));
      }
      blocks_.push_back(std::make_unique<char[]>(bytes));
      bytes_allocated_ += static_cast<int64_t>(bytes);
      return blocks_.back().get();
    }
    size_t block = std::max(bytes, next_block_);
    if (tracker_ != nullptr) {
      ODH_RETURN_IF_ERROR(tracker_->TryReserve(static_cast<int64_t>(block)));
    }
    blocks_.push_back(std::make_unique<char[]>(block));
    cursor_ = blocks_.back().get();
    remaining_ = block;
    bytes_allocated_ += static_cast<int64_t>(block);
    next_block_ = std::min(next_block_ * 2, kMaxBlock);
  }
  char* out = cursor_;
  cursor_ += bytes;
  remaining_ -= bytes;
  return out;
}

void Arena::Reset() {
  if (tracker_ != nullptr && bytes_allocated_ > 0) {
    tracker_->Release(bytes_allocated_);
  }
  blocks_.clear();
  cursor_ = nullptr;
  remaining_ = 0;
  next_block_ = kMinBlock;
  bytes_allocated_ = 0;
}

}  // namespace odh::common
