#ifndef ODH_COMMON_STOPWATCH_H_
#define ODH_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace odh {

/// Wall-clock stopwatch (steady clock).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time meter, used by the benchmark harness to compute the
/// paper's "CPU load" metric: CPU seconds consumed per second of offered
/// data, normalized by a simulated core count.
class CpuMeter {
 public:
  CpuMeter() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  /// CPU seconds (user+system) consumed by this process since Restart().
  double ElapsedCpuSeconds() const { return Now() - start_; }

 private:
  static double Now();

  double start_;
};

}  // namespace odh

#endif  // ODH_COMMON_STOPWATCH_H_
