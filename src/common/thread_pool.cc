#include "common/thread_pool.h"

#include <atomic>
#include <memory>

namespace odh::common {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor: a dynamic index dispenser plus a
/// completion latch for the driver tasks.
struct ForState {
  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int drivers_remaining = 0;
};

}  // namespace

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  auto state = std::make_shared<ForState>();
  const int helpers =
      static_cast<int>(std::min<int64_t>(num_threads(), n - 1));
  state->drivers_remaining = helpers;

  auto drive = [state, &fn, n] {
    int64_t i;
    while ((i = state->next.fetch_add(1, std::memory_order_relaxed)) < n) {
      fn(i);
    }
  };
  // `fn` is captured by reference: the caller blocks below until every
  // helper has signalled, so the reference cannot dangle.
  for (int h = 0; h < helpers; ++h) {
    Submit([state, drive] {
      drive();
      {
        std::lock_guard<std::mutex> lock(state->mu);
        --state->drivers_remaining;
      }
      state->done_cv.notify_one();
    });
  }
  drive();  // The caller claims indices too.
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] { return state->drivers_remaining == 0; });
}

}  // namespace odh::common
