#ifndef ODH_COMMON_TYPES_H_
#define ODH_COMMON_TYPES_H_

#include <cstdint>
#include <limits>
#include <string>

namespace odh {

/// Microseconds since the Unix epoch. All operational records carry one.
using Timestamp = int64_t;

inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

inline constexpr int64_t kMicrosPerSecond = 1'000'000;
inline constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;

/// Identifies a data source (sensor / device / meter / account).
using SourceId = int64_t;

/// Index of a tag (measurement attribute) within a schema type.
using TagIndex = int32_t;

/// Formats a Timestamp as "YYYY-MM-DD HH:MM:SS[.ffffff]" (UTC).
std::string FormatTimestamp(Timestamp ts);

/// Parses "YYYY-MM-DD HH:MM:SS" (UTC) into microseconds since epoch.
/// Returns false on malformed input.
bool ParseTimestamp(const std::string& text, Timestamp* out);

}  // namespace odh

#endif  // ODH_COMMON_TYPES_H_
