#ifndef ODH_COMMON_MEMORY_H_
#define ODH_COMMON_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/datum.h"
#include "common/result.h"
#include "common/status.h"

namespace odh::common {

/// A node in the historian's memory-governance hierarchy:
///
///   process  ->  session (one per sql::Session)  ->  query (one per stream)
///
/// Each node carries its own budget (0 = unbounded) and its own usage;
/// TryReserve charges every ancestor atomically, so a reservation that
/// fits the query budget can still be refused because the process is full
/// — the signal HistorianServer's admission gate and the spill paths act
/// on. Release walks the same chain. All counters are relaxed atomics:
/// concurrent sessions reserve against the shared process root without a
/// lock, and exact cross-thread ordering of peak() is not needed.
///
/// Lifetime: a child must not outlive its parent. A tracker destroyed with
/// residual usage returns that residual to its ancestors (the leak stays
/// visible in the owner's own used() until then, which is what the
/// eager-release tests assert on).
class MemoryTracker {
 public:
  /// `limit_bytes` 0 means unbounded (track usage, never refuse).
  explicit MemoryTracker(std::string name, int64_t limit_bytes = 0,
                         MemoryTracker* parent = nullptr)
      : name_(std::move(name)), limit_(limit_bytes), parent_(parent) {}
  ~MemoryTracker();

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Charges `bytes` to this node and every ancestor. On refusal (any
  /// level over its limit) nothing is charged anywhere and the status
  /// names the level that refused.
  Status TryReserve(int64_t bytes);

  /// Returns `bytes` to this node and every ancestor.
  void Release(int64_t bytes);

  int64_t used() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }
  /// Reconfigures the budget (engine wiring time, before traffic).
  void set_limit(int64_t limit_bytes) {
    limit_.store(limit_bytes, std::memory_order_relaxed);
  }
  const std::string& name() const { return name_; }
  MemoryTracker* parent() { return parent_; }

 private:
  /// Adds `bytes` here only (no parent walk); false + rollback when over
  /// limit.
  bool AddLocal(int64_t bytes);
  void SubLocal(int64_t bytes);

  const std::string name_;
  std::atomic<int64_t> limit_;
  MemoryTracker* const parent_;
  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
};

/// Accumulating RAII reservation against one tracker: Reserve() grows it,
/// the destructor (or ReleaseAll) returns everything. The unit the
/// buffered execution paths use so early returns and error paths can
/// never leak accounted bytes.
class ScopedReservation {
 public:
  explicit ScopedReservation(MemoryTracker* tracker) : tracker_(tracker) {}
  ~ScopedReservation() { ReleaseAll(); }

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  /// No-op success when constructed with a null tracker (governance off).
  Status Reserve(int64_t bytes) {
    if (tracker_ == nullptr || bytes <= 0) return Status::OK();
    ODH_RETURN_IF_ERROR(tracker_->TryReserve(bytes));
    bytes_ += bytes;
    return Status::OK();
  }
  /// Returns part of the reservation early (e.g. a row handed out).
  void Release(int64_t bytes) {
    if (tracker_ == nullptr || bytes <= 0) return;
    if (bytes > bytes_) bytes = bytes_;
    tracker_->Release(bytes);
    bytes_ -= bytes;
  }
  void ReleaseAll() { Release(bytes_); }
  int64_t bytes() const { return bytes_; }

 private:
  MemoryTracker* tracker_;
  int64_t bytes_ = 0;
};

/// A bump-pointer arena for query-lifetime byte buffers (spill page
/// staging, merge read buffers): allocation is a pointer increment, and
/// every block is charged to the query's MemoryTracker the moment it is
/// carved from the heap. Only trivially destructible data belongs here —
/// Reset and the destructor free the blocks without running destructors.
/// Not thread-safe; one arena per query, used from the query's thread.
class Arena {
 public:
  explicit Arena(MemoryTracker* tracker = nullptr) : tracker_(tracker) {}
  ~Arena() { Reset(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 8-aligned allocation; refused (ResourceExhausted) when the tracker's
  /// budget cannot cover a fresh block.
  Result<char*> Allocate(size_t bytes);

  /// Total bytes carved from the heap (allocation granularity, >= the sum
  /// of Allocate sizes).
  int64_t bytes_allocated() const { return bytes_allocated_; }

  /// Frees every block and returns the bytes to the tracker.
  void Reset();

 private:
  static constexpr size_t kMinBlock = 4096;
  static constexpr size_t kMaxBlock = 256 * 1024;

  MemoryTracker* tracker_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cursor_ = nullptr;
  size_t remaining_ = 0;
  size_t next_block_ = kMinBlock;
  int64_t bytes_allocated_ = 0;
};

/// Accounting estimate for one SQL value / row as held by the buffered
/// execution paths. Deliberately an estimate (container headers plus
/// string payload), consistently applied on reserve and release.
inline int64_t ApproxDatumBytes(const Datum& d) {
  int64_t n = static_cast<int64_t>(sizeof(Datum));
  if (d.is_string()) n += static_cast<int64_t>(d.string_value().capacity());
  return n;
}

inline int64_t ApproxRowBytes(const Row& row) {
  int64_t n = static_cast<int64_t>(sizeof(Row));
  for (const Datum& d : row) n += ApproxDatumBytes(d);
  return n;
}

}  // namespace odh::common

#endif  // ODH_COMMON_MEMORY_H_
