#ifndef ODH_COMMON_TABLE_PRINTER_H_
#define ODH_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace odh {

/// Renders aligned, plain-text tables. Every benchmark binary uses this to
/// print rows in the same layout as the paper's tables/figure series.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Writes the table to stdout.
  void Print(const std::string& title = "") const;

  /// Number formatting helpers shared by benches.
  static std::string FormatCount(double v);        // 1234567 -> "1.23M"
  static std::string FormatBytes(double bytes);    // -> "12.3 MB"
  static std::string FormatPercent(double ratio);  // 0.123 -> "12.3%"
  static std::string FormatDouble(double v, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace odh

#endif  // ODH_COMMON_TABLE_PRINTER_H_
